//! Figure 1, executable: Monte-Carlo estimates of the paper's three
//! probabilistic events against their read-k theoretical bounds.
//!
//! ```sh
//! cargo run --release --example readk_tail_bounds
//! ```

use arbmis::graph::{gen, orientation::Orientation};
use arbmis::readk::events::EventScenario;
use arbmis::readk::{bounds, estimate, family};
use rand::SeedableRng;

const TRIALS: u64 = 20_000;

fn main() {
    synthetic_conjunction();
    synthetic_tail();
    paper_events();
}

/// Theorem 1.1 on a synthetic sliding-window family.
fn synthetic_conjunction() {
    println!("== Theorem 1.1: read-k conjunction bound p^(n/k) ==");
    println!(
        "{:>4} {:>4} {:>8} {:>12} {:>12}",
        "n", "k", "p", "measured", "bound"
    );
    for (n, span, stride) in [(8usize, 1usize, 1usize), (8, 2, 1), (8, 3, 1)] {
        // Y_j = [all window values ≥ t]; windows overlap by span−stride.
        let frac = 0.2; // Pr[X ≥ t] = 0.8 per coordinate
        let fam = family::sliding_window_family(n, span, stride, frac);
        let p = (1.0 - frac).powi(span as i32);
        let k = fam.read_parameter();
        let est = estimate(TRIALS, |t| {
            let x = fam.sample_base(1, t);
            fam.all_ones(&x)
        });
        let bound = bounds::conjunction_bound(p, n, k);
        println!(
            "{:>4} {:>4} {:>8.4} {:>12.5} {:>12.5}{}",
            n,
            k,
            p,
            est.p_hat(),
            bound,
            if est.p_hat() <= bound + 0.01 {
                "  ✓"
            } else {
                "  ✗ VIOLATION"
            }
        );
    }
    println!();
}

/// Theorem 1.2 form (2) vs Chernoff vs Azuma on the same family.
fn synthetic_tail() {
    println!("== Theorem 1.2 (form 2) vs comparators, δ = 0.5 ==");
    println!(
        "{:>4} {:>4} {:>10} {:>12} {:>12} {:>12}",
        "n", "k", "measured", "read-k", "chernoff", "azuma"
    );
    for (n, span) in [(200usize, 1usize), (200, 2), (200, 4)] {
        let fam = family::sliding_window_family(n, span, 1, 0.5);
        let p = 0.5f64.powi(span as i32);
        let exp_y = p * n as f64;
        let delta = 0.5;
        let threshold = ((1.0 - delta) * exp_y) as usize;
        let k = fam.read_parameter();
        let est = estimate(TRIALS, |t| fam.sample_count(2, t) <= threshold);
        println!(
            "{:>4} {:>4} {:>10.5} {:>12.5} {:>12.5} {:>12.5}",
            n,
            k,
            est.p_hat(),
            bounds::tail_form2(delta, exp_y, k),
            bounds::chernoff_lower_tail(delta, exp_y),
            bounds::azuma_lower_tail(delta * exp_y, fam.m(), k),
        );
    }
    println!("(read-k must upper-bound 'measured'; Chernoff need not — the family is dependent)\n");
}

/// Events (1)–(3) on bounded-arboricity graphs (Figure 1 A/B/C).
fn paper_events() {
    println!("== Paper events on forest-union graphs (Figure 1) ==");
    println!(
        "{:>3} {:>6} {:>8} {:>10} {:>12} {:>12}",
        "α", "|M|", "k_meas", "event", "measured", "paper bound"
    );
    for alpha in [1usize, 2, 3] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(alpha as u64);
        let g = gen::forest_union(4_000, alpha, &mut rng);
        let o = Orientation::by_degeneracy(&g);
        let m: Vec<usize> = (0..400).collect();
        let sc = EventScenario::new(&g, &o, m.clone(), None);

        // Event 1: some node of M beats all children.
        let e1 = estimate(TRIALS, |t| sc.event1_holds(&sc.sample_priorities(10, t)));
        let delta_m = sc.max_degree_of_m().max(1);
        let b1 = bounds::event1_lower_bound(m.len(), delta_m, alpha);
        println!(
            "{:>3} {:>6} {:>8} {:>10} {:>12.5} {:>12.5}  (lower bound)",
            alpha,
            m.len(),
            sc.event1_read_parameter(),
            "E1",
            e1.p_hat(),
            b1
        );

        // Event 2: > |M|/2α nodes beat their parents.
        let e2 = estimate(TRIALS, |t| {
            sc.event2_holds(&sc.sample_priorities(11, t), alpha)
        });
        println!(
            "{:>3} {:>6} {:>8} {:>10} {:>12.5} {:>12}  (should be ~1)",
            alpha,
            m.len(),
            sc.event2_read_parameter(),
            "E2",
            e2.p_hat(),
            "-"
        );

        // Event 3: ≥ |M|/(8α²(32α⁶+1)) of M eliminated in one iteration.
        let e3 = estimate(TRIALS, |t| {
            sc.event3_holds(&sc.sample_priorities(12, t), alpha)
        });
        println!(
            "{:>3} {:>6} {:>8} {:>10} {:>12.5} {:>12.6}  (required fraction)",
            alpha,
            m.len(),
            sc.event3_read_parameter(),
            "E3",
            e3.p_hat(),
            bounds::event3_elimination_fraction(alpha)
        );
    }
}
