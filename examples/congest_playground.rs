//! The CONGEST layer up close: run the MIS protocols under real message
//! passing, inspect bandwidth accounting and message traces, and verify
//! protocol/fast-path bit-equivalence live.
//!
//! ```sh
//! cargo run --release --example congest_playground
//! ```

use arbmis::congest::algorithms::{bfs_then_sum, LeaderElect};
use arbmis::congest::Simulator;
use arbmis::core::protocols::{GhaffariProtocol, LubyProtocol, MetivierProtocol};
use arbmis::core::{ghaffari, luby, metivier};
use arbmis::graph::gen;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let n = 1_000;
    let g = gen::forest_union(n, 2, &mut rng);
    let seed = 5;
    let budget = Simulator::new(&g, seed).budget_bits().unwrap();
    println!("graph: {g}, CONGEST budget: {budget} bits/message\n");

    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>9} {:>12}",
        "protocol", "rounds", "messages", "total bits", "max bits", "≡ fast path"
    );
    // Métivier.
    let fast = metivier::run(&g, seed);
    let (run, transcript) = Simulator::new(&g, seed)
        .run_traced(&MetivierProtocol, 100_000)
        .unwrap();
    let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
    print_row("metivier", &run.metrics, mis == fast.in_mis);
    // Luby.
    let fast = luby::run(&g, seed);
    let run = Simulator::new(&g, seed)
        .run(&LubyProtocol, 100_000)
        .unwrap();
    let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
    print_row("luby", &run.metrics, mis == fast.in_mis);
    // Ghaffari.
    let fast = ghaffari::run(&g, seed);
    let run = Simulator::new(&g, seed)
        .run(&GhaffariProtocol, 100_000)
        .unwrap();
    let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
    print_row("ghaffari", &run.metrics, mis == fast.in_mis);

    // Message-trace anatomy of the Métivier run.
    println!("\nMétivier message trace (messages per round, first 12 rounds):");
    let profile = transcript.round_profile();
    for (r, c) in profile.iter().take(12).enumerate() {
        println!("  round {r:>2}: {c:>6} messages");
    }
    println!(
        "  trace digest: {:#018x} (stable across reruns)",
        transcript.digest()
    );

    // Substrate primitives.
    println!("\nsubstrate primitives on the same graph:");
    let le = Simulator::new(&g, seed)
        .run(&LeaderElect { rounds: n as u64 }, 2 * n as u64)
        .unwrap();
    println!(
        "  leader election: {} rounds, {} messages (silent-on-no-news)",
        le.metrics.rounds, le.metrics.messages
    );
    let values = vec![1u64; n];
    let (dist, _, total) = bfs_then_sum(&g, 0, &values, seed).unwrap();
    let reached = dist.iter().filter(|d| d.is_some()).count();
    println!("  BFS + converge-cast from node 0: component size = {total} ({reached} reached)");
}

fn print_row(name: &str, m: &arbmis::congest::Metrics, equal: bool) {
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>9} {:>12}",
        name,
        m.rounds,
        m.messages,
        m.bits,
        m.max_message_bits,
        if equal { "yes" } else { "NO!" }
    );
}
