//! Divergence forensics end to end: inject a single coin flip into a
//! `FlatBackend`, localize the first divergent round against the
//! CONGEST reference with `flat::divergence::localize`, and package the
//! case as a self-contained replay artifact for `arbmis replay`
//! (DESIGN.md §8.2).
//!
//! ```sh
//! cargo run --release --example divergence_demo
//! cargo run --release --bin arbmis -- replay --input divergence.json
//! ```

use arbmis::flat::divergence::{localize, BackendSpec, ReplayArtifact};
use arbmis::flat::{CoinFlip, CongestBackend, FlatAlgo, FlatBackend};
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use rand::SeedableRng;

const MAX_ROUNDS: u64 = 100_000;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let g = GraphSpec::new(GraphFamily::GnpAvgDegree { d: 4.0 }, 120).generate(&mut rng);
    let seed = 7;
    println!("graph: {g}, seed {seed}, algo metivier");

    // Find a flip of one iteration-0 coin whose entire first-round
    // effect is the flipped node itself.
    let mut found = None;
    'search: for node in 0..g.n() {
        for xor in [u64::MAX >> 1, 0xdead_beef_0000_0001, 2] {
            let flip = CoinFlip {
                node,
                iteration: 0,
                xor,
            };
            let mut a = FlatBackend::new(&g, seed, FlatAlgo::Metivier).with_coin_flip(flip);
            let mut b = CongestBackend::new(&g, seed, FlatAlgo::Metivier);
            if let Ok(Some(d)) = localize(&mut a, &mut b, MAX_ROUNDS) {
                if d.nodes == [node] {
                    found = Some((flip, d));
                    break 'search;
                }
            }
        }
    }
    let (flip, d) = found.expect("some single-node flip diverges");
    println!(
        "injected flip: node {} iteration {} xor {:#x}",
        flip.node, flip.iteration, flip.xor
    );
    println!(
        "localized: first divergent round {} ({}), nodes {:?}",
        d.round,
        d.kind.label(),
        d.nodes
    );

    // Package the case: graph, seed, both backend specs (including the
    // injected flip), and the expected divergence. `arbmis replay`
    // re-runs the localizer and verifies the recorded expectation.
    let artifact = ReplayArtifact::from_case(
        &g,
        seed,
        FlatAlgo::Metivier,
        BackendSpec::flat().with_coin_flip(flip),
        BackendSpec::congest(),
        MAX_ROUNDS,
        Some(&d),
    );
    std::fs::write("divergence.json", artifact.to_json()).expect("write divergence.json");
    println!("wrote divergence.json — replay with: arbmis replay --input divergence.json");

    let report = artifact.replay().expect("replay runs");
    print!("{}", artifact.render(&report));
}
