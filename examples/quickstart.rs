//! Quickstart: compute an MIS of a planar network with the ArbMIS
//! pipeline and verify it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use arbmis::core::{arb_mis, check_mis, greedy, ArbMisConfig};
use arbmis::graph::{arboricity, gen};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // Apollonian networks are maximal planar graphs: arboricity ≤ 3 by
    // construction, certified below via degeneracy.
    let n = 20_000;
    let g = gen::apollonian(n, &mut rng);
    let bounds = arboricity::arboricity_bounds(&g);
    println!(
        "graph: {} (Δ = {}, degeneracy = {}, arboricity ∈ [{}, {}])",
        g,
        g.max_degree(),
        arboricity::degeneracy(&g),
        bounds.lower,
        bounds.upper
    );

    let cfg = ArbMisConfig::new(bounds.upper, 7);
    let outcome = arb_mis(&g, &cfg);
    check_mis(&g, &outcome.in_mis).expect("ArbMIS must produce a valid MIS");

    println!("MIS size: {} nodes", outcome.mis_size());
    println!("total CONGEST rounds: {}", outcome.rounds);
    println!(
        "  degree reduction : {:>6}",
        outcome.phases.degree_reduction
    );
    println!("  shattering       : {:>6}", outcome.phases.shattering);
    println!("  V_lo finishing   : {:>6}", outcome.phases.vlo);
    println!("  V_hi finishing   : {:>6}", outcome.phases.vhi);
    println!("  bad components   : {:>6}", outcome.phases.bad_components);
    println!(
        "bad set: {} nodes in {} components (largest {})",
        outcome.shatter.bad_size(),
        outcome.bad_component_sizes.len(),
        outcome
            .bad_component_sizes
            .iter()
            .max()
            .copied()
            .unwrap_or(0)
    );

    // Reference: the sequential greedy MIS (sizes are not comparable in
    // general — MIS is not unique — but both dominate the graph).
    let greedy_size = greedy::greedy_mis(&g).iter().filter(|&&b| b).count();
    println!("greedy (sequential) MIS size for reference: {greedy_size}");
}
