//! Shattering in action.
//!
//! Part 1 watches the Métivier inner loop (the engine of Algorithm 1)
//! shatter a 30 000-node heavy-tailed graph: after each iteration the
//! still-active set splits into many small components — exactly the
//! structure the paper's analysis (and all shattering-based MIS
//! algorithms) exploit.
//!
//! Part 2 runs `BoundedArbIndependentSet` itself and prints the per-scale
//! trace: joiners, eliminations, bad markings, degree decay.
//!
//! ```sh
//! cargo run --release --example shattering_demo
//! ```

use arbmis::core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis::core::metivier;
use arbmis::graph::{gen, traversal};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let n = 30_000;
    let alpha = 3;
    let g = gen::barabasi_albert(n, alpha, &mut rng);
    println!(
        "graph: {g} (Barabási–Albert m = {alpha}, heavy-tailed, Δ = {})\n",
        g.max_degree()
    );

    println!("== Part 1: the active set shatters under Métivier iterations ==");
    println!(
        "{:>5} {:>9} {:>12} {:>14} {:>12}",
        "iter", "active", "components", "largest comp", "median comp"
    );
    for it in 0..5 {
        let p = metivier::run_partial(&g, 1, it);
        let mut sizes = traversal::subset_component_sizes(&g, &p.active);
        sizes.sort_unstable();
        let active: usize = sizes.iter().sum();
        let largest = sizes.last().copied().unwrap_or(0);
        let median = if sizes.is_empty() {
            0
        } else {
            sizes[sizes.len() / 2]
        };
        println!(
            "{:>5} {:>9} {:>12} {:>14} {:>12}",
            it,
            active,
            sizes.len(),
            largest,
            median
        );
        if active == 0 {
            break;
        }
    }
    println!("(one giant component collapses into micro-components within 2-3 iterations)\n");

    println!("== Part 2: BoundedArbIndependentSet (Algorithm 1) trace ==");
    let cfg = BoundedArbConfig::new(alpha, 5);
    let out = bounded_arb_independent_set(&g, &cfg);
    println!(
        "schedule: Θ = {} scales × Λ = {} iterations (mode {:?})",
        out.params.theta, out.params.lambda, out.params.mode
    );
    println!(
        "{:>5} {:>12} {:>10} {:>9} {:>11} {:>7} {:>10} {:>8}",
        "scale", "ρ_k", "active→", "joined", "eliminated", "bad", "active←", "maxdeg"
    );
    for t in &out.trace {
        println!(
            "{:>5} {:>12.1} {:>10} {:>9} {:>11} {:>7} {:>10} {:>8}",
            t.k,
            t.rho,
            t.active_start,
            t.joined,
            t.eliminated,
            t.bad_marked,
            t.active_end,
            t.max_active_degree_end
        );
    }
    println!(
        "\nI = {} nodes, B = {} nodes, residual VIB = {} nodes ({} CONGEST rounds)",
        out.mis_size(),
        out.bad_size(),
        out.active_size(),
        out.rounds
    );
    println!("Empty B is the expected outcome: Theorem 3.6 bounds Pr[v ∈ B] by Δ^(-2p).");
}
