//! Race the four MIS algorithms across graph families and compare CONGEST
//! round counts — the paper's §1 comparison, measured.
//!
//! ```sh
//! cargo run --release --example algorithm_race
//! ```

use arbmis::core::{arb_mis, check_mis, ghaffari, luby, metivier, ArbMisConfig};
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use rand::SeedableRng;

fn main() {
    let n = 10_000;
    let seeds = [1u64, 2, 3];
    let families = [
        GraphFamily::RandomTree,
        GraphFamily::Caterpillar { legs: 4 },
        GraphFamily::ForestUnion { alpha: 2 },
        GraphFamily::Apollonian,
        GraphFamily::KTree { k: 3 },
        GraphFamily::BarabasiAlbert { m: 2 },
        GraphFamily::GnpAvgDegree { d: 8.0 },
    ];

    println!(
        "CONGEST rounds to a complete MIS, n = {n}, mean over {} seeds",
        seeds.len()
    );
    println!(
        "{:>18} {:>3} {:>8} {:>8} {:>10} {:>10}",
        "family", "α", "luby", "metivier", "ghaffari", "arbmis"
    );
    for fam in families {
        let alpha = fam.arboricity_bound().unwrap_or(4);
        let spec = GraphSpec::new(fam, n);
        let mut sums = [0u64; 4];
        for &seed in &seeds {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let g = spec.generate(&mut rng);
            let runs = [
                luby::run(&g, seed).rounds,
                metivier::run(&g, seed).rounds,
                ghaffari::run(&g, seed).rounds,
                {
                    let out = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
                    check_mis(&g, &out.in_mis).expect("arbmis output invalid");
                    out.rounds
                },
            ];
            for (s, r) in sums.iter_mut().zip(runs) {
                *s += r;
            }
        }
        let k = seeds.len() as u64;
        println!(
            "{:>18} {:>3} {:>8} {:>8} {:>10} {:>10}",
            fam.label(),
            alpha,
            sums[0] / k,
            sums[1] / k,
            sums[2] / k,
            sums[3] / k
        );
    }
    println!("\n(ArbMIS pays a big oblivious-schedule constant in its shattering phase;");
    println!(" its payoff is the n-independent schedule — see EXPERIMENTS.md E8/E9.)");
}
