#![warn(missing_docs)]
//! # arbmis — distributed MIS on bounded-arboricity graphs
//!
//! A production-quality reproduction of
//!
//! > Sriram V. Pemmaraju and Talal Riaz, *Brief Announcement: Using Read-k
//! > Inequalities to Analyze a Distributed MIS Algorithm*, PODC 2016
//! > (full version arXiv:1605.06486).
//!
//! The workspace implements, from scratch:
//!
//! * the **shattering MIS algorithm** `BoundedArbIndependentSet`
//!   (Algorithm 1) and the full **`ArbMIS`** pipeline (Algorithm 2) for
//!   graphs of arboricity α, in `O(poly(α)·√(log n)·log log n)` CONGEST
//!   rounds;
//! * the **read-k inequality toolkit** (Gavinsky–Lovett–Saks–Srinivasan
//!   bounds) the paper's analysis is built on, with Monte-Carlo
//!   verification of the paper's three probabilistic events;
//! * every **substrate**: a CSR graph library with bounded-arboricity
//!   workload generators, degeneracy orientations and forest
//!   decompositions; a synchronous **CONGEST simulator** with per-message
//!   bit accounting; Cole–Vishkin deterministic coloring; the
//!   Barenboim–Elkin H-partition;
//! * **baselines**: Luby's algorithm, the Métivier et al. priority
//!   algorithm, and Ghaffari's SODA 2016 algorithm.
//!
//! This facade crate re-exports the six member crates under stable
//! names.
//!
//! ## Quickstart
//!
//! ```
//! use arbmis::core::{arb_mis, ArbMisConfig};
//! use arbmis::graph::gen;
//! use rand::SeedableRng;
//!
//! // A random planar network (arboricity ≤ 3).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let g = gen::apollonian(1_000, &mut rng);
//!
//! let outcome = arb_mis(&g, &ArbMisConfig::new(3, 7));
//! assert!(arbmis::core::check_mis(&g, &outcome.in_mis).is_ok());
//! println!("MIS of {} nodes in {} CONGEST rounds", outcome.mis_size(), outcome.rounds);
//! ```

/// Graph substrate: CSR graphs, generators, orientations, arboricity,
/// forest decompositions (re-export of `arbmis-graph`).
pub use arbmis_graph as graph;

/// Deterministic observability: recorders, spans, histograms, and the
/// JSONL/Prometheus sinks (re-export of `arbmis-obs`; see DESIGN.md §8).
pub use arbmis_obs as obs;

/// Synchronous CONGEST-model simulator (re-export of `arbmis-congest`).
pub use arbmis_congest as congest;

/// Read-k families, inequalities, and Monte-Carlo verification
/// (re-export of `arbmis-readk`).
pub use arbmis_readk as readk;

/// MIS algorithms: the shattering pipeline and baselines (re-export of
/// `arbmis-core`).
pub use arbmis_core as core;

/// Flat shared-memory MIS backends behind the `MisBackend` trait,
/// round-identical to the CONGEST simulator (re-export of `arbmis-flat`;
/// see DESIGN.md §11).
pub use arbmis_flat as flat;

/// Incremental MIS maintenance under edge/node churn with
/// locality-bounded repair (re-export of `arbmis-dynamic`; see
/// DESIGN.md §12).
pub use arbmis_dynamic as dynamic;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let g = crate::graph::gen::path(4);
        let run = crate::core::metivier::run(&g, 1);
        assert!(crate::core::check_mis(&g, &run.in_mis).is_ok());
        assert!(crate::readk::conjunction_bound(0.5, 4, 2) > 0.0);
        let _sim = crate::congest::Simulator::new(&g, 0);
        assert!(!crate::obs::Recorder::disabled().enabled());
        use crate::flat::{FlatAlgo, FlatBackend, MisBackend};
        let mut b = FlatBackend::new(&g, 1, FlatAlgo::Metivier);
        b.run(1_000).unwrap();
        assert_eq!(b.mis(), &run.in_mis[..]);
        let mut d = crate::dynamic::DynamicMis::new(g, 1);
        d.apply(&[crate::dynamic::Update::InsertNode(vec![0])]);
        assert!(d.is_valid_mis());
    }
}
