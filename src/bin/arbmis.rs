//! `arbmis` — command-line driver for the library.
//!
//! ```sh
//! # Generate a workload and compute an MIS with a chosen algorithm:
//! arbmis run --family apollonian --n 10000 --algo arbmis --alpha 3 --seed 7
//!
//! # Or load a graph from an edge-list file:
//! arbmis run --input graph.txt --algo metivier
//!
//! # Inspect a graph:
//! arbmis stats --family ba3 --n 5000
//!
//! # Generate and save a workload:
//! arbmis gen --family ktree2 --n 1000 --output k.txt
//! ```

use arbmis::core::{arb_mis, check_mis, ghaffari, greedy, luby, metivier, tree_mis, ArbMisConfig};
use arbmis::flat::{CongestBackend, FlatAlgo, FlatBackend, MisBackend};
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use arbmis::graph::stats::GraphStats;
use arbmis::graph::{arboricity, io, Graph};
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  arbmis run   (--input FILE | --family NAME --n N) --algo ALGO [--alpha A] [--seed S] [--obs]
               [--backend fast|congest|flat]
  arbmis stats (--input FILE | --family NAME --n N) [--seed S]
  arbmis gen   --family NAME --n N --output FILE [--seed S]

algorithms: greedy luby metivier ghaffari treemis arbmis
families:   tree caterpillar4 forests2 forests3 ktree2 ktree3 apollonian
            sp ba2 ba3 plc3 gnp8 grid geometric cliquering6

--obs attaches the observability recorder and prints a per-phase
round/time table after the run (results are unchanged; DESIGN.md §8).

--backend picks the execution engine for luby/metivier: the analytic
fast path (default), the CONGEST message-passing simulator, or the flat
shared-memory backend. All three produce the same MIS; the engines
report one extra round (the final all-halt round the fast path's
counting convention omits; DESIGN.md §11)."
    );
    ExitCode::from(2)
}

fn family_by_name(name: &str) -> Option<GraphFamily> {
    Some(match name {
        "tree" => GraphFamily::RandomTree,
        "caterpillar4" => GraphFamily::Caterpillar { legs: 4 },
        "forests2" => GraphFamily::ForestUnion { alpha: 2 },
        "forests3" => GraphFamily::ForestUnion { alpha: 3 },
        "ktree2" => GraphFamily::KTree { k: 2 },
        "ktree3" => GraphFamily::KTree { k: 3 },
        "apollonian" => GraphFamily::Apollonian,
        "sp" => GraphFamily::SeriesParallel,
        "ba2" => GraphFamily::BarabasiAlbert { m: 2 },
        "ba3" => GraphFamily::BarabasiAlbert { m: 3 },
        "plc3" => GraphFamily::PowerlawCluster { m: 3, p: 0.6 },
        "gnp8" => GraphFamily::GnpAvgDegree { d: 8.0 },
        "grid" => GraphFamily::Grid,
        "geometric" => GraphFamily::Geometric { radius: 0.02 },
        "cliquering6" => GraphFamily::RingOfCliques { k: 6 },
        _ => return None,
    })
}

/// Boolean flags take no value; everything else is `--key value`.
const BOOLEAN_FLAGS: &[&str] = &["obs"];

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--")?;
        if BOOLEAN_FLAGS.contains(&key) {
            map.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it.next()?;
        map.insert(key.to_string(), value.clone());
    }
    Some(map)
}

fn load_graph(flags: &HashMap<String, String>) -> Result<Graph, String> {
    if let Some(path) = flags.get("input") {
        return io::read_file(path).map_err(|e| format!("reading {path}: {e}"));
    }
    let family = flags
        .get("family")
        .ok_or("need --input FILE or --family NAME")?;
    let fam = family_by_name(family).ok_or_else(|| format!("unknown family {family:?}"))?;
    let n: usize = flags
        .get("n")
        .ok_or("need --n with --family")?
        .parse()
        .map_err(|_| "bad --n".to_string())?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Ok(GraphSpec::new(fam, n).generate(&mut rng))
}

/// Renders the `--obs` table: one row per completed phase span (rounds
/// taken from the span's `rounds` point event, wall time from the span
/// itself), followed by the recorded counters.
fn print_obs_table(snap: &arbmis::obs::Snapshot) {
    use arbmis::obs::Event;
    let mut rounds_by_path: HashMap<&str, u64> = HashMap::new();
    for e in &snap.events {
        if let Event::Point {
            path, name, value, ..
        } = e
        {
            if name == "rounds" {
                rounds_by_path.insert(path, *value);
            }
        }
    }
    println!("{:<42} {:>10} {:>12}", "phase", "rounds", "time");
    for (path, wall_ns) in snap.span_durations() {
        let rounds = rounds_by_path
            .get(path.as_str())
            .map_or_else(|| "-".to_string(), u64::to_string);
        let time = format!("{:.3}ms", wall_ns as f64 / 1e6);
        println!("{path:<42} {rounds:>10} {time:>12}");
    }
    for (name, v) in &snap.counters {
        println!("{name} = {v}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(flags) = parse_flags(rest) else {
        return usage();
    };
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(1);

    match cmd.as_str() {
        "run" => {
            let recorder = if flags.contains_key("obs") {
                let rec = arbmis::obs::Recorder::new();
                arbmis::obs::set_global(rec.clone());
                Some(rec)
            } else {
                None
            };
            let g = match load_graph(&flags) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let algo = flags.get("algo").map(String::as_str).unwrap_or("arbmis");
            let alpha: usize = flags
                .get("alpha")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| arboricity::degeneracy(&g).max(1));
            if alpha == 0 {
                eprintln!("error: --alpha must be >= 1");
                return ExitCode::FAILURE;
            }
            if algo == "treemis" && !arbmis::graph::traversal::is_forest(&g) {
                eprintln!(
                    "error: treemis requires a forest; this graph has a cycle (use --algo arbmis)"
                );
                return ExitCode::FAILURE;
            }
            let backend = flags.get("backend").map(String::as_str).unwrap_or("fast");
            if !matches!(backend, "fast" | "congest" | "flat") {
                eprintln!("unknown backend {backend:?} (expected fast, congest, or flat)");
                return usage();
            }
            if backend != "fast" && !matches!(algo, "luby" | "metivier") {
                eprintln!("--backend {backend} only supports --algo luby or metivier");
                return ExitCode::FAILURE;
            }
            let (in_mis, rounds) = match algo {
                "greedy" => (greedy::greedy_mis(&g), 0),
                "luby" | "metivier" if backend != "fast" => {
                    let flat_algo = if algo == "luby" {
                        FlatAlgo::Luby
                    } else {
                        FlatAlgo::Metivier
                    };
                    let max_rounds = 100_000;
                    let run = if backend == "flat" {
                        let mut b = FlatBackend::new(&g, seed, flat_algo);
                        match b.run(max_rounds) {
                            Ok(r) => (b.mis().to_vec(), r.rounds),
                            Err(e) => {
                                eprintln!("error: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    } else {
                        let mut b = CongestBackend::new(&g, seed, flat_algo);
                        match b.run(max_rounds) {
                            Ok(r) => (b.mis().to_vec(), r.rounds),
                            Err(e) => {
                                eprintln!("error: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    };
                    run
                }
                "luby" => {
                    let r = luby::run(&g, seed);
                    (r.in_mis, r.rounds)
                }
                "metivier" => {
                    let r = metivier::run(&g, seed);
                    (r.in_mis, r.rounds)
                }
                "ghaffari" => {
                    let r = ghaffari::run(&g, seed);
                    (r.in_mis, r.rounds)
                }
                "treemis" => {
                    let r = tree_mis::tree_mis(&g, seed);
                    (r.in_mis, r.rounds)
                }
                "arbmis" => {
                    let r = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
                    println!("phases: {:?}", r.phases);
                    (r.in_mis, r.rounds)
                }
                other => {
                    eprintln!("unknown algorithm {other:?}");
                    return usage();
                }
            };
            if let Some(rec) = &recorder {
                print_obs_table(&rec.snapshot());
            }
            match check_mis(&g, &in_mis) {
                Ok(()) => {
                    let size = in_mis.iter().filter(|&&b| b).count();
                    println!("{algo} on {g}: MIS size {size}, {rounds} CONGEST rounds, verified ✓");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("OUTPUT IS NOT AN MIS: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let g = match load_graph(&flags) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", GraphStats::compute(&g));
            ExitCode::SUCCESS
        }
        "gen" => {
            let g = match load_graph(&flags) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(out) = flags.get("output") else {
                eprintln!("gen needs --output FILE");
                return usage();
            };
            if let Err(e) = io::write_file(&g, out) {
                eprintln!("writing {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {g} to {out}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
