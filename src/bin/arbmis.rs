//! `arbmis` — command-line driver for the library.
//!
//! ```sh
//! # Generate a workload and compute an MIS with a chosen algorithm:
//! arbmis run --family apollonian --n 10000 --algo arbmis --alpha 3 --seed 7
//!
//! # Or load a graph from an edge-list file:
//! arbmis run --input graph.txt --algo metivier
//!
//! # Inspect a graph:
//! arbmis stats --family ba3 --n 5000
//!
//! # Generate and save a workload:
//! arbmis gen --family ktree2 --n 1000 --output k.txt
//! ```

use arbmis::core::{arb_mis, check_mis, ghaffari, greedy, luby, metivier, tree_mis, ArbMisConfig};
use arbmis::flat::{CongestBackend, FlatAlgo, FlatBackend, MisBackend, NodeOrder, ReplayArtifact};
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use arbmis::graph::stats::GraphStats;
use arbmis::graph::{arboricity, io, Graph};
use arbmis_bench::churn;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  arbmis run    (--input FILE | --family NAME --n N) --algo ALGO [--alpha A] [--seed S] [--obs]
                [--backend fast|congest|flat] [--order identity|degree|bfs] [--flat-threads N]
                [--flight] [--flight-out FILE] [--trace-out FILE] [--perfetto-out FILE]
  arbmis stats  (--input FILE | --family NAME --n N) [--seed S]
  arbmis gen    --family NAME --n N --output FILE [--seed S]
  arbmis replay --input ARTIFACT.json
  arbmis churn  [--workload NAME] [--n N] [--seed S] [--batches B] [--batch-size K]
                [--verify] [--obs] [--flight] [--flight-out FILE]
  arbmis obs report --input TRACE.jsonl
  arbmis obs serve  [--addr HOST:PORT] [--input TRACE.jsonl]

algorithms: greedy luby metivier ghaffari treemis arbmis
families:   tree caterpillar4 forests2 forests3 ktree2 ktree3 apollonian
            sp ba2 ba3 plc3 gnp8 grid geometric cliquering6

--obs attaches the observability recorder and prints a per-phase
round/time table after the run (results are unchanged; DESIGN.md §8).
--trace-out / --perfetto-out (need --obs) save the run's event log as
JSONL / as a Chrome trace-event file loadable in Perfetto.

--flight attaches a bounded flight recorder (last 4096 rounds) that is
dumped to stderr on panic or backend failure; --flight-out saves it as
JSONL after the run.

--backend picks the execution engine for luby/metivier: the analytic
fast path (default), the CONGEST message-passing simulator, or the flat
shared-memory backend. All three produce the same MIS; the engines
report one extra round (the final all-halt round the fast path's
counting convention omits; DESIGN.md §11).

--order relabels the flat backend's internal node layout (cache
locality); --flat-threads N runs its sweeps on N worker threads. Both
are execution details: the transcript — joiners, rounds, the MIS — is
byte-identical for every order and thread count (DESIGN.md §13).

replay re-runs a divergence artifact (see DESIGN.md §8) and reports the
first divergent round; obs report renders a saved trace; obs serve
exposes /metrics, /trace.json, and /flight.jsonl over HTTP.

churn plays an edit script (workloads: localized uniform flash hub all;
default all) through the incremental maintenance layer and reports
locality-bounded repair against full recompute per batch; --verify
audits the MIS after every batch (DESIGN.md §12)."
    );
    ExitCode::from(2)
}

fn family_by_name(name: &str) -> Option<GraphFamily> {
    Some(match name {
        "tree" => GraphFamily::RandomTree,
        "caterpillar4" => GraphFamily::Caterpillar { legs: 4 },
        "forests2" => GraphFamily::ForestUnion { alpha: 2 },
        "forests3" => GraphFamily::ForestUnion { alpha: 3 },
        "ktree2" => GraphFamily::KTree { k: 2 },
        "ktree3" => GraphFamily::KTree { k: 3 },
        "apollonian" => GraphFamily::Apollonian,
        "sp" => GraphFamily::SeriesParallel,
        "ba2" => GraphFamily::BarabasiAlbert { m: 2 },
        "ba3" => GraphFamily::BarabasiAlbert { m: 3 },
        "plc3" => GraphFamily::PowerlawCluster { m: 3, p: 0.6 },
        "gnp8" => GraphFamily::GnpAvgDegree { d: 8.0 },
        "grid" => GraphFamily::Grid,
        "geometric" => GraphFamily::Geometric { radius: 0.02 },
        "cliquering6" => GraphFamily::RingOfCliques { k: 6 },
        _ => return None,
    })
}

/// Boolean flags take no value; everything else is `--key value`.
const BOOLEAN_FLAGS: &[&str] = &["obs", "flight", "verify"];

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--")?;
        if BOOLEAN_FLAGS.contains(&key) {
            map.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it.next()?;
        map.insert(key.to_string(), value.clone());
    }
    Some(map)
}

fn load_graph(flags: &HashMap<String, String>) -> Result<Graph, String> {
    if let Some(path) = flags.get("input") {
        return io::read_file(path).map_err(|e| format!("reading {path}: {e}"));
    }
    let family = flags
        .get("family")
        .ok_or("need --input FILE or --family NAME")?;
    let fam = family_by_name(family).ok_or_else(|| format!("unknown family {family:?}"))?;
    let n: usize = flags
        .get("n")
        .ok_or("need --n with --family")?
        .parse()
        .map_err(|_| "bad --n".to_string())?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Ok(GraphSpec::new(fam, n).generate(&mut rng))
}

/// Renders the `--obs` table (phase spans, counters, gauges, and
/// histogram percentiles) via the shared `obs::report` renderer — the
/// same output `arbmis obs report` produces from a saved trace.
fn print_obs_table(snap: &arbmis::obs::Snapshot) {
    print!("{}", arbmis::obs::report::render(snap));
}

fn read_file_or_die(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: reading {path}: {e}");
        ExitCode::FAILURE
    })
}

fn write_file_or_die(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("error: writing {path}: {e}");
        ExitCode::FAILURE
    })
}

/// `arbmis replay --input ARTIFACT.json`: re-run a divergence artifact
/// and print the deterministic replay report.
fn cmd_replay(flags: &HashMap<String, String>) -> ExitCode {
    let Some(path) = flags.get("input") else {
        eprintln!("replay needs --input ARTIFACT.json");
        return usage();
    };
    let text = match read_file_or_die(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let artifact = match ReplayArtifact::from_json(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match artifact.replay() {
        Ok(report) => {
            print!("{}", artifact.render(&report));
            if report.matches_expected == Some(false) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `arbmis churn`: play churn edit scripts through the incremental
/// maintenance layer, comparing locality-bounded repair against a full
/// re-solve after every batch.
fn cmd_churn(flags: &HashMap<String, String>, seed: u64) -> ExitCode {
    let n: usize = flags.get("n").and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let batches: usize = flags
        .get("batches")
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let batch_size: usize = flags
        .get("batch-size")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let verify = flags.contains_key("verify");
    let workload = flags.get("workload").map(String::as_str).unwrap_or("all");
    let scripts = match workload {
        "all" => churn::standard_suite(n, seed),
        "localized" => vec![churn::localized_churn(n, batches, batch_size, seed)],
        "uniform" => vec![churn::uniform_mix(n, batches, batch_size, seed)],
        "flash" => vec![churn::flash_crowd(
            n,
            batches,
            batch_size.max(1) / 4 + 1,
            seed,
        )],
        "hub" => vec![churn::hub_churn(n, batches, (n / 4).clamp(2, 64), seed)],
        other => {
            eprintln!(
                "unknown workload {other:?} (expected localized, uniform, flash, hub, or all)"
            );
            return usage();
        }
    };
    println!(
        "{:<16} {:>8} {:>8} {:>12} {:>11} {:>10} {:>9} {:>8}  valid",
        "workload",
        "batches",
        "updates",
        "mean region",
        "max region",
        "repair ms",
        "full ms",
        "speedup"
    );
    let mut all_valid = true;
    for script in &scripts {
        let r = churn::run_script(script, seed, verify);
        all_valid &= r.valid;
        println!(
            "{:<16} {:>8} {:>8} {:>12.1} {:>11} {:>10.2} {:>9.2} {:>7.1}x  {}",
            r.name,
            r.batches,
            r.updates,
            r.mean_region,
            r.max_region,
            r.repair_ns as f64 / 1e6,
            r.full_ns as f64 / 1e6,
            r.speedup,
            if r.valid { "✓" } else { "INVALID" },
        );
    }
    if all_valid {
        ExitCode::SUCCESS
    } else {
        eprintln!("OUTPUT IS NOT AN MIS on at least one workload");
        ExitCode::FAILURE
    }
}

/// `arbmis obs report|serve`: trace tooling over saved or live data.
fn cmd_obs(rest: &[String]) -> ExitCode {
    let Some((sub, rest)) = rest.split_first() else {
        eprintln!("obs needs a subcommand: report or serve");
        return usage();
    };
    let Some(flags) = parse_flags(rest) else {
        return usage();
    };
    match sub.as_str() {
        "report" => {
            let Some(path) = flags.get("input") else {
                eprintln!("obs report needs --input TRACE.jsonl");
                return usage();
            };
            let text = match read_file_or_die(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match arbmis::obs::report::parse_jsonl(&text) {
                Ok(snap) => {
                    print!("{}", arbmis::obs::report::render(&snap));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "serve" => {
            let addr = flags
                .get("addr")
                .map_or("127.0.0.1:9184", String::as_str)
                .to_string();
            let server = if let Some(path) = flags.get("input") {
                let text = match read_file_or_die(path) {
                    Ok(t) => t,
                    Err(code) => return code,
                };
                match arbmis::obs::report::parse_jsonl(&text) {
                    Ok(snap) => arbmis::obs::serve::Server::bind(
                        addr.as_str(),
                        Box::new(move || snap.clone()),
                    ),
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                arbmis::obs::serve::Server::bind_recorder(addr.as_str(), arbmis::obs::global())
            };
            match server {
                Ok(server) => {
                    let bound = server
                        .local_addr()
                        .map_or_else(|_| addr.clone(), |a| a.to_string());
                    eprintln!(
                        "serving /metrics /trace.json /flight.jsonl /healthz on http://{bound}"
                    );
                    server.serve_forever()
                }
                Err(e) => {
                    eprintln!("error: binding {addr}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("unknown obs subcommand {other:?} (expected report or serve)");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    if cmd == "obs" {
        return cmd_obs(rest);
    }
    let Some(flags) = parse_flags(rest) else {
        return usage();
    };
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(1);

    match cmd.as_str() {
        "replay" => cmd_replay(&flags),
        "churn" => {
            let recorder = if flags.contains_key("obs") {
                let rec = arbmis::obs::Recorder::new();
                arbmis::obs::set_global(rec.clone());
                Some(rec)
            } else {
                None
            };
            let flight = if flags.contains_key("flight") || flags.contains_key("flight-out") {
                let f = arbmis::obs::FlightRecorder::bounded(4096);
                arbmis::obs::set_global_flight(f.clone());
                Some(f)
            } else {
                None
            };
            let code = cmd_churn(&flags, seed);
            if let Some(rec) = &recorder {
                print_obs_table(&rec.snapshot());
            }
            if let Some(f) = &flight {
                if let Some(path) = flags.get("flight-out") {
                    if let Err(code) = write_file_or_die(path, &f.to_jsonl()) {
                        return code;
                    }
                }
            }
            code
        }
        "run" => {
            let recorder = if flags.contains_key("obs") {
                let rec = arbmis::obs::Recorder::new();
                arbmis::obs::set_global(rec.clone());
                Some(rec)
            } else {
                None
            };
            if recorder.is_none()
                && (flags.contains_key("trace-out") || flags.contains_key("perfetto-out"))
            {
                eprintln!("error: --trace-out / --perfetto-out need --obs");
                return ExitCode::FAILURE;
            }
            let flight = if flags.contains_key("flight") || flags.contains_key("flight-out") {
                let f = arbmis::obs::FlightRecorder::bounded(4096);
                arbmis::obs::set_global_flight(f.clone());
                arbmis::obs::install_flight_panic_hook();
                Some(f)
            } else {
                None
            };
            let g = match load_graph(&flags) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let algo = flags.get("algo").map(String::as_str).unwrap_or("arbmis");
            let alpha: usize = flags
                .get("alpha")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| arboricity::degeneracy(&g).max(1));
            if alpha == 0 {
                eprintln!("error: --alpha must be >= 1");
                return ExitCode::FAILURE;
            }
            if algo == "treemis" && !arbmis::graph::traversal::is_forest(&g) {
                eprintln!(
                    "error: treemis requires a forest; this graph has a cycle (use --algo arbmis)"
                );
                return ExitCode::FAILURE;
            }
            let backend = flags.get("backend").map(String::as_str).unwrap_or("fast");
            if !matches!(backend, "fast" | "congest" | "flat") {
                eprintln!("unknown backend {backend:?} (expected fast, congest, or flat)");
                return usage();
            }
            if backend != "fast" && !matches!(algo, "luby" | "metivier") {
                eprintln!("--backend {backend} only supports --algo luby or metivier");
                return ExitCode::FAILURE;
            }
            let order = match flags.get("order") {
                None => NodeOrder::Identity,
                Some(s) => match NodeOrder::parse(s) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let flat_threads: usize = match flags.get("flat-threads") {
                None => 1,
                Some(s) => match s.parse() {
                    Ok(t) if t >= 1 => t,
                    _ => {
                        eprintln!("--flat-threads must be an integer >= 1");
                        return ExitCode::FAILURE;
                    }
                },
            };
            if (flags.contains_key("order") || flags.contains_key("flat-threads"))
                && backend != "flat"
            {
                eprintln!("--order / --flat-threads need --backend flat");
                return ExitCode::FAILURE;
            }
            let (in_mis, rounds) = match algo {
                "greedy" => (greedy::greedy_mis(&g), 0),
                "luby" | "metivier" if backend != "fast" => {
                    let flat_algo = if algo == "luby" {
                        FlatAlgo::Luby
                    } else {
                        FlatAlgo::Metivier
                    };
                    let max_rounds = 100_000;
                    // Both engine paths report under the same span name so
                    // `--backend flat --obs` and `--backend congest --obs`
                    // produce directly comparable phase tables.
                    let rec = arbmis::obs::global();
                    let span = rec.span(&format!("backend/{algo}"));
                    let result = if backend == "flat" {
                        let mut b = FlatBackend::new(&g, seed, flat_algo)
                            .with_order(order)
                            .with_threads(flat_threads);
                        b.run(max_rounds).map(|r| (b.mis().to_bools(), r.rounds))
                    } else {
                        let mut b = CongestBackend::new(&g, seed, flat_algo);
                        b.run(max_rounds).map(|r| (b.mis().to_bools(), r.rounds))
                    };
                    match result {
                        Ok((mis, rounds)) => {
                            rec.point("rounds", rounds);
                            drop(span);
                            (mis, rounds)
                        }
                        Err(e) => {
                            drop(span);
                            if let Some(f) = &flight {
                                eprintln!("--- flight recorder dump (last {} rounds) ---", f.len());
                                let _ = f.dump_to(&mut std::io::stderr().lock());
                                eprintln!("--- end flight recorder dump ---");
                            }
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                "luby" => {
                    let r = luby::run(&g, seed);
                    (r.in_mis, r.rounds)
                }
                "metivier" => {
                    let r = metivier::run(&g, seed);
                    (r.in_mis, r.rounds)
                }
                "ghaffari" => {
                    let r = ghaffari::run(&g, seed);
                    (r.in_mis, r.rounds)
                }
                "treemis" => {
                    let r = tree_mis::tree_mis(&g, seed);
                    (r.in_mis, r.rounds)
                }
                "arbmis" => {
                    let r = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
                    println!("phases: {:?}", r.phases);
                    (r.in_mis, r.rounds)
                }
                other => {
                    eprintln!("unknown algorithm {other:?}");
                    return usage();
                }
            };
            if let Some(rec) = &recorder {
                let snap = rec.snapshot();
                print_obs_table(&snap);
                if let Some(path) = flags.get("trace-out") {
                    if let Err(code) = write_file_or_die(path, &snap.to_jsonl()) {
                        return code;
                    }
                }
                if let Some(path) = flags.get("perfetto-out") {
                    if let Err(code) = write_file_or_die(path, &snap.to_chrome_trace()) {
                        return code;
                    }
                }
            }
            if let Some(f) = &flight {
                if let Some(path) = flags.get("flight-out") {
                    if let Err(code) = write_file_or_die(path, &f.to_jsonl()) {
                        return code;
                    }
                }
            }
            match check_mis(&g, &in_mis) {
                Ok(()) => {
                    let size = in_mis.iter().filter(|&&b| b).count();
                    println!("{algo} on {g}: MIS size {size}, {rounds} CONGEST rounds, verified ✓");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("OUTPUT IS NOT AN MIS: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let g = match load_graph(&flags) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", GraphStats::compute(&g));
            ExitCode::SUCCESS
        }
        "gen" => {
            let g = match load_graph(&flags) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(out) = flags.get("output") else {
                eprintln!("gen needs --output FILE");
                return usage();
            };
            if let Err(e) = io::write_file(&g, out) {
                eprintln!("writing {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {g} to {out}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
