//! Differential oracle for the incremental MIS layer (DESIGN.md §12):
//! random edit scripts — mixed edge/node inserts and deletes on graphs
//! of ≤64 nodes — played through `DynamicMis`, asserting
//!
//! 1. **validity after every batch**: the maintained set passes the full
//!    `is_valid_mis` audit against the mutated graph on every prefix of
//!    the script, and
//! 2. **replay determinism**: replicas applying the same script — alone
//!    or four at a time on concurrent threads — produce byte-identical
//!    repair transcripts at every batch.

use arbmis::dynamic::{DynamicMis, Update};
use arbmis::graph::{Graph, GraphBuilder};
use proptest::prelude::*;

/// An abstract edit: concretized against the evolving alive set, so any
/// random triple becomes a structurally valid update (or is dropped).
type RawOp = (u8, u16, u16);

/// Strategy: a base graph on `2..=n` nodes plus a stream of raw edits.
fn script_inputs(
    max_n: usize,
    max_ops: usize,
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<RawOp>)> {
    (2..=max_n).prop_flat_map(move |n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..3 * n),
            proptest::collection::vec((0u8..4, 0u16..=u16::MAX, 0u16..=u16::MAX), 1..max_ops),
        )
    })
}

fn build_base(n: usize, pairs: &[(usize, usize)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in pairs {
        b.try_add_edge(u, v);
    }
    b.build()
}

/// Concretizes raw edits into batches of valid updates, tracking the
/// alive set exactly as `DynamicMis` will evolve it. Pure function of
/// its inputs — every replica derives the identical script.
fn concretize(base: &Graph, raw: &[RawOp], batch_size: usize) -> Vec<Vec<Update>> {
    let mut alive: Vec<usize> = (0..base.n()).collect();
    let mut next_id = base.n();
    let mut batches = Vec::new();
    let mut batch = Vec::new();
    for &(kind, x, y) in raw {
        let op = match kind {
            0 | 1 if alive.len() >= 2 => {
                let u = alive[x as usize % alive.len()];
                let v = alive[y as usize % alive.len()];
                if u == v {
                    None
                } else if kind == 0 {
                    Some(Update::InsertEdge(u, v))
                } else {
                    Some(Update::RemoveEdge(u, v))
                }
            }
            2 => {
                let want = 1 + (x as usize % 3).min(alive.len());
                let nbrs: Vec<usize> = (0..want)
                    .filter_map(|i| alive.get((y as usize + i) % alive.len().max(1)).copied())
                    .collect();
                alive.push(next_id);
                next_id += 1;
                Some(Update::InsertNode(nbrs))
            }
            3 if !alive.is_empty() => {
                let v = alive.swap_remove(x as usize % alive.len());
                Some(Update::RemoveNode(v))
            }
            _ => None,
        };
        if let Some(op) = op {
            batch.push(op);
            if batch.len() == batch_size {
                batches.push(std::mem::take(&mut batch));
            }
        }
    }
    if !batch.is_empty() {
        batches.push(batch);
    }
    batches
}

/// Plays the script on a fresh replica, auditing validity after every
/// batch; returns the per-batch repair transcripts.
fn play(base: &Graph, batches: &[Vec<Update>], seed: u64) -> Result<Vec<String>, TestCaseError> {
    let mut d = DynamicMis::new(base.clone(), seed);
    prop_assert!(d.is_valid_mis(), "initial solve invalid");
    let mut transcripts = Vec::with_capacity(batches.len());
    for (i, batch) in batches.iter().enumerate() {
        let repair = d.apply(batch);
        transcripts.push(repair.transcript());
        prop_assert!(
            d.is_valid_mis(),
            "invalid MIS after batch {i} of script: {batch:?}"
        );
    }
    Ok(transcripts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every prefix of every random edit script leaves a valid MIS.
    #[test]
    fn random_edit_scripts_stay_valid(
        inputs in script_inputs(64, 120),
        seed in 0u64..1000,
    ) {
        let (n, pairs, raw) = inputs;
        let base = build_base(n, &pairs);
        let batches = concretize(&base, &raw, 6);
        play(&base, &batches, seed)?;
    }

    /// Replicas replaying one script — serially and four concurrently —
    /// emit byte-identical repair transcripts.
    #[test]
    fn transcripts_identical_across_threads(
        inputs in script_inputs(48, 80),
        seed in 0u64..1000,
    ) {
        let (n, pairs, raw) = inputs;
        let base = build_base(n, &pairs);
        let batches = concretize(&base, &raw, 5);
        let reference = play(&base, &batches, seed)?;
        let concurrent: Vec<Result<Vec<String>, TestCaseError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| scope.spawn(|| play(&base, &batches, seed)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("replica thread panicked"))
                    .collect()
            });
        for replica in concurrent {
            prop_assert_eq!(&replica?, &reference);
        }
    }
}

/// Deterministic long-script smoke (not proptest-minimized): a fixed
/// dense script with all four update kinds, checked on every prefix.
#[test]
fn fixed_script_every_prefix_valid() {
    let base = build_base(10, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (5, 6)]);
    let raw: Vec<RawOp> = (0..200u16)
        .map(|i| {
            (
                (i % 4) as u8,
                i.wrapping_mul(31),
                i.wrapping_mul(17).wrapping_add(7),
            )
        })
        .collect();
    let batches = concretize(&base, &raw, 4);
    assert!(batches.len() > 10, "script should be long");
    let t1 = play(&base, &batches, 42).expect("script must stay valid");
    let t2 = play(&base, &batches, 42).expect("replay must stay valid");
    assert_eq!(t1, t2, "replay transcripts must match byte for byte");
}
