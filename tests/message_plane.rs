//! Broadcast-heavy stress differentials for the zero-clone message plane.
//!
//! The golden table below was captured from the pre-refactor engine (the
//! per-edge-clone, sort-every-round implementation) via
//! `cargo run -p arbmis-bench --example golden_capture`. The refactored
//! plane must reproduce every fingerprint bit-for-bit — transcript digest,
//! metrics, and final node states — serially and at every thread count.
//!
//! A separate regression test ([`inbox_delivery_is_sorted_by_sender`])
//! checks the invariant that replaced the deleted per-round sorts: inboxes
//! arrive ascending by sender id, with exactly one entry per sending
//! neighbor, for both broadcast and unicast traffic.

use arbmis::congest::{Inbox, NodeInfo, Outgoing, Parallelism, Protocol, Simulator};
use arbmis::core::protocols::{GhaffariProtocol, LubyProtocol, MetivierProtocol, MisNodeState};
use arbmis::graph::{gen, Graph, NodeId};
use rand::SeedableRng;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn fnv(mut h: u64, x: u64) -> u64 {
    h ^= x;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

fn state_fingerprint(states: &[MisNodeState]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in states {
        h = fnv(
            h,
            u64::from(s.in_mis) | u64::from(s.active) << 1 | u64::from(s.bad) << 2,
        );
    }
    h
}

/// Golden fingerprints captured from the pre-refactor engine:
/// `(name, transcript_digest, rounds, messages, bits, max_message_bits,
/// state_fingerprint)`.
const GOLDEN: [(&str, u64, u64, u64, u64, u64, u64); 4] = [
    (
        "gnp300_dense_metivier",
        0xeeedd2d6ea974fc4,
        13,
        65367,
        1824096,
        56,
        0xa05b94367449947f,
    ),
    (
        "gnp150_half_luby",
        0xed6c45a4d8d89392,
        25,
        65817,
        1228584,
        24,
        0x5a09b26c6aa2f4b6,
    ),
    (
        "star400_metivier",
        0xe7707f14baedc663,
        7,
        3579,
        101784,
        56,
        0x25727df6f0d1b694,
    ),
    (
        "star257_ghaffari",
        0x0579cdc10a85450a,
        28,
        2361,
        44072,
        24,
        0xa37543e6e117d4df,
    ),
];

fn workload(name: &str) -> (Graph, u64, u8) {
    match name {
        "gnp300_dense_metivier" => {
            let mut r = rand::rngs::StdRng::seed_from_u64(11);
            (gen::gnp(300, 0.2, &mut r), 7, 0)
        }
        "gnp150_half_luby" => {
            let mut r = rand::rngs::StdRng::seed_from_u64(12);
            (gen::gnp(150, 0.5, &mut r), 8, 1)
        }
        "star400_metivier" => (gen::star(400), 9, 0),
        "star257_ghaffari" => (gen::star(257), 10, 2),
        _ => unreachable!(),
    }
}

fn check_golden(name: &str, parallelism: Option<usize>) {
    let &(_, digest, rounds, messages, bits, max_message_bits, state_fp) = GOLDEN
        .iter()
        .find(|g| g.0 == name)
        .expect("unknown workload");
    let (g, seed, which) = workload(name);
    let sim = match parallelism {
        None => Simulator::new(&g, seed).with_parallelism(Parallelism::Serial),
        Some(t) => Simulator::new(&g, seed).with_parallelism(Parallelism::Threads(t)),
    };
    let run_traced = |sim: Simulator| match which {
        0 => match parallelism {
            None => sim.run_traced(&MetivierProtocol, 100_000),
            Some(_) => sim.run_parallel_traced(&MetivierProtocol, 100_000),
        },
        1 => match parallelism {
            None => sim.run_traced(&LubyProtocol, 100_000),
            Some(_) => sim.run_parallel_traced(&LubyProtocol, 100_000),
        },
        _ => match parallelism {
            None => sim.run_traced(&GhaffariProtocol, 100_000),
            Some(_) => sim.run_parallel_traced(&GhaffariProtocol, 100_000),
        },
    };
    let (run, t) = run_traced(sim).unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
    let mode = match parallelism {
        None => "serial".to_string(),
        Some(t) => format!("{t} threads"),
    };
    assert_eq!(t.digest(), digest, "{name} [{mode}]: transcript digest");
    assert_eq!(run.metrics.rounds, rounds, "{name} [{mode}]: rounds");
    assert_eq!(run.metrics.messages, messages, "{name} [{mode}]: messages");
    assert_eq!(run.metrics.bits, bits, "{name} [{mode}]: bits");
    assert_eq!(
        run.metrics.max_message_bits, max_message_bits,
        "{name} [{mode}]: max_message_bits"
    );
    assert_eq!(
        state_fingerprint(&run.states),
        state_fp,
        "{name} [{mode}]: state fingerprint"
    );
}

#[test]
fn golden_gnp300_dense_metivier() {
    check_golden("gnp300_dense_metivier", None);
    for t in THREADS {
        check_golden("gnp300_dense_metivier", Some(t));
    }
}

#[test]
fn golden_gnp150_half_luby() {
    check_golden("gnp150_half_luby", None);
    for t in THREADS {
        check_golden("gnp150_half_luby", Some(t));
    }
}

#[test]
fn golden_star400_metivier() {
    check_golden("star400_metivier", None);
    for t in THREADS {
        check_golden("star400_metivier", Some(t));
    }
}

#[test]
fn golden_star257_ghaffari() {
    check_golden("star257_ghaffari", None);
    for t in THREADS {
        check_golden("star257_ghaffari", Some(t));
    }
}

// --------------------------------------------------------------- ordering

/// Asserts, from inside `round()`, the invariant that replaced the deleted
/// per-round inbox sorts: entries ascend strictly by sender and cover
/// exactly the sending neighbors, and every payload is the sender's id.
///
/// Round 0: even nodes broadcast their id; odd nodes unicast their id to
/// each neighbor individually (exercising both emission paths and their
/// interleaving in one inbox). Round 1: verify and halt.
#[derive(Clone, Copy, Debug)]
struct OrderProbe;

#[derive(Clone, Debug)]
struct ProbeState {
    ok: bool,
    done: bool,
}

impl Protocol for OrderProbe {
    type State = ProbeState;
    type Msg = u64;

    fn init(&self, _node: &NodeInfo) -> ProbeState {
        ProbeState {
            ok: false,
            done: false,
        }
    }

    fn round(&self, st: &mut ProbeState, node: &NodeInfo, inbox: &Inbox<u64>) -> Outgoing<u64> {
        if node.round == 0 {
            return if node.id.is_multiple_of(2) {
                Outgoing::Broadcast(node.id as u64)
            } else {
                Outgoing::Unicast(
                    node.neighbors
                        .iter()
                        .map(|&u| (u, node.id as u64))
                        .collect(),
                )
            };
        }
        let senders: Vec<NodeId> = inbox.iter().map(|(s, _)| s).collect();
        let sorted = senders.windows(2).all(|w| w[0] < w[1]);
        let complete = senders == node.neighbors;
        let payloads_match = inbox.iter().all(|(s, &m)| m == s as u64);
        st.ok = sorted && complete && payloads_match;
        st.done = true;
        Outgoing::Halt
    }

    fn is_done(&self, st: &ProbeState) -> bool {
        st.done
    }
}

#[test]
fn inbox_delivery_is_sorted_by_sender() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let graphs = [
        gen::gnp(200, 0.1, &mut rng),
        gen::star(150),
        gen::complete(40),
    ];
    for g in &graphs {
        let serial = Simulator::new(g, 5)
            .with_parallelism(Parallelism::Serial)
            .run(&OrderProbe, 10)
            .unwrap();
        assert!(
            serial.states.iter().all(|s| s.ok),
            "serial delivery out of order on {g}"
        );
        for t in THREADS {
            let par = Simulator::new(g, 5)
                .with_parallelism(Parallelism::Threads(t))
                .run_parallel(&OrderProbe, 10)
                .unwrap();
            assert!(
                par.states.iter().all(|s| s.ok),
                "parallel delivery out of order on {g} at {t} threads"
            );
        }
    }
}
