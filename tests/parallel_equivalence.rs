//! Differential tests for the parallel round engine: for every protocol,
//! seed, and thread count, `run_parallel_traced` must be bit-identical to
//! the serial `run_traced` — transcript digests, per-message transcript
//! entries, metrics, and final node states all agree.
//!
//! This is the executable form of the determinism contract documented in
//! `arbmis::congest::parallel` (and DESIGN.md): thread count is a pure
//! wall-clock knob, never an observable.

use arbmis::congest::{Parallelism, Protocol, Simulator};
use arbmis::core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis::core::forest_decomp::HPartitionProtocol;
use arbmis::core::protocols::*;
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use rand::SeedableRng;

/// Thread counts exercised by every differential case (1 covers the
/// serial-delegation fast path).
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn graph(fam: GraphFamily, n: usize, seed: u64) -> arbmis::graph::Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    GraphSpec::new(fam, n).generate(&mut rng)
}

/// Runs `proto` serially and at every thread count in [`THREADS`],
/// asserting identical transcripts, metrics, and projected states.
fn assert_differential<P, K>(
    g: &arbmis::graph::Graph,
    seed: u64,
    proto: &P,
    max_rounds: u64,
    label: &str,
    project: impl Fn(&P::State) -> K,
) where
    P: Protocol + Sync,
    P::State: Send,
    P::Msg: Send + Sync,
    K: PartialEq + std::fmt::Debug,
{
    let (serial, t_serial) = Simulator::new(g, seed)
        .with_parallelism(Parallelism::Serial)
        .run_traced(proto, max_rounds)
        .unwrap_or_else(|e| panic!("{label}: serial run failed: {e}"));
    let serial_out: Vec<K> = serial.states.iter().map(&project).collect();
    for threads in THREADS {
        let (par, t_par) = Simulator::new(g, seed)
            .with_parallelism(Parallelism::Threads(threads))
            .run_parallel_traced(proto, max_rounds)
            .unwrap_or_else(|e| panic!("{label}: parallel run ({threads} threads) failed: {e}"));
        assert_eq!(
            t_par.digest(),
            t_serial.digest(),
            "{label}: transcript digest diverged at {threads} threads"
        );
        assert_eq!(
            t_par.entries(),
            t_serial.entries(),
            "{label}: transcript entries diverged at {threads} threads"
        );
        assert_eq!(
            par.metrics, serial.metrics,
            "{label}: metrics diverged at {threads} threads"
        );
        let par_out: Vec<K> = par.states.iter().map(&project).collect();
        assert_eq!(
            par_out, serial_out,
            "{label}: node states diverged at {threads} threads"
        );
    }
}

#[test]
fn metivier_parallel_differential() {
    for (fam, n) in [
        (GraphFamily::RandomTree, 150),
        (GraphFamily::GnpAvgDegree { d: 5.0 }, 150),
    ] {
        let g = graph(fam, n, 31);
        for seed in 0..3 {
            assert_differential(&g, seed, &MetivierProtocol, 50_000, "metivier", |s| {
                (s.in_mis, s.active)
            });
        }
    }
}

#[test]
fn luby_parallel_differential() {
    for (fam, n) in [
        (GraphFamily::ForestUnion { alpha: 2 }, 150),
        (GraphFamily::BarabasiAlbert { m: 2 }, 150),
    ] {
        let g = graph(fam, n, 32);
        for seed in 0..3 {
            assert_differential(&g, seed, &LubyProtocol, 50_000, "luby", |s| {
                (s.in_mis, s.active)
            });
        }
    }
}

#[test]
fn ghaffari_parallel_differential() {
    let g = graph(GraphFamily::GnpAvgDegree { d: 6.0 }, 120, 33);
    for seed in 0..3 {
        assert_differential(&g, seed, &GhaffariProtocol, 100_000, "ghaffari", |s| {
            (s.in_mis, s.active)
        });
    }
}

#[test]
fn bounded_arb_parallel_differential() {
    for (fam, alpha) in [
        (GraphFamily::ForestUnion { alpha: 2 }, 2),
        (GraphFamily::Apollonian, 3),
    ] {
        let g = graph(fam, 150, 34);
        for seed in 0..2 {
            let cfg = BoundedArbConfig::new(alpha, seed);
            let fast = bounded_arb_independent_set(&g, &cfg);
            let proto = BoundedArbProtocol {
                params: fast.params,
                rho_cutoff: true,
            };
            assert_differential(
                &g,
                seed,
                &proto,
                proto.total_rounds() + 2,
                "bounded_arb",
                |s| (s.in_mis, s.bad, s.active),
            );
        }
    }
}

#[test]
fn h_partition_parallel_differential() {
    let g = graph(GraphFamily::Apollonian, 200, 35);
    let proto = HPartitionProtocol { threshold: 9 };
    for seed in 0..2 {
        assert_differential(&g, seed, &proto, 10_000, "h_partition", |s| s.level);
    }
}

/// The parallel engine must still reproduce the fast paths bit-for-bit:
/// (fast path == serial twin) ∧ (serial twin == parallel twin) composed
/// end-to-end, at the highest thread count.
#[test]
fn parallel_twins_match_fast_paths() {
    use arbmis::core::{luby, metivier};

    let g = graph(GraphFamily::GnpAvgDegree { d: 5.0 }, 150, 36);
    for seed in 0..2 {
        let sim = Simulator::new(&g, seed).with_parallelism(Parallelism::Threads(8));
        let fast = metivier::run(&g, seed);
        let run = sim.run_parallel(&MetivierProtocol, 50_000).unwrap();
        let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
        assert_eq!(mis, fast.in_mis, "metivier seed {seed}");
        assert!(arbmis::core::check_mis(&g, &mis).is_ok());

        let fast = luby::run(&g, seed);
        let run = sim.run_parallel(&LubyProtocol, 50_000).unwrap();
        let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
        assert_eq!(mis, fast.in_mis, "luby seed {seed}");
        assert!(arbmis::core::check_mis(&g, &mis).is_ok());
    }
}

/// DESIGN.md §8 rule 1, the traced-vs-untraced differential: attaching an
/// observability recorder (timing, deterministic, or none) must leave
/// transcript digests, metrics, and states bit-identical, serially and at
/// every thread count.
#[test]
fn recorder_never_perturbs_transcripts_or_metrics() {
    use arbmis::obs::Recorder;

    let g = graph(GraphFamily::GnpAvgDegree { d: 5.0 }, 150, 38);
    let (baseline, t_baseline) = Simulator::new(&g, 9)
        .with_parallelism(Parallelism::Serial)
        .run_traced(&MetivierProtocol, 50_000)
        .unwrap();
    let recorders = [
        Recorder::disabled(),
        Recorder::new(),
        Recorder::deterministic(),
    ];
    for threads in [1, 8] {
        for (i, rec) in recorders.iter().enumerate() {
            let sim = Simulator::new(&g, 9)
                .with_parallelism(Parallelism::Threads(threads))
                .with_recorder(rec.clone());
            let (run, t) = sim.run_parallel_traced(&MetivierProtocol, 50_000).unwrap();
            let label = format!("recorder #{i}, {threads} threads");
            assert_eq!(t.digest(), t_baseline.digest(), "{label}: digest");
            assert_eq!(t.entries(), t_baseline.entries(), "{label}: entries");
            assert_eq!(run.metrics, baseline.metrics, "{label}: metrics");
            assert_eq!(
                run.states.iter().map(|s| s.in_mis).collect::<Vec<_>>(),
                baseline.states.iter().map(|s| s.in_mis).collect::<Vec<_>>(),
                "{label}: states"
            );
        }
    }
}

/// DESIGN.md §8 rule 2 at the engine level: the deterministic-class
/// recorder contents (counters, round histograms) are identical between
/// the serial and parallel engines and across thread counts.
#[test]
fn recorder_contents_identical_across_engines_and_threads() {
    use arbmis::obs::Recorder;

    let g = graph(GraphFamily::BarabasiAlbert { m: 2 }, 150, 39);
    let serial_rec = Recorder::deterministic();
    Simulator::new(&g, 4)
        .with_parallelism(Parallelism::Serial)
        .with_recorder(serial_rec.clone())
        .run(&MetivierProtocol, 50_000)
        .unwrap();
    let serial_snap = serial_rec.snapshot();
    assert!(serial_snap.counter("congest_runs").is_some());
    for threads in [1, 8] {
        let rec = Recorder::deterministic();
        Simulator::new(&g, 4)
            .with_parallelism(Parallelism::Threads(threads))
            .with_recorder(rec.clone())
            .run_parallel(&MetivierProtocol, 50_000)
            .unwrap();
        let snap = rec.snapshot();
        assert_eq!(
            snap.to_prometheus(),
            serial_snap.to_prometheus(),
            "{threads} threads"
        );
        assert_eq!(snap.to_jsonl(), serial_snap.to_jsonl(), "{threads} threads");
    }
}

/// Runs `proto` with the diagnostic full scan (every non-halted node
/// steps every round) serially, then compares the default sparse
/// frontier against it — serial and at every thread count, both frontier
/// and full-scan parallel. Frontier bookkeeping is a pure scheduling
/// optimization; any divergence here means a protocol's `is_quiescent`
/// or the engines' wake rules are unsound (DESIGN.md §10).
fn assert_frontier_differential<P, K>(
    g: &arbmis::graph::Graph,
    seed: u64,
    proto: &P,
    max_rounds: u64,
    label: &str,
    project: impl Fn(&P::State) -> K,
) where
    P: Protocol + Sync,
    P::State: Send,
    P::Msg: Send + Sync,
    K: PartialEq + std::fmt::Debug,
{
    let (full, t_full) = Simulator::new(g, seed)
        .with_parallelism(Parallelism::Serial)
        .with_full_scan(true)
        .run_traced(proto, max_rounds)
        .unwrap_or_else(|e| panic!("{label}: full-scan serial run failed: {e}"));
    let full_out: Vec<K> = full.states.iter().map(&project).collect();
    let check = |tag: &str,
                 run: arbmis::congest::SimulatorRun<P::State>,
                 t: arbmis::congest::transcript::Transcript| {
        assert_eq!(t.digest(), t_full.digest(), "{label}/{tag}: digest");
        assert_eq!(t.entries(), t_full.entries(), "{label}/{tag}: entries");
        assert_eq!(run.metrics, full.metrics, "{label}/{tag}: metrics");
        let out: Vec<K> = run.states.iter().map(&project).collect();
        assert_eq!(out, full_out, "{label}/{tag}: states");
    };
    let (run, t) = Simulator::new(g, seed)
        .with_parallelism(Parallelism::Serial)
        .run_traced(proto, max_rounds)
        .unwrap_or_else(|e| panic!("{label}: frontier serial run failed: {e}"));
    check("serial-frontier", run, t);
    for threads in THREADS {
        for full_scan in [false, true] {
            let (run, t) = Simulator::new(g, seed)
                .with_parallelism(Parallelism::Threads(threads))
                .with_full_scan(full_scan)
                .run_parallel_traced(proto, max_rounds)
                .unwrap_or_else(|e| {
                    panic!("{label}: parallel ({threads}t, full_scan={full_scan}) failed: {e}")
                });
            check(&format!("{threads}t-full_scan={full_scan}"), run, t);
        }
    }
}

#[test]
fn frontier_matches_full_scan_mis_protocols() {
    let g = graph(GraphFamily::GnpAvgDegree { d: 5.0 }, 150, 41);
    for seed in 0..2 {
        assert_frontier_differential(&g, seed, &MetivierProtocol, 50_000, "metivier", |s| {
            (s.in_mis, s.active)
        });
        assert_frontier_differential(&g, seed, &LubyProtocol, 50_000, "luby", |s| {
            (s.in_mis, s.active)
        });
    }
}

#[test]
fn frontier_matches_full_scan_bounded_arb() {
    let g = graph(GraphFamily::Apollonian, 150, 42);
    for seed in 0..2 {
        let cfg = BoundedArbConfig::new(3, seed);
        let fast = bounded_arb_independent_set(&g, &cfg);
        let proto = BoundedArbProtocol {
            params: fast.params,
            rho_cutoff: true,
        };
        assert_frontier_differential(
            &g,
            seed,
            &proto,
            proto.total_rounds() + 2,
            "bounded_arb",
            |s| (s.in_mis, s.bad, s.active),
        );
    }
}

#[test]
fn frontier_matches_full_scan_h_partition() {
    // HPartition overrides `is_quiescent` (above-threshold nodes sleep),
    // so this exercises a protocol-specific quiescence predicate.
    let g = graph(GraphFamily::Apollonian, 200, 43);
    let proto = HPartitionProtocol { threshold: 9 };
    for seed in 0..2 {
        assert_frontier_differential(&g, seed, &proto, 10_000, "h_partition", |s| s.level);
    }
}

#[test]
fn frontier_matches_full_scan_converge_cast() {
    // The sharpest frontier case: a converge-cast wave on a path steps
    // exactly one node per round under the sparse frontier, ~n under the
    // full scan — yet every observable must agree.
    use arbmis::congest::algorithms::ConvergeCast;
    let n = 300;
    let g = arbmis::graph::gen::path(n);
    let parent: Vec<Option<usize>> = (0..n).map(|v| (v + 1 < n).then_some(v + 1)).collect();
    let proto = ConvergeCast::new(parent, vec![1; n]);
    for seed in 0..2 {
        assert_frontier_differential(&g, seed, &proto, n as u64 + 5, "converge_cast", |s| {
            (s.sum, s.done)
        });
    }
}

/// Degenerate graphs n ∈ {0, 1}: the serial engine, the parallel engine
/// at every thread count, and both `MisBackend` implementations must all
/// agree — the empty graph terminates in 0 rounds, and a single isolated
/// node joins at the first exit round and halts at the next announce
/// round (4 CONGEST rounds for Luby and Métivier).
#[test]
fn degenerate_graphs_agree_across_engines_and_backends() {
    use arbmis::flat::{CongestBackend, FlatAlgo, FlatBackend, MisBackend};

    for n in [0usize, 1] {
        let g = arbmis::graph::Graph::from_edges(n, &[]);
        let expect_rounds = if n == 0 { 0 } else { 4 };
        let expect_mis = vec![true; n];
        for (label, algo) in [("luby", FlatAlgo::Luby), ("metivier", FlatAlgo::Metivier)] {
            for seed in [0, 9] {
                let mut flat = FlatBackend::new(&g, seed, algo);
                let mut congest = CongestBackend::new(&g, seed, algo);
                for (tag, b) in [
                    ("flat", &mut flat as &mut dyn MisBackend),
                    ("congest", &mut congest),
                ] {
                    let run = b.run(100).unwrap();
                    assert_eq!(run.rounds, expect_rounds, "{label}/{tag} rounds at n={n}");
                    assert_eq!(b.mis(), &expect_mis[..], "{label}/{tag} MIS at n={n}");
                    assert!(b.joiners().is_empty() || n == 1, "{label}/{tag} joiners");
                }
                let sim = Simulator::new(&g, seed).with_parallelism(Parallelism::Serial);
                let serial = match algo {
                    FlatAlgo::Luby => sim.run(&LubyProtocol, 100),
                    _ => sim.run(&MetivierProtocol, 100),
                }
                .unwrap();
                assert_eq!(
                    serial.metrics.rounds, expect_rounds,
                    "{label}: serial rounds at n={n}"
                );
                for threads in THREADS {
                    let sim =
                        Simulator::new(&g, seed).with_parallelism(Parallelism::Threads(threads));
                    let par = match algo {
                        FlatAlgo::Luby => sim.run_parallel(&LubyProtocol, 100),
                        _ => sim.run_parallel(&MetivierProtocol, 100),
                    }
                    .unwrap();
                    assert_eq!(
                        par.metrics, serial.metrics,
                        "{label}: parallel metrics at n={n}, {threads} threads"
                    );
                    assert_eq!(
                        par.states.iter().map(|s| s.in_mis).collect::<Vec<_>>(),
                        expect_mis,
                        "{label}: parallel MIS at n={n}, {threads} threads"
                    );
                }
            }
        }
    }
}

/// `Parallelism::Auto` (whatever the host core count) agrees with serial
/// too — the contract holds for the default configuration, not just the
/// pinned thread counts above.
#[test]
fn auto_parallelism_matches_serial() {
    let g = graph(GraphFamily::RandomTree, 180, 37);
    let (serial, t_serial) = Simulator::new(&g, 11)
        .with_parallelism(Parallelism::Serial)
        .run_traced(&MetivierProtocol, 50_000)
        .unwrap();
    let (auto, t_auto) = Simulator::new(&g, 11)
        .with_parallelism(Parallelism::Auto)
        .run_parallel_traced(&MetivierProtocol, 50_000)
        .unwrap();
    assert_eq!(t_auto.digest(), t_serial.digest());
    assert_eq!(auto.metrics, serial.metrics);
    assert_eq!(
        auto.states.iter().map(|s| s.in_mis).collect::<Vec<_>>(),
        serial.states.iter().map(|s| s.in_mis).collect::<Vec<_>>(),
    );
}
