//! End-to-end integration: the full ArbMIS pipeline across every workload
//! family, seeds, and parameter modes.

use arbmis::core::params::ParamMode;
use arbmis::core::{arb_mis, check_mis, ArbMisConfig};
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use rand::SeedableRng;

fn families() -> Vec<(GraphFamily, usize)> {
    vec![
        (GraphFamily::Path, 1),
        (GraphFamily::Cycle, 2),
        (GraphFamily::RandomTree, 1),
        (GraphFamily::Caterpillar { legs: 3 }, 1),
        (GraphFamily::ForestUnion { alpha: 2 }, 2),
        (GraphFamily::ForestUnion { alpha: 4 }, 4),
        (GraphFamily::KTree { k: 2 }, 2),
        (GraphFamily::KTree { k: 4 }, 4),
        (GraphFamily::Apollonian, 3),
        (GraphFamily::BarabasiAlbert { m: 3 }, 3),
        (GraphFamily::GnpAvgDegree { d: 6.0 }, 5),
        (GraphFamily::Grid, 2),
        (GraphFamily::Hypercube, 6),
    ]
}

#[test]
fn arbmis_is_valid_on_every_family() {
    for (fam, alpha) in families() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let g = GraphSpec::new(fam, 1_500).generate(&mut rng);
        for seed in 0..3 {
            let out = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
            check_mis(&g, &out.in_mis).unwrap_or_else(|e| panic!("{fam} seed {seed}: {e}"));
        }
    }
}

#[test]
fn arbmis_round_counts_are_reported_consistently() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let g = GraphSpec::new(GraphFamily::Apollonian, 2_000).generate(&mut rng);
    let out = arb_mis(&g, &ArbMisConfig::new(3, 1));
    assert_eq!(out.rounds, out.phases.total());
    assert_eq!(out.phases.shattering, out.shatter.rounds);
    // Scheduled shattering rounds are a pure function of the parameters.
    let expected = out.shatter.iterations * 3 + u64::from(out.shatter.params.theta) * 2;
    assert_eq!(out.shatter.rounds, expected);
}

#[test]
fn faithful_and_practical_modes_both_valid() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let g = GraphSpec::new(GraphFamily::ForestUnion { alpha: 2 }, 800).generate(&mut rng);
    for mode in [
        ParamMode::Faithful { p: 1 },
        ParamMode::Practical { lambda_scale: 1.0 },
        ParamMode::Practical {
            lambda_scale: 0.001,
        },
    ] {
        let cfg = ArbMisConfig {
            mode,
            ..ArbMisConfig::new(2, 5)
        };
        let out = arb_mis(&g, &cfg);
        check_mis(&g, &out.in_mis).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
    }
}

#[test]
fn alpha_overestimate_is_safe() {
    // Supplying a too-large arboricity bound must not break correctness
    // (only the schedule constants change).
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let g = GraphSpec::new(GraphFamily::RandomTree, 1_000).generate(&mut rng);
    for alpha in [1usize, 2, 5] {
        let out = arb_mis(&g, &ArbMisConfig::new(alpha, 3));
        assert!(check_mis(&g, &out.in_mis).is_ok(), "alpha {alpha}");
    }
}

#[test]
fn disconnected_graphs_handled() {
    use arbmis::graph::GraphBuilder;
    // Three disjoint triangles plus isolated nodes.
    let mut b = GraphBuilder::new(12);
    for base in [0usize, 3, 6] {
        b.add_edge(base, base + 1);
        b.add_edge(base + 1, base + 2);
        b.add_edge(base + 2, base);
    }
    let g = b.build();
    let out = arb_mis(&g, &ArbMisConfig::new(2, 1));
    check_mis(&g, &out.in_mis).unwrap();
    // Exactly one node per triangle plus all isolated nodes.
    assert_eq!(out.mis_size(), 3 + 3);
}

#[test]
fn stress_many_seeds_one_graph() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let g = GraphSpec::new(GraphFamily::BarabasiAlbert { m: 2 }, 3_000).generate(&mut rng);
    for seed in 0..20 {
        let out = arb_mis(&g, &ArbMisConfig::new(2, seed));
        check_mis(&g, &out.in_mis).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
