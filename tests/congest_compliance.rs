//! CONGEST compliance: every protocol stays within the O(log n)-bit
//! message budget on every workload family, and the simulator's
//! enforcement actually fires on violations.

use arbmis::congest::Simulator;
use arbmis::core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis::core::params::ParamMode;
use arbmis::core::protocols::*;
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use rand::SeedableRng;

fn graph(fam: GraphFamily, n: usize, seed: u64) -> arbmis::graph::Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    GraphSpec::new(fam, n).generate(&mut rng)
}

#[test]
fn all_protocols_within_budget_across_families() {
    let families = [
        GraphFamily::RandomTree,
        GraphFamily::ForestUnion { alpha: 3 },
        GraphFamily::BarabasiAlbert { m: 2 },
        GraphFamily::GnpAvgDegree { d: 6.0 },
    ];
    for fam in families {
        let g = graph(fam, 400, 5);
        let m1 = Simulator::new(&g, 1)
            .run(&MetivierProtocol, 50_000)
            .unwrap()
            .metrics;
        let m2 = Simulator::new(&g, 1)
            .run(&LubyProtocol, 50_000)
            .unwrap()
            .metrics;
        let m3 = Simulator::new(&g, 1)
            .run(&GhaffariProtocol, 100_000)
            .unwrap()
            .metrics;
        for (name, m) in [("metivier", m1), ("luby", m2), ("ghaffari", m3)] {
            assert!(m.within_budget(), "{name} on {fam}: {m:?}");
            assert!(m.max_message_bits > 0);
        }
    }
}

#[test]
fn bounded_arb_protocol_within_budget() {
    let g = graph(GraphFamily::Apollonian, 300, 7);
    let cfg = BoundedArbConfig {
        mode: ParamMode::Practical { lambda_scale: 0.05 },
        ..BoundedArbConfig::new(3, 2)
    };
    let fast = bounded_arb_independent_set(&g, &cfg);
    let proto = BoundedArbProtocol {
        params: fast.params,
        rho_cutoff: true,
    };
    let run = Simulator::new(&g, 2)
        .run(&proto, proto.total_rounds() + 2)
        .unwrap();
    assert!(run.metrics.within_budget());
    // Degree announcements are the largest payloads; still O(log n).
    assert!(run.metrics.max_message_bits <= Simulator::new(&g, 2).budget_bits().unwrap() as u64);
}

#[test]
fn budget_scales_with_log_n() {
    let small = Simulator::new(&graph(GraphFamily::RandomTree, 64, 1), 0)
        .budget_bits()
        .unwrap();
    let large = Simulator::new(&graph(GraphFamily::RandomTree, 4096, 1), 0)
        .budget_bits()
        .unwrap();
    assert_eq!(small, 16 * 6);
    assert_eq!(large, 16 * 12);
}

#[test]
fn oversized_messages_rejected() {
    use arbmis::congest::prelude::*;

    #[derive(Clone, Debug)]
    struct Fat;
    impl Message for Fat {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&[0u8; 512]);
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
            if buf.len() < 512 {
                return Err(DecodeError::UnexpectedEof);
            }
            *buf = &buf[512..];
            Ok(Fat)
        }
    }
    struct FatProto;
    impl Protocol for FatProto {
        type State = ();
        type Msg = Fat;
        fn init(&self, _n: &NodeInfo) {}
        fn round(&self, _s: &mut (), _n: &NodeInfo, _i: &Inbox<Fat>) -> Outgoing<Fat> {
            Outgoing::Broadcast(Fat)
        }
        fn is_done(&self, _s: &()) -> bool {
            false
        }
    }
    let g = graph(GraphFamily::RandomTree, 64, 3);
    let err = Simulator::new(&g, 0).run(&FatProto, 10).unwrap_err();
    assert!(matches!(err, SimulatorError::BandwidthExceeded { .. }));
}

#[test]
fn message_counts_bounded_by_rounds_times_edges() {
    let g = graph(GraphFamily::ForestUnion { alpha: 2 }, 300, 9);
    let run = Simulator::new(&g, 4)
        .run(&MetivierProtocol, 50_000)
        .unwrap();
    let cap = run.metrics.rounds * 2 * g.m() as u64;
    assert!(run.metrics.messages <= cap);
}
