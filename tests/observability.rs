//! End-to-end tests of the observability layer (DESIGN.md §8): a real
//! ArbMIS run must surface every pipeline phase span and the promised
//! histograms/gauges through both sinks, the CONGEST engines must expose
//! per-round histograms and worker utilization, and attaching a recorder
//! must never perturb results.

use arbmis::congest::{Parallelism, Simulator};
use arbmis::core::arb_mis::{arb_mis_with, ArbMisConfig};
use arbmis::core::protocols::MetivierProtocol;
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use arbmis::obs::Recorder;
use rand::SeedableRng;

fn graph(fam: GraphFamily, n: usize, seed: u64) -> arbmis::graph::Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    GraphSpec::new(fam, n).generate(&mut rng)
}

/// The acceptance surface: one ArbMIS run exports every pipeline phase
/// span and the degree/joiner histograms in both JSONL and Prometheus.
#[test]
fn arbmis_run_exports_phase_spans_and_histograms() {
    use arbmis::core::params::ParamMode;

    // The bad-set machinery (forest_decomp + cole_vishkin) only runs when
    // shattering leaves a nonempty B — which Theorem 3.6 makes vanishingly
    // rare under the default schedule. Starve the schedule (Λ = 1
    // iteration per scale, the public lambda_scale ablation knob) on a
    // geometric graph, whose dense local clusters then survive a scale
    // intact and violate the Invariant: this seed deterministically
    // leaves one bad component, so every pipeline span is exercised.
    let g = graph(GraphFamily::Geometric { radius: 0.03 }, 8000, 21);
    let cfg = ArbMisConfig {
        mode: ParamMode::Practical { lambda_scale: 1e-9 },
        degree_reduction: false,
        ..ArbMisConfig::new(8, 1)
    };
    let rec = Recorder::deterministic();
    let out = arb_mis_with(&g, &cfg, &rec);
    assert!(arbmis::core::check_mis(&g, &out.in_mis).is_ok());

    let snap = rec.snapshot();
    let jsonl = snap.to_jsonl();
    let prom = snap.to_prometheus();

    assert!(!out.bad_component_sizes.is_empty());
    for span in [
        "arbmis",
        "arbmis/degree_reduction",
        "arbmis/shattering",
        "arbmis/vlo",
        "arbmis/vhi",
        "arbmis/bad_components",
        "arbmis/bad_components/forest_decomp",
        "arbmis/bad_components/cole_vishkin",
    ] {
        assert!(snap.has_span(span), "missing span {span}");
        assert!(
            jsonl.contains(&format!("\"path\":\"{span}\"")),
            "JSONL missing span {span}"
        );
    }

    // Histograms and gauges in the Prometheus exposition.
    for series in [
        "# TYPE arbmis_node_degree histogram",
        "# TYPE arbmis_scale_joiners histogram",
        "# TYPE arbmis_bad_component_size histogram",
        "# TYPE arbmis_invariant_headroom gauge",
        "# TYPE arbmis_mis_size gauge",
        "# TYPE arbmis_rounds counter",
    ] {
        assert!(prom.contains(series), "Prometheus missing {series:?}");
    }
    assert_eq!(
        snap.histogram("arbmis_node_degree").unwrap().count(),
        g.n() as u64
    );
    // Step 2(b) enforces the Invariant, so recorded headroom is ≥ 0.
    for (name, v) in &snap.gauges {
        if name.starts_with("arbmis_invariant_headroom") {
            assert!(*v >= 0.0, "{name} = {v}");
        }
    }
}

/// The CONGEST engines export per-round message/bit histograms; the
/// parallel engine additionally exports worker-utilization gauges when
/// wall-clock timing is on.
#[test]
fn congest_engines_export_round_histograms_and_worker_gauges() {
    let g = graph(GraphFamily::GnpAvgDegree { d: 5.0 }, 200, 22);
    let rec = Recorder::deterministic();
    let run = Simulator::new(&g, 7)
        .with_recorder(rec.clone())
        .run(&MetivierProtocol, 50_000)
        .unwrap();
    let snap = rec.snapshot();
    let rounds_hist = snap.histogram("congest_round_messages").unwrap();
    assert_eq!(rounds_hist.count(), run.metrics.rounds);
    assert_eq!(rounds_hist.sum(), run.metrics.messages);
    let bits_hist = snap.histogram("congest_round_bits").unwrap();
    assert_eq!(bits_hist.sum(), run.metrics.bits);
    let msg_hist = snap.histogram("congest_message_bits").unwrap();
    assert_eq!(msg_hist.count(), run.metrics.messages);
    assert_eq!(msg_hist.max(), run.metrics.max_message_bits);
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE congest_round_messages histogram"));
    assert!(prom.contains("# TYPE congest_message_bits histogram"));
    // Deterministic recorder: no timing-class series leak into the sinks.
    assert!(!prom.contains("worker_"));
    assert!(!prom.contains("_ns"));

    // Timing recorder + parallel engine: worker utilization appears.
    let rec = Recorder::new();
    Simulator::new(&g, 7)
        .with_parallelism(Parallelism::Threads(4))
        .with_recorder(rec.clone())
        .run_parallel(&MetivierProtocol, 50_000)
        .unwrap();
    let snap = rec.snapshot();
    assert!(
        snap.gauge_value("worker_chunks{worker=\"0\"}").is_some(),
        "missing worker utilization gauges: {:?}",
        snap.gauges
    );
    let prom = snap.to_prometheus();
    assert!(prom.contains("worker_chunks{worker=\"0\"}"));
    assert!(prom.contains("worker_busy_ns{worker=\"0\"}"));
    assert!(prom.contains("# TYPE congest_round_time_ns histogram"));
}

/// Observability on/off never changes a traced run: digests and metrics
/// are bit-identical at every thread count (acceptance criterion).
#[test]
fn digests_and_metrics_identical_with_observability_on_and_off() {
    let g = graph(GraphFamily::Apollonian, 250, 23);
    let (off, t_off) = Simulator::new(&g, 3)
        .run_traced(&MetivierProtocol, 50_000)
        .unwrap();
    for threads in [1, 2, 8] {
        let rec = Recorder::new();
        let sim = Simulator::new(&g, 3)
            .with_parallelism(Parallelism::Threads(threads))
            .with_recorder(rec);
        let (on, t_on) = sim.run_parallel_traced(&MetivierProtocol, 50_000).unwrap();
        assert_eq!(t_on.digest(), t_off.digest(), "threads={threads}");
        assert_eq!(on.metrics, off.metrics, "threads={threads}");
    }
}

/// The Monte-Carlo driver reports trial batches through the process-wide
/// recorder (this is the only test in the binary that touches the global;
/// every other test passes explicit recorders).
#[test]
fn montecarlo_reports_trial_batches() {
    let rec = Recorder::deterministic();
    arbmis::obs::set_global(rec.clone());
    let e = arbmis::readk::montecarlo::estimate(5_000, |t| {
        arbmis::congest::rng::draw(3, 0, t, 0).is_multiple_of(2)
    });
    arbmis::obs::set_global(Recorder::disabled());
    assert_eq!(e.trials, 5_000);
    let snap = rec.snapshot();
    assert!(snap.counter("readk_mc_trials").unwrap_or(0) >= 5_000);
    assert!(snap.histogram("readk_mc_batch_trials").is_some());
    assert!(snap.to_jsonl().contains("\"name\":\"readk_mc_batch\""));
}
