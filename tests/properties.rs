//! Property-based integration tests (proptest): algorithm correctness and
//! substrate invariants over arbitrary random graphs.

use arbmis::core::{arb_mis, check_mis, ghaffari, greedy, luby, metivier, ArbMisConfig};
use arbmis::graph::orientation::{degeneracy_ordering, Orientation};
use arbmis::graph::{arboricity, forest, gen, props, traversal, Graph};
use proptest::prelude::*;

/// Strategy: an arbitrary simple graph from a random edge list.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |pairs| {
                let mut b = arbmis::graph::GraphBuilder::new(n);
                for (u, v) in pairs {
                    b.try_add_edge(u, v);
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_graphs_are_well_formed(g in arb_graph(60, 200)) {
        prop_assert!(props::check_well_formed(&g).is_ok());
    }

    #[test]
    fn greedy_produces_mis(g in arb_graph(60, 200)) {
        prop_assert!(check_mis(&g, &greedy::greedy_mis(&g)).is_ok());
    }

    #[test]
    fn metivier_produces_mis(g in arb_graph(60, 200), seed in 0u64..1000) {
        prop_assert!(check_mis(&g, &metivier::run(&g, seed).in_mis).is_ok());
    }

    #[test]
    fn luby_produces_mis(g in arb_graph(50, 150), seed in 0u64..1000) {
        prop_assert!(check_mis(&g, &luby::run(&g, seed).in_mis).is_ok());
    }

    #[test]
    fn ghaffari_produces_mis(g in arb_graph(40, 120), seed in 0u64..1000) {
        prop_assert!(check_mis(&g, &ghaffari::run(&g, seed).in_mis).is_ok());
    }

    #[test]
    fn arbmis_produces_mis(g in arb_graph(40, 100), seed in 0u64..1000) {
        // Use a certified arboricity upper bound (degeneracy).
        let alpha = arboricity::degeneracy(&g).max(1);
        let out = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
        prop_assert!(check_mis(&g, &out.in_mis).is_ok());
    }

    #[test]
    fn degeneracy_ordering_invariants(g in arb_graph(60, 250)) {
        let ord = degeneracy_ordering(&g);
        // Every node has ≤ degeneracy later-ordered neighbors.
        for (i, &v) in ord.order.iter().enumerate() {
            let later = g.neighbors(v).iter().filter(|&&u| ord.position[u] > i).count();
            prop_assert!(later <= ord.degeneracy);
        }
        // Degeneracy is at least half the max density bound.
        prop_assert!(ord.degeneracy >= arboricity::density_lower_bound(&g).saturating_sub(1) / 2);
    }

    #[test]
    fn orientation_invariants(g in arb_graph(60, 250)) {
        let o = Orientation::by_degeneracy(&g);
        prop_assert!(o.covers(&g));
        prop_assert!(o.is_acyclic());
        prop_assert!(o.max_out_degree() <= degeneracy_ordering(&g).degeneracy);
        // Parent/child views are mutually consistent.
        for v in g.nodes() {
            for &p in o.parents(v) {
                prop_assert!(o.children(p).contains(&v));
            }
        }
    }

    #[test]
    fn forest_decomposition_invariants(g in arb_graph(50, 200)) {
        let forests = forest::forests_by_degeneracy(&g);
        let total: usize = forests.iter().map(|f| f.edge_count()).sum();
        prop_assert_eq!(total, g.m());
        for f in &forests {
            prop_assert!(f.is_acyclic());
            prop_assert!(traversal::is_forest(&f.to_graph()));
        }
    }

    #[test]
    fn components_partition_nodes(g in arb_graph(60, 200)) {
        let comps = traversal::connected_components(&g);
        let sizes = comps.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.n());
        // Adjacent nodes always share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(comps.label(u), comps.label(v));
        }
    }

    #[test]
    fn two_mis_runs_may_differ_but_both_valid(g in arb_graph(40, 120)) {
        let a = metivier::run(&g, 1).in_mis;
        let b = metivier::run(&g, 2).in_mis;
        prop_assert!(check_mis(&g, &a).is_ok());
        prop_assert!(check_mis(&g, &b).is_ok());
    }

    #[test]
    fn induced_subgraph_roundtrip(g in arb_graph(50, 150), mask_seed in 0u64..100) {
        let mask: Vec<bool> = (0..g.n())
            .map(|v| arbmis::congest::rng::draw_bool(mask_seed, v, 0, 0, 0.6))
            .collect();
        let sub = arbmis::graph::InducedSubgraph::new(&g, &mask);
        // Every subgraph edge maps to a parent edge and vice versa.
        for (a, b) in sub.graph().edges() {
            prop_assert!(g.has_edge(sub.to_parent(a), sub.to_parent(b)));
        }
        let expected: usize = g
            .edges()
            .filter(|&(u, v)| mask[u] && mask[v])
            .count();
        prop_assert_eq!(sub.graph().m(), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cole_vishkin_colors_random_forests(n in 2usize..300, seed in 0u64..50) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = gen::random_forest(n, 0.8, &mut rng);
        for f in forest::forests_by_degeneracy(&g) {
            let c = arbmis::core::cole_vishkin::cv_color_to_three(&f);
            prop_assert!(arbmis::core::cole_vishkin::is_proper_forest_coloring(&f, &c.colors));
            prop_assert!(c.colors.iter().all(|&x| x < 3));
        }
    }
}
