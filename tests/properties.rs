//! Property-based integration tests (proptest): algorithm correctness and
//! substrate invariants over arbitrary random graphs.

use arbmis::congest::message::{self, DecodeError, Message};
use arbmis::congest::{
    Inbox, NodeInfo, Outgoing, Parallelism, Protocol, Simulator, SimulatorError,
};
use arbmis::core::protocols::MisMsg;
use arbmis::core::{arb_mis, check_mis, ghaffari, greedy, luby, metivier, ArbMisConfig};
use arbmis::graph::orientation::{degeneracy_ordering, Orientation};
use arbmis::graph::{arboricity, forest, gen, props, traversal, Graph};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Strategy: an arbitrary simple graph from a random edge list.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |pairs| {
            let mut b = arbmis::graph::GraphBuilder::new(n);
            for (u, v) in pairs {
                b.try_add_edge(u, v);
            }
            b.build()
        })
    })
}

/// Strategy: an arbitrary simple graph on 1–64 nodes (single-node
/// graphs included — the backend contract covers them) for the backend
/// equivalence properties.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (1usize..=64).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..3 * n).prop_map(move |pairs| {
            let mut b = arbmis::graph::GraphBuilder::new(n);
            for (u, v) in pairs {
                b.try_add_edge(u, v);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_graphs_are_well_formed(g in arb_graph(60, 200)) {
        prop_assert!(props::check_well_formed(&g).is_ok());
    }

    #[test]
    fn greedy_produces_mis(g in arb_graph(60, 200)) {
        prop_assert!(check_mis(&g, &greedy::greedy_mis(&g)).is_ok());
    }

    #[test]
    fn metivier_produces_mis(g in arb_graph(60, 200), seed in 0u64..1000) {
        prop_assert!(check_mis(&g, &metivier::run(&g, seed).in_mis).is_ok());
    }

    #[test]
    fn luby_produces_mis(g in arb_graph(50, 150), seed in 0u64..1000) {
        prop_assert!(check_mis(&g, &luby::run(&g, seed).in_mis).is_ok());
    }

    #[test]
    fn ghaffari_produces_mis(g in arb_graph(40, 120), seed in 0u64..1000) {
        prop_assert!(check_mis(&g, &ghaffari::run(&g, seed).in_mis).is_ok());
    }

    #[test]
    fn arbmis_produces_mis(g in arb_graph(40, 100), seed in 0u64..1000) {
        // Use a certified arboricity upper bound (degeneracy).
        let alpha = arboricity::degeneracy(&g).max(1);
        let out = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
        prop_assert!(check_mis(&g, &out.in_mis).is_ok());
    }

    #[test]
    fn degeneracy_ordering_invariants(g in arb_graph(60, 250)) {
        let ord = degeneracy_ordering(&g);
        // Every node has ≤ degeneracy later-ordered neighbors.
        for (i, &v) in ord.order.iter().enumerate() {
            let later = g.neighbors(v).iter().filter(|&&u| ord.position[u] > i).count();
            prop_assert!(later <= ord.degeneracy);
        }
        // Degeneracy is at least half the max density bound.
        prop_assert!(ord.degeneracy >= arboricity::density_lower_bound(&g).saturating_sub(1) / 2);
    }

    #[test]
    fn orientation_invariants(g in arb_graph(60, 250)) {
        let o = Orientation::by_degeneracy(&g);
        prop_assert!(o.covers(&g));
        prop_assert!(o.is_acyclic());
        prop_assert!(o.max_out_degree() <= degeneracy_ordering(&g).degeneracy);
        // Parent/child views are mutually consistent.
        for v in g.nodes() {
            for &p in o.parents(v) {
                prop_assert!(o.children(p).contains(&v));
            }
        }
    }

    #[test]
    fn forest_decomposition_invariants(g in arb_graph(50, 200)) {
        let forests = forest::forests_by_degeneracy(&g);
        let total: usize = forests.iter().map(|f| f.edge_count()).sum();
        prop_assert_eq!(total, g.m());
        for f in &forests {
            prop_assert!(f.is_acyclic());
            prop_assert!(traversal::is_forest(&f.to_graph()));
        }
    }

    #[test]
    fn components_partition_nodes(g in arb_graph(60, 200)) {
        let comps = traversal::connected_components(&g);
        let sizes = comps.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.n());
        // Adjacent nodes always share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(comps.label(u), comps.label(v));
        }
    }

    #[test]
    fn two_mis_runs_may_differ_but_both_valid(g in arb_graph(40, 120)) {
        let a = metivier::run(&g, 1).in_mis;
        let b = metivier::run(&g, 2).in_mis;
        prop_assert!(check_mis(&g, &a).is_ok());
        prop_assert!(check_mis(&g, &b).is_ok());
    }

    #[test]
    fn induced_subgraph_roundtrip(g in arb_graph(50, 150), mask_seed in 0u64..100) {
        let mask: Vec<bool> = (0..g.n())
            .map(|v| arbmis::congest::rng::draw_bool(mask_seed, v, 0, 0, 0.6))
            .collect();
        let sub = arbmis::graph::InducedSubgraph::new(&g, &mask);
        // Every subgraph edge maps to a parent edge and vice versa.
        for (a, b) in sub.graph().edges() {
            prop_assert!(g.has_edge(sub.to_parent(a), sub.to_parent(b)));
        }
        let expected: usize = g
            .edges()
            .filter(|&(u, v)| mask[u] && mask[v])
            .count();
        prop_assert_eq!(sub.graph().m(), expected);
    }
}

// ------------------------------------------------------- backend contract

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DESIGN.md §11 property 1: whatever the backend and scan mode, the
    /// output is a maximal independent set.
    #[test]
    fn every_backend_output_is_a_valid_mis(g in arbitrary_graph(), seed in 0u64..1000) {
        use arbmis::core::is_valid_mis;
        use arbmis::flat::{CongestBackend, FlatAlgo, FlatBackend, MisBackend, ScanMode};
        for algo in [FlatAlgo::Luby, FlatAlgo::Metivier] {
            for scan in [ScanMode::Auto, ScanMode::Sparse, ScanMode::Dense] {
                let mut b = FlatBackend::new(&g, seed, algo).with_scan(scan);
                b.run(100_000).unwrap();
                prop_assert!(is_valid_mis(&g, &b.mis().to_bools()), "flat {algo:?} {scan:?}");
            }
            let mut b = CongestBackend::new(&g, seed, algo);
            b.run(100_000).unwrap();
            prop_assert!(is_valid_mis(&g, &b.mis().to_bools()), "congest {algo:?}");
        }
    }

    /// DESIGN.md §11 property 2: flat and congest agree on the joiner
    /// set at every round index, not just the final mask.
    #[test]
    fn flat_and_congest_joiners_agree_round_by_round(
        g in arbitrary_graph(),
        seed in 0u64..1000,
    ) {
        use arbmis::flat::{CongestBackend, FlatAlgo, FlatBackend, MisBackend};
        for algo in [FlatAlgo::Luby, FlatAlgo::Metivier] {
            let mut flat = FlatBackend::new(&g, seed, algo);
            let mut congest = CongestBackend::new(&g, seed, algo);
            flat.init();
            congest.init();
            while !flat.is_done() || !congest.is_done() {
                prop_assert!(
                    flat.is_done() == congest.is_done(),
                    "done flags diverge at round {}",
                    flat.round()
                );
                prop_assert!(flat.round() < 100_000);
                flat.step_round().unwrap();
                congest.step_round().unwrap();
                prop_assert!(
                    flat.joiners() == congest.joiners(),
                    "{:?} joiners diverge at round {}",
                    algo,
                    flat.round() - 1
                );
            }
            prop_assert_eq!(flat.round(), congest.round());
            prop_assert_eq!(flat.mis(), congest.mis());
        }
    }
}

// ------------------------------------------------- bit-packed substrate

/// Strategy: a size plus an operation tape over `0..n` for the
/// [`BitMask`]-vs-`Vec<bool>` model check.
fn arb_mask_ops() -> impl Strategy<Value = (usize, Vec<(u8, usize)>)> {
    (1usize..=300).prop_flat_map(|n| (Just(n), proptest::collection::vec((0u8..2, 0..n), 0..4 * n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The word-packed [`BitMask`] is observationally equivalent to a
    /// `Vec<bool>` model: after any tape of set/clear operations, the
    /// per-bit tests, the population count, the word-level iterator,
    /// and any word-range slice of it all agree with the model.
    #[test]
    fn bitmask_matches_bool_vec_model(case in arb_mask_ops(), range_seed in 0usize..97) {
        use arbmis::congest::BitMask;
        let (n, ops) = case;
        let mut mask = BitMask::new(n);
        let mut model = vec![false; n];
        for (op, v) in ops {
            if op == 0 {
                mask.set(v);
                model[v] = true;
            } else {
                mask.clear(v);
                model[v] = false;
            }
        }
        prop_assert!(mask == model[..], "bitwise equality");
        for (v, &b) in model.iter().enumerate() {
            prop_assert_eq!(mask.test(v), b);
        }
        prop_assert_eq!(mask.count_ones(), model.iter().filter(|&&b| b).count());
        let expect: Vec<usize> = (0..n).filter(|&v| model[v]).collect();
        prop_assert_eq!(mask.iter().collect::<Vec<_>>(), expect.clone());
        // An arbitrary word-range slice of the iterator agrees too.
        let nwords = n.div_ceil(64);
        let wlo = range_seed % (nwords + 1);
        let whi = nwords.min(wlo + 1 + range_seed % 3);
        let in_range: Vec<usize> = expect
            .iter()
            .copied()
            .filter(|&v| v / 64 >= wlo && v / 64 < whi)
            .collect();
        prop_assert_eq!(mask.iter_words(wlo, whi).collect::<Vec<_>>(), in_range);
        // Round-tripping through bools is the identity.
        prop_assert_eq!(BitMask::from_bools(&mask.to_bools()), mask);
    }

    /// Permutations invert exactly: `new∘old = old∘new = id`, for every
    /// ordering strategy on an arbitrary graph.
    #[test]
    fn permutation_roundtrip(g in arbitrary_graph()) {
        use arbmis::graph::NodeOrder;
        for order in [NodeOrder::Identity, NodeOrder::Degree, NodeOrder::Bfs] {
            let p = order.permutation(&g);
            prop_assert_eq!(p.n(), g.n());
            for v in 0..g.n() {
                prop_assert_eq!(p.new_of(p.old_of(v)), v);
                prop_assert_eq!(p.old_of(p.new_of(v)), v);
            }
        }
    }

    /// DESIGN.md §13: a permuted flat run's joiner sets (already mapped
    /// back to original ids by the engine) equal the unpermuted run's at
    /// every round, for every layout.
    #[test]
    fn permuted_runs_report_identical_joiners(g in arbitrary_graph(), seed in 0u64..500) {
        use arbmis::flat::{FlatAlgo, FlatBackend, MisBackend};
        use arbmis::graph::NodeOrder;
        for algo in [FlatAlgo::Luby, FlatAlgo::Metivier] {
            let mut base = FlatBackend::new(&g, seed, algo);
            let mut permuted: Vec<FlatBackend> = [NodeOrder::Degree, NodeOrder::Bfs]
                .iter()
                .map(|&o| FlatBackend::new(&g, seed, algo).with_order(o))
                .collect();
            base.init();
            for p in &mut permuted {
                p.init();
            }
            while !base.is_done() {
                prop_assert!(base.round() < 100_000);
                base.step_round().unwrap();
                for p in &mut permuted {
                    p.step_round().unwrap();
                    prop_assert!(
                        p.joiners() == base.joiners(),
                        "{} order {} joiners diverge at round {}",
                        algo.label(),
                        p.order().label(),
                        base.round() - 1
                    );
                }
            }
            for p in &permuted {
                prop_assert!(p.is_done());
                prop_assert_eq!(p.mis(), base.mis());
                prop_assert_eq!(p.round(), base.round());
            }
        }
    }
}

// ------------------------------------------------------------ wire format

/// Strategy: an arbitrary [`MisMsg`] across all six variants.
fn arb_mis_msg() -> impl Strategy<Value = MisMsg> {
    (0u8..6, 0u64..u64::MAX, 0u32..u32::MAX, 0u8..2).prop_map(|(tag, x, e, f)| {
        let flag = f == 1;
        match tag {
            0 => MisMsg::Priority(x),
            1 => MisMsg::LubyMark {
                degree: x,
                marked: flag,
            },
            2 => MisMsg::GhaffariMark {
                exponent: e,
                marked: flag,
            },
            3 => MisMsg::Join(flag),
            4 => MisMsg::Exit(flag),
            _ => MisMsg::Degree(x),
        }
    })
}

fn roundtrips<M: Message + PartialEq>(m: &M) -> Result<(), TestCaseError> {
    let mut buf = Vec::new();
    m.encode(&mut buf);
    let decoded = M::decode_all(&buf);
    prop_assert_eq!(decoded.as_ref(), Ok(m));
    prop_assert_eq!(m.bit_size(), buf.len() * 8);
    // `decode` consumes exactly the encoding even with bytes appended.
    buf.push(0xAB);
    let mut cursor: &[u8] = &buf;
    let back = M::decode(&mut cursor).expect("decode with trailing byte");
    prop_assert_eq!(&back, m);
    prop_assert_eq!(cursor, &[0xAB][..]);
    Ok(())
}

/// A message whose declared size is an arbitrary *bit* count — lets the
/// budget-boundary property probe `16·⌈log₂ n⌉` exactly, not just at
/// whole-byte granularity.
#[derive(Clone, Debug, PartialEq)]
struct RawBits {
    bits: usize,
}

impl Message for RawBits {
    fn encode(&self, buf: &mut Vec<u8>) {
        message::put_varint(buf, self.bits as u64);
        buf.resize(buf.len() + self.bits.div_ceil(8), 0);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let bits = usize::try_from(message::get_varint(buf)?)
            .map_err(|_| DecodeError::Invalid("bit count overflows usize"))?;
        let bytes = bits.div_ceil(8);
        if buf.len() < bytes {
            return Err(DecodeError::UnexpectedEof);
        }
        *buf = &buf[bytes..];
        Ok(RawBits { bits })
    }

    fn bit_size(&self) -> usize {
        self.bits
    }
}

/// Broadcasts one [`RawBits`] message per node, then halts.
struct OneShot {
    bits: usize,
}

impl Protocol for OneShot {
    type State = bool;
    type Msg = RawBits;

    fn init(&self, _node: &NodeInfo) -> bool {
        false
    }

    fn round(
        &self,
        sent: &mut bool,
        _node: &NodeInfo,
        _inbox: &Inbox<RawBits>,
    ) -> Outgoing<RawBits> {
        if *sent {
            Outgoing::Halt
        } else {
            *sent = true;
            Outgoing::Broadcast(RawBits { bits: self.bits })
        }
    }

    fn is_done(&self, sent: &bool) -> bool {
        *sent
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mis_msg_decode_inverts_encode(m in arb_mis_msg()) {
        roundtrips(&m)?;
    }

    #[test]
    fn primitive_messages_roundtrip(x in 0u64..u64::MAX, y in 0u32..u32::MAX, f in 0u8..2) {
        let flag = f == 1;
        roundtrips(&x)?;
        roundtrips(&y)?;
        roundtrips(&flag)?;
        roundtrips(&(x, y))?;
        roundtrips(&Some(x))?;
        roundtrips(&Option::<u64>::None)?;
        roundtrips(&(flag, Some((x, y))))?;
    }

    #[test]
    fn truncated_encodings_never_decode(m in arb_mis_msg()) {
        let mut buf = Vec::new();
        m.encode(&mut buf);
        // Every strict prefix must fail — no encoding is a prefix of
        // another variant's (self-delimiting wire format).
        for cut in 0..buf.len() {
            prop_assert!(MisMsg::decode_all(&buf[..cut]).is_err(), "prefix of {cut} bytes");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bandwidth_budget_boundary(n in 2usize..600, seed in 0u64..20) {
        let g = gen::path(n);
        let sim = Simulator::new(&g, seed);
        let budget = sim.budget_bits().unwrap();
        let logn = ((n.max(2) as f64).log2().ceil() as usize).max(1);
        // Budget is 16·⌈log₂ n⌉ bits.
        prop_assert_eq!(budget, 16 * logn);

        // Exactly at the budget: accepted.
        prop_assert!(sim.run(&OneShot { bits: budget }, 4).is_ok());
        // One bit over: rejected, and the error reports the exact sizes.
        match sim.run(&OneShot { bits: budget + 1 }, 4) {
            Err(SimulatorError::BandwidthExceeded { bits, budget: b, .. }) => {
                prop_assert_eq!(bits, budget + 1);
                prop_assert_eq!(b, budget);
            }
            other => return Err(TestCaseError::fail(format!("expected BandwidthExceeded, got {other:?}"))),
        }
        // The parallel engine enforces the identical boundary.
        let par = sim.with_parallelism(Parallelism::Threads(4));
        prop_assert!(par.run_parallel(&OneShot { bits: budget }, 4).is_ok());
        prop_assert!(matches!(
            par.run_parallel(&OneShot { bits: budget + 1 }, 4),
            Err(SimulatorError::BandwidthExceeded { .. })
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cole_vishkin_colors_random_forests(n in 2usize..300, seed in 0u64..50) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = gen::random_forest(n, 0.8, &mut rng);
        for f in forest::forests_by_degeneracy(&g) {
            let c = arbmis::core::cole_vishkin::cv_color_to_three(&f);
            prop_assert!(arbmis::core::cole_vishkin::is_proper_forest_coloring(&f, &c.colors));
            prop_assert!(c.colors.iter().all(|&x| x < 3));
        }
    }
}
