//! Robustness: adversarial topologies, extreme parameters, and
//! failure-injection paths.

use arbmis::core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis::core::params::{ArbParams, ParamMode};
use arbmis::core::{arb_mis, check_mis, forest_decomp, ArbMisConfig};
use arbmis::graph::gen::{self, GraphFamily, GraphSpec};
use arbmis::graph::{Graph, GraphBuilder};
use rand::SeedableRng;

#[test]
fn arbmis_on_new_generator_families() {
    let cases = [
        (GraphFamily::SeriesParallel, 2usize),
        (GraphFamily::RingOfCliques { k: 5 }, 3),
        (GraphFamily::PowerlawCluster { m: 2, p: 0.6 }, 4),
        (GraphFamily::Geometric { radius: 0.06 }, 8),
    ];
    for (fam, alpha) in cases {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let g = GraphSpec::new(fam, 1_000).generate(&mut rng);
        // Certify α is a genuine bound before trusting it.
        let degen = arbmis::graph::arboricity::degeneracy(&g);
        let alpha = alpha.max(degen);
        let out = arb_mis(&g, &ArbMisConfig::new(alpha, 2));
        check_mis(&g, &out.in_mis).unwrap_or_else(|e| panic!("{fam}: {e}"));
    }
}

#[test]
fn crown_and_bipartite_adversaries() {
    // Complete bipartite: MIS is one full side (or a maximal mix).
    let g = gen::complete_bipartite(40, 60);
    let out = arb_mis(&g, &ArbMisConfig::new(20, 1));
    check_mis(&g, &out.in_mis).unwrap();
    // Crown graph: K_{n,n} minus a perfect matching.
    let n = 30;
    let mut b = GraphBuilder::new(2 * n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(i, n + j);
            }
        }
    }
    let crown = b.build();
    let out = arb_mis(&crown, &ArbMisConfig::new(15, 1));
    check_mis(&crown, &out.in_mis).unwrap();
}

#[test]
fn deep_star_of_stars() {
    // Root -> 50 hubs -> 50 leaves each: the paper's "large independent
    // sets inside neighborhoods" motif.
    let hubs = 50;
    let leaves = 50;
    let n = 1 + hubs + hubs * leaves;
    let mut b = GraphBuilder::new(n);
    for h in 0..hubs {
        b.add_edge(0, 1 + h);
        for l in 0..leaves {
            b.add_edge(1 + h, 1 + hubs + h * leaves + l);
        }
    }
    let g = b.build();
    for seed in 0..5 {
        let out = arb_mis(&g, &ArbMisConfig::new(1, seed));
        check_mis(&g, &out.in_mis).unwrap();
        // All leaves of a hub are independent: the MIS must be large.
        assert!(out.mis_size() >= hubs * (leaves - 1) / 2);
    }
}

#[test]
fn extreme_parameter_modes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let g = gen::barabasi_albert(800, 3, &mut rng);
    for mode in [
        ParamMode::Practical {
            lambda_scale: 1e-12,
        }, // Λ = 1
        ParamMode::Practical { lambda_scale: 3.0 }, // over-provisioned
        ParamMode::Faithful { p: 3 },               // Θ = 0 at this Δ
    ] {
        let cfg = ArbMisConfig {
            mode,
            ..ArbMisConfig::new(3, 4)
        };
        let out = arb_mis(&g, &cfg);
        check_mis(&g, &out.in_mis).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
    }
}

#[test]
fn faithful_params_are_astronomical_by_design() {
    // Documented behaviour: faithful Λ for α = 2 exceeds 5·10⁴ iterations
    // per scale, and Θ only becomes positive at enormous Δ.
    let p = ArbParams::new(2, 1 << 20, ParamMode::Faithful { p: 1 });
    assert!(p.lambda > 50_000);
    let small = ArbParams::new(2, 10_000, ParamMode::Faithful { p: 1 });
    assert_eq!(small.theta, 0);
}

#[test]
fn shattering_handles_self_contained_cliques() {
    // Ring of cliques: within a clique only one node can ever join per
    // iteration; the algorithm must still decide everyone.
    let g = gen::ring_of_cliques(20, 6);
    let out = bounded_arb_independent_set(&g, &BoundedArbConfig::new(3, 9));
    // Every node is in I, dominated, bad, or still active — and active ∪
    // bad get finished by the pipeline:
    let full = arb_mis(&g, &ArbMisConfig::new(3, 9));
    check_mis(&g, &full.in_mis).unwrap();
    assert!(out.mis_size() <= 20 * 2); // ≤ one per clique + ring slack
}

#[test]
fn forest_decomposition_error_path_is_reported() {
    let g = gen::complete(12); // arboricity 6
    let err = forest_decomp::forest_decomposition(&g, 1, 0.5).unwrap_err();
    assert!(err.to_string().contains("arboricity"));
    assert!(err.stuck > 0);
}

#[test]
fn single_edge_and_two_cliques_bridge() {
    let g = Graph::from_edges(2, &[(0, 1)]);
    let out = arb_mis(&g, &ArbMisConfig::new(1, 0));
    assert_eq!(out.mis_size(), 1);
    // Two K5s joined by a bridge.
    let mut b = GraphBuilder::new(10);
    for base in [0usize, 5] {
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_edge(base + i, base + j);
            }
        }
    }
    b.add_edge(4, 5);
    let g = b.build();
    let out = arb_mis(&g, &ArbMisConfig::new(3, 2));
    check_mis(&g, &out.in_mis).unwrap();
    assert_eq!(out.mis_size(), 2);
}

#[test]
fn huge_alpha_overestimate_harmless() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let g = gen::random_tree_prufer(500, &mut rng);
    let out = arb_mis(&g, &ArbMisConfig::new(50, 1));
    check_mis(&g, &out.in_mis).unwrap();
}
