//! Serialization round-trips: every public record type the experiment
//! harness persists must survive JSON without loss.

use arbmis::core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis::core::{arb_mis, metivier, ArbMisConfig};
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use arbmis::graph::stats::GraphStats;
use rand::SeedableRng;

fn graph() -> arbmis::graph::Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    GraphSpec::new(GraphFamily::ForestUnion { alpha: 2 }, 300).generate(&mut rng)
}

#[test]
fn mis_run_roundtrip() {
    let g = graph();
    let run = metivier::run(&g, 7);
    let json = serde_json::to_string(&run).unwrap();
    let back: arbmis::core::MisRun = serde_json::from_str(&json).unwrap();
    assert_eq!(run, back);
}

#[test]
fn shatter_outcome_roundtrip() {
    let g = graph();
    let out = bounded_arb_independent_set(&g, &BoundedArbConfig::new(2, 3));
    let json = serde_json::to_string(&out).unwrap();
    let back: arbmis::core::bounded_arb::ShatterOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(out, back);
    // Trace content included.
    assert!(json.contains("active_start"));
}

#[test]
fn arbmis_outcome_roundtrip() {
    let g = graph();
    let out = arb_mis(&g, &ArbMisConfig::new(2, 5));
    let json = serde_json::to_string(&out).unwrap();
    let back: arbmis::core::ArbMisOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(out, back);
}

#[test]
fn graph_and_stats_roundtrip() {
    let g = graph();
    let json = serde_json::to_string(&g).unwrap();
    let back: arbmis::graph::Graph = serde_json::from_str(&json).unwrap();
    assert_eq!(g, back);
    let s = GraphStats::compute(&g);
    let back: GraphStats = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
    assert_eq!(s, back);
}

#[test]
fn metrics_and_spec_roundtrip() {
    let g = graph();
    let run = arbmis::congest::Simulator::new(&g, 1)
        .run(&arbmis::core::protocols::MetivierProtocol, 50_000)
        .unwrap();
    let back: arbmis::congest::Metrics =
        serde_json::from_str(&serde_json::to_string(&run.metrics).unwrap()).unwrap();
    assert_eq!(run.metrics, back);

    let spec = GraphSpec::new(GraphFamily::PowerlawCluster { m: 3, p: 0.5 }, 512);
    let back: GraphSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(spec, back);
}

#[test]
fn configs_roundtrip() {
    for cfg in [
        ArbMisConfig::new(3, 9),
        ArbMisConfig {
            mode: arbmis::core::params::ParamMode::Faithful { p: 2 },
            degree_reduction: false,
            ..ArbMisConfig::new(1, 0)
        },
    ] {
        let back: ArbMisConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(cfg, back);
    }
}
