//! Statistical integration tests of the paper's theorems: Monte-Carlo
//! estimates must respect every proven bound (with CI slack).

use arbmis::graph::{gen, orientation::Orientation};
use arbmis::readk::events::EventScenario;
use arbmis::readk::family::sliding_window_family;
use arbmis::readk::{bounds, estimate};
use rand::SeedableRng;

const TRIALS: u64 = 8_000;

#[test]
fn theorem_1_1_conjunction_bound_holds() {
    for (n, span) in [(6usize, 1usize), (8, 2), (10, 3), (12, 4)] {
        let fam = sliding_window_family(n, span, 1, 0.25);
        let p = 0.75f64.powi(span as i32);
        let k = fam.read_parameter();
        assert_eq!(k, span);
        let est = estimate(TRIALS, |t| fam.all_ones(&fam.sample_base(100, t)));
        let bound = bounds::conjunction_bound(p, n, k);
        let (lo, _) = est.wilson_ci(3.29); // 99.9%
        assert!(
            lo <= bound,
            "n={n} span={span}: lower CI {lo} exceeds bound {bound}"
        );
    }
}

#[test]
fn theorem_1_2_tail_bound_holds() {
    for (n, span, delta) in [(150usize, 2usize, 0.5f64), (150, 3, 0.4), (300, 4, 0.6)] {
        let fam = sliding_window_family(n, span, 1, 0.5);
        let p = 0.5f64.powi(span as i32);
        let exp_y = p * n as f64;
        let threshold = ((1.0 - delta) * exp_y).floor() as usize;
        let est = estimate(TRIALS, |t| fam.sample_count(200, t) <= threshold);
        let bound = bounds::tail_form2(delta, exp_y, fam.read_parameter());
        let (lo, _) = est.wilson_ci(3.29);
        assert!(
            lo <= bound,
            "n={n} span={span} δ={delta}: lower CI {lo} exceeds bound {bound}"
        );
    }
}

#[test]
fn theorem_3_1_event1_lower_bound_holds() {
    for alpha in 1..=3usize {
        let mut rng = rand::rngs::StdRng::seed_from_u64(alpha as u64);
        let g = gen::forest_union(3_000, alpha, &mut rng);
        let o = Orientation::by_degeneracy(&g);
        let m: Vec<usize> = (0..200).collect();
        let sc = EventScenario::new(&g, &o, m.clone(), None);
        let est = estimate(TRIALS, |t| sc.event1_holds(&sc.sample_priorities(300, t)));
        let lower = bounds::event1_lower_bound(m.len(), sc.max_degree_of_m().max(1), alpha);
        let (_, hi) = est.wilson_ci(3.29);
        assert!(
            hi >= lower,
            "α={alpha}: upper CI {hi} below theorem lower bound {lower}"
        );
    }
}

#[test]
fn theorem_3_2_event2_failure_bound_holds() {
    for alpha in 1..=3usize {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10 + alpha as u64);
        let g = gen::forest_union(3_000, alpha, &mut rng);
        let o = Orientation::by_degeneracy(&g);
        let rho = 4.0 * (g.max_degree() as f64) * (g.max_degree() as f64).ln();
        let m: Vec<usize> = (0..1_000).collect();
        let sc = EventScenario::new(&g, &o, m.clone(), Some(rho as usize));
        let est = estimate(TRIALS, |t| {
            sc.event2_holds(&sc.sample_priorities(301, t), alpha)
        });
        let failure = 1.0 - est.p_hat();
        let bound = bounds::event2_failure_bound(m.len(), alpha, rho);
        // Allow CI slack on top of the theorem bound.
        assert!(
            failure <= bound + 0.02,
            "α={alpha}: failure {failure} vs bound {bound}"
        );
    }
}

#[test]
fn theorem_3_3_event3_succeeds_overwhelmingly() {
    for alpha in 1..=3usize {
        let mut rng = rand::rngs::StdRng::seed_from_u64(20 + alpha as u64);
        let g = gen::forest_union(3_000, alpha, &mut rng);
        let o = Orientation::by_degeneracy(&g);
        let m: Vec<usize> = (0..300).collect();
        let sc = EventScenario::new(&g, &o, m, None);
        let est = estimate(TRIALS, |t| {
            sc.event3_holds(&sc.sample_priorities(302, t), alpha)
        });
        // Theorem 3.3 claims probability ≥ 1 − 1/Δ³; with moderate Δ the
        // measured frequency should be essentially 1.
        assert!(est.p_hat() > 0.99, "α={alpha}: {}", est.p_hat());
    }
}

#[test]
fn read_parameters_respect_structural_caps() {
    for alpha in 1..=4usize {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30 + alpha as u64);
        let g = gen::forest_union(2_000, alpha, &mut rng);
        let o = Orientation::by_degeneracy(&g);
        let d = o.max_out_degree();
        let sc = EventScenario::new(&g, &o, (0..500).collect(), None);
        assert!(sc.event1_read_parameter() <= d + 1);
        assert!(sc.event3_read_parameter() <= d * (d + 1) + 1);
        // Event 2 without a cutoff is capped by max in-degree + 1; with a
        // cutoff below the hub degrees it must shrink or stay equal.
        let cut = EventScenario::new(&g, &o, (0..500).collect(), Some(4));
        assert!(cut.event2_read_parameter() <= sc.event2_read_parameter());
    }
}
