//! Differential oracle for the backend equivalence contract
//! (DESIGN.md §11): for every algorithm, workload family, and seed, the
//! flat shared-memory backend must be **round-identical** to the CONGEST
//! simulator — the per-round joiner sets, the final MIS, and the total
//! round count all agree, in both flat scan directions, under both
//! simulator scheduling modes, and against the parallel round engine at
//! every thread count.
//!
//! The backends share no execution machinery — one passes messages
//! through budget-checked planes, the other sweeps flat arrays — so any
//! drift in protocol semantics, RNG derivation, or round accounting
//! shows up here as a first-divergence round index.
//!
//! The flat engine side of the matrix is itself a cross product:
//! `{sparse, dense, auto}` scans × `{identity, degree, bfs}` execution
//! layouts × flat worker threads `{1, 2, 4}` — the layout-independence
//! and deterministic-parallelism contracts (DESIGN.md §13) ride on the
//! same lockstep assertions. `ARBMIS_EQ_ORDERS` and
//! `ARBMIS_EQ_FLAT_THREADS` (comma-separated) narrow the flat matrix,
//! so CI can pin one slice per job.

use arbmis::congest::{Parallelism, Protocol, Simulator};
use arbmis::core::protocols::{BoundedArbProtocol, LubyProtocol, MetivierProtocol, MisNodeState};
use arbmis::core::{ArbParams, ParamMode};
use arbmis::flat::{CongestBackend, FlatAlgo, FlatBackend, MisBackend, NodeOrder, ScanMode};
use arbmis::graph::{gen, Graph};
use rand::SeedableRng;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 4] = [0, 1, 7, 42];
const MAX_ROUNDS: u64 = 100_000;

/// Flat execution layouts under test (`ARBMIS_EQ_ORDERS` narrows).
fn orders_under_test() -> Vec<NodeOrder> {
    match std::env::var("ARBMIS_EQ_ORDERS") {
        Ok(s) => s
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| NodeOrder::parse(t).expect("ARBMIS_EQ_ORDERS"))
            .collect(),
        Err(_) => vec![NodeOrder::Identity, NodeOrder::Degree, NodeOrder::Bfs],
    }
}

/// Flat worker-thread counts under test (`ARBMIS_EQ_FLAT_THREADS`
/// narrows).
fn flat_threads_under_test() -> Vec<usize> {
    match std::env::var("ARBMIS_EQ_FLAT_THREADS") {
        Ok(s) => s
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("ARBMIS_EQ_FLAT_THREADS"))
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// The four workload families of the contract: dense-ish random, bounded
/// arboricity, spatial, and preferential attachment.
fn families(n: usize) -> Vec<(&'static str, Graph)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbac);
    vec![
        ("gnp", gen::gnp(n, 5.0 / n as f64, &mut rng)),
        ("ktree", gen::random_ktree(n, 3, &mut rng)),
        ("geometric", gen::random_geometric(n, 0.08, &mut rng)),
        ("ba", gen::barabasi_albert(n, 2, &mut rng)),
    ]
}

/// Steps every backend in lockstep, asserting identical done flags and
/// joiner sets at every round, then identical final MIS and round
/// counts. Returns `(rounds, mis)` for downstream comparisons.
fn assert_lockstep(label: &str, backends: &mut [&mut dyn MisBackend]) -> (u64, Vec<bool>) {
    for b in backends.iter_mut() {
        b.init();
    }
    loop {
        let done = backends[0].is_done();
        let round = backends[0].round();
        for (i, b) in backends.iter().enumerate().skip(1) {
            assert_eq!(
                b.is_done(),
                done,
                "{label}: backend #{i} done flag diverges at round {round}"
            );
        }
        if done {
            break;
        }
        assert!(round < MAX_ROUNDS, "{label}: runaway at round {round}");
        for b in backends.iter_mut() {
            b.step_round().unwrap();
        }
        let (first, rest) = backends.split_first().unwrap();
        for (i, b) in rest.iter().enumerate() {
            assert_eq!(
                b.joiners(),
                first.joiners(),
                "{label}: backend #{} joiners diverge at round {round}",
                i + 1
            );
        }
    }
    let rounds = backends[0].round();
    let mis = backends[0].mis().to_bools();
    for (i, b) in backends.iter().enumerate().skip(1) {
        assert_eq!(b.round(), rounds, "{label}: backend #{i} round count");
        assert_eq!(b.mis(), &mis[..], "{label}: backend #{i} final MIS");
    }
    (rounds, mis)
}

/// The parallel round engine's final MIS and round count for `proto`.
fn parallel_outcome<P>(
    g: &Graph,
    seed: u64,
    proto: &P,
    max_rounds: u64,
    threads: usize,
) -> (Vec<bool>, u64)
where
    P: Protocol<State = MisNodeState> + Sync,
    P::Msg: Send + Sync,
{
    let run = Simulator::new(g, seed)
        .with_parallelism(Parallelism::Threads(threads))
        .run_parallel(proto, max_rounds)
        .unwrap();
    (
        run.states.iter().map(|s| s.in_mis).collect(),
        run.metrics.rounds,
    )
}

/// Full matrix for one `(graph, seed, algo)` workload: every flat
/// configuration (scan × layout × flat threads) vs both simulator
/// scheduling modes in lockstep, then the parallel engine at every
/// thread count against the agreed outcome.
fn assert_workload(label: &str, g: &Graph, seed: u64, algo: FlatAlgo, max_rounds: u64) {
    let mut flats = Vec::new();
    for scan in [ScanMode::Sparse, ScanMode::Dense, ScanMode::Auto] {
        for &order in &orders_under_test() {
            for &threads in &flat_threads_under_test() {
                flats.push(
                    FlatBackend::new(g, seed, algo)
                        .with_scan(scan)
                        .with_order(order)
                        .with_threads(threads),
                );
            }
        }
    }
    let mut congest = CongestBackend::new(g, seed, algo);
    let mut congest_full = CongestBackend::new(g, seed, algo).with_full_scan(true);
    let mut backends: Vec<&mut dyn MisBackend> = vec![&mut congest];
    backends.extend(flats.iter_mut().map(|f| f as &mut dyn MisBackend));
    backends.push(&mut congest_full);
    let (rounds, mis) = assert_lockstep(label, &mut backends);
    if !matches!(algo, FlatAlgo::BoundedArb { .. }) {
        assert!(
            arbmis::core::is_valid_mis(g, &mis),
            "{label}: output is not an MIS"
        );
    }
    for threads in THREADS {
        let (par_mis, par_rounds) = match algo {
            FlatAlgo::Luby => parallel_outcome(g, seed, &LubyProtocol, max_rounds, threads),
            FlatAlgo::Metivier => parallel_outcome(g, seed, &MetivierProtocol, max_rounds, threads),
            FlatAlgo::BoundedArb { params, rho_cutoff } => parallel_outcome(
                g,
                seed,
                &BoundedArbProtocol { params, rho_cutoff },
                max_rounds,
                threads,
            ),
        };
        assert_eq!(par_mis, mis, "{label}: parallel MIS at {threads} threads");
        assert_eq!(
            par_rounds, rounds,
            "{label}: parallel rounds at {threads} threads"
        );
    }
}

#[test]
fn luby_backends_equivalent() {
    for (fam, g) in &families(200) {
        for seed in SEEDS {
            assert_workload(
                &format!("luby/{fam}/seed{seed}"),
                g,
                seed,
                FlatAlgo::Luby,
                MAX_ROUNDS,
            );
        }
    }
}

#[test]
fn metivier_backends_equivalent() {
    for (fam, g) in &families(200) {
        for seed in SEEDS {
            assert_workload(
                &format!("metivier/{fam}/seed{seed}"),
                g,
                seed,
                FlatAlgo::Metivier,
                MAX_ROUNDS,
            );
        }
    }
}

#[test]
fn bounded_arb_backends_equivalent() {
    // A reduced-Λ schedule keeps the oblivious round count test-sized;
    // the full practical-mode schedule is exercised in equivalence.rs.
    for (fam, g) in &families(200) {
        let params = ArbParams::new(
            3,
            g.max_degree(),
            ParamMode::Practical { lambda_scale: 0.25 },
        );
        let proto = BoundedArbProtocol {
            params,
            rho_cutoff: true,
        };
        let max_rounds = proto.total_rounds() + 2;
        for seed in SEEDS {
            let algo = FlatAlgo::BoundedArb {
                params,
                rho_cutoff: true,
            };
            let label = format!("arb/{fam}/seed{seed}");
            assert_workload(&label, g, seed, algo, max_rounds);
            // The shattering outputs beyond the MIS mask must agree too:
            // exiled (bad) and residual active sets, per node.
            let mut flat = FlatBackend::new(g, seed, algo);
            let mut congest = CongestBackend::new(g, seed, algo);
            flat.run(max_rounds).unwrap();
            congest.run(max_rounds).unwrap();
            for (v, s) in congest.states().iter().enumerate() {
                assert_eq!(flat.bad().test(v), s.bad, "{label}: bad[{v}]");
                assert_eq!(flat.is_active(v), s.active, "{label}: active[{v}]");
            }
        }
    }
}

/// The ρ-cutoff ablation (E12) must stay backend-independent as well.
#[test]
fn bounded_arb_no_rho_cutoff_equivalent() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbad);
    let g = gen::random_ktree(150, 3, &mut rng);
    let params = ArbParams::new(
        3,
        g.max_degree(),
        ParamMode::Practical { lambda_scale: 0.25 },
    );
    let proto = BoundedArbProtocol {
        params,
        rho_cutoff: false,
    };
    for seed in [3, 11] {
        assert_workload(
            &format!("arb-no-rho/seed{seed}"),
            &g,
            seed,
            FlatAlgo::BoundedArb {
                params,
                rho_cutoff: false,
            },
            proto.total_rounds() + 2,
        );
    }
}
