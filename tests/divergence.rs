//! End-to-end tests for the flight recorder and divergence tooling:
//!
//! * an injected coin flip in a `FlatBackend` fork is localized to the
//!   exact first divergent round and node, and the emitted replay
//!   artifact reproduces the report byte-for-byte through the `arbmis
//!   replay` subcommand;
//! * flight capture obeys the §8 observation rule — transcripts,
//!   metrics, and states are bit-identical with the recorder on or off,
//!   at thread counts {1, 2, 4, 8}, and the recorded flight bytes are
//!   themselves identical across the serial and parallel engines;
//! * the `(round, joiners, joiner_digest, coin_digest)` columns of flat
//!   and congest-backend flight records agree for every algorithm.

use arbmis::congest::{Parallelism, Simulator};
use arbmis::core::protocols::MetivierProtocol;
use arbmis::core::{ArbParams, ParamMode};
use arbmis::flat::divergence::{localize, BackendSpec, DivergenceKind, ReplayArtifact};
use arbmis::flat::{CoinFlip, CongestBackend, FlatAlgo, FlatBackend, MisBackend};
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use arbmis::obs::FlightRecorder;
use rand::SeedableRng;

const MAX_ROUNDS: u64 = 100_000;

fn graph(fam: GraphFamily, n: usize, seed: u64) -> arbmis::graph::Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    GraphSpec::new(fam, n).generate(&mut rng)
}

/// Searches for a coin flip whose entire first-round effect is one
/// node: flipping `v`'s iteration-0 coin changes `v`'s fate and nobody
/// else's at the first divergent round.
fn find_single_node_flip(
    g: &arbmis::graph::Graph,
    seed: u64,
) -> Option<(CoinFlip, arbmis::flat::Divergence)> {
    for node in 0..g.n() {
        for xor in [u64::MAX >> 1, 0xdead_beef_0000_0001, 2] {
            let flip = CoinFlip {
                node,
                iteration: 0,
                xor,
            };
            let mut a = FlatBackend::new(g, seed, FlatAlgo::Metivier).with_coin_flip(flip);
            let mut b = CongestBackend::new(g, seed, FlatAlgo::Metivier);
            let Ok(Some(d)) = localize(&mut a, &mut b, MAX_ROUNDS) else {
                continue;
            };
            if d.nodes == [node] {
                return Some((flip, d));
            }
        }
    }
    None
}

#[test]
fn injected_flip_localizes_to_exact_round_and_node() {
    let g = graph(GraphFamily::GnpAvgDegree { d: 4.0 }, 120, 19);
    let (flip, d) = find_single_node_flip(&g, 7).expect("some flip isolates a single node");
    // The flip perturbs iteration 0, whose joiners land at round 2 — the
    // first possible divergence point.
    assert_eq!(d.round, 2, "first divergent round");
    assert_eq!(d.kind, DivergenceKind::Joiners);
    assert_eq!(d.nodes, vec![flip.node], "minimal divergent node set");
}

#[test]
fn replay_artifact_reproduces_byte_for_byte_through_the_cli() {
    let g = graph(GraphFamily::GnpAvgDegree { d: 4.0 }, 120, 19);
    let (flip, d) = find_single_node_flip(&g, 7).expect("some flip isolates a single node");
    let artifact = ReplayArtifact::from_case(
        &g,
        7,
        FlatAlgo::Metivier,
        BackendSpec::flat().with_coin_flip(flip),
        BackendSpec::congest(),
        MAX_ROUNDS,
        Some(&d),
    );

    // JSON round-trip is lossless and byte-stable.
    let json = artifact.to_json();
    let parsed = ReplayArtifact::from_json(&json).unwrap();
    assert_eq!(parsed, artifact);
    assert_eq!(parsed.to_json(), json);

    // Library replay reproduces the recorded divergence.
    let report = parsed.replay().unwrap();
    assert_eq!(report.matches_expected, Some(true));
    assert_eq!(report.divergence.as_ref(), Some(&d));
    let expected_stdout = parsed.render(&report);

    // The CLI consumes the artifact file and prints the identical bytes.
    let dir = std::env::temp_dir().join(format!("arbmis-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("artifact.json");
    std::fs::write(&path, &json).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_arbmis"))
        .args(["replay", "--input", path.to_str().unwrap()])
        .output()
        .expect("spawn arbmis replay");
    assert!(
        out.status.success(),
        "replay exit status: {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected_stdout,
        "CLI replay output must be byte-identical to the library render"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backends_without_perturbation_do_not_diverge() {
    let g = graph(GraphFamily::KTree { k: 3 }, 90, 5);
    for algo in [FlatAlgo::Luby, FlatAlgo::Metivier] {
        let mut a = FlatBackend::new(&g, 11, algo);
        let mut b = CongestBackend::new(&g, 11, algo);
        assert_eq!(localize(&mut a, &mut b, MAX_ROUNDS).unwrap(), None);
    }
}

/// §8 differential: the flight recorder never perturbs the simulator.
/// Transcripts, metrics, and states agree with capture on and off, at
/// every thread count, and the captured bytes are engine-independent.
#[test]
fn flight_capture_is_observation_only_across_thread_counts() {
    let g = graph(GraphFamily::GnpAvgDegree { d: 5.0 }, 150, 23);
    let seed = 3;
    let proto = MetivierProtocol;

    let (base, t_base) = Simulator::new(&g, seed)
        .with_parallelism(Parallelism::Serial)
        .run_traced(&proto, MAX_ROUNDS)
        .unwrap();

    let serial_flight = FlightRecorder::bounded(1 << 16);
    let (out, t) = Simulator::new(&g, seed)
        .with_parallelism(Parallelism::Serial)
        .with_flight(serial_flight.clone())
        .run_traced(&proto, MAX_ROUNDS)
        .unwrap();
    assert_eq!(t.digest(), t_base.digest(), "serial: digest with flight on");
    assert_eq!(out.metrics, base.metrics, "serial: metrics with flight on");
    let project = |states: &[arbmis::core::protocols::MisNodeState]| -> Vec<(bool, bool)> {
        states.iter().map(|s| (s.in_mis, s.active)).collect()
    };
    assert_eq!(project(&out.states), project(&base.states));
    let serial_bytes = serial_flight.to_jsonl();
    assert!(
        serial_bytes.lines().count() > 1,
        "captured at least a round"
    );

    for threads in [1, 2, 4, 8] {
        let flight = FlightRecorder::bounded(1 << 16);
        let (par, t_par) = Simulator::new(&g, seed)
            .with_parallelism(Parallelism::Threads(threads))
            .with_flight(flight.clone())
            .run_parallel_traced(&proto, MAX_ROUNDS)
            .unwrap();
        assert_eq!(
            t_par.digest(),
            t_base.digest(),
            "{threads} threads: transcript digest with flight on"
        );
        assert_eq!(
            par.metrics, base.metrics,
            "{threads} threads: metrics with flight on"
        );
        assert_eq!(project(&par.states), project(&base.states));
        assert_eq!(
            flight.to_jsonl(),
            serial_bytes,
            "{threads} threads: flight bytes must be engine-independent"
        );
    }
}

/// The cross-backend-stable flight columns: for the same graph, seed,
/// and algorithm, flat and congest-backend records agree on
/// `(round, joiners, joiner_digest, coin_digest)` at every round.
#[test]
fn flight_digest_columns_agree_across_backends() {
    let g = graph(GraphFamily::KTree { k: 3 }, 80, 13);
    let delta = g.degree_histogram().len().saturating_sub(1);
    let params = ArbParams::new(3, delta, ParamMode::default());
    for algo in [
        FlatAlgo::Luby,
        FlatAlgo::Metivier,
        FlatAlgo::BoundedArb {
            params,
            rho_cutoff: true,
        },
    ] {
        let fa = FlightRecorder::bounded(1 << 16);
        let mut a = FlatBackend::new(&g, 9, algo).with_flight(fa.clone());
        a.run(MAX_ROUNDS).unwrap();
        let fb = FlightRecorder::bounded(1 << 16);
        let mut b = CongestBackend::new(&g, 9, algo).with_flight(fb.clone());
        b.run(MAX_ROUNDS).unwrap();

        let cols = |f: &FlightRecorder, engine: &str| -> Vec<(u64, u64, u64, u64)> {
            f.records()
                .iter()
                .filter(|r| r.engine == engine)
                .map(|r| (r.round, r.joiners, r.joiner_digest, r.coin_digest))
                .collect()
        };
        let flat_cols = cols(&fa, "flat");
        let congest_cols = cols(&fb, "congest-backend");
        assert!(
            !flat_cols.is_empty(),
            "{}: flat recorded rounds",
            algo.label()
        );
        assert_eq!(
            flat_cols,
            congest_cols,
            "{}: cross-backend flight columns",
            algo.label()
        );
    }
}

/// A perturbed flat run's flight log pinpoints *where* the coins
/// diverged: the coin digest differs from the pristine reference at
/// exactly the flipped decide round.
#[test]
fn flight_coin_digests_pinpoint_the_perturbed_round() {
    let g = graph(GraphFamily::GnpAvgDegree { d: 4.0 }, 100, 29);
    let flip = CoinFlip {
        node: 17,
        iteration: 1,
        xor: u64::MAX >> 1,
    };
    let fa = FlightRecorder::bounded(1 << 16);
    let mut a = FlatBackend::new(&g, 5, FlatAlgo::Metivier)
        .with_flight(fa.clone())
        .with_coin_flip(flip);
    // Run the perturbed backend only up to the perturbed iteration's
    // decide round so the two executions are still aligned.
    a.init();
    for _ in 0..5 {
        a.step_round().unwrap();
    }
    let fb = FlightRecorder::bounded(1 << 16);
    let mut b = CongestBackend::new(&g, 5, FlatAlgo::Metivier).with_flight(fb.clone());
    b.init();
    for _ in 0..5 {
        b.step_round().unwrap();
    }
    let coins = |f: &FlightRecorder, engine: &str| -> Vec<(u64, u64)> {
        f.records()
            .iter()
            .filter(|r| r.engine == engine)
            .map(|r| (r.round, r.coin_digest))
            .collect()
    };
    let flat = coins(&fa, "flat");
    let pristine = coins(&fb, "congest-backend");
    assert_eq!(flat.len(), pristine.len());
    for (&(ra, ca), &(rb, cb)) in flat.iter().zip(&pristine) {
        assert_eq!(ra, rb);
        if ra == 4 {
            // Iteration 1 decides at round 4: the flip must show here.
            assert_ne!(ca, cb, "round 4 coin digest must differ");
        } else {
            assert_eq!(ca, cb, "round {ra} coin digest must agree");
        }
    }
}
