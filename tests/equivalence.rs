//! Cross-crate equivalence: every CONGEST protocol must reproduce its
//! fast path bit-for-bit, on workloads from every family.

use arbmis::congest::Simulator;
use arbmis::core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis::core::protocols::*;
use arbmis::core::{ghaffari, luby, metivier};
use arbmis::graph::gen::{GraphFamily, GraphSpec};
use rand::SeedableRng;

fn workloads(_n: usize) -> Vec<(GraphFamily, usize)> {
    vec![
        (GraphFamily::RandomTree, 1),
        (GraphFamily::ForestUnion { alpha: 2 }, 2),
        (GraphFamily::Apollonian, 3),
        (GraphFamily::GnpAvgDegree { d: 5.0 }, 4),
    ]
}

#[test]
fn metivier_equivalence_across_families() {
    for (fam, _) in workloads(150) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let g = GraphSpec::new(fam, 150).generate(&mut rng);
        for seed in 0..3 {
            let fast = metivier::run(&g, seed);
            let run = Simulator::new(&g, seed)
                .run(&MetivierProtocol, 50_000)
                .unwrap();
            let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
            assert_eq!(mis, fast.in_mis, "{fam} seed {seed}");
        }
    }
}

#[test]
fn luby_equivalence_across_families() {
    for (fam, _) in workloads(150) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let g = GraphSpec::new(fam, 150).generate(&mut rng);
        for seed in 0..3 {
            let fast = luby::run(&g, seed);
            let run = Simulator::new(&g, seed).run(&LubyProtocol, 50_000).unwrap();
            let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
            assert_eq!(mis, fast.in_mis, "{fam} seed {seed}");
        }
    }
}

#[test]
fn ghaffari_equivalence_across_families() {
    for (fam, _) in workloads(120) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let g = GraphSpec::new(fam, 120).generate(&mut rng);
        for seed in 0..3 {
            let fast = ghaffari::run(&g, seed);
            let run = Simulator::new(&g, seed)
                .run(&GhaffariProtocol, 100_000)
                .unwrap();
            let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
            assert_eq!(mis, fast.in_mis, "{fam} seed {seed}");
        }
    }
}

#[test]
fn bounded_arb_equivalence_across_families() {
    for (fam, alpha) in workloads(150) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let g = GraphSpec::new(fam, 150).generate(&mut rng);
        for seed in 0..2 {
            let cfg = BoundedArbConfig::new(alpha, seed);
            let fast = bounded_arb_independent_set(&g, &cfg);
            let proto = BoundedArbProtocol {
                params: fast.params,
                rho_cutoff: true,
            };
            let run = Simulator::new(&g, seed)
                .run(&proto, proto.total_rounds() + 2)
                .unwrap();
            assert_eq!(
                run.states.iter().map(|s| s.in_mis).collect::<Vec<_>>(),
                fast.in_mis,
                "{fam} seed {seed}: I"
            );
            assert_eq!(
                run.states.iter().map(|s| s.bad).collect::<Vec<_>>(),
                fast.bad,
                "{fam} seed {seed}: B"
            );
            assert_eq!(
                run.states.iter().map(|s| s.active).collect::<Vec<_>>(),
                fast.active,
                "{fam} seed {seed}: VIB"
            );
        }
    }
}

#[test]
fn protocol_round_counts_track_fast_path() {
    // The protocol spends 3 rounds per iteration plus (up to) one halting
    // lap; round metrics should be within a small constant of 3×iters.
    let mut rng = rand::rngs::StdRng::seed_from_u64(25);
    let g = GraphSpec::new(GraphFamily::ForestUnion { alpha: 2 }, 200).generate(&mut rng);
    let fast = metivier::run(&g, 9);
    let run = Simulator::new(&g, 9)
        .run(&MetivierProtocol, 50_000)
        .unwrap();
    let lower = fast.iterations * 3;
    assert!(
        (lower..=lower + 4).contains(&run.metrics.rounds),
        "protocol rounds {} vs fast iterations {}",
        run.metrics.rounds,
        fast.iterations
    );
}
