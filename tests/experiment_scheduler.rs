//! Integration tests for the experiment cell scheduler and the
//! content-addressed cache (DESIGN.md §9): report bytes must be
//! invariant to worker count and cache temperature, and a poisoned
//! cache entry must be rejected and recomputed, never served.

use arbmis_bench::cache::{set_global_cache, Cache, NS_CELL};
use arbmis_bench::cell::ExperimentPlan;
use arbmis_bench::exps;
use arbmis_bench::sched::{run_scheduled, SchedOutcome};
use arbmis_congest::Parallelism;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// The scheduler and cache speak through process globals
/// (`set_global_cache`, the default-parallelism policy), so these tests
/// must not interleave.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn suite() -> Vec<ExperimentPlan> {
    exps::all().into_iter().map(|(_, _, f)| f(true)).collect()
}

fn report_bytes(outcome: &SchedOutcome) -> Vec<String> {
    outcome
        .reports
        .iter()
        .map(|r| serde_json::to_string(r).expect("reports serialize"))
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arbmis-sched-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn quick_suite_reports_byte_identical_across_thread_counts() {
    let _guard = serialized();
    set_global_cache(None);
    let baseline = report_bytes(&run_scheduled(suite(), Parallelism::Threads(1)));
    assert_eq!(baseline.len(), 16);
    for threads in [2usize, 4, 8] {
        let outcome = run_scheduled(suite(), Parallelism::Threads(threads));
        assert_eq!(
            report_bytes(&outcome),
            baseline,
            "threads={threads} changed report bytes"
        );
    }
}

#[test]
fn quick_suite_cold_vs_warm_cache_identical_with_full_hits() {
    let _guard = serialized();
    let dir = scratch_dir("warm");

    set_global_cache(Some(Arc::new(Cache::open(&dir).unwrap())));
    let cold = run_scheduled(suite(), Parallelism::Auto);
    assert_eq!(cold.stats.cell_hits, 0, "scratch dir must start cold");
    assert_eq!(cold.stats.cell_misses as usize, cold.stats.cells);

    // A fresh handle forgets the in-memory memo: the warm run exercises
    // the on-disk path end to end.
    set_global_cache(Some(Arc::new(Cache::open(&dir).unwrap())));
    let warm = run_scheduled(suite(), Parallelism::Auto);
    set_global_cache(None);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        warm.stats.cell_hits as usize, warm.stats.cells,
        "warm run must serve every cell from the cache"
    );
    assert_eq!(warm.stats.cell_misses, 0);
    assert!((warm.stats.hit_rate() - 1.0).abs() < 1e-12);
    assert_eq!(
        report_bytes(&warm),
        report_bytes(&cold),
        "cache temperature changed report bytes"
    );
}

#[test]
fn poisoned_cache_entry_is_rejected_and_recomputed() {
    let _guard = serialized();
    let dir = scratch_dir("poison");
    let plan = || {
        exps::all()
            .into_iter()
            .filter(|(id, _, _)| *id == "E1")
            .map(|(_, _, f)| f(true))
            .collect::<Vec<_>>()
    };
    let victim_key = plan()[0].cells[0].key.clone();

    let cache = Arc::new(Cache::open(&dir).unwrap());
    set_global_cache(Some(Arc::clone(&cache)));
    let cold = run_scheduled(plan(), Parallelism::Serial);
    let entry = cache.entry_path(NS_CELL, &victim_key);
    assert!(entry.exists(), "cell result must have been stored");

    // Corrupt the payload without fixing the checksum header.
    let mut bytes = std::fs::read(&entry).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&entry, &bytes).unwrap();

    // Fresh handle on the poisoned dir: the bad entry must be rejected
    // (and evicted), its cell recomputed, and the report unchanged.
    let reopened = Arc::new(Cache::open(&dir).unwrap());
    set_global_cache(Some(Arc::clone(&reopened)));
    let rerun = run_scheduled(plan(), Parallelism::Serial);
    set_global_cache(None);

    assert_eq!(
        reopened.stats().rejected,
        1,
        "checksum must reject the entry"
    );
    assert_eq!(
        rerun.stats.cell_misses, 1,
        "exactly the poisoned cell re-runs"
    );
    assert_eq!(
        rerun.stats.cell_hits as usize,
        rerun.stats.cells - 1,
        "intact entries still serve"
    );
    assert_eq!(report_bytes(&rerun), report_bytes(&cold));
    // The recompute re-publishes a good entry.
    assert!(entry.exists());
    let healed = Arc::new(Cache::open(&dir).unwrap());
    set_global_cache(Some(Arc::clone(&healed)));
    let final_run = run_scheduled(plan(), Parallelism::Serial);
    set_global_cache(None);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(final_run.stats.cell_misses, 0);
    assert_eq!(report_bytes(&final_run), report_bytes(&cold));
}
