//! Pins the zero-allocation steady state of the serial engine's message
//! plane and frontier bookkeeping, and the component-proportional
//! allocation bound of `SubgraphScratch`.
//!
//! Strategy for the engine tests: run the same constant-traffic protocol
//! for R rounds and for 8R rounds under a counting global allocator. Both
//! runs allocate the same warmup set from scratch (states, planes,
//! frontiers, histogram buckets), so if steady-state rounds allocate
//! nothing the two totals are *equal*; any per-round allocation would
//! show up multiplied by the extra 7R rounds.
//!
//! The counters are process-global and even idle harness threads
//! allocate (spawn bookkeeping, result reporting), so this file holds
//! exactly one `#[test]` running every check sequentially — do not split
//! it into separate tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use arbmis::congest::{Inbox, NodeInfo, Outgoing, Parallelism, Protocol, Simulator};

/// Every node broadcasts the constant `1` each round (constant per-round
/// traffic, constant message size, constant histogram bucket set) and
/// halts after `rounds` rounds.
#[derive(Clone, Copy, Debug)]
struct Chatter {
    rounds: u64,
}

#[derive(Clone, Debug)]
struct ChatterState {
    heard: u64,
    done: bool,
}

impl Protocol for Chatter {
    type State = ChatterState;
    type Msg = u64;

    fn init(&self, _node: &NodeInfo) -> ChatterState {
        ChatterState {
            heard: 0,
            done: false,
        }
    }

    fn round(&self, st: &mut ChatterState, node: &NodeInfo, inbox: &Inbox<u64>) -> Outgoing<u64> {
        for (_, &m) in inbox {
            st.heard += m;
        }
        if node.round >= self.rounds {
            st.done = true;
            Outgoing::Halt
        } else {
            Outgoing::Broadcast(1)
        }
    }

    fn is_done(&self, st: &ChatterState) -> bool {
        st.done
    }
}

/// Only node 0 broadcasts; every other node starts `done` (hence
/// quiescent under the default predicate) and is woken each round purely
/// by the frontier's message-wake rule. Steady state churns the
/// insert/remove/swap paths of the frontier bitsets with a two-node
/// active set on a 400-node graph.
#[derive(Clone, Copy, Debug)]
struct SparseTicker {
    rounds: u64,
}

#[derive(Clone, Debug)]
struct TickState {
    heard: u64,
    done: bool,
}

impl Protocol for SparseTicker {
    type State = TickState;
    type Msg = u64;

    fn init(&self, node: &NodeInfo) -> TickState {
        TickState {
            heard: 0,
            done: node.id != 0,
        }
    }

    fn round(&self, st: &mut TickState, node: &NodeInfo, inbox: &Inbox<u64>) -> Outgoing<u64> {
        for (_, &m) in inbox {
            st.heard += m;
        }
        if node.id == 0 {
            if node.round >= self.rounds {
                st.done = true;
                return Outgoing::Halt;
            }
            return Outgoing::Broadcast(1);
        }
        Outgoing::Silent
    }

    fn is_done(&self, st: &TickState) -> bool {
        st.done
    }
}

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn bytes_during(f: impl FnOnce()) -> u64 {
    let before = BYTES.load(Ordering::Relaxed);
    f();
    BYTES.load(Ordering::Relaxed) - before
}

#[test]
fn alloc_discipline() {
    serial_engine_steady_state_allocates_nothing();
    frontier_bookkeeping_steady_state_allocates_nothing();
    subgraph_scratch_extraction_is_component_proportional();
    flat_backend_steady_state_allocates_nothing();
}

fn serial_engine_steady_state_allocates_nothing() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let g = arbmis::graph::gen::gnp(400, 0.05, &mut rng);

    let run = |rounds: u64| {
        let proto = Chatter { rounds };
        let out = Simulator::new(&g, 3)
            .with_parallelism(Parallelism::Serial)
            .run(&proto, rounds + 10)
            .unwrap();
        assert_eq!(out.metrics.rounds, rounds + 1);
        std::hint::black_box(out);
    };

    // Warm up lazy runtime state (thread-locals, etc.) outside the window.
    run(4);

    let short = allocs_during(|| run(32));
    let long = allocs_during(|| run(256));
    assert_eq!(
        short, long,
        "serial engine allocated in steady-state rounds: \
         {short} allocations over 32 rounds vs {long} over 256"
    );
}

fn frontier_bookkeeping_steady_state_allocates_nothing() {
    let g = arbmis::graph::gen::path(400);

    let run = |rounds: u64| {
        let proto = SparseTicker { rounds };
        let out = Simulator::new(&g, 5)
            .with_parallelism(Parallelism::Serial)
            .run(&proto, rounds + 10)
            .unwrap();
        assert_eq!(out.metrics.rounds, rounds + 1);
        // The sparse frontier really was sparse: one message per
        // broadcasting round (node 0 has a single path neighbor).
        assert_eq!(out.metrics.messages, rounds);
        std::hint::black_box(out);
    };

    run(4);

    let short = allocs_during(|| run(32));
    let long = allocs_during(|| run(256));
    assert_eq!(
        short, long,
        "frontier bookkeeping allocated in steady-state rounds: \
         {short} allocations over 32 rounds vs {long} over 256"
    );
}

/// After one warm-up execution has sized every scratch vector (joiner
/// buffers grow to the largest per-round winner set, nothing else
/// grows), re-running the flat backend from `init()` must allocate
/// nothing at all: `reset()` rewinds in place — word fills on the
/// bit-packed masks, no per-node loops — and the round sweeps only
/// reuse buffers (DESIGN.md §11, §13). Runs are deterministic, so
/// repeat executions replay the exact same buffer demands. The degree
/// layout exercises the permuted path too: joiner re-sorting and the
/// pos↔original id mapping must also be alloc-free once warm.
fn flat_backend_steady_state_allocates_nothing() {
    use arbmis::flat::{FlatAlgo, FlatBackend, MisBackend, NodeOrder, ScanMode};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let g = arbmis::graph::gen::gnp(400, 0.02, &mut rng);

    for algo in [FlatAlgo::Luby, FlatAlgo::Metivier] {
        for order in [NodeOrder::Identity, NodeOrder::Degree] {
            for scan in [ScanMode::Sparse, ScanMode::Dense, ScanMode::Auto] {
                let mut b = FlatBackend::new(&g, 3, algo)
                    .with_scan(scan)
                    .with_order(order);
                let warm = b.run(10_000).unwrap();
                assert!(warm.rounds > 0);
                let reruns = allocs_during(|| {
                    for _ in 0..8 {
                        let rerun = b.run(10_000).unwrap();
                        assert_eq!(rerun.rounds, warm.rounds);
                    }
                });
                assert_eq!(
                    reruns, 0,
                    "flat backend ({algo:?}, {order:?}, {scan:?}) allocated \
                     {reruns} times across 8 warm re-runs"
                );
            }
        }
    }
}

/// `SubgraphScratch::induce` must cost O(|C| + m(C)) per component: the
/// byte total for extracting a fixed set of components is identical on a
/// parent graph 8× larger (no hidden O(n) term), stays within a small
/// per-component budget, and sits orders of magnitude below what one
/// legacy `InducedSubgraph::from_nodes` call spends on its O(n) tables.
fn subgraph_scratch_extraction_is_component_proportional() {
    use arbmis::graph::{Graph, InducedSubgraph, SubgraphScratch};

    // k disjoint 4-cycles: component c owns nodes 4c..4c+4.
    let build = |k: usize| {
        let mut edges = Vec::new();
        for c in 0..k {
            let b = 4 * c;
            edges.extend([(b, b + 1), (b + 1, b + 2), (b + 2, b + 3), (b, b + 3)]);
        }
        Graph::from_edges(4 * k, &edges)
    };
    let g_small = build(512); // n = 2048
    let g_big = build(4096); // n = 16384

    let mut scratch = SubgraphScratch::new();
    let mut extract = |g: &Graph| {
        // Warmup sizes the epoch tables for this graph outside the window.
        std::hint::black_box(scratch.induce(g, &[0, 1, 2, 3]).graph().m());
        bytes_during(|| {
            for c in 1..=256 {
                let b = 4 * c;
                let sub = scratch.induce(g, &[b, b + 1, b + 2, b + 3]);
                assert_eq!(sub.graph().m(), 4);
                std::hint::black_box(sub.to_parent(0));
            }
        })
    };
    let small = extract(&g_small);
    let big = extract(&g_big);
    assert_eq!(
        small, big,
        "scratch extraction bytes depend on parent graph size: \
         {small} at n=2048 vs {big} at n=16384"
    );
    let per_component = big / 256;
    assert!(
        per_component < 2048,
        "scratch extraction spent {per_component} bytes per 4-node component"
    );

    // Contrast: one legacy extraction allocates Θ(n) for its mask and
    // parent→local table alone.
    let legacy = bytes_during(|| {
        std::hint::black_box(InducedSubgraph::from_nodes(&g_big, &[0, 1, 2, 3]).n());
    });
    assert!(
        legacy >= g_big.n() as u64,
        "expected from_nodes to allocate O(n) = {} bytes, measured {legacy}",
        g_big.n()
    );
}
