//! Pins the zero-allocation steady state of the serial engine's message
//! plane: once the double-buffered arena and inbox entry lists have grown
//! to their working size (warmup), further rounds must not allocate.
//!
//! Strategy: run the same constant-traffic protocol for R rounds and for
//! 8R rounds under a counting global allocator. Both runs allocate the
//! same warmup set from scratch (states, planes, histogram buckets), so if
//! steady-state rounds allocate nothing the two totals are *equal*; any
//! per-round allocation would show up multiplied by the extra 7R rounds.
//!
//! This file holds exactly one test so no concurrent test pollutes the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use arbmis::congest::{Inbox, NodeInfo, Outgoing, Parallelism, Protocol, Simulator};

/// Every node broadcasts the constant `1` each round (constant per-round
/// traffic, constant message size, constant histogram bucket set) and
/// halts after `rounds` rounds.
#[derive(Clone, Copy, Debug)]
struct Chatter {
    rounds: u64,
}

#[derive(Clone, Debug)]
struct ChatterState {
    heard: u64,
    done: bool,
}

impl Protocol for Chatter {
    type State = ChatterState;
    type Msg = u64;

    fn init(&self, _node: &NodeInfo) -> ChatterState {
        ChatterState {
            heard: 0,
            done: false,
        }
    }

    fn round(&self, st: &mut ChatterState, node: &NodeInfo, inbox: &Inbox<u64>) -> Outgoing<u64> {
        for (_, &m) in inbox {
            st.heard += m;
        }
        if node.round >= self.rounds {
            st.done = true;
            Outgoing::Halt
        } else {
            Outgoing::Broadcast(1)
        }
    }

    fn is_done(&self, st: &ChatterState) -> bool {
        st.done
    }
}

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn serial_engine_steady_state_allocates_nothing() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let g = arbmis::graph::gen::gnp(400, 0.05, &mut rng);

    let run = |rounds: u64| {
        let proto = Chatter { rounds };
        let out = Simulator::new(&g, 3)
            .with_parallelism(Parallelism::Serial)
            .run(&proto, rounds + 10)
            .unwrap();
        assert_eq!(out.metrics.rounds, rounds + 1);
        std::hint::black_box(out);
    };

    // Warm up lazy runtime state (thread-locals, etc.) outside the window.
    run(4);

    let short = allocs_during(|| run(32));
    let long = allocs_during(|| run(256));
    assert_eq!(
        short, long,
        "serial engine allocated in steady-state rounds: \
         {short} allocations over 32 rounds vs {long} over 256"
    );
}
