//! Backend divergence localization and self-contained replay artifacts.
//!
//! When two [`MisBackend`]s disagree, the raw symptom is usually distant
//! from the cause: a different MIS mask at the end of a million-round
//! run. This module walks the failure back to its origin:
//!
//! 1. [`localize`] lockstep-replays two backends round by round and
//!    stops at the **first** divergent round, bisecting the divergence
//!    down to the minimal node set (the symmetric difference of the two
//!    joiner lists — every node in it is a genuine first-round
//!    disagreement, every node outside it agreed).
//! 2. [`ReplayArtifact`] packages everything needed to reproduce that
//!    divergence — graph edges, seed, algorithm, backend specs, and an
//!    optional injected [`CoinFlip`] — as a single JSON document that
//!    `arbmis replay` consumes, so a failure found in CI can be replayed
//!    byte-for-byte on a laptop.
//!
//! The module also hosts the shared digest helpers ([`joiner_digest`],
//! [`coin_digest`]) both backends use to fill their flight-recorder
//! records (`arbmis_obs::RoundRecord`): for a fixed graph/seed/algorithm
//! the `(round, joiners, joiner_digest, coin_digest)` columns are
//! **cross-backend stable**, so diffing two flight logs localizes a
//! divergence even post-mortem.

use crate::{BackendError, CongestBackend, FlatAlgo, FlatBackend, MisBackend, ScanMode};
use arbmis_congest::rng;
use arbmis_core::{bounded_arb, luby, metivier, ArbParams};
use arbmis_graph::digest::Fnv128;
use arbmis_graph::{Graph, NodeId, NodeOrder};
use serde::{Deserialize, Serialize};

/// Schema tag written into every replay artifact.
pub const REPLAY_SCHEMA: &str = "arbmis-replay/v1";

/// An injected single-coin perturbation, for divergence-tooling tests
/// and fault drills: "what if node `node`'s coin in iteration
/// `iteration` had come out differently?"
///
/// Only [`FlatBackend`] honors coin flips (the CONGEST backend is the
/// pristine reference). The flip applies at the decide step of the
/// matching iteration, to the matching node, only while it is active:
///
/// * Métivier / BoundedArb: the drawn priority `p` becomes
///   `(p ^ xor) | 1` (the low bit keeps the value a valid nonzero
///   priority).
/// * Luby: the mark bit is toggled when `xor != 0`.
///
/// A flip with `xor == 0` is a no-op for the priority protocols; use an
/// odd `xor` to guarantee a change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoinFlip {
    /// The perturbed node.
    pub node: NodeId,
    /// The protocol iteration (not round) whose coin is perturbed.
    pub iteration: u64,
    /// XOR mask applied to the drawn value.
    pub xor: u64,
}

/// Folds an FNV-1a 128 digest to the 64-bit fingerprint stored in
/// flight records.
fn fold(d: u128) -> u64 {
    (d as u64) ^ ((d >> 64) as u64)
}

/// FNV-1a fingerprint of an ascending joiner list (0 when empty).
pub fn joiner_digest(joiners: &[NodeId]) -> u64 {
    if joiners.is_empty() {
        return 0;
    }
    let mut h = Fnv128::new();
    for &v in joiners {
        h.write_u64(v as u64);
    }
    fold(h.finish())
}

/// The protocol iteration whose coins are consumed at `round`, or `None`
/// when `round` is not a decide round for `algo`.
///
/// Luby and Métivier decide at rounds `r ≡ 1 (mod 3)` with
/// `iter = r / 3`; BoundedArb follows its oblivious
/// `Θ × (3Λ + 2)` schedule (decides only inside the first `3Λ` rounds of
/// each scale).
pub fn decide_iteration(algo: &FlatAlgo, round: u64) -> Option<u64> {
    match algo {
        FlatAlgo::Luby | FlatAlgo::Metivier => (round % 3 == 1).then_some(round / 3),
        FlatAlgo::BoundedArb { params, .. } => {
            let rps = 3 * params.lambda + bounded_arb::ROUNDS_PER_SCALE_END;
            let total = u64::from(params.theta) * rps;
            if round >= total {
                return None;
            }
            let within = round % rps;
            if within < 3 * params.lambda && within % 3 == 1 {
                Some((round / rps) * params.lambda + within / 3)
            } else {
                None
            }
        }
    }
}

/// FNV-1a fingerprint of the coin stream consumed at `round`: the
/// `(node, coin)` pairs of every active node in ascending order. Returns
/// 0 on non-decide rounds or when no node is active.
///
/// The digested coin is the **pure** per-node draw — `draw(TAG_MARK)`
/// for Luby, `draw_priority` for Métivier/BoundedArb (ignoring the ρ_k
/// cutoff) — so the digest is a function of `(seed, algo, round,
/// active set)` only, identical across backends at every decide round.
/// An injected [`CoinFlip`] XORs the matching node's coin, which is
/// exactly how a perturbed flat run's flight log reveals *where* its
/// coins diverged from the pristine reference.
pub fn coin_digest(
    algo: &FlatAlgo,
    seed: u64,
    n: usize,
    round: u64,
    active: impl Fn(NodeId) -> bool,
    flip: Option<CoinFlip>,
) -> u64 {
    let Some(iter) = decide_iteration(algo, round) else {
        return 0;
    };
    let mut h = Fnv128::new();
    let mut any = false;
    for v in 0..n {
        if !active(v) {
            continue;
        }
        any = true;
        let mut coin = match algo {
            FlatAlgo::Luby => rng::draw(seed, v, iter, luby::TAG_MARK),
            FlatAlgo::Metivier => rng::draw_priority(seed, v, iter, metivier::TAG_PRIORITY, n),
            FlatAlgo::BoundedArb { .. } => {
                rng::draw_priority(seed, v, iter, bounded_arb::TAG_PRIORITY, n)
            }
        };
        if let Some(f) = flip {
            if f.node == v && f.iteration == iter {
                coin ^= f.xor;
            }
        }
        h.write_u64(v as u64);
        h.write_u64(coin);
    }
    if !any {
        return 0;
    }
    fold(h.finish())
}

/// What kind of disagreement [`localize`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The joiner lists differ at [`Divergence::round`].
    Joiners,
    /// One backend terminated while the other still has pending nodes.
    Done,
}

impl DivergenceKind {
    /// Stable lowercase label for artifacts and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DivergenceKind::Joiners => "joiners",
            DivergenceKind::Done => "done",
        }
    }
}

/// The first round where two lockstep backends disagree, with the
/// minimal divergent node set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// The first divergent round (0-based, the round that was executed).
    pub round: u64,
    /// What diverged.
    pub kind: DivergenceKind,
    /// Symmetric difference of the two joiner lists, ascending — the
    /// minimal set of nodes whose fate differs at `round`. Empty for
    /// [`DivergenceKind::Done`].
    pub nodes: Vec<NodeId>,
}

/// Ascending symmetric difference of two ascending node lists.
fn sym_diff(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Lockstep-replays `a` and `b` from a fresh `init` and returns the
/// first divergence, or `Ok(None)` when they agree to completion.
///
/// Each round both backends step once and their joiner lists are
/// compared; because joiners are ascending, the symmetric difference is
/// the exact (minimal) set of first-round disagreements — no node that
/// both backends treated identically appears in it.
///
/// # Errors
///
/// [`BackendError::RoundLimitExceeded`] if no divergence (and no
/// termination) occurs within `max_rounds`; any backend step error.
pub fn localize(
    a: &mut dyn MisBackend,
    b: &mut dyn MisBackend,
    max_rounds: u64,
) -> Result<Option<Divergence>, BackendError> {
    a.init();
    b.init();
    loop {
        if a.is_done() != b.is_done() {
            return Ok(Some(Divergence {
                round: a.round().min(b.round()),
                kind: DivergenceKind::Done,
                nodes: Vec::new(),
            }));
        }
        if a.is_done() {
            return Ok(None);
        }
        if a.round() >= max_rounds {
            return Err(BackendError::RoundLimitExceeded { limit: max_rounds });
        }
        a.step_round()?;
        b.step_round()?;
        if a.joiners() != b.joiners() {
            return Ok(Some(Divergence {
                round: a.round() - 1,
                kind: DivergenceKind::Joiners,
                nodes: sym_diff(a.joiners(), b.joiners()),
            }));
        }
    }
}

/// BoundedArb schedule parameters carried inside an artifact.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArbSpec {
    /// The instantiated schedule.
    pub params: ArbParams,
    /// Whether the ρ_k cutoff is active.
    pub rho_cutoff: bool,
}

/// One backend's construction recipe inside an artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackendSpec {
    /// `"flat"` or `"congest"`.
    pub kind: String,
    /// Flat: `"auto"` / `"sparse"` / `"dense"`. Congest: `"frontier"` /
    /// `"full"` (the simulator's scheduling mode).
    pub scan: String,
    /// Injected perturbation (flat only).
    pub coin_flip: Option<CoinFlip>,
    /// Flat execution layout (`"identity"` / `"degree"` / `"bfs"`),
    /// layout-invisible by the DESIGN.md §13 contract but carried so a
    /// replay exercises the exact engine configuration that diverged.
    /// Absent in pre-layout artifacts (defaults to identity).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub order: Option<String>,
}

impl BackendSpec {
    /// An unperturbed flat backend with auto scan.
    pub fn flat() -> Self {
        BackendSpec {
            kind: "flat".into(),
            scan: "auto".into(),
            coin_flip: None,
            order: None,
        }
    }

    /// The pristine CONGEST reference backend.
    pub fn congest() -> Self {
        BackendSpec {
            kind: "congest".into(),
            scan: "frontier".into(),
            coin_flip: None,
            order: None,
        }
    }

    /// Sets the coin flip (builder style).
    #[must_use]
    pub fn with_coin_flip(mut self, flip: CoinFlip) -> Self {
        self.coin_flip = Some(flip);
        self
    }

    /// Sets the flat execution layout (builder style).
    #[must_use]
    pub fn with_order(mut self, order: NodeOrder) -> Self {
        self.order = Some(order.label().into());
        self
    }

    fn describe(&self) -> String {
        let mut s = format!("{} scan={}", self.kind, self.scan);
        if let Some(o) = &self.order {
            s.push_str(&format!(" order={o}"));
        }
        if let Some(f) = self.coin_flip {
            s.push_str(&format!(
                " coin_flip=node {} iter {} xor {:#x}",
                f.node, f.iteration, f.xor
            ));
        }
        s
    }
}

/// The divergence an artifact's author observed, for replay verdicts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpectedDivergence {
    /// Expected first divergent round.
    pub round: u64,
    /// Expected kind label (`"joiners"` / `"done"` / `"none"`).
    pub kind: String,
    /// Expected minimal divergent node set.
    pub nodes: Vec<NodeId>,
}

/// A self-contained reproduction of a backend divergence: the graph,
/// the seed, the algorithm, both backend recipes, and (optionally) the
/// divergence the author saw. `arbmis replay` rebuilds everything from
/// this document alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayArtifact {
    /// Always [`REPLAY_SCHEMA`].
    pub schema: String,
    /// Node count.
    pub n: usize,
    /// Undirected edges, each as `(min, max)`, ascending.
    pub edges: Vec<(NodeId, NodeId)>,
    /// RNG seed.
    pub seed: u64,
    /// `"luby"` / `"metivier"` / `"bounded_arb"`.
    pub algo: String,
    /// Required when `algo == "bounded_arb"`.
    pub arb: Option<ArbSpec>,
    /// Backend A's recipe.
    pub a: BackendSpec,
    /// Backend B's recipe.
    pub b: BackendSpec,
    /// Round budget for the replay.
    pub max_rounds: u64,
    /// The divergence observed when the artifact was written.
    pub expected: Option<ExpectedDivergence>,
}

/// Outcome of [`ReplayArtifact::replay`].
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayReport {
    /// The divergence the replay found (None: backends agree).
    pub divergence: Option<Divergence>,
    /// Whether it matches the artifact's `expected` record (None when
    /// the artifact carries no expectation).
    pub matches_expected: Option<bool>,
}

impl ReplayArtifact {
    /// Builds an artifact from a live case. Edges are extracted from `g`
    /// in canonical `(min, max)` ascending order, so two artifacts over
    /// the same graph serialize identically.
    pub fn from_case(
        g: &Graph,
        seed: u64,
        algo: FlatAlgo,
        a: BackendSpec,
        b: BackendSpec,
        max_rounds: u64,
        expected: Option<&Divergence>,
    ) -> Self {
        let mut edges = Vec::new();
        for v in 0..g.n() {
            for &u in g.neighbors(v) {
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        let arb = match algo {
            FlatAlgo::BoundedArb { params, rho_cutoff } => Some(ArbSpec { params, rho_cutoff }),
            _ => None,
        };
        ReplayArtifact {
            schema: REPLAY_SCHEMA.into(),
            n: g.n(),
            edges,
            seed,
            algo: algo.label().into(),
            arb,
            a,
            b,
            max_rounds,
            expected: expected.map(|d| ExpectedDivergence {
                round: d.round,
                kind: d.kind.label().into(),
                nodes: d.nodes.clone(),
            }),
        }
    }

    /// Serializes to pretty JSON (stable field order, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("artifact serialization");
        s.push('\n');
        s
    }

    /// Parses and validates an artifact.
    ///
    /// # Errors
    ///
    /// A message naming the malformed part (bad JSON, wrong schema tag,
    /// unknown algorithm, missing `arb` block, out-of-range edge).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let art: ReplayArtifact =
            serde_json::from_str(s).map_err(|e| format!("replay artifact: {e}"))?;
        if art.schema != REPLAY_SCHEMA {
            return Err(format!(
                "replay artifact: unsupported schema {:?} (want {REPLAY_SCHEMA:?})",
                art.schema
            ));
        }
        art.algo()?;
        for &(u, v) in &art.edges {
            if u >= art.n || v >= art.n {
                return Err(format!(
                    "replay artifact: edge ({u}, {v}) out of range for n={}",
                    art.n
                ));
            }
        }
        Ok(art)
    }

    /// The algorithm this artifact replays.
    ///
    /// # Errors
    ///
    /// Unknown `algo` label, or `bounded_arb` without an `arb` block.
    pub fn algo(&self) -> Result<FlatAlgo, String> {
        match self.algo.as_str() {
            "luby" => Ok(FlatAlgo::Luby),
            "metivier" => Ok(FlatAlgo::Metivier),
            "bounded_arb" => {
                let spec = self
                    .arb
                    .as_ref()
                    .ok_or("replay artifact: bounded_arb without arb params")?;
                Ok(FlatAlgo::BoundedArb {
                    params: spec.params,
                    rho_cutoff: spec.rho_cutoff,
                })
            }
            other => Err(format!("replay artifact: unknown algo {other:?}")),
        }
    }

    /// Rebuilds the graph from the edge list.
    pub fn graph(&self) -> Graph {
        Graph::from_edges(self.n, &self.edges)
    }

    fn build_backend<'g>(
        &self,
        g: &'g Graph,
        spec: &BackendSpec,
    ) -> Result<Box<dyn MisBackend + 'g>, String> {
        let algo = self.algo()?;
        match spec.kind.as_str() {
            "flat" => {
                let scan = match spec.scan.as_str() {
                    "auto" => ScanMode::Auto,
                    "sparse" => ScanMode::Sparse,
                    "dense" => ScanMode::Dense,
                    other => return Err(format!("replay artifact: unknown flat scan {other:?}")),
                };
                let mut b = FlatBackend::new(g, self.seed, algo).with_scan(scan);
                if let Some(o) = &spec.order {
                    let order = NodeOrder::parse(o).map_err(|e| format!("replay artifact: {e}"))?;
                    b = b.with_order(order);
                }
                if let Some(f) = spec.coin_flip {
                    b = b.with_coin_flip(f);
                }
                Ok(Box::new(b))
            }
            "congest" => {
                if spec.coin_flip.is_some() {
                    return Err("replay artifact: congest backend cannot inject coin flips".into());
                }
                let full_scan = match spec.scan.as_str() {
                    "frontier" => false,
                    "full" => true,
                    other => {
                        return Err(format!("replay artifact: unknown congest scan {other:?}"))
                    }
                };
                Ok(Box::new(
                    CongestBackend::new(g, self.seed, algo).with_full_scan(full_scan),
                ))
            }
            other => Err(format!("replay artifact: unknown backend kind {other:?}")),
        }
    }

    /// Rebuilds both backends and reruns [`localize`].
    ///
    /// # Errors
    ///
    /// Artifact validation errors, or a backend failure during replay
    /// (rendered as a string so the CLI can print it verbatim).
    pub fn replay(&self) -> Result<ReplayReport, String> {
        let g = self.graph();
        let mut a = self.build_backend(&g, &self.a)?;
        let mut b = self.build_backend(&g, &self.b)?;
        let divergence =
            localize(a.as_mut(), b.as_mut(), self.max_rounds).map_err(|e| e.to_string())?;
        let matches_expected = self.expected.as_ref().map(|e| match &divergence {
            None => e.kind == "none",
            Some(d) => e.round == d.round && e.kind == d.kind.label() && e.nodes == d.nodes,
        });
        Ok(ReplayReport {
            divergence,
            matches_expected,
        })
    }

    /// Deterministic human-readable replay report (what `arbmis replay`
    /// prints; byte-stable for a fixed artifact).
    pub fn render(&self, report: &ReplayReport) -> String {
        let mut out = String::new();
        out.push_str(&format!("replay artifact: {}\n", self.schema));
        out.push_str(&format!(
            "graph: n={} m={} seed={} algo={}\n",
            self.n,
            self.edges.len(),
            self.seed,
            self.algo
        ));
        out.push_str(&format!("a: {}\n", self.a.describe()));
        out.push_str(&format!("b: {}\n", self.b.describe()));
        match &report.divergence {
            None => out.push_str("divergence: none (backends agree to completion)\n"),
            Some(d) => out.push_str(&format!(
                "divergence: round {} kind={} nodes={:?}\n",
                d.round,
                d.kind.label(),
                d.nodes
            )),
        }
        match report.matches_expected {
            None => out.push_str("verdict: no expectation recorded\n"),
            Some(true) => out.push_str("verdict: divergence matches expected\n"),
            Some(false) => {
                if let Some(e) = &self.expected {
                    out.push_str(&format!(
                        "expected: round {} kind={} nodes={:?}\n",
                        e.round, e.kind, e.nodes
                    ));
                }
                out.push_str("verdict: MISMATCH with expected\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::gen;

    #[test]
    fn identical_backends_do_not_diverge() {
        let g = gen::path(20);
        let mut a = FlatBackend::new(&g, 7, FlatAlgo::Metivier);
        let mut b = CongestBackend::new(&g, 7, FlatAlgo::Metivier);
        assert_eq!(localize(&mut a, &mut b, 10_000).unwrap(), None);
    }

    #[test]
    fn coin_flip_divergence_is_localized() {
        let g = gen::cycle(16);
        let flip = CoinFlip {
            node: 5,
            iteration: 0,
            xor: u64::MAX >> 1,
        };
        let mut a = FlatBackend::new(&g, 3, FlatAlgo::Metivier).with_coin_flip(flip);
        let mut b = CongestBackend::new(&g, 3, FlatAlgo::Metivier);
        let d = localize(&mut a, &mut b, 10_000).unwrap().expect("diverges");
        // The flip hits iteration 0, whose joiners land at round 2.
        assert_eq!(d.round, 2);
        assert_eq!(d.kind, DivergenceKind::Joiners);
        assert!(!d.nodes.is_empty());
        assert!(d.nodes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sym_diff_is_minimal_and_sorted() {
        assert_eq!(sym_diff(&[1, 3, 5], &[1, 4, 5]), vec![3, 4]);
        assert_eq!(sym_diff(&[], &[2]), vec![2]);
        assert_eq!(sym_diff(&[2], &[2]), Vec::<NodeId>::new());
        assert_eq!(sym_diff(&[0, 9], &[]), vec![0, 9]);
    }

    #[test]
    fn decide_iteration_schedules() {
        assert_eq!(decide_iteration(&FlatAlgo::Luby, 0), None);
        assert_eq!(decide_iteration(&FlatAlgo::Luby, 1), Some(0));
        assert_eq!(decide_iteration(&FlatAlgo::Metivier, 7), Some(2));
        let params = ArbParams::new(3, 100_000, Default::default());
        assert!(params.theta >= 2, "need a multi-scale schedule");
        let algo = FlatAlgo::BoundedArb {
            params,
            rho_cutoff: true,
        };
        let rps = 3 * params.lambda + bounded_arb::ROUNDS_PER_SCALE_END;
        // First decide of scale 2 is one round past the scale boundary.
        assert_eq!(decide_iteration(&algo, rps + 1), Some(params.lambda));
        // Scale-end rounds never decide.
        assert_eq!(decide_iteration(&algo, 3 * params.lambda), None);
        let total = u64::from(params.theta) * rps;
        assert_eq!(decide_iteration(&algo, total + 1), None);
    }

    #[test]
    fn coin_digest_zero_off_decide_rounds_and_flip_changes_it() {
        let algo = FlatAlgo::Metivier;
        let active = |_v: NodeId| true;
        assert_eq!(coin_digest(&algo, 1, 8, 0, active, None), 0);
        let base = coin_digest(&algo, 1, 8, 1, active, None);
        assert_ne!(base, 0);
        let flip = CoinFlip {
            node: 3,
            iteration: 0,
            xor: 0xff,
        };
        assert_ne!(coin_digest(&algo, 1, 8, 1, active, Some(flip)), base);
        // A flip for a later iteration leaves round 1 untouched.
        let later = CoinFlip {
            node: 3,
            iteration: 2,
            xor: 0xff,
        };
        assert_eq!(coin_digest(&algo, 1, 8, 1, active, Some(later)), base);
        // No active nodes → 0.
        assert_eq!(coin_digest(&algo, 1, 8, 1, |_| false, None), 0);
    }

    #[test]
    fn artifact_roundtrips_and_replays() {
        let g = gen::cycle(16);
        let flip = CoinFlip {
            node: 5,
            iteration: 0,
            xor: u64::MAX >> 1,
        };
        let mut a = FlatBackend::new(&g, 3, FlatAlgo::Metivier).with_coin_flip(flip);
        let mut b = CongestBackend::new(&g, 3, FlatAlgo::Metivier);
        let d = localize(&mut a, &mut b, 10_000).unwrap().unwrap();
        let art = ReplayArtifact::from_case(
            &g,
            3,
            FlatAlgo::Metivier,
            BackendSpec::flat().with_coin_flip(flip),
            BackendSpec::congest(),
            10_000,
            Some(&d),
        );
        let json = art.to_json();
        let back = ReplayArtifact::from_json(&json).unwrap();
        assert_eq!(back, art);
        assert_eq!(back.to_json(), json, "serialization is byte-stable");
        let report = back.replay().unwrap();
        assert_eq!(report.matches_expected, Some(true));
        assert_eq!(report.divergence.as_ref(), Some(&d));
        let render = back.render(&report);
        assert!(
            render.contains("verdict: divergence matches expected"),
            "{render}"
        );
    }

    #[test]
    fn artifact_rejects_malformed_inputs() {
        assert!(ReplayArtifact::from_json("not json").is_err());
        let g = gen::path(4);
        let mut art = ReplayArtifact::from_case(
            &g,
            1,
            FlatAlgo::Luby,
            BackendSpec::flat(),
            BackendSpec::congest(),
            100,
            None,
        );
        art.schema = "bogus".into();
        assert!(ReplayArtifact::from_json(&art.to_json()).is_err());
        art.schema = REPLAY_SCHEMA.into();
        art.algo = "quantum".into();
        assert!(ReplayArtifact::from_json(&art.to_json()).is_err());
        art.algo = "bounded_arb".into(); // no arb block
        assert!(ReplayArtifact::from_json(&art.to_json()).is_err());
        art.algo = "luby".into();
        art.edges.push((0, 99));
        assert!(ReplayArtifact::from_json(&art.to_json()).is_err());
    }

    #[test]
    fn bounded_arb_artifact_replays() {
        let g = gen::complete(9);
        let params = ArbParams::new(3, 8, Default::default());
        let algo = FlatAlgo::BoundedArb {
            params,
            rho_cutoff: true,
        };
        let art = ReplayArtifact::from_case(
            &g,
            5,
            algo,
            BackendSpec::flat(),
            BackendSpec::congest(),
            1_000_000,
            None,
        );
        let back = ReplayArtifact::from_json(&art.to_json()).unwrap();
        let report = back.replay().unwrap();
        assert_eq!(report.divergence, None);
        assert_eq!(report.matches_expected, None);
    }
}
