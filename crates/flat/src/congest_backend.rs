//! The reference backend: a thin adapter over the CONGEST simulator.

use crate::{divergence, BackendError, FlatAlgo, MisBackend};
use arbmis_congest::{BitMask, Simulator, Stepper};
use arbmis_core::protocols::{BoundedArbProtocol, LubyProtocol, MetivierProtocol, MisNodeState};
use arbmis_graph::{Graph, NodeId};
use arbmis_obs::{FlightRecorder, RoundRecord};

/// All three MIS protocols share `MisNodeState`, so the adapter only
/// needs to dispatch the stepper calls.
enum Inner<'g> {
    Luby(Stepper<'g, LubyProtocol>),
    Metivier(Stepper<'g, MetivierProtocol>),
    BoundedArb(Stepper<'g, BoundedArbProtocol>),
}

macro_rules! dispatch {
    ($inner:expr, $st:ident => $body:expr) => {
        match $inner {
            Inner::Luby($st) => $body,
            Inner::Metivier($st) => $body,
            Inner::BoundedArb($st) => $body,
        }
    };
}

/// [`MisBackend`] over the real message-passing simulator.
///
/// Each [`step_round`](MisBackend::step_round) runs one simulator round
/// (messages, budget checks, frontier bookkeeping included) and diffs
/// `in_mis` across node states to report joiners. This is the oracle the
/// flat engine is verified against.
///
/// With a flight recorder attached, every round leaves **two** records:
/// the simulator's own `"congest"` record (messages/bits/frontier) and
/// this adapter's `"congest-backend"` record carrying the joiner/coin
/// digests, whose `(round, joiners, joiner_digest, coin_digest)` columns
/// are directly comparable to a [`crate::FlatBackend`]'s `"flat"`
/// records.
pub struct CongestBackend<'g> {
    g: &'g Graph,
    seed: u64,
    algo: FlatAlgo,
    full_scan: bool,
    flight: FlightRecorder,
    inner: Inner<'g>,
    mis: BitMask,
    joiners: Vec<NodeId>,
}

fn build<'g>(
    g: &'g Graph,
    seed: u64,
    algo: FlatAlgo,
    full_scan: bool,
    flight: &FlightRecorder,
) -> Inner<'g> {
    let sim = Simulator::new(g, seed)
        .with_full_scan(full_scan)
        .with_flight(flight.clone());
    match algo {
        FlatAlgo::Luby => Inner::Luby(sim.stepper(LubyProtocol)),
        FlatAlgo::Metivier => Inner::Metivier(sim.stepper(MetivierProtocol)),
        FlatAlgo::BoundedArb { params, rho_cutoff } => {
            Inner::BoundedArb(sim.stepper(BoundedArbProtocol { params, rho_cutoff }))
        }
    }
}

impl<'g> CongestBackend<'g> {
    /// A congest backend for `algo` on `g` under `seed`.
    pub fn new(g: &'g Graph, seed: u64, algo: FlatAlgo) -> Self {
        let flight = arbmis_obs::global_flight();
        CongestBackend {
            g,
            seed,
            algo,
            full_scan: false,
            inner: build(g, seed, algo, false, &flight),
            flight,
            mis: BitMask::new(g.n()),
            joiners: Vec::new(),
        }
    }

    /// Forwards the simulator's full-scan knob (activate every node
    /// every round instead of frontier-driven scheduling). Both modes
    /// must produce identical executions; the equivalence suite checks
    /// the backend against each.
    #[must_use]
    pub fn with_full_scan(mut self, full_scan: bool) -> Self {
        self.full_scan = full_scan;
        self.inner = build(self.g, self.seed, self.algo, full_scan, &self.flight);
        self
    }

    /// Routes per-round flight records (both the simulator's and this
    /// adapter's) through `flight` instead of the global ring.
    #[must_use]
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self.inner = build(self.g, self.seed, self.algo, self.full_scan, &self.flight);
        self
    }

    /// The flight recorder this backend writes to.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The per-node protocol states (for oracle tests that compare
    /// `active` / `bad` flags beyond the MIS mask).
    pub fn states(&self) -> &[MisNodeState] {
        dispatch!(&self.inner, st => st.states())
    }
}

impl MisBackend for CongestBackend<'_> {
    fn init(&mut self) {
        self.inner = build(self.g, self.seed, self.algo, self.full_scan, &self.flight);
        self.mis.clear_all();
        self.joiners.clear();
    }

    fn step_round(&mut self) -> Result<(), BackendError> {
        self.joiners.clear();
        let r = self.round();
        // Flight capture needs the active set *entering* the round; the
        // O(n) state scan only runs with a recorder attached, and reads
        // protocol state without touching it (observation only).
        let (frontier, coin_digest) = if self.flight.enabled() {
            let states = dispatch!(&self.inner, st => st.states());
            let frontier = states.iter().filter(|s| s.active).count() as u64;
            let coin = divergence::coin_digest(
                &self.algo,
                self.seed,
                self.g.n(),
                r,
                |v| states[v].active,
                None,
            );
            (frontier, coin)
        } else {
            (0, 0)
        };
        let states = dispatch!(&mut self.inner, st => {
            st.step()?;
            st.states()
        });
        for (v, s) in states.iter().enumerate() {
            if s.in_mis && !self.mis.test(v) {
                self.mis.set(v);
                self.joiners.push(v);
            }
        }
        if self.flight.enabled() {
            self.flight.record(RoundRecord {
                engine: "congest-backend",
                round: r,
                frontier,
                joiners: self.joiners.len() as u64,
                joiner_digest: divergence::joiner_digest(&self.joiners),
                coin_digest,
                messages: 0,
                bits: 0,
                scan: "-",
                span_seq: 0,
            });
        }
        Ok(())
    }

    fn joiners(&self) -> &[NodeId] {
        &self.joiners
    }

    fn is_done(&self) -> bool {
        dispatch!(&self.inner, st => st.is_done())
    }

    fn mis(&self) -> &BitMask {
        &self.mis
    }

    fn round(&self) -> u64 {
        dispatch!(&self.inner, st => st.round())
    }
}
