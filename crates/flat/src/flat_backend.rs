//! The flat engine: MIS rounds as frontier sweeps over CSR adjacency.

use crate::divergence::{self, CoinFlip};
use crate::{BackendError, FlatAlgo, MisBackend, ScanMode};
use arbmis_congest::{execute_indexed, rng, BitMask, Frontier, Parallelism};
use arbmis_core::{bounded_arb, luby, metivier, ArbParams};
use arbmis_graph::NodeId;
use arbmis_graph::{Graph, NodeOrder, Permutation};
use arbmis_obs::{FlightRecorder, Recorder, RoundRecord};

/// Shared-memory replay of the CONGEST MIS protocols.
///
/// No message objects: a round is one or two sweeps over the active set,
/// reading neighbor flags straight out of word-packed [`BitMask`]es —
/// a neighbor probe costs 1 bit of an `n/8`-byte array, and dense
/// sweeps walk 64 nodes per word via `trailing_zeros`. The sweep reads
/// either the two-level [`Frontier`] (sparse: summary-skipping) or its
/// flat word array (dense), chosen per round from the active-set
/// density — both directions visit the active nodes in ascending order,
/// so the execution is identical either way.
///
/// # Layout independence (DESIGN.md §13)
///
/// With [`with_order`](FlatBackend::with_order), the engine scans a
/// *relabeled* copy of the CSR (hubs-first or BFS-clustered) for cache
/// locality, but every coin draw is keyed by the **original** node id,
/// every tie-break compares original ids, and joiners are mapped back
/// to original ids (and re-sorted) before they are reported. The
/// permutation is an execution detail: joiner sets, round counts, the
/// final MIS, and all flight-record digests are byte-identical to the
/// unpermuted run.
///
/// # Deterministic parallelism
///
/// With [`with_threads`](FlatBackend::with_threads)` > 1`, decide and
/// bad-exit sweeps fan out over word-aligned chunks on the
/// [`execute_indexed`] work-stealing pool. Each chunk collects its
/// winners in ascending order into a private buffer; buffers are
/// concatenated in chunk index order (= ascending node order), so the
/// result is bit-identical to the serial sweep at every thread count —
/// the same contract the CONGEST parallel engine keeps. Only the
/// single-threaded path is steady-state alloc-free.
///
/// Randomness is the counter-pure [`rng`] keyed by
/// `(seed, node, iteration, tag)`, the same draws the CONGEST protocols
/// make, which is what makes this backend round-identical to
/// [`crate::CongestBackend`].
pub struct FlatBackend<'g> {
    g: &'g Graph,
    seed: u64,
    algo: FlatAlgo,
    scan: ScanMode,
    order: NodeOrder,
    /// Relabeled execution layout; `None` runs directly on `g`.
    layout: Option<Box<Layout>>,
    /// Worker threads for the parallel sweep path (1 = serial).
    threads: usize,
    recorder: Recorder,
    flight: FlightRecorder,
    /// Injected single-coin perturbation (divergence drills); `None` in
    /// normal operation.
    coin_flip: Option<CoinFlip>,
    /// Effective sweep density of the previous round, for the
    /// `flat_scan_mode_flips` counter. Observation-only.
    last_dense: Option<bool>,
    round: u64,
    /// Nodes that have not yet halted (the simulator's `pending`).
    unfinished: usize,
    /// Active set in layout positions; its inner mask doubles as the
    /// dense word-sweep and the parallel chunking substrate.
    active: Frontier,
    active_count: usize,
    /// MIS membership, **original** id space (write-only in hot loops).
    in_mis: BitMask,
    /// Bad set (BoundedArb exiles), **original** id space.
    bad: BitMask,
    /// `active_deg[p]` = number of active neighbors of position `p`,
    /// maintained incrementally: deactivating decrements all neighbors.
    active_deg: Vec<u32>,
    /// Per-iteration priority scratch (Métivier / BoundedArb), layout
    /// positions. Stale for inactive nodes — reads are gated on active.
    prio: Vec<u64>,
    /// Per-iteration mark scratch (Luby), layout positions. Stale for
    /// inactive nodes.
    marked: BitMask,
    /// `64 - priority_bits(n)`, hoisted: [`rng::draw_priority`]
    /// recomputes a floating-point `⌈log₂ n⌉` on every draw, which the
    /// fill sweep would otherwise pay per active node per iteration.
    prio_shift: u32,
    /// Whether the protocol ever reads `active_deg` (Luby's mark
    /// probability and keys, BoundedArb's ρ_k cutoff and bad exits).
    /// Métivier does not, so its exit path skips degree maintenance —
    /// see [`deactivate_in`].
    track_deg: bool,
    /// Winners of the current iteration, ascending layout positions.
    wins: Vec<NodeId>,
    /// Joiners of the last executed round, ascending **original** ids.
    joiners: Vec<NodeId>,
    /// Deactivated but not yet halted: in the simulator these nodes halt
    /// at their next announce-type round; we retire them there so round
    /// counts match.
    retiring: Vec<NodeId>,
    /// Scratch for bad-exit violators (snapshot before exiling).
    removals: Vec<NodeId>,
    /// Per-chunk winner buffers for the parallel sweep, reused across
    /// rounds.
    chunk_bufs: Vec<Vec<NodeId>>,
    obs_flushed: bool,
}

/// A cache-aware execution layout: the permutation and the relabeled
/// CSR the hot loops actually scan.
struct Layout {
    perm: Permutation,
    pg: Graph,
}

/// Visits every active node in ascending order, dense (flat word walk)
/// or sparse (summary-skipping frontier walk).
fn sweep(dense: bool, frontier: &Frontier, mut f: impl FnMut(NodeId)) {
    if dense {
        for v in frontier.mask().iter() {
            f(v);
        }
    } else {
        for v in frontier.iter() {
            f(v);
        }
    }
}

/// Removes position `v` from the active set: clears the frontier bit,
/// decrements every neighbor's active degree (when the protocol reads
/// degrees at all), and queues `v` to halt at the next announce-type
/// round. Free function over the split-off fields so callers can hold
/// the execution graph across calls.
///
/// `track_deg = false` skips the decrement loop — over a run it is 2m
/// random u32 read-modify-writes, the single largest memory cost of the
/// exit path at large n, and Métivier never reads `active_deg`.
fn deactivate_in(
    eg: &Graph,
    active: &mut Frontier,
    active_count: &mut usize,
    active_deg: &mut [u32],
    retiring: &mut Vec<NodeId>,
    track_deg: bool,
    v: NodeId,
) {
    debug_assert!(active.contains(v));
    active.remove(v);
    *active_count -= 1;
    retiring.push(v);
    if track_deg {
        for &u in eg.neighbors(v) {
            active_deg[u] -= 1;
        }
    }
}

/// Shared pointer for disjoint-range parallel writes. Each chunk of the
/// parallel sweep writes only indices inside its own word-aligned
/// node range (or only its own per-chunk buffer slot), so no two
/// workers ever touch the same element or the same backing word.
struct ShardPtr<T>(*mut T);
unsafe impl<T: Send> Send for ShardPtr<T> {}
unsafe impl<T: Send> Sync for ShardPtr<T> {}

impl<T> ShardPtr<T> {
    /// Pointer to element `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds, and no other thread may access element
    /// `i` (or, for sub-word bit writes, its backing word) concurrently.
    unsafe fn at(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

impl<'g> FlatBackend<'g> {
    /// A flat backend for `algo` on `g` under `seed`, ready at round 0.
    pub fn new(g: &'g Graph, seed: u64, algo: FlatAlgo) -> Self {
        let n = g.n();
        let mut b = FlatBackend {
            g,
            seed,
            algo,
            scan: ScanMode::Auto,
            order: NodeOrder::Identity,
            layout: None,
            threads: 1,
            recorder: arbmis_obs::global(),
            flight: arbmis_obs::global_flight(),
            coin_flip: None,
            last_dense: None,
            round: 0,
            unfinished: 0,
            active: Frontier::new(n),
            active_count: 0,
            in_mis: BitMask::new(n),
            bad: BitMask::new(n),
            active_deg: vec![0; n],
            prio: vec![0; n],
            marked: BitMask::new(n),
            prio_shift: 64 - rng::priority_bits(n),
            track_deg: !matches!(algo, FlatAlgo::Metivier),
            wins: Vec::new(),
            joiners: Vec::new(),
            retiring: Vec::new(),
            removals: Vec::new(),
            chunk_bufs: Vec::new(),
            obs_flushed: false,
        };
        b.reset();
        b
    }

    /// Overrides the sweep direction (default [`ScanMode::Auto`]).
    #[must_use]
    pub fn with_scan(mut self, scan: ScanMode) -> Self {
        self.scan = scan;
        self
    }

    /// Scans in `order`'s layout (default [`NodeOrder::Identity`]).
    /// Purely an execution detail: joiners, rounds, and the MIS are
    /// byte-identical across orders (see the type-level docs).
    #[must_use]
    pub fn with_order(mut self, order: NodeOrder) -> Self {
        self.order = order;
        self.layout = match order {
            NodeOrder::Identity => None,
            _ => {
                let perm = order.permutation(self.g);
                let pg = self.g.relabel(&perm);
                Some(Box::new(Layout { perm, pg }))
            }
        };
        self.reset();
        self
    }

    /// Worker threads for the deterministic parallel sweep (default 1 =
    /// serial; results are bit-identical at every count).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Routes observability through `recorder` instead of the global one.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Routes per-round flight records through `flight` instead of the
    /// global ring.
    #[must_use]
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// The flight recorder this backend writes to.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Injects a single-coin perturbation (see [`CoinFlip`]). For
    /// divergence-tooling tests; pristine runs leave this unset.
    #[must_use]
    pub fn with_coin_flip(mut self, flip: CoinFlip) -> Self {
        self.coin_flip = Some(flip);
        self
    }

    /// The node order this backend scans in.
    pub fn order(&self) -> NodeOrder {
        self.order
    }

    /// Whether **original** node `v` is still active (nonempty at
    /// termination only for BoundedArb, whose output is not maximal).
    pub fn is_active(&self, v: NodeId) -> bool {
        let pos = match &self.layout {
            Some(l) => l.perm.new_of(v),
            None => v,
        };
        self.active.contains(pos)
    }

    /// Bad-set mask (BoundedArb's exiled nodes), original id space.
    pub fn bad(&self) -> &BitMask {
        &self.bad
    }

    /// Current number of active nodes (the frontier size).
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Word-aligned chunk bounds over the layout's word array, as
    /// `(word_lo, word_hi)` ranges. Word alignment makes per-chunk bit
    /// writes race-free; the chunk geometry never affects results (each
    /// chunk's output is ascending and chunks concatenate in order).
    fn word_chunk_bounds(&self) -> Vec<(usize, usize)> {
        let words = self.g.n().div_ceil(64);
        let chunks = (self.threads * 4).clamp(1, words.max(1));
        (0..chunks)
            .map(|i| (i * words / chunks, (i + 1) * words / chunks))
            .collect()
    }

    /// Grows the per-chunk winner buffers to `len` slots.
    fn ensure_chunk_bufs(&mut self, len: usize) {
        if self.chunk_bufs.len() < len {
            self.chunk_bufs.resize_with(len, Vec::new);
        }
    }

    /// Alloc-free rewind to round 0.
    fn reset(&mut self) {
        let n = self.g.n();
        self.round = 0;
        self.unfinished = n;
        self.active_count = n;
        self.obs_flushed = false;
        self.last_dense = None;
        self.active.fill();
        self.in_mis.clear_all();
        self.bad.clear_all();
        self.marked.clear_all();
        self.wins.clear();
        self.joiners.clear();
        self.retiring.clear();
        self.removals.clear();
        let eg = match &self.layout {
            Some(l) => &l.pg,
            None => self.g,
        };
        if self.track_deg {
            for (p, d) in self.active_deg.iter_mut().enumerate() {
                *d = eg.degree(p) as u32;
            }
        }
        // `prio` is intentionally left stale: every decide round writes
        // the priority of each active node before any read. `active_deg`
        // is likewise stale when the protocol never reads it.
    }

    /// Announce-type round: nodes deactivated since the previous one
    /// halt here (the simulator's `process_exits`-then-`Halt`).
    fn promote_finished(&mut self) {
        self.unfinished -= self.retiring.len();
        self.retiring.clear();
    }

    /// Phase 1 of a priority decide: draw every active node's priority,
    /// keyed by **original** id. `competitive` gates the ρ_k opt-out
    /// (BoundedArb); pass `None` for an unconditional draw.
    fn fill_prio(&mut self, tag: u64, iter: u64, rho: Option<f64>) {
        let seed = self.seed;
        let shift = self.prio_shift;
        let dense = self.scan.is_dense(self.active_count, self.g.n());
        let threads = self.threads;
        let bounds = if threads > 1 {
            self.word_chunk_bounds()
        } else {
            Vec::new()
        };
        let Self {
            layout,
            active,
            active_deg,
            prio,
            ..
        } = self;
        let to_old = layout.as_deref().map(|l| l.perm.to_old());
        let deg = &active_deg[..];
        let draw = |p: NodeId| {
            let old = to_old.map_or(p, |t| t[p]);
            let competitive = rho.is_none_or(|r| f64::from(deg[p]) <= r);
            if competitive {
                // `draw_priority` with the `priority_bits(n)` shift
                // hoisted out of the per-node loop (identical value).
                (rng::draw(seed, old, iter, tag) >> shift) | 1
            } else {
                0
            }
        };
        if threads > 1 {
            let mask = active.mask();
            let ptr = ShardPtr(prio.as_mut_ptr());
            execute_indexed(bounds.len(), Parallelism::Threads(threads), |_w, c| {
                let (wlo, whi) = bounds[c];
                for p in mask.iter_words(wlo, whi) {
                    // SAFETY: `p` lies in chunk `c`'s word range, and
                    // chunk ranges are disjoint.
                    unsafe { *ptr.at(p) = draw(p) };
                }
            });
        } else {
            sweep(dense, active, |p| prio[p] = draw(p));
        }
    }

    /// Applies an injected priority coin flip (original-id keyed) after
    /// phase 1.
    fn apply_prio_flip(&mut self, iter: u64) {
        if let Some(f) = self.coin_flip {
            if f.iteration == iter && f.node < self.g.n() {
                let pos = match &self.layout {
                    Some(l) => l.perm.new_of(f.node),
                    None => f.node,
                };
                if self.active.contains(pos) {
                    self.prio[pos] = (self.prio[pos] ^ f.xor) | 1;
                }
            }
        }
    }

    /// Phase 2 of a priority decide: winners are `(priority, original
    /// id)`-maximal among active neighbors; priority 0 (the ρ_k
    /// opt-out) never wins. Métivier priorities are never 0 (the low
    /// bit is forced), so the same scan serves both protocols.
    ///
    /// Both paths are short-circuiting `all` scans: with i.i.d.
    /// priorities, a node expects to find a beating neighbor within a
    /// couple of probes, so per-node work is far below `deg(p)` — this
    /// beats any full-per-edge scheme despite reading each edge from
    /// both sides. The parallel path splits the active words into
    /// disjoint chunks that each decide their own nodes (read-only
    /// shared state, no cross-chunk writes), so concatenating the
    /// per-chunk buffers in chunk order yields the serial winner list
    /// bit for bit.
    fn prio_win_scan(&mut self) {
        self.wins.clear();
        if self.threads > 1 {
            let bounds = self.word_chunk_bounds();
            self.ensure_chunk_bufs(bounds.len());
            let Self {
                g,
                layout,
                active,
                prio,
                chunk_bufs,
                ..
            } = self;
            let (eg, to_old) = match layout.as_deref() {
                Some(l) => (&l.pg, Some(l.perm.to_old())),
                None => (*g, None),
            };
            let old = |p: NodeId| to_old.map_or(p, |t| t[p]);
            let mask = active.mask();
            let prio = &prio[..];
            let bufs = ShardPtr(chunk_bufs.as_mut_ptr());
            execute_indexed(bounds.len(), Parallelism::Threads(self.threads), |_w, c| {
                // SAFETY: chunk `c` exclusively owns `chunk_bufs[c]`.
                let buf = unsafe { &mut *bufs.at(c) };
                buf.clear();
                let (wlo, whi) = bounds[c];
                for p in mask.iter_words(wlo, whi) {
                    let pv = prio[p];
                    if pv == 0 {
                        continue;
                    }
                    let key = (pv, old(p));
                    if eg
                        .neighbors(p)
                        .iter()
                        .all(|&u| !mask.test(u) || key > (prio[u], old(u)))
                    {
                        buf.push(p);
                    }
                }
            });
            for c in 0..bounds.len() {
                self.wins.extend_from_slice(&self.chunk_bufs[c]);
            }
        } else {
            let dense = self.scan.is_dense(self.active_count, self.g.n());
            let Self {
                g,
                layout,
                active,
                prio,
                wins,
                ..
            } = self;
            let (eg, to_old) = match layout.as_deref() {
                Some(l) => (&l.pg, Some(l.perm.to_old())),
                None => (*g, None),
            };
            let old = |p: NodeId| to_old.map_or(p, |t| t[p]);
            let prio = &prio[..];
            sweep(dense, active, |p| {
                let pv = prio[p];
                if pv == 0 {
                    return;
                }
                let key = (pv, old(p));
                if eg
                    .neighbors(p)
                    .iter()
                    .all(|&u| !active.contains(u) || key > (prio[u], old(u)))
                {
                    wins.push(p);
                }
            });
        }
    }

    /// Métivier decide: `(priority, original id)`-maximal among active
    /// neighbors.
    fn decide_metivier(&mut self, iter: u64) {
        self.fill_prio(metivier::TAG_PRIORITY, iter, None);
        self.apply_prio_flip(iter);
        self.prio_win_scan();
    }

    /// BoundedArb decide: Métivier with priority 0 (opt-out) above the
    /// ρ_k cutoff; priority-0 nodes never win.
    fn decide_arb(&mut self, params: &ArbParams, rho_cutoff: bool, scale: u32, iter: u64) {
        let rho = rho_cutoff.then(|| params.rho(scale));
        self.fill_prio(bounded_arb::TAG_PRIORITY, iter, rho);
        self.apply_prio_flip(iter);
        self.prio_win_scan();
    }

    /// Luby decide: marked with `P = 1/2d`, `(degree, original id)`-
    /// maximal among marked active neighbors; degree-0 nodes join
    /// outright. Same short-circuit / chunked structure as the priority
    /// scan, with the mark bit standing in for a nonzero priority.
    fn decide_luby(&mut self, iter: u64) {
        let n = self.g.n();
        let seed = self.seed;
        let flip = self.coin_flip;
        let dense = self.scan.is_dense(self.active_count, n);
        let threads = self.threads;
        let bounds = if threads > 1 {
            self.word_chunk_bounds()
        } else {
            Vec::new()
        };
        // Phase 1: mark flips, keyed by original id.
        {
            let Self {
                layout,
                active,
                active_deg,
                marked,
                ..
            } = self;
            let to_old = layout.as_deref().map(|l| l.perm.to_old());
            let deg = &active_deg[..];
            let mark = |p: NodeId| {
                let d = deg[p] as usize;
                let old = to_old.map_or(p, |t| t[p]);
                d > 0 && luby::is_marked(seed, old, iter, d)
            };
            if threads > 1 {
                let mask = active.mask();
                let ptr = ShardPtr(marked.words_mut().as_mut_ptr());
                execute_indexed(bounds.len(), Parallelism::Threads(threads), |_w, c| {
                    let (wlo, whi) = bounds[c];
                    for p in mask.iter_words(wlo, whi) {
                        let bit = 1u64 << (p & 63);
                        // SAFETY: word `p >> 6` lies in chunk `c`'s
                        // word range, and chunk ranges are disjoint, so
                        // this read-modify-write is unshared.
                        unsafe {
                            let w = ptr.at(p >> 6);
                            if mark(p) {
                                *w |= bit;
                            } else {
                                *w &= !bit;
                            }
                        }
                    }
                });
            } else {
                sweep(dense, active, |p| {
                    if mark(p) {
                        marked.set(p);
                    } else {
                        marked.clear(p);
                    }
                });
            }
        }
        if let Some(f) = flip {
            if f.iteration == iter && f.xor != 0 && f.node < n {
                let pos = match &self.layout {
                    Some(l) => l.perm.new_of(f.node),
                    None => f.node,
                };
                if self.active.contains(pos) && self.active_deg[pos] > 0 {
                    if self.marked.test(pos) {
                        self.marked.clear(pos);
                    } else {
                        self.marked.set(pos);
                    }
                }
            }
        }
        // Phase 2: competition among marked nodes.
        self.wins.clear();
        if threads > 1 {
            self.ensure_chunk_bufs(bounds.len());
            let Self {
                g,
                layout,
                active,
                active_deg,
                marked,
                chunk_bufs,
                ..
            } = self;
            let (eg, to_old) = match layout.as_deref() {
                Some(l) => (&l.pg, Some(l.perm.to_old())),
                None => (*g, None),
            };
            let old = |p: NodeId| to_old.map_or(p, |t| t[p]);
            let mask = active.mask();
            let (deg, marked) = (&active_deg[..], &*marked);
            let bufs = ShardPtr(chunk_bufs.as_mut_ptr());
            execute_indexed(bounds.len(), Parallelism::Threads(threads), |_w, c| {
                // SAFETY: chunk `c` exclusively owns `chunk_bufs[c]`.
                let buf = unsafe { &mut *bufs.at(c) };
                buf.clear();
                let (wlo, whi) = bounds[c];
                for p in mask.iter_words(wlo, whi) {
                    let d = deg[p];
                    let win = if d == 0 {
                        true
                    } else if marked.test(p) {
                        let key = (u64::from(d), old(p));
                        eg.neighbors(p).iter().all(|&u| {
                            !mask.test(u) || !marked.test(u) || (u64::from(deg[u]), old(u)) < key
                        })
                    } else {
                        false
                    };
                    if win {
                        buf.push(p);
                    }
                }
            });
            for c in 0..bounds.len() {
                self.wins.extend_from_slice(&self.chunk_bufs[c]);
            }
        } else {
            let Self {
                g,
                layout,
                active,
                active_deg,
                marked,
                wins,
                ..
            } = self;
            let (eg, to_old) = match layout.as_deref() {
                Some(l) => (&l.pg, Some(l.perm.to_old())),
                None => (*g, None),
            };
            let old = |p: NodeId| to_old.map_or(p, |t| t[p]);
            let (deg, marked) = (&active_deg[..], &*marked);
            sweep(dense, active, |p| {
                let d = deg[p];
                let win = if d == 0 {
                    true
                } else if marked.test(p) {
                    let key = (u64::from(d), old(p));
                    eg.neighbors(p).iter().all(|&u| {
                        !active.contains(u) || !marked.test(u) || (u64::from(deg[u]), old(u)) < key
                    })
                } else {
                    false
                };
                if win {
                    wins.push(p);
                }
            });
        }
    }

    /// Exit round: winners join the MIS; winners and their dominated
    /// active neighbors leave the active set. Joiners are reported in
    /// **original** ids, re-sorted when a layout reordered the wins.
    fn exit_step(&mut self) {
        let wins = std::mem::take(&mut self.wins);
        {
            let Self {
                g,
                layout,
                active,
                active_count,
                active_deg,
                retiring,
                in_mis,
                track_deg,
                ..
            } = self;
            let track_deg = *track_deg;
            let (eg, to_old) = match layout.as_deref() {
                Some(l) => (&l.pg, Some(l.perm.to_old())),
                None => (*g, None),
            };
            for &w in &wins {
                in_mis.set(to_old.map_or(w, |t| t[w]));
                deactivate_in(eg, active, active_count, active_deg, retiring, track_deg, w);
                for &u in eg.neighbors(w) {
                    if active.contains(u) {
                        deactivate_in(eg, active, active_count, active_deg, retiring, track_deg, u);
                    }
                }
            }
            self.joiners.clear();
            match to_old {
                None => self.joiners.extend_from_slice(&wins),
                Some(t) => {
                    self.joiners.extend(wins.iter().map(|&w| t[w]));
                    self.joiners.sort_unstable();
                }
            }
        }
        self.wins = wins;
    }

    /// Scale-end bad exits: a node with too many high-degree active
    /// neighbors is exiled to the bad set. Violators are collected from
    /// a consistent snapshot before any of them is removed, matching the
    /// protocol (every node judges the degrees announced one round
    /// earlier).
    fn bad_exits(&mut self, params: &ArbParams, scale: u32) {
        let n = self.g.n();
        let dense = self.scan.is_dense(self.active_count, n);
        let hd = params.high_degree_threshold(scale);
        let bad_thr = params.bad_threshold(scale);
        let threads = self.threads;
        self.removals.clear();
        let violates = |eg: &Graph, mask: &BitMask, deg: &[u32], p: NodeId| {
            let mut high = 0u64;
            for &u in eg.neighbors(p) {
                if mask.test(u) && f64::from(deg[u]) > hd {
                    high += 1;
                }
            }
            high as f64 > bad_thr
        };
        if threads > 1 {
            let bounds = self.word_chunk_bounds();
            self.ensure_chunk_bufs(bounds.len());
            {
                let Self {
                    g,
                    layout,
                    active,
                    active_deg,
                    chunk_bufs,
                    ..
                } = self;
                let eg = match layout.as_deref() {
                    Some(l) => &l.pg,
                    None => *g,
                };
                let mask = active.mask();
                let deg = &active_deg[..];
                let bufs = ShardPtr(chunk_bufs.as_mut_ptr());
                execute_indexed(bounds.len(), Parallelism::Threads(threads), |_w, c| {
                    // SAFETY: chunk `c` exclusively owns `chunk_bufs[c]`.
                    let buf = unsafe { &mut *bufs.at(c) };
                    buf.clear();
                    let (wlo, whi) = bounds[c];
                    for p in mask.iter_words(wlo, whi) {
                        if violates(eg, mask, deg, p) {
                            buf.push(p);
                        }
                    }
                });
            }
            for c in 0..bounds.len() {
                self.removals.extend_from_slice(&self.chunk_bufs[c]);
            }
        } else {
            let Self {
                g,
                layout,
                active,
                active_deg,
                removals,
                ..
            } = self;
            let eg = match layout.as_deref() {
                Some(l) => &l.pg,
                None => *g,
            };
            let deg = &active_deg[..];
            sweep(dense, active, |p| {
                if violates(eg, active.mask(), deg, p) {
                    removals.push(p);
                }
            });
        }
        let removals = std::mem::take(&mut self.removals);
        {
            let Self {
                g,
                layout,
                active,
                active_count,
                active_deg,
                retiring,
                bad,
                ..
            } = self;
            let (eg, to_old) = match layout.as_deref() {
                Some(l) => (&l.pg, Some(l.perm.to_old())),
                None => (*g, None),
            };
            for &p in &removals {
                bad.set(to_old.map_or(p, |t| t[p]));
                // Bad exits only happen under BoundedArb, which always
                // tracks degrees.
                deactivate_in(eg, active, active_count, active_deg, retiring, true, p);
            }
        }
        self.removals = removals;
    }

    /// Schedule end: every remaining node (retiring or residual active)
    /// halts in this single round.
    fn finish_all(&mut self) {
        self.unfinished = 0;
        self.retiring.clear();
    }

    /// One Luby/Métivier round on the 3-sub-round iteration timeline.
    fn step_fast3(&mut self) {
        match self.round % 3 {
            0 => self.promote_finished(),
            1 => {
                let iter = self.round / 3;
                match self.algo {
                    FlatAlgo::Luby => self.decide_luby(iter),
                    _ => self.decide_metivier(iter),
                }
            }
            _ => self.exit_step(),
        }
    }

    /// One BoundedArb round on the oblivious `Θ × (3Λ + 2)` schedule.
    fn step_arb(&mut self, params: ArbParams, rho_cutoff: bool) {
        let rps = 3 * params.lambda + bounded_arb::ROUNDS_PER_SCALE_END;
        let total = u64::from(params.theta) * rps;
        let r = self.round;
        if r >= total {
            self.finish_all();
            return;
        }
        let scale = (r / rps) as u32 + 1;
        let within = r % rps;
        let lam3 = 3 * params.lambda;
        if within < lam3 {
            match within % 3 {
                0 => self.promote_finished(),
                1 => {
                    let iter = u64::from(scale - 1) * params.lambda + within / 3;
                    self.decide_arb(&params, rho_cutoff, scale, iter);
                }
                _ => self.exit_step(),
            }
        } else if within == lam3 {
            self.promote_finished();
        } else {
            self.bad_exits(&params, scale);
        }
    }
}

impl MisBackend for FlatBackend<'_> {
    fn init(&mut self) {
        self.reset();
    }

    fn step_round(&mut self) -> Result<(), BackendError> {
        debug_assert!(!self.is_done(), "step_round called after completion");
        let entering = self.active_count;
        // The single density decision for this round (ScanMode::is_dense
        // is the one shared derivation — the flight-row label and every
        // sweep agree by construction). Sweeps never change the active
        // set mid-round (only exit/bad-exit steps shrink it, and they
        // run after their sweeps), so the density chosen at round entry
        // is the one every sweep in the round uses.
        let dense = self.scan.is_dense(entering, self.g.n());
        if self.recorder.enabled() {
            self.recorder
                .observe("flat_round_frontier", entering as u64);
            if self.last_dense.is_some_and(|prev| prev != dense) {
                self.recorder.add("flat_scan_mode_flips", 1);
            }
        }
        self.last_dense = Some(dense);
        // Coin digest of the round about to execute (needs the active
        // set *entering* the round, in original id space). Pure RNG
        // replay — observation only.
        let coin_digest = if self.flight.enabled() {
            divergence::coin_digest(
                &self.algo,
                self.seed,
                self.g.n(),
                self.round,
                |v| self.is_active(v),
                self.coin_flip,
            )
        } else {
            0
        };
        self.joiners.clear();
        match self.algo {
            FlatAlgo::Luby | FlatAlgo::Metivier => self.step_fast3(),
            FlatAlgo::BoundedArb { params, rho_cutoff } => self.step_arb(params, rho_cutoff),
        }
        self.round += 1;
        if self.flight.enabled() {
            self.flight.record(RoundRecord {
                engine: "flat",
                round: self.round - 1,
                frontier: entering as u64,
                joiners: self.joiners.len() as u64,
                joiner_digest: divergence::joiner_digest(&self.joiners),
                coin_digest,
                messages: 0,
                bits: 0,
                scan: if dense { "dense" } else { "sparse" },
                span_seq: self.recorder.seq(),
            });
        }
        if self.unfinished == 0 && !self.obs_flushed {
            self.obs_flushed = true;
            if self.recorder.enabled() {
                self.recorder.add("flat_runs", 1);
                self.recorder.add("flat_rounds", self.round);
            }
        }
        Ok(())
    }

    fn joiners(&self) -> &[NodeId] {
        &self.joiners
    }

    fn is_done(&self) -> bool {
        self.unfinished == 0
    }

    fn mis(&self) -> &BitMask {
        &self.in_mis
    }

    fn round(&self) -> u64 {
        self.round
    }
}
