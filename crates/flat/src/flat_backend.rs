//! The flat engine: MIS rounds as frontier sweeps over CSR adjacency.

use crate::divergence::{self, CoinFlip};
use crate::{BackendError, FlatAlgo, MisBackend, ScanMode, DENSE_FRACTION};
use arbmis_congest::{rng, Frontier};
use arbmis_core::{bounded_arb, luby, metivier, ArbParams};
use arbmis_graph::{Graph, NodeId};
use arbmis_obs::{FlightRecorder, Recorder, RoundRecord};

/// Shared-memory replay of the CONGEST MIS protocols.
///
/// No message objects: a round is one or two sweeps over the active set,
/// reading neighbor flags straight out of flat arrays. The sweep walks
/// either the [`Frontier`] bitset (sparse) or `0..n` (dense), chosen per
/// round from the active-set density — both directions visit nodes in
/// ascending order, so the execution is identical either way.
///
/// Randomness is the counter-pure [`rng`] keyed by
/// `(seed, node, iteration, tag)`, the same draws the CONGEST protocols
/// make, which is what makes this backend round-identical to
/// [`crate::CongestBackend`].
pub struct FlatBackend<'g> {
    g: &'g Graph,
    seed: u64,
    algo: FlatAlgo,
    scan: ScanMode,
    recorder: Recorder,
    flight: FlightRecorder,
    /// Injected single-coin perturbation (divergence drills); `None` in
    /// normal operation.
    coin_flip: Option<CoinFlip>,
    /// Effective sweep density of the previous round, for the
    /// `flat_scan_mode_flips` counter. Observation-only.
    last_dense: Option<bool>,
    round: u64,
    /// Nodes that have not yet halted (the simulator's `pending`).
    unfinished: usize,
    active: Vec<bool>,
    in_mis: Vec<bool>,
    bad: Vec<bool>,
    /// `active_deg[v]` = number of active neighbors of `v`, maintained
    /// incrementally: deactivating a node decrements all its neighbors.
    active_deg: Vec<u32>,
    frontier: Frontier,
    active_count: usize,
    /// Per-iteration priority scratch (Métivier / BoundedArb). Stale for
    /// inactive nodes — always gate reads on `active`.
    prio: Vec<u64>,
    /// Per-iteration mark scratch (Luby). Stale for inactive nodes.
    marked: Vec<bool>,
    /// Winners of the current iteration, ascending.
    wins: Vec<NodeId>,
    /// Joiners of the last executed round, ascending.
    joiners: Vec<NodeId>,
    /// Deactivated but not yet halted: in the simulator these nodes halt
    /// at their next announce-type round; we retire them there so round
    /// counts match.
    retiring: Vec<NodeId>,
    /// Scratch for bad-exit violators (snapshot before exiling).
    removals: Vec<NodeId>,
    obs_flushed: bool,
}

/// Visits every active node in ascending order, dense or sparse.
fn sweep(
    scan: ScanMode,
    n: usize,
    frontier: &Frontier,
    active: &[bool],
    active_count: usize,
    mut f: impl FnMut(NodeId),
) {
    let dense = match scan {
        ScanMode::Dense => true,
        ScanMode::Sparse => false,
        ScanMode::Auto => active_count * DENSE_FRACTION >= n,
    };
    if dense {
        for (v, &a) in active.iter().enumerate() {
            if a {
                f(v);
            }
        }
    } else {
        for v in frontier.iter() {
            f(v);
        }
    }
}

impl<'g> FlatBackend<'g> {
    /// A flat backend for `algo` on `g` under `seed`, ready at round 0.
    pub fn new(g: &'g Graph, seed: u64, algo: FlatAlgo) -> Self {
        let n = g.n();
        let mut b = FlatBackend {
            g,
            seed,
            algo,
            scan: ScanMode::Auto,
            recorder: arbmis_obs::global(),
            flight: arbmis_obs::global_flight(),
            coin_flip: None,
            last_dense: None,
            round: 0,
            unfinished: 0,
            active: vec![false; n],
            in_mis: vec![false; n],
            bad: vec![false; n],
            active_deg: vec![0; n],
            frontier: Frontier::new(n),
            active_count: 0,
            prio: vec![0; n],
            marked: vec![false; n],
            wins: Vec::new(),
            joiners: Vec::new(),
            retiring: Vec::new(),
            removals: Vec::new(),
            obs_flushed: false,
        };
        b.reset();
        b
    }

    /// Overrides the sweep direction (default [`ScanMode::Auto`]).
    #[must_use]
    pub fn with_scan(mut self, scan: ScanMode) -> Self {
        self.scan = scan;
        self
    }

    /// Routes observability through `recorder` instead of the global one.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Routes per-round flight records through `flight` instead of the
    /// global ring.
    #[must_use]
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// The flight recorder this backend writes to.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Injects a single-coin perturbation (see [`CoinFlip`]). For
    /// divergence-tooling tests; pristine runs leave this unset.
    #[must_use]
    pub fn with_coin_flip(mut self, flip: CoinFlip) -> Self {
        self.coin_flip = Some(flip);
        self
    }

    /// Residual active mask (nonempty only for BoundedArb, whose output
    /// is not maximal).
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Bad-set mask (BoundedArb's exiled nodes).
    pub fn bad(&self) -> &[bool] {
        &self.bad
    }

    /// Current number of active nodes (the frontier size).
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Alloc-free rewind to round 0.
    fn reset(&mut self) {
        let g = self.g;
        let n = g.n();
        self.round = 0;
        self.unfinished = n;
        self.active_count = n;
        self.obs_flushed = false;
        self.last_dense = None;
        self.frontier.clear();
        self.wins.clear();
        self.joiners.clear();
        self.retiring.clear();
        self.removals.clear();
        for v in 0..n {
            self.active[v] = true;
            self.in_mis[v] = false;
            self.bad[v] = false;
            self.active_deg[v] = g.degree(v) as u32;
            self.prio[v] = 0;
            self.marked[v] = false;
            self.frontier.insert(v);
        }
    }

    /// Removes `v` from the active set: clears the frontier bit,
    /// decrements every neighbor's active degree, and queues `v` to halt
    /// at the next announce-type round.
    fn deactivate(&mut self, v: NodeId) {
        debug_assert!(self.active[v]);
        self.active[v] = false;
        self.frontier.remove(v);
        self.active_count -= 1;
        self.retiring.push(v);
        let g = self.g;
        for &u in g.neighbors(v) {
            self.active_deg[u] -= 1;
        }
    }

    /// Announce-type round: nodes deactivated since the previous one
    /// halt here (the simulator's `process_exits`-then-`Halt`).
    fn promote_finished(&mut self) {
        self.unfinished -= self.retiring.len();
        self.retiring.clear();
    }

    /// Métivier decide: `(priority, id)`-maximal among active neighbors.
    fn decide_metivier(&mut self, iter: u64) {
        let g = self.g;
        let n = g.n();
        let seed = self.seed;
        let scan = self.scan;
        let count = self.active_count;
        let flip = self.coin_flip;
        self.wins.clear();
        let Self {
            frontier,
            active,
            prio,
            wins,
            ..
        } = self;
        sweep(scan, n, frontier, active, count, |v| {
            prio[v] = rng::draw_priority(seed, v, iter, metivier::TAG_PRIORITY, n);
        });
        if let Some(f) = flip {
            if f.iteration == iter && f.node < n && active[f.node] {
                prio[f.node] = (prio[f.node] ^ f.xor) | 1;
            }
        }
        let (active, prio) = (&active[..], &prio[..]);
        sweep(scan, n, frontier, active, count, |v| {
            let pv = (prio[v], v);
            if g.neighbors(v)
                .iter()
                .all(|&u| !active[u] || pv > (prio[u], u))
            {
                wins.push(v);
            }
        });
    }

    /// Luby decide: marked with `P = 1/2d`, `(degree, id)`-maximal among
    /// marked active neighbors; degree-0 nodes join outright.
    fn decide_luby(&mut self, iter: u64) {
        let g = self.g;
        let n = g.n();
        let seed = self.seed;
        let scan = self.scan;
        let count = self.active_count;
        let flip = self.coin_flip;
        self.wins.clear();
        let Self {
            frontier,
            active,
            active_deg,
            marked,
            wins,
            ..
        } = self;
        sweep(scan, n, frontier, active, count, |v| {
            let d = active_deg[v] as usize;
            marked[v] = d > 0 && luby::is_marked(seed, v, iter, d);
        });
        if let Some(f) = flip {
            if f.iteration == iter && f.xor != 0 && f.node < n && active[f.node] {
                let d = active_deg[f.node];
                if d > 0 {
                    marked[f.node] = !marked[f.node];
                }
            }
        }
        let (active, active_deg, marked) = (&active[..], &active_deg[..], &marked[..]);
        sweep(scan, n, frontier, active, count, |v| {
            let d = active_deg[v];
            let win = if d == 0 {
                true
            } else if marked[v] {
                let key = (u64::from(d), v);
                g.neighbors(v)
                    .iter()
                    .all(|&u| !active[u] || !marked[u] || (u64::from(active_deg[u]), u) < key)
            } else {
                false
            };
            if win {
                wins.push(v);
            }
        });
    }

    /// BoundedArb decide: Métivier with priority 0 (opt-out) above the
    /// ρ_k cutoff; priority-0 nodes never win.
    fn decide_arb(&mut self, params: &ArbParams, rho_cutoff: bool, scale: u32, iter: u64) {
        let g = self.g;
        let n = g.n();
        let seed = self.seed;
        let scan = self.scan;
        let count = self.active_count;
        let rho = params.rho(scale);
        let flip = self.coin_flip;
        self.wins.clear();
        let Self {
            frontier,
            active,
            active_deg,
            prio,
            wins,
            ..
        } = self;
        let deg = &active_deg[..];
        sweep(scan, n, frontier, active, count, |v| {
            let competitive = !rho_cutoff || f64::from(deg[v]) <= rho;
            prio[v] = if competitive {
                rng::draw_priority(seed, v, iter, bounded_arb::TAG_PRIORITY, n)
            } else {
                0
            };
        });
        if let Some(f) = flip {
            if f.iteration == iter && f.node < n && active[f.node] {
                prio[f.node] = (prio[f.node] ^ f.xor) | 1;
            }
        }
        let (active, prio) = (&active[..], &prio[..]);
        sweep(scan, n, frontier, active, count, |v| {
            let p = prio[v];
            if p == 0 {
                return;
            }
            let pv = (p, v);
            if g.neighbors(v)
                .iter()
                .all(|&u| !active[u] || pv > (prio[u], u))
            {
                wins.push(v);
            }
        });
    }

    /// Exit round: winners join the MIS; winners and their dominated
    /// active neighbors leave the active set.
    fn exit_step(&mut self) {
        let g = self.g;
        let mut wins = std::mem::take(&mut self.wins);
        for &w in &wins {
            self.in_mis[w] = true;
            self.deactivate(w);
            for &u in g.neighbors(w) {
                if self.active[u] {
                    self.deactivate(u);
                }
            }
        }
        // Swap the buffers: `joiners` takes this round's winners, the
        // old joiner buffer becomes next iteration's `wins` scratch.
        std::mem::swap(&mut self.joiners, &mut wins);
        self.wins = wins;
    }

    /// Scale-end bad exits: a node with too many high-degree active
    /// neighbors is exiled to the bad set. Violators are collected from
    /// a consistent snapshot before any of them is removed, matching the
    /// protocol (every node judges the degrees announced one round
    /// earlier).
    fn bad_exits(&mut self, params: &ArbParams, scale: u32) {
        let g = self.g;
        let n = g.n();
        let scan = self.scan;
        let count = self.active_count;
        let hd = params.high_degree_threshold(scale);
        let bad_thr = params.bad_threshold(scale);
        self.removals.clear();
        {
            let Self {
                frontier,
                active,
                active_deg,
                removals,
                ..
            } = self;
            let (active, deg) = (&active[..], &active_deg[..]);
            sweep(scan, n, frontier, active, count, |v| {
                let mut high = 0u64;
                for &u in g.neighbors(v) {
                    if active[u] && f64::from(deg[u]) > hd {
                        high += 1;
                    }
                }
                if high as f64 > bad_thr {
                    removals.push(v);
                }
            });
        }
        let mut removals = std::mem::take(&mut self.removals);
        for &v in &removals {
            self.bad[v] = true;
            self.deactivate(v);
        }
        removals.clear();
        self.removals = removals;
    }

    /// Schedule end: every remaining node (retiring or residual active)
    /// halts in this single round.
    fn finish_all(&mut self) {
        self.unfinished = 0;
        self.retiring.clear();
    }

    /// One Luby/Métivier round on the 3-sub-round iteration timeline.
    fn step_fast3(&mut self) {
        match self.round % 3 {
            0 => self.promote_finished(),
            1 => {
                let iter = self.round / 3;
                match self.algo {
                    FlatAlgo::Luby => self.decide_luby(iter),
                    _ => self.decide_metivier(iter),
                }
            }
            _ => self.exit_step(),
        }
    }

    /// One BoundedArb round on the oblivious `Θ × (3Λ + 2)` schedule.
    fn step_arb(&mut self, params: ArbParams, rho_cutoff: bool) {
        let rps = 3 * params.lambda + bounded_arb::ROUNDS_PER_SCALE_END;
        let total = u64::from(params.theta) * rps;
        let r = self.round;
        if r >= total {
            self.finish_all();
            return;
        }
        let scale = (r / rps) as u32 + 1;
        let within = r % rps;
        let lam3 = 3 * params.lambda;
        if within < lam3 {
            match within % 3 {
                0 => self.promote_finished(),
                1 => {
                    let iter = u64::from(scale - 1) * params.lambda + within / 3;
                    self.decide_arb(&params, rho_cutoff, scale, iter);
                }
                _ => self.exit_step(),
            }
        } else if within == lam3 {
            self.promote_finished();
        } else {
            self.bad_exits(&params, scale);
        }
    }
}

impl MisBackend for FlatBackend<'_> {
    fn init(&mut self) {
        self.reset();
    }

    fn step_round(&mut self) -> Result<(), BackendError> {
        debug_assert!(!self.is_done(), "step_round called after completion");
        let entering = self.active_count;
        // Effective sweep density for this round. Sweeps never change the
        // active set mid-round (only exit/bad-exit steps shrink it, and
        // they run after their sweeps), so the density chosen at round
        // entry is the one every sweep in the round uses.
        let dense = match self.scan {
            ScanMode::Dense => true,
            ScanMode::Sparse => false,
            ScanMode::Auto => entering * DENSE_FRACTION >= self.g.n(),
        };
        if self.recorder.enabled() {
            self.recorder
                .observe("flat_round_frontier", entering as u64);
            if self.last_dense.is_some_and(|prev| prev != dense) {
                self.recorder.add("flat_scan_mode_flips", 1);
            }
        }
        self.last_dense = Some(dense);
        // Coin digest of the round about to execute (needs the active
        // set *entering* the round). Pure RNG replay — observation only.
        let coin_digest = if self.flight.enabled() {
            divergence::coin_digest(
                &self.algo,
                self.seed,
                self.g.n(),
                self.round,
                |v| self.active[v],
                self.coin_flip,
            )
        } else {
            0
        };
        self.joiners.clear();
        match self.algo {
            FlatAlgo::Luby | FlatAlgo::Metivier => self.step_fast3(),
            FlatAlgo::BoundedArb { params, rho_cutoff } => self.step_arb(params, rho_cutoff),
        }
        self.round += 1;
        if self.flight.enabled() {
            self.flight.record(RoundRecord {
                engine: "flat",
                round: self.round - 1,
                frontier: entering as u64,
                joiners: self.joiners.len() as u64,
                joiner_digest: divergence::joiner_digest(&self.joiners),
                coin_digest,
                messages: 0,
                bits: 0,
                scan: if dense { "dense" } else { "sparse" },
                span_seq: self.recorder.seq(),
            });
        }
        if self.unfinished == 0 && !self.obs_flushed {
            self.obs_flushed = true;
            if self.recorder.enabled() {
                self.recorder.add("flat_runs", 1);
                self.recorder.add("flat_rounds", self.round);
            }
        }
        Ok(())
    }

    fn joiners(&self) -> &[NodeId] {
        &self.joiners
    }

    fn is_done(&self) -> bool {
        self.unfinished == 0
    }

    fn mis(&self) -> &[bool] {
        &self.in_mis
    }

    fn round(&self) -> u64 {
        self.round
    }
}
