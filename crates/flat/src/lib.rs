#![warn(missing_docs)]
//! Flat shared-memory MIS backends behind a common [`MisBackend`] trait.
//!
//! The CONGEST simulator ([`arbmis_congest::Simulator`]) is the semantic
//! reference: it charges every message against the bandwidth budget and
//! counts rounds exactly. But for large-scale experiments its message
//! plane is pure overhead — the MIS protocols in this repository are
//! *oblivious* (what a node sends in round `r` is a pure function of its
//! state), so the same execution can be replayed as direct frontier
//! sweeps over the CSR adjacency with no message objects at all.
//!
//! This crate provides two interchangeable executions of that idea:
//!
//! * [`CongestBackend`] — a thin adapter over the simulator's
//!   [`arbmis_congest::Stepper`], stepping one CONGEST round at a time
//!   and diffing node states to report joiners.
//! * [`FlatBackend`] — the flat engine: word-packed
//!   ([`arbmis_congest::BitMask`]) `active` / `in_mis` / `bad` / `marked`
//!   flags, incrementally-maintained active degrees, and a two-level
//!   bitset frontier ([`arbmis_congest::Frontier`]) swept either
//!   sparsely (summary-skipping iteration) or densely (flat word walk),
//!   switching on frontier density. Optional extras, both transcript-
//!   invisible: a cache-aware node ordering
//!   ([`arbmis_graph::NodeOrder`], see DESIGN.md §13) and a
//!   deterministic parallel sweep ([`FlatBackend::with_threads`]).
//!
//! Both backends draw coin flips from the same counter-pure RNG
//! ([`arbmis_congest::rng`]), keyed by `(seed, node, iteration, tag)`, so
//! for a fixed graph and seed they are **round-identical**: the joiner
//! set at every round index, the final MIS, and the total round count all
//! agree bit-for-bit. `tests/backend_equivalence.rs` enforces this as a
//! differential oracle.
//!
//! # Round timeline
//!
//! A backend round is exactly one CONGEST round. Luby and Métivier spend
//! three rounds per iteration (announce, decide, exit); joiners are
//! reported at rounds `r ≡ 2 (mod 3)`. BoundedArb follows the oblivious
//! schedule of [`arbmis_core::protocols::BoundedArbProtocol`]:
//! `3Λ + 2` rounds per scale (Λ iterations, then a degree exchange and a
//! bad-exit round), `Θ` scales total.

mod congest_backend;
pub mod divergence;
mod flat_backend;
pub mod region;

pub use congest_backend::CongestBackend;
pub use divergence::{localize, CoinFlip, Divergence, DivergenceKind, ReplayArtifact};
pub use flat_backend::FlatBackend;
pub use region::{solve_mis, RegionMis};

pub use arbmis_congest::BitMask;
pub use arbmis_graph::{NodeOrder, Permutation};

use arbmis_congest::SimulatorError;
use arbmis_core::ArbParams;
use arbmis_graph::NodeId;
use std::fmt;

/// Which MIS algorithm a backend executes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlatAlgo {
    /// Luby's Algorithm B: mark with probability `1/2d`, higher
    /// `(degree, id)` wins among marked neighbors.
    Luby,
    /// Métivier et al. priority competition: higher `(priority, id)` wins.
    Metivier,
    /// `BoundedArbIndependentSet` (Algorithm 1): Θ scales of Λ Métivier
    /// iterations with the ρ_k opt-out, plus per-scale bad exits.
    BoundedArb {
        /// The instantiated parameter schedule.
        params: ArbParams,
        /// Whether the ρ_k competitiveness cutoff is active.
        rho_cutoff: bool,
    },
}

impl FlatAlgo {
    /// Short stable name for logs and cache keys.
    pub fn label(&self) -> &'static str {
        match self {
            FlatAlgo::Luby => "luby",
            FlatAlgo::Metivier => "metivier",
            FlatAlgo::BoundedArb { .. } => "bounded_arb",
        }
    }
}

/// How [`FlatBackend`] walks the active set each sub-round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanMode {
    /// Sparse (frontier iteration) while the active set is small, dense
    /// (linear scan over all nodes) once it crosses [`DENSE_FRACTION`].
    #[default]
    Auto,
    /// Always iterate the frontier bitset.
    Sparse,
    /// Always scan `0..n` and filter on the `active` flag.
    Dense,
}

impl ScanMode {
    /// The one shared density decision: whether a sweep over
    /// `active_count` of `n` nodes should walk the flat word array
    /// (dense) rather than the summary-skipping frontier (sparse).
    /// Every per-round derivation in the engine routes through here so
    /// the flight-record label and the sweeps can never disagree.
    #[inline]
    pub fn is_dense(self, active_count: usize, n: usize) -> bool {
        match self {
            ScanMode::Sparse => false,
            ScanMode::Dense => true,
            ScanMode::Auto => active_count.saturating_mul(DENSE_FRACTION) >= n,
        }
    }
}

/// `Auto` sweeps go dense when `active_count ≥ n / DENSE_FRACTION`.
pub const DENSE_FRACTION: usize = 8;

/// Why a backend run failed.
#[derive(Debug)]
pub enum BackendError {
    /// The underlying CONGEST simulator rejected the execution (budget
    /// violation etc.). Only [`CongestBackend`] produces this.
    Congest(SimulatorError),
    /// `run` exceeded its round limit before every node finished.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Congest(e) => write!(f, "congest backend: {e}"),
            BackendError::RoundLimitExceeded { limit } => {
                write!(f, "backend exceeded round limit {limit}")
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Congest(e) => Some(e),
            BackendError::RoundLimitExceeded { .. } => None,
        }
    }
}

impl From<SimulatorError> for BackendError {
    fn from(e: SimulatorError) -> Self {
        BackendError::Congest(e)
    }
}

/// Summary of a completed [`MisBackend::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendRun {
    /// CONGEST rounds executed (identical across backends for the same
    /// graph, seed, and algorithm).
    pub rounds: u64,
}

/// A round-steppable MIS execution.
///
/// The contract that makes backends interchangeable:
///
/// * [`round`](MisBackend::round) counts CONGEST rounds; one
///   [`step_round`](MisBackend::step_round) call executes exactly one.
/// * [`joiners`](MisBackend::joiners) is the ascending list of nodes
///   that entered the MIS during the *last executed* round — empty on
///   rounds where the protocol does not admit joiners.
/// * [`is_done`](MisBackend::is_done) mirrors the simulator's
///   termination test (`pending == 0`): true once every node has
///   halted, so total round counts agree across backends.
/// * [`init`](MisBackend::init) rewinds to round 0, reusing internal
///   buffers (no steady-state allocation on re-runs).
pub trait MisBackend {
    /// Resets to round 0 on the same graph/seed/algorithm.
    fn init(&mut self);

    /// Executes one CONGEST round.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures for the CONGEST-backed adapter;
    /// the flat engine never fails.
    fn step_round(&mut self) -> Result<(), BackendError>;

    /// Nodes that joined the MIS in the last executed round, ascending.
    fn joiners(&self) -> &[NodeId];

    /// True once every node has terminated.
    fn is_done(&self) -> bool;

    /// Current MIS membership mask (word-packed, length `n`, original
    /// id space regardless of any execution-layout permutation).
    fn mis(&self) -> &BitMask;

    /// CONGEST rounds executed so far.
    fn round(&self) -> u64;

    /// Runs from a fresh [`init`](MisBackend::init) to completion.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::RoundLimitExceeded`] if the execution is
    /// still pending after `max_rounds`, or any error from
    /// [`step_round`](MisBackend::step_round).
    fn run(&mut self, max_rounds: u64) -> Result<BackendRun, BackendError> {
        self.init();
        while !self.is_done() {
            if self.round() >= max_rounds {
                return Err(BackendError::RoundLimitExceeded { limit: max_rounds });
            }
            self.step_round()?;
        }
        Ok(BackendRun {
            rounds: self.round(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_core::{luby, metivier, ArbParams, ParamMode};
    use arbmis_graph::{gen, Graph};
    use rand::{rngs::StdRng, SeedableRng};

    const MAX_ROUNDS: u64 = 100_000;

    fn graphs() -> Vec<(&'static str, Graph)> {
        let mut rng = StdRng::seed_from_u64(7);
        vec![
            ("empty", Graph::empty(0)),
            ("isolated", Graph::empty(1)),
            ("path", gen::path(17)),
            ("complete", gen::complete(9)),
            ("gnp", gen::gnp(120, 0.05, &mut rng)),
            ("ktree", gen::random_ktree(90, 3, &mut rng)),
        ]
    }

    /// Steps `a` and `b` in lockstep, asserting identical joiners each
    /// round, then identical final MIS and round counts.
    fn assert_lockstep(label: &str, a: &mut dyn MisBackend, b: &mut dyn MisBackend) {
        a.init();
        b.init();
        while !a.is_done() || !b.is_done() {
            assert_eq!(
                a.is_done(),
                b.is_done(),
                "{label}: done flags diverge at round {}",
                a.round()
            );
            assert!(a.round() < MAX_ROUNDS, "{label}: round limit");
            a.step_round().unwrap();
            b.step_round().unwrap();
            assert_eq!(
                a.joiners(),
                b.joiners(),
                "{label}: joiners diverge at round {}",
                a.round() - 1
            );
        }
        assert_eq!(a.round(), b.round(), "{label}: round counts diverge");
        assert_eq!(a.mis(), b.mis(), "{label}: final MIS diverges");
    }

    #[test]
    fn flat_matches_congest_luby_and_metivier() {
        for (name, g) in &graphs() {
            for algo in [FlatAlgo::Luby, FlatAlgo::Metivier] {
                for seed in [1, 42] {
                    let mut flat = FlatBackend::new(g, seed, algo);
                    let mut congest = CongestBackend::new(g, seed, algo);
                    let label = format!("{name}/{}/seed{seed}", algo.label());
                    assert_lockstep(&label, &mut flat, &mut congest);
                }
            }
        }
    }

    #[test]
    fn flat_matches_congest_bounded_arb() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::random_ktree(80, 3, &mut rng);
        let delta = g.degree_histogram().len().saturating_sub(1);
        let params = ArbParams::new(3, delta, ParamMode::default());
        for rho_cutoff in [true, false] {
            let algo = FlatAlgo::BoundedArb { params, rho_cutoff };
            let mut flat = FlatBackend::new(&g, 5, algo);
            let mut congest = CongestBackend::new(&g, 5, algo);
            assert_lockstep(
                &format!("ktree/arb/rho={rho_cutoff}"),
                &mut flat,
                &mut congest,
            );
            // BoundedArb is not maximal: also compare the shattering
            // outputs (bad and residual active sets) against the
            // protocol states.
            for (v, s) in congest.states().iter().enumerate() {
                assert_eq!(flat.bad().test(v), s.bad, "bad set diverges at {v}");
                assert_eq!(
                    flat.is_active(v),
                    s.active,
                    "residual active set diverges at {v}"
                );
            }
        }
    }

    #[test]
    fn flat_matches_fast_path_rounds_and_mis() {
        for (name, g) in &graphs() {
            for seed in [3, 99] {
                let fast = luby::run(g, seed);
                let mut flat = FlatBackend::new(g, seed, FlatAlgo::Luby);
                let run = flat.run(MAX_ROUNDS).unwrap();
                assert_eq!(flat.mis(), &fast.in_mis[..], "{name}: luby MIS");
                let expect = if fast.iterations == 0 {
                    0
                } else {
                    3 * fast.iterations + 1
                };
                assert_eq!(run.rounds, expect, "{name}: luby rounds");

                let fast = metivier::run(g, seed);
                let mut flat = FlatBackend::new(g, seed, FlatAlgo::Metivier);
                let run = flat.run(MAX_ROUNDS).unwrap();
                assert_eq!(flat.mis(), &fast.in_mis[..], "{name}: metivier MIS");
                let expect = if fast.iterations == 0 {
                    0
                } else {
                    3 * fast.iterations + 1
                };
                assert_eq!(run.rounds, expect, "{name}: metivier rounds");
            }
        }
    }

    #[test]
    fn scan_modes_agree() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = gen::gnp(150, 0.04, &mut rng);
        for algo in [FlatAlgo::Luby, FlatAlgo::Metivier] {
            let mut sparse = FlatBackend::new(&g, 9, algo).with_scan(ScanMode::Sparse);
            let mut dense = FlatBackend::new(&g, 9, algo).with_scan(ScanMode::Dense);
            assert_lockstep(&format!("{}/scan", algo.label()), &mut sparse, &mut dense);
        }
    }

    #[test]
    fn orders_and_threads_are_transcript_invisible() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = gen::gnp(160, 0.04, &mut rng);
        let delta = g.degree_histogram().len().saturating_sub(1);
        let params = ArbParams::new(3, delta, ParamMode::default());
        for algo in [
            FlatAlgo::Luby,
            FlatAlgo::Metivier,
            FlatAlgo::BoundedArb {
                params,
                rho_cutoff: true,
            },
        ] {
            let mut base = FlatBackend::new(&g, 9, algo);
            for order in [NodeOrder::Degree, NodeOrder::Bfs] {
                let mut permuted = FlatBackend::new(&g, 9, algo).with_order(order);
                assert_lockstep(
                    &format!("{}/order={}", algo.label(), order.label()),
                    &mut base,
                    &mut permuted,
                );
            }
            for threads in [2, 4] {
                let mut par = FlatBackend::new(&g, 9, algo)
                    .with_order(NodeOrder::Degree)
                    .with_threads(threads);
                assert_lockstep(
                    &format!("{}/threads={threads}", algo.label()),
                    &mut base,
                    &mut par,
                );
            }
        }
    }

    #[test]
    fn rerun_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::gnp(100, 0.06, &mut rng);
        let mut b = FlatBackend::new(&g, 17, FlatAlgo::Metivier);
        let r1 = b.run(MAX_ROUNDS).unwrap();
        let mis1 = b.mis().clone();
        let r2 = b.run(MAX_ROUNDS).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(&mis1, b.mis());
        assert!(arbmis_core::is_valid_mis(&g, &b.mis().to_bools()));
    }

    #[test]
    fn round_limit_reported() {
        let g = gen::path(8);
        let mut b = FlatBackend::new(&g, 1, FlatAlgo::Metivier);
        let err = b.run(1).unwrap_err();
        assert!(matches!(err, BackendError::RoundLimitExceeded { limit: 1 }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn joiners_only_on_exit_rounds() {
        let g = gen::cycle(12);
        let mut b = FlatBackend::new(&g, 4, FlatAlgo::Luby);
        b.init();
        while !b.is_done() {
            let r = b.round();
            b.step_round().unwrap();
            if r % 3 != 2 {
                assert!(b.joiners().is_empty(), "joiners at non-exit round {r}");
            }
            assert!(b.joiners().windows(2).all(|w| w[0] < w[1]));
        }
    }
}
