//! Region re-solve: one-call MIS of a (sub)graph on the flat engine.
//!
//! The incremental maintenance layer (`arbmis-dynamic`) extracts the
//! dirty region of an update batch as a compacted subgraph and needs a
//! fresh MIS of exactly that region. [`solve_mis`] is that entry point:
//! it runs [`FlatBackend`] to completion and hands back the membership
//! mask plus the round count, with no message plane, no protocol setup,
//! and no obs coupling beyond what the backend itself records.

use crate::{BackendError, FlatAlgo, FlatBackend, MisBackend};
use arbmis_graph::Graph;

/// Result of a [`solve_mis`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionMis {
    /// MIS membership mask over the solved graph's nodes.
    pub in_mis: Vec<bool>,
    /// CONGEST rounds the flat engine spent (0 for an empty graph).
    pub rounds: u64,
}

/// Computes an MIS of `g` with the flat frontier engine under the
/// counter-pure `(seed, node, iteration)` coin stream — the same
/// execution [`FlatBackend`] would produce round by round, packaged for
/// callers that only want the final set.
///
/// # Errors
///
/// Returns [`BackendError::RoundLimitExceeded`] if the run is still
/// pending after `max_rounds`.
///
/// # Panics
///
/// Panics if `algo` is [`FlatAlgo::BoundedArb`]: its output is a partial
/// independent set (shattering), never the maximal set a region repair
/// must produce.
pub fn solve_mis(
    g: &Graph,
    seed: u64,
    algo: FlatAlgo,
    max_rounds: u64,
) -> Result<RegionMis, BackendError> {
    assert!(
        !matches!(algo, FlatAlgo::BoundedArb { .. }),
        "solve_mis needs a maximal algorithm (Luby/Metivier); BoundedArb shatters only"
    );
    let mut b = FlatBackend::new(g, seed, algo);
    let run = b.run(max_rounds)?;
    Ok(RegionMis {
        in_mis: b.mis().to_bools(),
        rounds: run.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_core::is_valid_mis;
    use arbmis_graph::gen;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn solves_regions_of_all_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        for g in [
            arbmis_graph::Graph::empty(0),
            arbmis_graph::Graph::empty(1),
            gen::path(9),
            gen::gnp(200, 0.05, &mut rng),
        ] {
            for algo in [FlatAlgo::Luby, FlatAlgo::Metivier] {
                let r = solve_mis(&g, 7, algo, 100_000).unwrap();
                assert!(is_valid_mis(&g, &r.in_mis));
                assert_eq!(r.in_mis.len(), g.n());
            }
        }
    }

    #[test]
    fn matches_backend_run_exactly() {
        let g = gen::cycle(17);
        let r = solve_mis(&g, 5, FlatAlgo::Metivier, 100_000).unwrap();
        let mut b = FlatBackend::new(&g, 5, FlatAlgo::Metivier);
        let run = b.run(100_000).unwrap();
        assert_eq!(*b.mis(), r.in_mis);
        assert_eq!(r.rounds, run.rounds);
    }

    #[test]
    fn round_limit_propagates() {
        let g = gen::path(6);
        assert!(matches!(
            solve_mis(&g, 1, FlatAlgo::Luby, 1),
            Err(BackendError::RoundLimitExceeded { limit: 1 })
        ));
    }

    #[test]
    #[should_panic]
    fn bounded_arb_rejected() {
        let g = gen::path(4);
        let params = arbmis_core::ArbParams::new(2, 3, arbmis_core::ParamMode::default());
        let _ = solve_mis(
            &g,
            1,
            FlatAlgo::BoundedArb {
                params,
                rho_cutoff: true,
            },
            10,
        );
    }
}
