#![warn(missing_docs)]
//! Deterministic observability for the arbmis workspace.
//!
//! A [`Recorder`] collects phase **spans** (nested, named), **counters**,
//! **gauges**, **histograms** ([`Histogram`]: log₂-bucketed), and
//! **point events**; a [`Snapshot`] renders them as a JSONL event log or
//! a Prometheus text exposition. The disabled recorder is a null
//! pointer check per call, so instrumentation stays in release builds.
//!
//! Two rules make the layer safe to leave attached everywhere
//! (DESIGN.md §8):
//!
//! 1. **Observation only.** Instrumented code reads the quantities it
//!    reports; it never branches on the recorder beyond skipping
//!    collection. Transcripts, `Metrics` counters, and MIS outputs are
//!    bit-identical with the recorder enabled, disabled, or swapped —
//!    enforced by differential tests.
//! 2. **Timing is quarantined.** Wall-clock durations only ever appear
//!    in span `wall_ns` fields and metrics named `*_ns` / `worker_*`;
//!    everything else is a pure function of `(graph, seed, config)`.
//!    [`Recorder::deterministic`] zeroes the timing class for
//!    byte-identical sink output.
//!
//! # Example
//!
//! ```
//! use arbmis_obs::Recorder;
//!
//! let rec = Recorder::deterministic();
//! {
//!     let _run = rec.span("run");
//!     rec.add("messages", 10);
//!     rec.observe("message_bits", 24);
//! }
//! let snap = rec.snapshot();
//! assert!(snap.has_span("run"));
//! assert!(snap.to_prometheus().contains("# TYPE messages counter"));
//! ```

pub mod flight;
pub mod hist;
pub mod recorder;
pub mod report;
pub mod serve;
pub mod snapshot;

pub use flight::{
    global_flight, install_flight_panic_hook, set_global_flight, FlightRecorder, RoundRecord,
};
pub use hist::Histogram;
pub use recorder::{is_timing_class, Event, Recorder, SpanGuard};
pub use snapshot::Snapshot;

use std::sync::Mutex;

/// The process-wide default recorder, initially disabled. Mirrors
/// `arbmis_congest::default_parallelism`: binaries set it once at
/// startup, library entry points pick it up as their default.
static GLOBAL: Mutex<Option<Recorder>> = Mutex::new(None);

/// Installs `rec` as the process-wide default recorder (picked up by
/// `Simulator::new` and `arb_mis`, among others). Call once at startup;
/// library code and tests should pass explicit recorders instead.
pub fn set_global(rec: Recorder) {
    *GLOBAL.lock().unwrap() = Some(rec);
}

/// The process-wide default recorder (disabled unless [`set_global`] was
/// called). Cloning is cheap; all clones share state.
pub fn global() -> Recorder {
    GLOBAL
        .lock()
        .unwrap()
        .clone()
        .unwrap_or_else(Recorder::disabled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_recorder_is_shared() {
        // The global starts disabled; installing an enabled recorder
        // makes every subsequent `global()` clone write to it. (This is
        // the only test in the workspace that touches the global — the
        // harness shares one process across test threads.)
        let r = global();
        r.add("noop", 1); // no-op on the disabled default, must not panic
        let rec = Recorder::deterministic();
        set_global(rec.clone());
        global().add("shared", 2);
        assert_eq!(rec.snapshot().counter("shared"), Some(2));
        set_global(Recorder::disabled());
        assert!(!global().enabled());
    }
}
