//! A dependency-free blocking HTTP listener exposing a recorder live —
//! the seed of the always-on metrics server tier.
//!
//! [`Server`] binds a [`std::net::TcpListener`] and answers four routes:
//!
//! | route          | payload                                         |
//! |----------------|-------------------------------------------------|
//! | `/metrics`     | [`Snapshot::to_prometheus`] (exposition 0.0.4)  |
//! | `/trace.json`  | [`Snapshot::to_chrome_trace`] (Perfetto)        |
//! | `/flight.jsonl`| the global [`crate::FlightRecorder`] ring       |
//! | `/healthz`     | `ok`                                            |
//!
//! The snapshot source is a closure, so the server can front a live
//! [`crate::Recorder`] (snapshot per request) or a static snapshot
//! loaded from a trace file. One request per connection, `Connection:
//! close` — deliberately minimal: no threads, no keep-alive, no TLS.
//! Observation rule (DESIGN.md §8) holds trivially: serving reads a
//! snapshot copy and never touches engine state.

use crate::flight::global_flight;
use crate::snapshot::Snapshot;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Per-connection read/write deadline. A client that connects and never
/// sends a request line (or never drains the response) is cut off after
/// this long instead of parking the accept loop forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Produces the snapshot served on each request.
pub type SnapshotSource = Box<dyn Fn() -> Snapshot + Send>;

/// A blocking single-threaded metrics server. See the module docs.
pub struct Server {
    listener: TcpListener,
    source: SnapshotSource,
    io_timeout: Duration,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port)
    /// and serves snapshots drawn from `source`.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind<A: ToSocketAddrs>(addr: A, source: SnapshotSource) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            source,
            io_timeout: IO_TIMEOUT,
        })
    }

    /// Overrides the per-connection read/write deadline (default 5 s).
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> Server {
        self.io_timeout = timeout;
        self
    }

    /// Convenience: serve live snapshots of `recorder`.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind_recorder<A: ToSocketAddrs>(
        addr: A,
        recorder: crate::Recorder,
    ) -> std::io::Result<Server> {
        Self::bind(addr, Box::new(move || recorder.snapshot()))
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and answers exactly one connection (the testable unit).
    ///
    /// # Errors
    ///
    /// Propagates accept/read/write errors; a malformed request is
    /// answered with a 400, a connect-and-stall client with a 408 after
    /// the read deadline — neither is an error.
    pub fn handle_one(&self) -> std::io::Result<()> {
        let (stream, _) = self.listener.accept()?;
        self.answer(stream)
    }

    /// Serves forever (accept loop; per-connection errors are ignored so
    /// one bad client cannot kill the endpoint).
    pub fn serve_forever(&self) -> ! {
        loop {
            if let Ok((stream, _)) = self.listener.accept() {
                let _ = self.answer(stream);
            }
        }
    }

    fn answer(&self, mut stream: TcpStream) -> std::io::Result<()> {
        // A single stalled client must not wedge the (single-threaded)
        // accept loop: every read and write on this connection carries a
        // deadline.
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut request_line = String::new();
        let mut timed_out = false;
        match reader.read_line(&mut request_line) {
            Ok(_) => {}
            Err(e) if is_timeout(&e) => timed_out = true,
            Err(e) => return Err(e),
        }
        if !timed_out {
            // Drain headers (bounded) so well-behaved clients see a
            // clean close; content is ignored. A stall mid-headers is a
            // timeout too.
            let mut header = String::new();
            for _ in 0..128 {
                header.clear();
                match reader.read_line(&mut header) {
                    Ok(0) => break,
                    Ok(_) if header.trim().is_empty() => break,
                    Ok(_) => {}
                    Err(e) if is_timeout(&e) => {
                        timed_out = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        let mut parts = request_line.split_whitespace();
        let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        // Route matching ignores the query string (`/metrics?x=1` is
        // `/metrics`) — scrapers add cache-busting params freely.
        let path = path.split(['?', '#']).next().unwrap_or("");
        let response = if timed_out {
            http_response(408, "text/plain; charset=utf-8", "request timeout\n")
        } else if method != "GET" {
            http_response(405, "text/plain; charset=utf-8", "method not allowed\n")
        } else {
            match path {
                "/metrics" => http_response(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &(self.source)().to_prometheus(),
                ),
                "/trace.json" => {
                    http_response(200, "application/json", &(self.source)().to_chrome_trace())
                }
                "/flight.jsonl" => {
                    http_response(200, "application/jsonl", &global_flight().to_jsonl())
                }
                "/healthz" => http_response(200, "text/plain; charset=utf-8", "ok\n"),
                "/" => http_response(
                    200,
                    "text/plain; charset=utf-8",
                    "arbmis obs endpoints: /metrics /trace.json /flight.jsonl /healthz\n",
                ),
                "" => http_response(400, "text/plain; charset=utf-8", "bad request\n"),
                _ => http_response(404, "text/plain; charset=utf-8", "not found\n"),
            }
        };
        stream.write_all(response.as_bytes())?;
        stream.flush()
    }
}

/// Whether `e` is a socket-deadline expiry (`WouldBlock` on Unix,
/// `TimedOut` on Windows — `set_read_timeout` surfaces either).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn http_response(status: u16, content_type: &str, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        _ => "Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::io::Read;

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let rec = Recorder::deterministic();
        rec.add("congest_rounds", 9);
        rec.observe("round_bits", 5);
        let server = Server::bind_recorder("127.0.0.1:0", rec.clone()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            for _ in 0..5 {
                server.handle_one().unwrap();
            }
        });
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("version=0.0.4"), "{metrics}");
        assert!(metrics.contains("congest_rounds 9"), "{metrics}");
        assert!(metrics.contains("round_bits_bucket"), "{metrics}");

        // The endpoint is live: new observations appear on re-scrape.
        rec.add("congest_rounds", 1);
        assert!(get(addr, "/metrics").contains("congest_rounds 10"));

        assert!(get(addr, "/healthz").contains("ok"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        let trace = get(addr, "/trace.json");
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        t.join().unwrap();
    }

    #[test]
    fn rejects_non_get() {
        let server = Server::bind_recorder("127.0.0.1:0", Recorder::deterministic()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.handle_one().unwrap());
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        t.join().unwrap();
    }

    #[test]
    fn content_length_matches_body() {
        let resp = http_response(200, "text/plain", "hello\n");
        assert!(resp.contains("Content-Length: 6\r\n"));
        assert!(resp.ends_with("\r\n\r\nhello\n"));
    }

    #[test]
    fn query_string_is_ignored_for_routing() {
        let server = Server::bind_recorder("127.0.0.1:0", Recorder::deterministic()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            for _ in 0..3 {
                server.handle_one().unwrap();
            }
        });
        let metrics = get(addr, "/metrics?x=1&y=2");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(get(addr, "/healthz?probe").contains("ok"));
        assert!(get(addr, "/nope?x=1").starts_with("HTTP/1.1 404"));
        t.join().unwrap();
    }

    #[test]
    fn connect_and_stall_gets_408_and_server_stays_alive() {
        let server = Server::bind_recorder("127.0.0.1:0", Recorder::deterministic())
            .unwrap()
            .with_io_timeout(Duration::from_millis(100));
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            for _ in 0..2 {
                server.handle_one().unwrap();
            }
        });
        // A client that connects and sends nothing: handle_one must not
        // hang forever; the stalling client is answered 408 once the
        // read deadline fires.
        let mut stall = TcpStream::connect(addr).unwrap();
        let mut out = String::new();
        stall.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
        // The server survived and still answers the next client.
        assert!(get(addr, "/healthz").contains("ok"));
        t.join().unwrap();
    }

    #[test]
    fn stall_mid_headers_gets_408() {
        let server = Server::bind_recorder("127.0.0.1:0", Recorder::deterministic())
            .unwrap()
            .with_io_timeout(Duration::from_millis(100));
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.handle_one().unwrap());
        // Request line arrives but the header block never terminates.
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n").unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
        t.join().unwrap();
    }
}
