//! The flight recorder: a bounded ring buffer of per-round
//! [`RoundRecord`]s, kept alongside (not inside) the metric
//! [`crate::Recorder`] so round-level forensics stay cheap and
//! size-bounded even on million-round executions.
//!
//! Engines push one record per executed round; when the buffer is full
//! the oldest record is evicted, so after a crash the buffer holds the
//! *last* `capacity` rounds — the ones that matter. The same §8 contract
//! as the recorder applies (DESIGN.md):
//!
//! 1. **Observation only.** Recording a round never changes simulation
//!    results; engines only read the quantities they report.
//! 2. **Determinism.** Every [`RoundRecord`] field is deterministic
//!    class: for a fixed `(graph, seed, config)` the recorded bytes are
//!    identical run to run, across the serial and parallel CONGEST
//!    engines, and at every thread count. There is no timing field.
//!
//! A disabled recorder (the default) is an `Option<Arc>` null check per
//! call. Install one process-wide with [`set_global_flight`] and dump it
//! on panic via [`install_flight_panic_hook`].

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// One round's structured flight-recorder entry.
///
/// `engine` names the capture source; fields a source cannot observe are
/// zero (`0` digests, `"-"` scan):
///
/// * `"congest"` — the CONGEST simulator (serial or parallel engine):
///   `frontier` is the number of nodes stepped, `messages`/`bits` are
///   the round's deltas, `scan` is `"frontier"` or `"full"`. Digests are
///   zero (the simulator is protocol-generic).
/// * `"flat"` — the flat backend's capture:
///   `frontier` is the active-set size entering the round, `scan` is the
///   effective sweep density (`"sparse"`/`"dense"`), and the joiner/coin
///   digests are filled.
/// * `"congest-backend"` — the `CongestBackend` adapter's backend-level
///   capture, with the same digest definitions as `"flat"` (the
///   cross-backend comparable columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// Capture source (see the type docs).
    pub engine: &'static str,
    /// Round index (0-based; the round this record describes).
    pub round: u64,
    /// Frontier / active-set size for this round.
    pub frontier: u64,
    /// Number of nodes that joined the MIS this round.
    pub joiners: u64,
    /// FNV-1a digest of the ascending joiner ids (0 when none).
    pub joiner_digest: u64,
    /// FNV-1a digest of the round's coin stream (0 on non-decide
    /// rounds or when no active node drew).
    pub coin_digest: u64,
    /// Messages sent this round (simulator capture only).
    pub messages: u64,
    /// Total bits sent this round (simulator capture only).
    pub bits: u64,
    /// Scan mode label: `"frontier"`, `"full"`, `"sparse"`, `"dense"`,
    /// or `"-"` when not applicable.
    pub scan: &'static str,
    /// The metric recorder's event sequence number at record time — ties
    /// the round to the enclosing phase span in the event log (0 when no
    /// recorder is attached).
    pub span_seq: u64,
}

impl RoundRecord {
    /// Renders the record as one self-contained JSON object (no trailing
    /// newline). Digests are fixed-width hex for easy column diffing.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"round\",\"engine\":\"{}\",\"round\":{},\"frontier\":{},\"joiners\":{},\"joiner_digest\":\"{:016x}\",\"coin_digest\":\"{:016x}\",\"messages\":{},\"bits\":{},\"scan\":\"{}\",\"span_seq\":{}}}",
            self.engine,
            self.round,
            self.frontier,
            self.joiners,
            self.joiner_digest,
            self.coin_digest,
            self.messages,
            self.bits,
            self.scan,
            self.span_seq,
        )
    }
}

struct Ring {
    records: VecDeque<RoundRecord>,
    capacity: usize,
    total: u64,
}

/// A bounded, cheaply-cloneable per-round flight recorder. All clones
/// share the same ring; the disabled recorder ([`FlightRecorder::disabled`],
/// also the `Default`) makes every call a null check.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<Ring>>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("FlightRecorder(disabled)"),
            Some(_) => write!(f, "FlightRecorder(capacity={})", self.capacity()),
        }
    }
}

impl FlightRecorder {
    /// The no-op recorder.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// A recorder keeping the most recent `capacity` rounds (at least 1).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(Ring {
                records: VecDeque::with_capacity(capacity),
                capacity,
                total: 0,
            }))),
        }
    }

    /// Whether records are being kept.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().unwrap().capacity)
    }

    /// Records one round, evicting the oldest record when full.
    pub fn record(&self, r: RoundRecord) {
        let Some(inner) = &self.inner else { return };
        let mut ring = inner.lock().unwrap();
        if ring.records.len() == ring.capacity {
            ring.records.pop_front();
        }
        ring.records.push_back(r);
        ring.total += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<RoundRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.lock().unwrap().records.iter().copied().collect()
        })
    }

    /// Number of retained records (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().unwrap().records.len())
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever pushed (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.lock().unwrap().total)
    }

    /// Empties the ring (capacity unchanged).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.lock().unwrap();
            ring.records.clear();
            ring.total = 0;
        }
    }

    /// Renders the ring as JSONL: a `meta` header then one line per
    /// retained record, oldest first. Deterministic-class bytes only.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"meta\",\"format\":\"arbmis-flight\",\"version\":1,\"capacity\":{},\"total_recorded\":{}}}\n",
            self.capacity(),
            self.total_recorded()
        );
        for r in self.records() {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes [`to_jsonl`](Self::to_jsonl) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn dump_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(self.to_jsonl().as_bytes())
    }
}

/// The process-wide flight recorder, initially disabled (mirrors
/// [`crate::global`] for the metric recorder).
static GLOBAL_FLIGHT: Mutex<Option<FlightRecorder>> = Mutex::new(None);

/// Installs `fr` as the process-wide flight recorder (picked up by
/// `Simulator::new` and the flat backends). Call once at startup.
pub fn set_global_flight(fr: FlightRecorder) {
    *GLOBAL_FLIGHT.lock().unwrap() = Some(fr);
}

/// The process-wide flight recorder (disabled unless
/// [`set_global_flight`] was called). Clones share the ring.
pub fn global_flight() -> FlightRecorder {
    GLOBAL_FLIGHT
        .lock()
        .unwrap()
        .clone()
        .unwrap_or_else(FlightRecorder::disabled)
}

/// Installs (once per process) a panic hook that dumps the global flight
/// recorder's retained rounds to stderr before the previous hook runs —
/// so a panic inside an engine, an invariant violation, or a failed
/// equivalence assertion leaves the last-N-rounds forensics on the
/// console. A disabled or empty global recorder dumps nothing.
pub fn install_flight_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let flight = global_flight();
            if flight.enabled() && !flight.is_empty() {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(
                    err,
                    "--- flight recorder dump (last {} rounds) ---",
                    flight.len()
                );
                let _ = flight.dump_to(&mut err);
                let _ = writeln!(err, "--- end flight recorder dump ---");
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64) -> RoundRecord {
        RoundRecord {
            engine: "congest",
            round,
            frontier: 10 + round,
            joiners: 1,
            joiner_digest: 0xabcd,
            coin_digest: 0,
            messages: 4,
            bits: 32,
            scan: "frontier",
            span_seq: 0,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let f = FlightRecorder::disabled();
        assert!(!f.enabled());
        f.record(rec(0));
        assert_eq!(f.len(), 0);
        assert_eq!(f.capacity(), 0);
        assert_eq!(f.total_recorded(), 0);
        assert!(f.records().is_empty());
        assert!(f.to_jsonl().starts_with("{\"type\":\"meta\""));
    }

    #[test]
    fn ring_evicts_oldest() {
        let f = FlightRecorder::bounded(3);
        for r in 0..5 {
            f.record(rec(r));
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.total_recorded(), 5);
        let rounds: Vec<u64> = f.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn clones_share_the_ring() {
        let f = FlightRecorder::bounded(8);
        let g = f.clone();
        f.record(rec(0));
        g.record(rec(1));
        assert_eq!(f.len(), 2);
        g.clear();
        assert!(f.is_empty());
        assert_eq!(f.total_recorded(), 0);
    }

    #[test]
    fn jsonl_shape_pinned() {
        let f = FlightRecorder::bounded(4);
        f.record(rec(7));
        let out = f.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"meta\",\"format\":\"arbmis-flight\",\"version\":1,\"capacity\":4,\"total_recorded\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"round\",\"engine\":\"congest\",\"round\":7,\"frontier\":17,\"joiners\":1,\"joiner_digest\":\"000000000000abcd\",\"coin_digest\":\"0000000000000000\",\"messages\":4,\"bits\":32,\"scan\":\"frontier\",\"span_seq\":0}"
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let f = FlightRecorder::bounded(0);
        assert_eq!(f.capacity(), 1);
        f.record(rec(0));
        f.record(rec(1));
        assert_eq!(f.len(), 1);
        assert_eq!(f.records()[0].round, 1);
    }
}
