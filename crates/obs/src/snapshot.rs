//! A consistent copy of a [`crate::Recorder`]'s state, and the two
//! machine-readable sinks rendered from it: a JSONL event log and a
//! Prometheus text exposition.
//!
//! Both renderings are fully deterministic given the snapshot: events
//! appear in recorded order, metrics in lexicographic name order
//! (`BTreeMap` iteration order at snapshot time). With a
//! [`crate::Recorder::deterministic`] recorder, the rendered bytes are
//! identical run to run.

use crate::hist::Histogram;
use crate::recorder::Event;
use std::fmt::Write as _;

/// Everything a recorder has accumulated: the chronological event log
/// plus the final counter/gauge/histogram values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Chronological event log (spans and point events).
    pub events: Vec<Event>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// The value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of a gauge, if recorded.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Completed spans as `(path, wall_ns)` in completion order.
    pub fn span_durations(&self) -> Vec<(String, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::SpanEnd { path, wall_ns, .. } => Some((path.clone(), *wall_ns)),
                _ => None,
            })
            .collect()
    }

    /// Whether a span with this exact path completed.
    pub fn has_span(&self, path: &str) -> bool {
        self.span_durations().iter().any(|(p, _)| p == path)
    }

    /// Renders the snapshot as a JSONL event log: one JSON object per
    /// line — a `meta` header, every event in order, then every counter,
    /// gauge, and histogram.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"format\":\"arbmis-obs\",\"version\":1}}"
        );
        for e in &self.events {
            match e {
                Event::SpanStart { seq, path } => {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"span_start\",\"seq\":{seq},\"path\":\"{}\"}}",
                        escape(path)
                    );
                }
                Event::SpanEnd { seq, path, wall_ns } => {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"span_end\",\"seq\":{seq},\"path\":\"{}\",\"wall_ns\":{wall_ns}}}",
                        escape(path)
                    );
                }
                Event::Point {
                    seq,
                    path,
                    name,
                    value,
                } => {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"point\",\"seq\":{seq},\"path\":\"{}\",\"name\":\"{}\",\"value\":{value}}}",
                        escape(path),
                        escape(name)
                    );
                }
            }
        }
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                escape(name)
            );
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                fmt_f64(*v)
            );
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h
                .cumulative()
                .iter()
                .map(|(le, c)| format!("[{le},{c}]"))
                .collect();
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"cumulative_buckets\":[{}]}}",
                escape(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                buckets.join(",")
            );
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters, gauges, then histograms with
    /// cumulative `le` buckets, `_sum`, and `_count` series. Metric
    /// names are sanitized to `[a-zA-Z0-9_:]`; a `{label="value"}`
    /// suffix in a recorded name is preserved as-is.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<String> = None;
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if last_typed.as_deref() != Some(base) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_typed = Some(base.to_string());
            }
        };
        for (name, v) in &self.counters {
            let (base, labels) = split_labels(name);
            let base = sanitize(&base);
            let labels = escape_label_block(&labels);
            type_line(&mut out, &base, "counter");
            let _ = writeln!(out, "{base}{labels} {v}");
        }
        for (name, v) in &self.gauges {
            let (base, labels) = split_labels(name);
            let base = sanitize(&base);
            let labels = escape_label_block(&labels);
            type_line(&mut out, &base, "gauge");
            let _ = writeln!(out, "{base}{labels} {}", fmt_f64(*v));
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            let base = sanitize(&base);
            let labels = escape_label_block(&labels);
            type_line(&mut out, &base, "histogram");
            for (le, c) in h.cumulative() {
                let _ = writeln!(out, "{base}_bucket{} {c}", merge_labels(&labels, le));
            }
            let _ = writeln!(
                out,
                "{base}_bucket{} {}",
                merge_labels_inf(&labels),
                h.count()
            );
            let _ = writeln!(out, "{base}_sum{labels} {}", h.sum());
            let _ = writeln!(out, "{base}_count{labels} {}", h.count());
        }
        out
    }

    /// Renders the event log in the Chrome trace-event JSON format
    /// (loadable in Perfetto / `chrome://tracing`): every span becomes a
    /// `B`/`E` duration pair, every point event an `i` instant, all on
    /// one synthetic track (`pid` 1, `tid` 1), timestamps in
    /// microseconds.
    ///
    /// Wall-clock placement uses a running clock fed by the recorded
    /// span durations: a span starts at the current clock, ends at
    /// `start + wall_ns` (never before a child's end), and advances the
    /// clock. Under a [`crate::Recorder::deterministic`] recorder every
    /// duration is zero, so all timestamps collapse to 0 — the event
    /// *order* (array order) still reproduces the phase structure, and
    /// the rendered bytes are identical run to run.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut now_ns = 0u64;
        let mut starts: Vec<u64> = Vec::new();
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&ev);
        };
        let ts_us = |ns: u64| format!("{:.3}", ns as f64 / 1e3);
        for e in &self.events {
            match e {
                Event::SpanStart { seq, path } => {
                    let name = path.rsplit('/').next().unwrap_or(path);
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":{},\"name\":\"{}\",\"args\":{{\"path\":\"{}\",\"seq\":{seq}}}}}",
                            ts_us(now_ns),
                            escape(name),
                            escape(path)
                        ),
                    );
                    starts.push(now_ns);
                }
                Event::SpanEnd { seq, path, wall_ns } => {
                    let start = starts.pop().unwrap_or(now_ns);
                    // Never end before the clock (children already
                    // advanced it); nested spans stay properly nested.
                    let end = (start + wall_ns).max(now_ns);
                    let name = path.rsplit('/').next().unwrap_or(path);
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":{},\"name\":\"{}\",\"args\":{{\"path\":\"{}\",\"seq\":{seq}}}}}",
                            ts_us(end),
                            escape(name),
                            escape(path)
                        ),
                    );
                    now_ns = end;
                }
                Event::Point {
                    seq,
                    path,
                    name,
                    value,
                } => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\"args\":{{\"path\":\"{}\",\"value\":{value},\"seq\":{seq}}}}}",
                            ts_us(now_ns),
                            escape(name),
                            escape(path)
                        ),
                    );
                }
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Formats an `f64` the way both sinks need it: integral values without
/// a trailing `.0` would reparse as integers, which is fine for JSON,
/// but keep Rust's shortest-roundtrip default for full fidelity.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; Prometheus renders them as strings too.
        format!("\"{v}\"")
    }
}

/// JSON string escaping for the small character set metric names use.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Splits a recorded name into `(base, label_block)` where the label
/// block (possibly empty) includes its braces.
fn split_labels(name: &str) -> (String, String) {
    match name.split_once('{') {
        Some((base, rest)) => (base.to_string(), format!("{{{rest}")),
        None => (name.to_string(), String::new()),
    }
}

/// Sanitizes a base metric name for Prometheus.
fn sanitize(base: &str) -> String {
    base.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes label *values* inside a `{k="v",…}` block per the Prometheus
/// text exposition format 0.0.4: backslash → `\\`, double-quote → `\"`,
/// line feed → `\n`. Recorded label values are raw (instrumentation
/// sites write whatever string they have), so escaping happens once
/// here, at render time.
///
/// The only ambiguity in the raw encoding is a `"` inside a value; it is
/// resolved by the closing heuristic: a `"` terminates a value only when
/// followed by `,` (next pair) or by `}` at the very end of the block.
/// A malformed block (no `=`, unterminated value, …) is returned
/// unchanged — fail open, matching `sanitize`'s best-effort spirit.
fn escape_label_block(labels: &str) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let Some(inner) = labels.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
        return labels.to_string();
    };
    let chars: Vec<char> = inner.chars().collect();
    let mut out = String::with_capacity(labels.len() + 8);
    out.push('{');
    let mut i = 0;
    while i < chars.len() {
        // Key up to '='.
        let key_start = i;
        while i < chars.len() && chars[i] != '=' {
            i += 1;
        }
        if i == key_start || i >= chars.len() {
            return labels.to_string();
        }
        out.extend(&chars[key_start..i]);
        out.push('=');
        i += 1;
        // Opening quote.
        if i >= chars.len() || chars[i] != '"' {
            return labels.to_string();
        }
        out.push('"');
        i += 1;
        // Value: a '"' closes it only before ',' or at block end.
        let mut closed = false;
        while i < chars.len() {
            let c = chars[i];
            if c == '"' && (i + 1 == chars.len() || chars[i + 1] == ',') {
                closed = true;
                out.push('"');
                i += 1;
                break;
            }
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
            i += 1;
        }
        if !closed {
            return labels.to_string();
        }
        if i < chars.len() {
            // Must be the ',' separating the next pair.
            out.push(',');
            i += 1;
        }
    }
    out.push('}');
    out
}

/// Adds `le="n"` to a (possibly empty) label block.
fn merge_labels(labels: &str, le: u64) -> String {
    match labels.strip_suffix('}') {
        Some(head) => format!("{head},le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    }
}

/// Adds `le="+Inf"` to a (possibly empty) label block.
fn merge_labels_inf(labels: &str) -> String {
    match labels.strip_suffix('}') {
        Some(head) => format!("{head},le=\"+Inf\"}}"),
        None => "{le=\"+Inf\"}".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample() -> Snapshot {
        let r = Recorder::deterministic();
        {
            let _root = r.span("arbmis");
            let _p = r.span("shattering");
            r.point("scale", 1);
        }
        r.add("congest_messages", 12);
        r.gauge("headroom", 1.5);
        r.observe("round_bits{proto=\"luby\"}", 0);
        r.observe("round_bits{proto=\"luby\"}", 5);
        r.snapshot()
    }

    #[test]
    fn jsonl_shape_pinned() {
        let s = sample();
        let jsonl = s.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"meta\",\"format\":\"arbmis-obs\",\"version\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"span_start\",\"seq\":0,\"path\":\"arbmis\"}"
        );
        assert!(lines.iter().any(|l| l.contains("\"span_end\"")
            && l.contains("\"arbmis/shattering\"")
            && l.contains("\"wall_ns\":0")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"counter\"") && l.contains("\"congest_messages\"")));
        assert!(lines.iter().any(|l| l.contains("\"histogram\"")
            && l.contains("\"cumulative_buckets\":[[0,1],[1,1],[3,1],[7,2]]")));
    }

    #[test]
    fn jsonl_lines_are_self_contained_objects() {
        // The vendored serde_json has no raw-Value entry point, so check
        // the line grammar structurally: every line is one JSON object
        // with a type tag and balanced quoting.
        for line in sample().to_jsonl().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
            assert_eq!(
                line.matches('"').count() % 2,
                0,
                "unbalanced quotes: {line}"
            );
        }
    }

    #[test]
    fn prometheus_format_pinned() {
        let s = sample();
        let prom = s.to_prometheus();
        let expected = "\
# TYPE congest_messages counter
congest_messages 12
# TYPE headroom gauge
headroom 1.5
# TYPE round_bits histogram
round_bits_bucket{proto=\"luby\",le=\"0\"} 1
round_bits_bucket{proto=\"luby\",le=\"1\"} 1
round_bits_bucket{proto=\"luby\",le=\"3\"} 1
round_bits_bucket{proto=\"luby\",le=\"7\"} 2
round_bits_bucket{proto=\"luby\",le=\"+Inf\"} 2
round_bits_sum{proto=\"luby\"} 5
round_bits_count{proto=\"luby\"} 2
";
        assert_eq!(prom, expected);
    }

    #[test]
    fn sanitize_dots_and_dashes() {
        assert_eq!(sanitize("a.b-c:d_e"), "a_b_c:d_e");
    }

    /// Exposition-format 0.0.4 label-value escaping, pinned: `\` → `\\`,
    /// `"` → `\"`, newline → `\n`.
    #[test]
    fn label_values_escaped_per_exposition_format() {
        assert_eq!(
            escape_label_block("{path=\"C:\\temp\\x\"}"),
            "{path=\"C:\\\\temp\\\\x\"}"
        );
        assert_eq!(
            escape_label_block("{note=\"line1\nline2\"}"),
            "{note=\"line1\\nline2\"}"
        );
        assert_eq!(
            escape_label_block("{q=\"say \"hi\" now\"}"),
            "{q=\"say \\\"hi\\\" now\"}"
        );
        // Multiple pairs: only values are touched, keys and separators
        // pass through.
        assert_eq!(
            escape_label_block("{a=\"x\\y\",b=\"plain\"}"),
            "{a=\"x\\\\y\",b=\"plain\"}"
        );
        // Clean blocks are unchanged.
        assert_eq!(
            escape_label_block("{worker=\"3\",exp=\"E9\"}"),
            "{worker=\"3\",exp=\"E9\"}"
        );
        assert_eq!(escape_label_block(""), "");
    }

    #[test]
    fn malformed_label_blocks_fail_open() {
        for raw in [
            "{novalue}",
            "{k=unquoted}",
            "{k=\"unterminated}",
            "{=\"v\"}",
            "not-a-block",
        ] {
            assert_eq!(escape_label_block(raw), raw, "{raw}");
        }
    }

    #[test]
    fn prometheus_rendering_escapes_label_values() {
        let r = Recorder::new();
        r.gauge("g{path=\"a\\b\"}", 1.0);
        r.add("c{msg=\"two\nlines\"}", 3);
        let prom = r.snapshot().to_prometheus();
        assert!(prom.contains("g{path=\"a\\\\b\"} 1"), "{prom}");
        assert!(prom.contains("c{msg=\"two\\nlines\"} 3"), "{prom}");
        // The rendered exposition has no raw newline inside a line.
        for line in prom.lines() {
            assert!(!line.is_empty());
        }
        assert_eq!(prom.lines().count(), 4); // 2 TYPE lines + 2 samples
    }

    #[test]
    fn histogram_label_values_escaped_in_all_series() {
        let r = Recorder::new();
        r.observe("h{src=\"x\\y\"}", 2);
        let prom = r.snapshot().to_prometheus();
        assert!(prom.contains("h_bucket{src=\"x\\\\y\",le=\"1\"}"), "{prom}");
        assert!(
            prom.contains("h_bucket{src=\"x\\\\y\",le=\"+Inf\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("h_sum{src=\"x\\\\y\"} 2"), "{prom}");
        assert!(prom.contains("h_count{src=\"x\\\\y\"} 1"), "{prom}");
    }

    #[test]
    fn chrome_trace_shape_pinned() {
        let s = sample();
        let trace = s.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(trace.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // One B and one E per span, one i per point.
        assert_eq!(trace.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(trace.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(trace.matches("\"ph\":\"i\"").count(), 1);
        // Span names are the last path segment; full path in args.
        assert!(trace.contains("\"name\":\"shattering\""));
        assert!(trace.contains("\"path\":\"arbmis/shattering\""));
        // Deterministic recorder: every timestamp is 0.000.
        assert_eq!(trace.matches("\"ts\":0.000").count(), 5);
        // Deterministic bytes run to run.
        assert_eq!(trace, sample().to_chrome_trace());
    }

    #[test]
    fn chrome_trace_timed_spans_nest() {
        let r = Recorder::new();
        {
            let _a = r.span("outer");
            let _b = r.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let trace = r.snapshot().to_chrome_trace();
        // Extract ts values in event order: B(outer) B(inner) E(inner) E(outer).
        let ts: Vec<f64> = trace
            .lines()
            .filter_map(|l| {
                let i = l.find("\"ts\":")?;
                let rest = &l[i + 5..];
                let end = rest.find(',')?;
                rest[..end].parse().ok()
            })
            .collect();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[0], 0.0);
        assert_eq!(ts[1], 0.0);
        assert!(ts[2] > 0.0, "inner span has nonzero duration");
        assert!(ts[3] >= ts[2], "outer ends at or after inner");
    }

    #[test]
    fn deterministic_recorder_renders_identically() {
        let make = || {
            let r = Recorder::deterministic();
            {
                let _s = r.span("phase");
                r.add("c", 1);
                r.observe("h", 42);
            }
            r.snapshot()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
    }

    #[test]
    fn span_helpers() {
        let s = sample();
        assert!(s.has_span("arbmis"));
        assert!(s.has_span("arbmis/shattering"));
        assert!(!s.has_span("missing"));
        assert_eq!(s.span_durations().len(), 2);
        // Inner span completes first.
        assert_eq!(s.span_durations()[0].0, "arbmis/shattering");
    }
}
