//! The [`Recorder`]: the single handle every instrumented layer writes
//! through.
//!
//! A recorder is either *disabled* — a `None` inner, so every call is a
//! branch on a null pointer and returns immediately — or *enabled*,
//! holding shared aggregation state behind a mutex. Cloning is cheap
//! (an `Option<Arc>` clone); all clones write to the same state.
//!
//! Determinism contract (DESIGN.md §8): everything a recorder stores is
//! split into two classes.
//!
//! * **Deterministic class** — counters, gauges, histograms, point
//!   events, and the span *structure* (names, nesting, order). These are
//!   pure functions of `(graph, seed, config)` and are identical run to
//!   run and at every thread count.
//! * **Timing class** — span `wall_ns` durations and every metric whose
//!   name ends in `_ns` (round wall-time, worker busy-time) or starts
//!   with `worker_` (work-stealing utilization). These are wall-clock
//!   measurements and vary run to run; [`Recorder::deterministic`]
//!   disables them for byte-identical sink output.
//!
//! Attaching, detaching, or swapping a recorder never changes simulation
//! results: instrumented code only *reads* the quantities it reports.

use crate::hist::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One entry of the chronological event log.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A phase span opened (`path` is `/`-joined from the span stack).
    SpanStart {
        /// Global event sequence number.
        seq: u64,
        /// Full nesting path, e.g. `arbmis/bad_components/cole_vishkin`.
        path: String,
    },
    /// A phase span closed.
    SpanEnd {
        /// Global event sequence number.
        seq: u64,
        /// Full nesting path of the span being closed.
        path: String,
        /// Wall-clock duration in nanoseconds (0 when timing is
        /// disabled — the timing-class field of the event log).
        wall_ns: u64,
    },
    /// A point annotation (e.g. one Monte-Carlo trial batch).
    Point {
        /// Global event sequence number.
        seq: u64,
        /// Span path at the time of the event.
        path: String,
        /// Event name.
        name: String,
        /// Event payload value.
        value: u64,
    },
}

/// Whether a metric name belongs to the **timing class** of the §8
/// contract: wall-clock or schedule/environment-dependent data, which
/// must be quarantined to names ending in `_ns` or starting with
/// `worker_` so [`Recorder::deterministic`] sink output stays
/// byte-identical. Prometheus-style label suffixes are stripped first,
/// so `worker_busy_ns{worker="3"}` and `cell_run_ns{exp="E9"}` both
/// classify by their base name.
pub fn is_timing_class(name: &str) -> bool {
    let base = name.split('{').next().unwrap_or(name);
    base.ends_with("_ns") || base.starts_with("worker_")
}

#[derive(Default)]
struct State {
    seq: u64,
    stack: Vec<String>,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl State {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn path_with(&self, name: &str) -> String {
        if self.stack.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.stack.join("/"), name)
        }
    }
}

struct Inner {
    timing: bool,
    state: Mutex<State>,
}

/// A cheap, cloneable observability handle. See the module docs for the
/// determinism contract.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => write!(f, "Recorder(enabled, timing={})", inner.timing),
        }
    }
}

impl Recorder {
    /// The no-op recorder: every call is a null-check and a return.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder with wall-clock timing.
    pub fn new() -> Self {
        Self::with_timing(true)
    }

    /// An enabled recorder whose timing-class fields are all zero, so
    /// two identical runs produce byte-identical sink output.
    pub fn deterministic() -> Self {
        Self::with_timing(false)
    }

    fn with_timing(timing: bool) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                timing,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether this recorder stores anything. Hot paths gate batched
    /// collection on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether wall-clock timing is being recorded.
    pub fn timing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.timing)
    }

    /// The next event sequence number (0 when disabled). Deterministic
    /// class: events are pure functions of `(graph, seed, config)`, so
    /// this ties external records (e.g. flight-recorder rounds) to a
    /// stable position in the event log.
    pub fn seq(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().seq)
    }

    /// Opens a nested phase span; the returned guard closes it on drop.
    /// Spans model the *coordinating* control flow: open and close them
    /// on one logical thread, LIFO.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                recorder: Recorder::disabled(),
                path: String::new(),
                start: None,
            };
        };
        let mut st = inner.state.lock();
        let path = st.path_with(name);
        let seq = st.next_seq();
        st.events.push(Event::SpanStart {
            seq,
            path: path.clone(),
        });
        st.stack.push(name.to_string());
        SpanGuard {
            recorder: self.clone(),
            path,
            start: inner.timing.then(Instant::now),
        }
    }

    fn close_span(&self, path: String, start: Option<Instant>) {
        let Some(inner) = &self.inner else { return };
        let wall_ns = start.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let mut st = inner.state.lock();
        st.stack.pop();
        let seq = st.next_seq();
        st.events.push(Event::SpanEnd { seq, path, wall_ns });
    }

    /// Records a point event (with the current span path attached).
    pub fn point(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock();
        let path = st.stack.join("/");
        let seq = st.next_seq();
        st.events.push(Event::Point {
            seq,
            path,
            name: name.to_string(),
            value,
        });
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock();
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Adds `delta` to a **timing-class** counter: a no-op unless
    /// wall-clock timing is enabled, so schedule- or environment-
    /// dependent counts (worker utilization, cache hit/miss tallies)
    /// never reach a [`Recorder::deterministic`] sink. The name must
    /// satisfy [`is_timing_class`] (debug-asserted) — callers wanting a
    /// deterministic counter use [`Recorder::add`] with a
    /// non-quarantined name instead.
    pub fn add_timing(&self, name: &str, delta: u64) {
        debug_assert!(
            is_timing_class(name),
            "add_timing requires a *_ns / worker_* name, got {name:?}"
        );
        if self.timing() {
            self.add(name, delta);
        }
    }

    /// Records one observation into a **timing-class** histogram; the
    /// timing-gated analogue of [`Recorder::observe`] (see
    /// [`Recorder::add_timing`] for the contract).
    pub fn observe_timing(&self, name: &str, value: u64) {
        debug_assert!(
            is_timing_class(name),
            "observe_timing requires a *_ns / worker_* name, got {name:?}"
        );
        if self.timing() {
            self.observe(name, value);
        }
    }

    /// Sets the named gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock();
        st.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock();
        st.hists.entry(name.to_string()).or_default().observe(value);
    }

    /// Merges a locally-accumulated histogram into the named one — the
    /// batched form hot loops use (one lock per round, not per message).
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock();
        st.hists.entry(name.to_string()).or_default().merge(h);
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> crate::snapshot::Snapshot {
        let Some(inner) = &self.inner else {
            return crate::snapshot::Snapshot::default();
        };
        let st = inner.state.lock();
        crate::snapshot::Snapshot {
            events: st.events.clone(),
            counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: st
                .hists
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// Closes its span on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    recorder: Recorder,
    path: String,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let start = self.start.take();
        let path = std::mem::take(&mut self.path);
        let rec = std::mem::take(&mut self.recorder);
        rec.close_span(path, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.enabled());
        r.add("c", 3);
        r.gauge("g", 1.0);
        r.observe("h", 2);
        r.point("p", 1);
        {
            let _s = r.span("phase");
        }
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn spans_nest_and_close_lifo() {
        let r = Recorder::deterministic();
        {
            let _a = r.span("outer");
            {
                let _b = r.span("inner");
            }
        }
        let snap = r.snapshot();
        let paths: Vec<(&str, &str)> = snap
            .events
            .iter()
            .map(|e| match e {
                Event::SpanStart { path, .. } => ("start", path.as_str()),
                Event::SpanEnd { path, .. } => ("end", path.as_str()),
                Event::Point { name, .. } => ("point", name.as_str()),
            })
            .collect();
        assert_eq!(
            paths,
            vec![
                ("start", "outer"),
                ("start", "outer/inner"),
                ("end", "outer/inner"),
                ("end", "outer"),
            ]
        );
        // Deterministic recorder: all durations are zero.
        for e in &snap.events {
            if let Event::SpanEnd { wall_ns, .. } = e {
                assert_eq!(*wall_ns, 0);
            }
        }
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let r = Recorder::new();
        r.add("c", 2);
        r.add("c", 3);
        r.gauge("g", 1.5);
        r.gauge("g", 2.5); // gauges overwrite
        r.observe("h", 1);
        r.observe("h", 9);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauge_value("g"), Some(2.5));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::deterministic();
        let r2 = r.clone();
        r.add("x", 1);
        r2.add("x", 1);
        assert_eq!(r.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn point_events_carry_span_path() {
        let r = Recorder::deterministic();
        {
            let _s = r.span("mc");
            r.point("batch", 512);
        }
        let snap = r.snapshot();
        assert!(snap.events.iter().any(|e| matches!(
            e,
            Event::Point { path, name, value, .. }
                if path == "mc" && name == "batch" && *value == 512
        )));
    }

    #[test]
    fn timing_class_names_classify_correctly() {
        for name in [
            "round_wall_ns",
            "cell_run_ns",
            "worker_chunks",
            "worker_busy_ns{worker=\"3\"}",
            "cell_run_ns{exp=\"E9\"}",
            "worker_cell_cache_hits",
        ] {
            assert!(is_timing_class(name), "{name} should be timing-class");
        }
        for name in ["rounds", "messages", "ns_total", "nsx", "readk_mc_trials"] {
            assert!(!is_timing_class(name), "{name} should be deterministic");
        }
    }

    #[test]
    fn timing_gated_writes_respect_timing_flag() {
        let det = Recorder::deterministic();
        det.add_timing("worker_cell_cache_hits", 4);
        det.observe_timing("cell_run_ns", 100);
        let snap = det.snapshot();
        assert_eq!(snap.counter("worker_cell_cache_hits"), None);
        assert!(snap.histogram("cell_run_ns").is_none());

        let timed = Recorder::new();
        timed.add_timing("worker_cell_cache_hits", 4);
        timed.observe_timing("cell_run_ns", 100);
        let snap = timed.snapshot();
        assert_eq!(snap.counter("worker_cell_cache_hits"), Some(4));
        assert_eq!(snap.histogram("cell_run_ns").unwrap().count(), 1);
    }

    #[test]
    fn timing_recorder_measures_elapsed() {
        let r = Recorder::new();
        assert!(r.timing());
        {
            let _s = r.span("t");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = r.snapshot();
        let ns = snap
            .events
            .iter()
            .find_map(|e| match e {
                Event::SpanEnd { wall_ns, .. } => Some(*wall_ns),
                _ => None,
            })
            .unwrap();
        assert!(ns > 0);
    }
}
