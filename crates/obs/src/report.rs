//! Trace-report tooling: parse an `arbmis-obs` JSONL export back into a
//! [`Snapshot`] and render it as a human-readable phase/round table with
//! percentile summaries.
//!
//! The parser accepts exactly the format [`Snapshot::to_jsonl`] emits —
//! a `meta` header line, then one self-contained JSON object per event,
//! counter, gauge, and histogram. It is a small hand-rolled field
//! extractor (the vendored `serde_json` has no dynamic-value entry
//! point), which is fine because the grammar is ours and pinned by unit
//! tests on the round-trip.

use crate::hist::Histogram;
use crate::recorder::Event;
use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// Parses an `arbmis-obs` JSONL export (the output of
/// [`Snapshot::to_jsonl`]) back into a [`Snapshot`].
///
/// # Errors
///
/// Returns a line-numbered message when the header is missing or a line
/// does not parse.
pub fn parse_jsonl(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    let mut saw_meta = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ty = str_field(line, "type").ok_or(format!("line {lineno}: missing \"type\""))?;
        let err = |what: &str| format!("line {lineno}: {ty} record missing {what}");
        match ty.as_str() {
            "meta" => {
                let fmt = str_field(line, "format").ok_or_else(|| err("format"))?;
                if fmt != "arbmis-obs" {
                    return Err(format!("line {lineno}: unknown format {fmt:?}"));
                }
                saw_meta = true;
            }
            "span_start" => snap.events.push(Event::SpanStart {
                seq: u64_field(line, "seq").ok_or_else(|| err("seq"))?,
                path: str_field(line, "path").ok_or_else(|| err("path"))?,
            }),
            "span_end" => snap.events.push(Event::SpanEnd {
                seq: u64_field(line, "seq").ok_or_else(|| err("seq"))?,
                path: str_field(line, "path").ok_or_else(|| err("path"))?,
                wall_ns: u64_field(line, "wall_ns").ok_or_else(|| err("wall_ns"))?,
            }),
            "point" => snap.events.push(Event::Point {
                seq: u64_field(line, "seq").ok_or_else(|| err("seq"))?,
                path: str_field(line, "path").ok_or_else(|| err("path"))?,
                name: str_field(line, "name").ok_or_else(|| err("name"))?,
                value: u64_field(line, "value").ok_or_else(|| err("value"))?,
            }),
            "counter" => snap.counters.push((
                str_field(line, "name").ok_or_else(|| err("name"))?,
                u64_field(line, "value").ok_or_else(|| err("value"))?,
            )),
            "gauge" => snap.gauges.push((
                str_field(line, "name").ok_or_else(|| err("name"))?,
                f64_field(line, "value").ok_or_else(|| err("value"))?,
            )),
            "histogram" => {
                let name = str_field(line, "name").ok_or_else(|| err("name"))?;
                let h = Histogram::from_cumulative(
                    u64_field(line, "count").ok_or_else(|| err("count"))?,
                    u64_field(line, "sum").ok_or_else(|| err("sum"))?,
                    u64_field(line, "min").ok_or_else(|| err("min"))?,
                    u64_field(line, "max").ok_or_else(|| err("max"))?,
                    &buckets_field(line).ok_or_else(|| err("cumulative_buckets"))?,
                )
                .ok_or(format!("line {lineno}: inconsistent histogram buckets"))?;
                snap.histograms.push((name, h));
            }
            other => return Err(format!("line {lineno}: unknown record type {other:?}")),
        }
    }
    if !saw_meta {
        return Err("not an arbmis-obs trace (missing meta header)".to_string());
    }
    Ok(snap)
}

/// Renders a snapshot as the human-readable trace report: the per-phase
/// round/time table (one row per completed span, rounds taken from the
/// span's `rounds` point event), then counters, gauges, and a percentile
/// summary table for every histogram.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut rounds_by_path: Vec<(&str, u64)> = Vec::new();
    for e in &snap.events {
        if let Event::Point {
            path, name, value, ..
        } = e
        {
            if name == "rounds" {
                rounds_by_path.retain(|(p, _)| *p != path.as_str());
                rounds_by_path.push((path, *value));
            }
        }
    }
    let spans = snap.span_durations();
    if !spans.is_empty() {
        let _ = writeln!(out, "{:<42} {:>10} {:>12}", "phase", "rounds", "time");
        for (path, wall_ns) in &spans {
            let rounds = rounds_by_path
                .iter()
                .find(|(p, _)| p == path)
                .map_or_else(|| "-".to_string(), |(_, r)| r.to_string());
            let time = format!("{:.3}ms", *wall_ns as f64 / 1e6);
            let _ = writeln!(out, "{path:<42} {rounds:>10} {time:>12}");
        }
    }
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "{name} = {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "{name} = {v}");
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>9} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "histogram", "count", "mean", "p50", "p90", "p99", "max"
        );
        for (name, h) in &snap.histograms {
            let s = h.summary();
            let _ = writeln!(
                out,
                "{:<34} {:>9} {:>10.2} {:>8} {:>8} {:>8} {:>8}",
                name, s.count, s.mean, s.p50, s.p90, s.p99, s.max
            );
        }
    }
    out
}

/// Extracts the string value of `"key":"…"` with JSON unescaping.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Extracts the raw token after `"key":` up to the next `,` or `}`.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(&rest[..end])
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    raw_field(line, key)?.parse().ok()
}

fn f64_field(line: &str, key: &str) -> Option<f64> {
    raw_field(line, key)?.parse().ok()
}

/// Extracts `"cumulative_buckets":[[le,c],…]` as `(le, c)` pairs.
fn buckets_field(line: &str) -> Option<Vec<(u64, u64)>> {
    let pat = "\"cumulative_buckets\":[";
    let start = line.find(pat)? + pat.len();
    let rest = &line[start..];
    // The array ends at the first `]` not closing an inner pair.
    let mut depth = 1usize;
    let mut end = None;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &rest[..end?];
    let mut out = Vec::new();
    for pair in body.split("],") {
        let pair = pair.trim_matches(|c| c == '[' || c == ']');
        if pair.is_empty() {
            continue;
        }
        let (le, c) = pair.split_once(',')?;
        out.push((le.parse().ok()?, c.parse().ok()?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample() -> Snapshot {
        let r = Recorder::deterministic();
        {
            let _root = r.span("congest");
            let _p = r.span("metivier");
            r.point("rounds", 13);
        }
        r.add("congest_messages", 240);
        r.gauge("headroom", 1.5);
        for v in [0u64, 1, 5, 5, 90] {
            r.observe("congest_round_messages", v);
        }
        r.snapshot()
    }

    #[test]
    fn jsonl_roundtrips_through_parser() {
        let snap = sample();
        let parsed = parse_jsonl(&snap.to_jsonl()).unwrap();
        assert_eq!(parsed, snap);
        // Re-rendering the parsed snapshot is byte-identical.
        assert_eq!(parsed.to_jsonl(), snap.to_jsonl());
    }

    #[test]
    fn escaped_paths_roundtrip() {
        let r = Recorder::deterministic();
        {
            let _s = r.span("odd \"phase\"\\name");
            r.point("rounds", 1);
        }
        let snap = r.snapshot();
        let parsed = parse_jsonl(&snap.to_jsonl()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("{\"type\":\"meta\",\"format\":\"other\",\"version\":1}").is_err());
        let bad =
            "{\"type\":\"meta\",\"format\":\"arbmis-obs\",\"version\":1}\n{\"type\":\"mystery\"}";
        let err = parse_jsonl(bad).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn render_contains_all_sections() {
        let report = render(&sample());
        assert!(report.contains("phase"), "{report}");
        // The span row carries the rounds point.
        assert!(report.contains("congest/metivier"), "{report}");
        let row = report
            .lines()
            .find(|l| l.starts_with("congest/metivier"))
            .unwrap();
        assert!(row.contains("13"), "{row}");
        assert!(report.contains("congest_messages = 240"));
        assert!(report.contains("headroom = 1.5"));
        let hist_row = report
            .lines()
            .find(|l| l.starts_with("congest_round_messages"))
            .unwrap();
        // count=5, p50=5 (values 0,1,5,5,90 → rank 3 is 5, bucket le 7
        // clamped to nothing below max), p99=max bucket clamp 90.
        assert!(hist_row.contains('5'), "{hist_row}");
        assert!(hist_row.ends_with("90"), "{hist_row}");
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(render(&sample()), render(&sample()));
    }
}
