//! Log-bucketed histograms for non-negative integer observations.
//!
//! Bucket boundaries are powers of two, fixed by construction (never
//! data-dependent): bucket 0 holds the value `0` exactly, and bucket
//! `i ≥ 1` holds values in `[2^{i-1}, 2^i - 1]`. The upper bound of
//! bucket `i` is therefore `2^i - 1` (`0, 1, 3, 7, 15, …`), which is the
//! `le` label used in the Prometheus exposition. The pinned-boundary
//! unit tests below are the normative definition.

use serde::{Deserialize, Serialize};

/// A log₂-bucketed histogram over `u64` observations.
///
/// Merging and observing are commutative and associative, so any
/// aggregation order produces the same histogram — the property the
/// deterministic parallel engine relies on.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// `counts[i]` = observations in bucket `i`; trailing empty buckets
    /// are not stored.
    counts: Vec<u64>,
    /// Total number of observations.
    count: u64,
    /// Sum of all observed values.
    sum: u64,
    /// Smallest observed value (0 when empty).
    min: u64,
    /// Largest observed value (0 when empty).
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index holding `value`: 0 for the value `0`, otherwise
    /// `⌊log₂ value⌋ + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `i`: `0` for bucket 0, else
    /// `2^i - 1` (saturating at `u64::MAX` for bucket 64).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let b = Self::bucket_index(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Records `count` observations of the same `value` — the batched
    /// form broadcast hot paths use (one bucket update for all copies of
    /// a message). Equivalent to calling [`observe`](Self::observe)
    /// `count` times.
    pub fn observe_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let b = Self::bucket_index(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += count;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += count;
        self.sum += value * count;
    }

    /// Empties the histogram while keeping the bucket allocation, so a
    /// per-round scratch histogram can be refilled without reallocating.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.count = 0;
        self.sum = 0;
        self.min = 0;
        self.max = 0;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-cumulative per-bucket counts, without trailing zeros.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(upper_bound, cumulative_count)` pairs for every stored bucket —
    /// the Prometheus `le` series (the `+Inf` bucket is implied by
    /// [`count`](Self::count)).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                acc += c;
                (Self::bucket_upper_bound(i), acc)
            })
            .collect()
    }

    /// Rebuilds a histogram from an exported cumulative series plus its
    /// summary fields — the inverse of [`cumulative`](Self::cumulative),
    /// used by the trace-report parser. Returns `None` if the series is
    /// not a valid prefix of the bucket grid (wrong upper bounds, a
    /// decreasing cumulative count, or a final count disagreeing with
    /// `count`).
    pub fn from_cumulative(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        cumulative: &[(u64, u64)],
    ) -> Option<Histogram> {
        let mut counts = Vec::with_capacity(cumulative.len());
        let mut prev = 0u64;
        for (i, &(le, acc)) in cumulative.iter().enumerate() {
            if le != Self::bucket_upper_bound(i) || acc < prev {
                return None;
            }
            counts.push(acc - prev);
            prev = acc;
        }
        if prev != count {
            return None;
        }
        Some(Histogram {
            counts,
            count,
            sum,
            min,
            max,
        })
    }

    /// An upper-bound estimate of the `p`-th percentile (`p` in
    /// `[0, 100]`): the inclusive upper bound of the first bucket whose
    /// cumulative count reaches `⌈p/100 · count⌉`, clamped to the
    /// observed `[min, max]` range (so a single-valued histogram reports
    /// that exact value at every percentile). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Self::bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The p50/p90/p99 percentile summary (all zero when empty).
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            min: self.min,
            max: self.max,
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
        }
    }
}

/// Percentile summary of a [`Histogram`] (see [`Histogram::summary`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// 50th-percentile upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The normative bucket layout: 0 | [1,1] | [2,3] | [4,7] | [8,15] …
    #[test]
    fn bucket_boundaries_pinned() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);

        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(3), 7);
        assert_eq!(Histogram::bucket_upper_bound(10), 1023);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn every_bucket_contains_its_bounds() {
        for i in 1..20usize {
            let lo = 1u64 << (i - 1);
            let hi = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            assert_eq!(Histogram::bucket_index(hi + 1), i + 1);
        }
    }

    #[test]
    fn observe_accumulates() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1014);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_counts(), &[1, 1, 2, 0, 1, 0, 0, 0, 0, 0, 1]);
        assert!((h.mean() - 169.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_series() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(5);
        let cum = h.cumulative();
        assert_eq!(cum, vec![(0, 1), (1, 2), (3, 2), (7, 3)]);
    }

    #[test]
    fn merge_equals_interleaved_observe() {
        let values = [0u64, 3, 9, 12, 77, 1 << 20, 5, 0];
        let mut whole = Histogram::new();
        for &v in &values {
            whole.observe(v);
        }
        let (left, right) = values.split_at(3);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in left {
            a.observe(v);
        }
        for &v in right {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging in the other order gives the same result.
        let mut c = Histogram::new();
        for &v in right {
            c.observe(v);
        }
        let mut d = Histogram::new();
        for &v in left {
            d.observe(v);
        }
        c.merge(&d);
        assert_eq!(c, whole);
    }

    #[test]
    fn observe_n_equals_repeated_observe() {
        let mut batched = Histogram::new();
        batched.observe_n(6, 4);
        batched.observe_n(0, 2);
        batched.observe_n(9, 0); // no-op
        let mut single = Histogram::new();
        for _ in 0..4 {
            single.observe(6);
        }
        for _ in 0..2 {
            single.observe(0);
        }
        assert_eq!(batched, single);
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut h = Histogram::new();
        h.observe_n(1000, 3);
        h.observe(1);
        h.clear();
        assert_eq!(h, Histogram::new());
        // Refill after clear behaves like a fresh histogram.
        h.observe(4);
        let mut fresh = Histogram::new();
        fresh.observe(4);
        assert_eq!(h, fresh);
    }

    #[test]
    fn percentile_empty_histogram_is_zero() {
        let h = Histogram::new();
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 0);
        }
        assert_eq!(h.summary(), Summary::default());
    }

    #[test]
    fn percentile_single_observation_is_exact() {
        // Clamping to [min, max] makes every percentile of a one-value
        // histogram that exact value, even mid-bucket.
        for v in [0u64, 1, 5, 100, 1 << 40] {
            let mut h = Histogram::new();
            h.observe(v);
            for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
                assert_eq!(h.percentile(p), v, "p{p} of single {v}");
            }
        }
    }

    /// Exact-bucket cases: observations sitting on bucket upper bounds,
    /// where the estimate is exact by construction.
    #[test]
    fn percentile_exact_bucket_cases() {
        let mut h = Histogram::new();
        // 10 observations: one per bucket upper bound 0,1,3,7,...
        for i in 0..10usize {
            h.observe(Histogram::bucket_upper_bound(i));
        }
        // Rank ⌈p/100·10⌉ lands exactly on the (rank-1)-th bound.
        assert_eq!(h.percentile(10.0), 0);
        assert_eq!(h.percentile(20.0), 1);
        assert_eq!(h.percentile(30.0), 3);
        assert_eq!(h.percentile(50.0), 15);
        assert_eq!(h.percentile(90.0), 255);
        assert_eq!(h.percentile(100.0), 511);
        // p99 rounds up to the last of the 10 observations.
        assert_eq!(h.percentile(99.0), 511);
        // Out-of-range p clamps.
        assert_eq!(h.percentile(-3.0), 0);
        assert_eq!(h.percentile(250.0), 511);
    }

    #[test]
    fn percentile_skewed_mass() {
        let mut h = Histogram::new();
        h.observe_n(1, 99); // bucket 1
        h.observe(1000); // bucket 10 (le 1023), the single outlier
        assert_eq!(h.percentile(50.0), 1);
        assert_eq!(h.percentile(99.0), 1);
        // The top observation is clamped to max: 1000, not 1023.
        assert_eq!(h.percentile(100.0), 1000);
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p90, s.p99), (100, 1, 1, 1));
        assert_eq!((s.min, s.max), (1, 1000));
    }

    /// Merge-then-percentile equals percentile of the interleaved whole,
    /// in both merge orders.
    #[test]
    fn merge_then_percentile_commutes() {
        let left = [0u64, 3, 9, 12, 77, 1 << 20];
        let right = [5u64, 0, 1023, 64, 64, 64, 2];
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &left {
            whole.observe(v);
            a.observe(v);
        }
        for &v in &right {
            whole.observe(v);
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            assert_eq!(ab.percentile(p), whole.percentile(p), "p{p} a+b");
            assert_eq!(ba.percentile(p), whole.percentile(p), "p{p} b+a");
        }
        assert_eq!(ab.summary(), whole.summary());
        assert_eq!(ba.summary(), whole.summary());
    }

    #[test]
    fn from_cumulative_roundtrips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 8, 1000, 1000] {
            h.observe(v);
        }
        let back =
            Histogram::from_cumulative(h.count(), h.sum(), h.min(), h.max(), &h.cumulative())
                .unwrap();
        assert_eq!(back, h);
        // Empty histogram round-trips too.
        let e = Histogram::new();
        assert_eq!(
            Histogram::from_cumulative(0, 0, 0, 0, &e.cumulative()).unwrap(),
            e
        );
    }

    #[test]
    fn from_cumulative_rejects_malformed_series() {
        // Wrong upper bound grid.
        assert!(Histogram::from_cumulative(1, 5, 5, 5, &[(2, 1)]).is_none());
        // Decreasing cumulative count.
        assert!(Histogram::from_cumulative(2, 0, 0, 0, &[(0, 2), (1, 1)]).is_none());
        // Final cumulative disagrees with count.
        assert!(Histogram::from_cumulative(3, 0, 0, 0, &[(0, 2)]).is_none());
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut h = Histogram::new();
        h.observe(4);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
