//! `ArbMIS` — Algorithm 2: the full MIS pipeline.
//!
//! 1. *(optional pre-phase)* **Degree reduction**: when
//!    `Δ > α·2^√(log n·log log n)` the paper invokes the BEPS
//!    degree-reduction procedure (their Theorem 7.2) for
//!    `O(√(log n·log log n))` rounds. We substitute the closest synthetic
//!    equivalent: that many iterations of the Métivier step, which removes
//!    MIS stars and empirically collapses high degrees (see DESIGN.md §3 —
//!    the substitution preserves the pipeline structure and the round
//!    accounting; the exact degree guarantee is BEPS-internal machinery
//!    the brief announcement treats as a black box).
//! 2. **Shattering**: [`crate::bounded_arb`] produces `(I, B, VIB)`.
//! 3. **Residual split**: `VIB = V_lo ∪ V_hi` by the final-scale
//!    high-degree threshold; each side induces a low-degree graph (the
//!    Invariant guarantees it for `V_hi`) and is finished by a
//!    bounded-degree MIS pass — the paper uses BEPS Theorem 7.4, we
//!    substitute the Métivier algorithm restricted to the region, whose
//!    round count on a Δ'-degree graph is `O(log Δ' + log n)` whp.
//! 4. **Bad components** (Lemma 3.8): each connected component of `B` is
//!    small whp; per component we compute a Barenboim–Elkin forest
//!    decomposition, Cole–Vishkin 3-color the first forest, and sweep
//!    color classes (id tie-break for cross-forest edges). Components are
//!    processed in parallel in the network, so the phase costs the *max*
//!    over components.
//!
//! Every phase only lets nodes not yet dominated by the growing `I` join,
//! so the union is an MIS of the whole graph — asserted in debug builds.

use crate::bounded_arb::{bounded_arb_independent_set_with, BoundedArbConfig, ShatterOutcome};
use crate::params::ParamMode;
use crate::{cole_vishkin, forest_decomp, metivier};
use arbmis_graph::{traversal, Graph, NodeId};
use arbmis_obs::{Histogram, Recorder};
use serde::{Deserialize, Serialize};

/// Configuration of an `ArbMIS` run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArbMisConfig {
    /// Arboricity bound of the input.
    pub alpha: usize,
    /// Parameter regime for the shattering phase.
    pub mode: ParamMode,
    /// Master randomness seed.
    pub seed: u64,
    /// Whether to run the degree-reduction pre-phase when Δ is large.
    pub degree_reduction: bool,
    /// Slack ε of the Barenboim–Elkin decomposition (threshold
    /// `⌈(2+ε)α⌉`).
    pub eps: f64,
}

impl ArbMisConfig {
    /// Practical defaults for arboricity `alpha`.
    pub fn new(alpha: usize, seed: u64) -> Self {
        ArbMisConfig {
            alpha,
            mode: ParamMode::default(),
            seed,
            degree_reduction: true,
            eps: 1.0,
        }
    }
}

/// Per-phase CONGEST round counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRounds {
    /// Degree-reduction pre-phase.
    pub degree_reduction: u64,
    /// `BoundedArbIndependentSet` (Algorithm 1).
    pub shattering: u64,
    /// `V_lo` finishing pass.
    pub vlo: u64,
    /// `V_hi` finishing pass.
    pub vhi: u64,
    /// Bad-component processing (max over parallel components).
    pub bad_components: u64,
}

impl PhaseRounds {
    /// Total rounds across phases.
    pub fn total(&self) -> u64 {
        self.degree_reduction + self.shattering + self.vlo + self.vhi + self.bad_components
    }
}

/// Output of `ArbMIS`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArbMisOutcome {
    /// The maximal independent set.
    pub in_mis: Vec<bool>,
    /// Total CONGEST rounds.
    pub rounds: u64,
    /// Per-phase breakdown.
    pub phases: PhaseRounds,
    /// The shattering phase's raw outcome (over the post-reduction
    /// residual graph, in original node ids).
    pub shatter: ShatterOutcome,
    /// Sizes of the connected components of `B` (Lemma 3.7's subject).
    pub bad_component_sizes: Vec<usize>,
}

impl ArbMisOutcome {
    /// Number of MIS members.
    pub fn mis_size(&self) -> usize {
        self.in_mis.iter().filter(|&&b| b).count()
    }
}

/// The degree-reduction trigger threshold `α·2^√(log₂ n · log₂ log₂ n)`.
pub fn degree_reduction_target(alpha: usize, n: usize) -> f64 {
    if n < 4 {
        return alpha as f64 * 2.0;
    }
    let logn = (n as f64).log2();
    let loglogn = logn.log2().max(1.0);
    alpha as f64 * 2f64.powf((logn * loglogn).sqrt())
}

/// Number of pre-phase iterations `⌈√(log₂ n · log₂ log₂ n)⌉`.
fn degree_reduction_iterations(n: usize) -> u64 {
    if n < 4 {
        return 1;
    }
    let logn = (n as f64).log2();
    let loglogn = logn.log2().max(1.0);
    (logn * loglogn).sqrt().ceil() as u64
}

/// Runs the full `ArbMIS` pipeline.
///
/// # Panics
///
/// Panics if `cfg.alpha == 0`, or (in debug builds) if the final set is
/// not an MIS — which would be a bug, not bad luck.
///
/// ```
/// use arbmis_core::arb_mis::{arb_mis, ArbMisConfig};
/// use arbmis_graph::gen;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let g = gen::apollonian(400, &mut rng);
/// let out = arb_mis(&g, &ArbMisConfig::new(3, 11));
/// assert!(arbmis_core::check_mis(&g, &out.in_mis).is_ok());
/// ```
pub fn arb_mis(g: &Graph, cfg: &ArbMisConfig) -> ArbMisOutcome {
    arb_mis_with(g, cfg, &arbmis_obs::global())
}

/// [`arb_mis`] with an explicit observability [`Recorder`]: each pipeline
/// phase runs under a span (`arbmis/degree_reduction`,
/// `arbmis/shattering`, `arbmis/vlo`, `arbmis/vhi`,
/// `arbmis/bad_components` with nested `forest_decomp` / `cole_vishkin`),
/// and the node-degree and bad-component-size histograms are collected.
/// Recording never changes the outcome (DESIGN.md §8).
///
/// # Panics
///
/// Same conditions as [`arb_mis`].
pub fn arb_mis_with(g: &Graph, cfg: &ArbMisConfig, rec: &Recorder) -> ArbMisOutcome {
    assert!(cfg.alpha >= 1, "arboricity bound must be >= 1");
    let n = g.n();
    let _root = rec.span("arbmis");
    let obs = rec.enabled();
    if obs {
        rec.add("arbmis_runs", 1);
        let mut degrees = Histogram::new();
        for v in g.nodes() {
            degrees.observe(g.neighbors(v).len() as u64);
        }
        rec.merge_histogram("arbmis_node_degree", &degrees);
    }
    let mut in_mis = vec![false; n];
    let mut phases = PhaseRounds::default();
    // One reusable extraction scratch for the whole pipeline: Phase 2's
    // region lift and every Phase-4 component reuse its tables, so
    // subgraph extraction costs O(|C| + m(C)) per component, not O(n).
    let mut scratch = arbmis_graph::SubgraphScratch::new();

    // Phase 1: degree reduction (substituted; see module docs). The BEPS
    // contract is "reduce the maximum degree to the target, in
    // O(√(log n·log log n)) rounds" — so the competition is restricted to
    // high-degree nodes and their neighborhoods, leaving the rest of the
    // graph untouched for the shattering phase.
    let target = degree_reduction_target(cfg.alpha, n);
    let mut region: Vec<bool> = vec![true; n];
    let dr_span = rec.span("degree_reduction");
    if cfg.degree_reduction && g.max_degree() as f64 > target {
        let cap = degree_reduction_iterations(n);
        let mut view = arbmis_graph::ActiveView::new(g);
        let mut prio = vec![0u64; n];
        let mut iters = 0u64;
        while iters < cap {
            // High-degree nodes and their active neighborhoods compete.
            let mut competes = vec![false; n];
            let mut any_high = false;
            for v in view.active_nodes() {
                if view.active_degree(v) as f64 > target {
                    any_high = true;
                    competes[v] = true;
                    for u in view.active_neighbors(v) {
                        competes[u] = true;
                    }
                }
            }
            if !any_high {
                break;
            }
            // Draw each competitor's priority once per iteration instead
            // of re-hashing it for every incident edge (the comparison
            // tuple `(prio[v], v)` is exactly `metivier::priority`).
            for v in view.active_nodes() {
                if competes[v] {
                    prio[v] = metivier::priority(cfg.seed ^ 0xdeed, v, iters, n).0;
                }
            }
            let joiners: Vec<NodeId> = view
                .active_nodes()
                .filter(|&v| {
                    competes[v]
                        && view
                            .active_neighbors(v)
                            .all(|u| !competes[u] || (prio[v], v) > (prio[u], u))
                })
                .collect();
            for &v in &joiners {
                in_mis[v] = true;
                let nbrs: Vec<NodeId> = view.active_neighbors(v).collect();
                view.deactivate(v);
                for u in nbrs {
                    view.deactivate(u);
                }
            }
            iters += 1;
        }
        region.copy_from_slice(view.mask());
        phases.degree_reduction = iters * metivier::ROUNDS_PER_ITERATION;
    }
    rec.point("rounds", phases.degree_reduction);
    drop(dr_span);

    // Phase 2: shattering on the residual region (opens its own span).
    // The extraction borrows `scratch`, so the block scopes it: the
    // scratch is free again for the Phase-4 component loop.
    let shatter = {
        let sub = scratch.induce_mask(g, &region);
        let ba_cfg = BoundedArbConfig {
            alpha: cfg.alpha,
            mode: cfg.mode,
            seed: cfg.seed,
            rho_cutoff: true,
            record_iterations: false,
        };
        let local = bounded_arb_independent_set_with(sub.graph(), &ba_cfg, rec);
        phases.shattering = local.rounds;
        // Lift the shatter outcome to original ids.
        let mut shatter = ShatterOutcome {
            in_mis: vec![false; n],
            bad: vec![false; n],
            active: vec![false; n],
            ..local.clone()
        };
        for i in 0..sub.n() {
            let v = sub.to_parent(i);
            shatter.in_mis[v] = local.in_mis[i];
            shatter.bad[v] = local.bad[i];
            shatter.active[v] = local.active[i];
            if local.in_mis[i] {
                in_mis[v] = true;
            }
        }
        shatter
    };

    // Phase 3: split the residual VIB into V_lo / V_hi by the final
    // scale's high-degree threshold (measured in the shattering graph's
    // active degrees ≈ degrees among VIB ∪ B; we use current undominated
    // degree, which the Invariant controls identically).
    let hi_threshold = if shatter.params.theta > 0 {
        shatter.params.high_degree_threshold(shatter.params.theta)
    } else {
        f64::INFINITY
    };
    let undominated = |in_mis: &[bool], v: NodeId| -> bool {
        !in_mis[v] && g.neighbors(v).iter().all(|&u| !in_mis[u])
    };
    let residual_degree = |v: NodeId| -> usize {
        g.neighbors(v)
            .iter()
            .filter(|&&u| shatter.active[u])
            .count()
    };
    let vlo: Vec<bool> = (0..n)
        .map(|v| {
            shatter.active[v]
                && undominated(&in_mis, v)
                && (residual_degree(v) as f64) <= hi_threshold
        })
        .collect();
    let lo_run = {
        let _s = rec.span("vlo");
        let run = metivier::run_region(g, &vlo, cfg.seed ^ 0x10);
        rec.point("rounds", run.rounds);
        run
    };
    for (slot, &joined) in in_mis.iter_mut().zip(&lo_run.in_mis) {
        *slot |= joined;
    }
    phases.vlo = lo_run.rounds;

    let vhi: Vec<bool> = (0..n)
        .map(|v| shatter.active[v] && undominated(&in_mis, v) && !vlo[v])
        .collect();
    let hi_run = {
        let _s = rec.span("vhi");
        let run = metivier::run_region(g, &vhi, cfg.seed ^ 0x11);
        rec.point("rounds", run.rounds);
        run
    };
    for (slot, &joined) in in_mis.iter_mut().zip(&hi_run.in_mis) {
        *slot |= joined;
    }
    phases.vhi = hi_run.rounds;

    // Phase 4: bad components, processed independently (max rounds).
    let comps = traversal::components_of_subset(g, &shatter.bad);
    let members = comps.members();
    let mut bad_component_sizes: Vec<usize> = Vec::new();
    let mut max_component_rounds = 0u64;
    {
        let _s = rec.span("bad_components");
        let mut comp_hist = Histogram::new();
        for comp in &members {
            if comp.is_empty() {
                continue;
            }
            bad_component_sizes.push(comp.len());
            if obs {
                comp_hist.observe(comp.len() as u64);
            }
            let rounds = finish_bad_component(g, comp, cfg, rec, &mut in_mis, &mut scratch);
            max_component_rounds = max_component_rounds.max(rounds);
        }
        if obs {
            rec.merge_histogram("arbmis_bad_component_size", &comp_hist);
        }
        rec.point("rounds", max_component_rounds);
    }
    phases.bad_components = max_component_rounds;

    let rounds = phases.total();
    if obs {
        rec.add("arbmis_rounds", rounds);
        let mis_size = in_mis.iter().filter(|&&b| b).count();
        rec.gauge("arbmis_mis_size", mis_size as f64);
    }
    debug_assert!(
        crate::verify::check_mis(g, &in_mis).is_ok(),
        "ArbMIS produced a non-MIS: {:?}",
        crate::verify::check_mis(g, &in_mis)
    );
    ArbMisOutcome {
        in_mis,
        rounds,
        phases,
        shatter,
        bad_component_sizes,
    }
}

/// Lemma 3.8 on one component of `B`: forest-decompose, Cole–Vishkin
/// 3-color the densest forest, sweep color classes restricted to the
/// still-undominated part of the component. Returns the rounds spent.
/// Extraction goes through the caller's `scratch`, so the cost is
/// O(|C| + m(C)) per component with no O(n) allocations.
fn finish_bad_component(
    g: &Graph,
    component: &[NodeId],
    cfg: &ArbMisConfig,
    rec: &Recorder,
    in_mis: &mut [bool],
    scratch: &mut arbmis_graph::SubgraphScratch,
) -> u64 {
    let sub = scratch.induce(g, component);
    let cg = sub.graph();
    // The component has arboricity ≤ α (subgraphs never exceed the bound).
    let (forests, decomp_rounds) = {
        let _s = rec.span("forest_decomp");
        forest_decomp::forest_decomposition(cg, cfg.alpha, cfg.eps)
            .expect("component arboricity exceeds the global bound")
    };
    // Color the first forest (largest by construction of out-edge
    // indexing); isolated-in-forest nodes are roots and get colored too.
    let coloring = {
        let _s = rec.span("cole_vishkin");
        match forests.first() {
            Some(f) => cole_vishkin::cv_color_to_three(f),
            None => cole_vishkin::ForestColoring {
                colors: vec![0; cg.n()],
                num_colors: 1,
                rounds: 0,
            },
        }
    };
    // Region: component nodes not yet dominated by the global MIS.
    let region: Vec<bool> = (0..cg.n())
        .map(|i| {
            let v = sub.to_parent(i);
            !in_mis[v] && g.neighbors(v).iter().all(|&u| !in_mis[u])
        })
        .collect();
    let (local_mis, sweep_rounds) =
        cole_vishkin::colorwise_mis(cg, &coloring.colors, coloring.num_colors, Some(&region));
    for i in 0..cg.n() {
        if local_mis[i] {
            in_mis[sub.to_parent(i)] = true;
        }
    }
    decomp_rounds + coloring.rounds + sweep_rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_mis;
    use arbmis_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn produces_mis_on_bounded_arboricity_families() {
        let mut r = rng(1);
        let cases: Vec<(Graph, usize)> = vec![
            (gen::random_tree_prufer(400, &mut r), 1),
            (gen::forest_union(400, 2, &mut r), 2),
            (gen::random_ktree(400, 3, &mut r), 3),
            (gen::apollonian(400, &mut r), 3),
            (gen::barabasi_albert(400, 2, &mut r), 2),
            (gen::grid(20, 20), 2),
            (gen::path(50), 1),
            (gen::cycle(51), 2),
        ];
        for (g, alpha) in cases {
            let out = arb_mis(&g, &ArbMisConfig::new(alpha, 7));
            assert!(
                check_mis(&g, &out.in_mis).is_ok(),
                "failed on {g} α={alpha}"
            );
            assert_eq!(out.rounds, out.phases.total());
        }
    }

    #[test]
    fn multiple_seeds_all_valid() {
        let mut r = rng(2);
        let g = gen::forest_union(600, 3, &mut r);
        for seed in 0..8 {
            let out = arb_mis(&g, &ArbMisConfig::new(3, seed));
            assert!(check_mis(&g, &out.in_mis).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r = rng(3);
        let g = gen::apollonian(300, &mut r);
        let a = arb_mis(&g, &ArbMisConfig::new(3, 5));
        let b = arb_mis(&g, &ArbMisConfig::new(3, 5));
        assert_eq!(a.in_mis, b.in_mis);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn degree_reduction_triggers_on_heavy_tail() {
        let mut r = rng(4);
        // BA graphs have hubs ≫ the trigger for moderate n.
        let g = gen::barabasi_albert(2000, 2, &mut r);
        let with = arb_mis(&g, &ArbMisConfig::new(2, 9));
        let without = arb_mis(
            &g,
            &ArbMisConfig {
                degree_reduction: false,
                ..ArbMisConfig::new(2, 9)
            },
        );
        assert!(check_mis(&g, &with.in_mis).is_ok());
        assert!(check_mis(&g, &without.in_mis).is_ok());
        if (g.max_degree() as f64) > degree_reduction_target(2, g.n()) {
            assert!(with.phases.degree_reduction > 0);
            assert_eq!(without.phases.degree_reduction, 0);
        }
    }

    #[test]
    fn bad_components_are_small_in_practice() {
        let mut r = rng(5);
        let g = gen::forest_union(3000, 2, &mut r);
        let out = arb_mis(&g, &ArbMisConfig::new(2, 13));
        // Lemma 3.7 shape: components of B are tiny relative to n.
        if let Some(&max) = out.bad_component_sizes.iter().max() {
            assert!(max < g.n() / 10, "bad component of size {max}");
        }
        assert!(check_mis(&g, &out.in_mis).is_ok());
    }

    #[test]
    fn empty_and_edgeless_inputs() {
        let g0 = Graph::empty(0);
        let out0 = arb_mis(&g0, &ArbMisConfig::new(1, 0));
        assert_eq!(out0.mis_size(), 0);
        let g1 = Graph::empty(12);
        let out1 = arb_mis(&g1, &ArbMisConfig::new(1, 0));
        assert_eq!(out1.mis_size(), 12);
        assert!(check_mis(&g1, &out1.in_mis).is_ok());
    }

    #[test]
    fn star_graph_handled() {
        let g = gen::star(200);
        let out = arb_mis(&g, &ArbMisConfig::new(1, 3));
        assert!(check_mis(&g, &out.in_mis).is_ok());
    }

    #[test]
    fn recorder_captures_phase_spans_without_changing_results() {
        let mut r = rng(9);
        let g = gen::random_ktree(300, 2, &mut r);
        let cfg = ArbMisConfig::new(2, 7);
        let rec = arbmis_obs::Recorder::deterministic();
        let observed = arb_mis_with(&g, &cfg, &rec);
        let plain = arb_mis(&g, &cfg);
        // Observation only: the recorder never changes the outcome.
        assert_eq!(observed, plain);

        let snap = rec.snapshot();
        for span in [
            "arbmis",
            "arbmis/degree_reduction",
            "arbmis/shattering",
            "arbmis/vlo",
            "arbmis/vhi",
            "arbmis/bad_components",
        ] {
            assert!(snap.has_span(span), "missing span {span}");
        }
        assert_eq!(snap.counter("arbmis_runs"), Some(1));
        assert_eq!(snap.counter("arbmis_rounds"), Some(plain.rounds));
        let degrees = snap.histogram("arbmis_node_degree").unwrap();
        assert_eq!(degrees.count(), g.n() as u64);
        assert_eq!(
            snap.gauge_value("arbmis_mis_size"),
            Some(plain.mis_size() as f64)
        );
        // Bad components (when any exist) nest the Lemma 3.8 machinery.
        if !plain.bad_component_sizes.is_empty() {
            assert!(snap.has_span("arbmis/bad_components/forest_decomp"));
            assert!(snap.has_span("arbmis/bad_components/cole_vishkin"));
            assert_eq!(
                snap.histogram("arbmis_bad_component_size").unwrap().count(),
                plain.bad_component_sizes.len() as u64
            );
        }
    }

    #[test]
    fn recorder_snapshot_is_deterministic_across_runs() {
        let mut r = rng(10);
        let g = gen::forest_union(400, 2, &mut r);
        let cfg = ArbMisConfig::new(2, 3);
        let run = || {
            let rec = arbmis_obs::Recorder::deterministic();
            arb_mis_with(&g, &cfg, &rec);
            rec.snapshot()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
    }

    #[test]
    fn faithful_mode_still_correct_via_finishers() {
        // Faithful Θ = 0 on small graphs: the pipeline must still finish
        // to a valid MIS using phases 3-4 alone.
        let mut r = rng(6);
        let g = gen::random_ktree(200, 2, &mut r);
        let cfg = ArbMisConfig {
            mode: ParamMode::Faithful { p: 1 },
            ..ArbMisConfig::new(2, 1)
        };
        let out = arb_mis(&g, &cfg);
        assert!(check_mis(&g, &out.in_mis).is_ok());
        assert_eq!(out.shatter.params.theta, 0);
    }
}
