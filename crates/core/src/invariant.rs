//! The paper's Invariant, checkable.
//!
//! > **Invariant.** At the end of scale `k`, for all `v ∈ VIB`:
//! > `|{w ∈ Γ_IB(v) : deg_IB(w) > Δ/2^k + α}| ≤ Δ/2^{k+2}`.
//!
//! Step 2(b) of Algorithm 1 enforces it *by construction* (violators are
//! exiled to `B`); the analysis shows violators are rare
//! (`Pr ≤ 1/Δ^{2p}`, Theorem 3.6). The checker here measures violations
//! *before* exile, which is exactly the quantity Theorem 3.6 bounds.

use crate::params::ArbParams;
use arbmis_graph::{ActiveView, NodeId};

/// Number of active neighbors of `v` whose active degree exceeds the
/// scale-`k` high-degree threshold.
pub fn high_degree_neighbor_count(
    view: &ActiveView<'_>,
    params: &ArbParams,
    k: u32,
    v: NodeId,
) -> usize {
    let threshold = params.high_degree_threshold(k);
    view.active_neighbors(v)
        .filter(|&w| view.active_degree(w) as f64 > threshold)
        .count()
}

/// Whether active node `v` satisfies the Invariant at scale `k`.
pub fn node_satisfies_invariant(
    view: &ActiveView<'_>,
    params: &ArbParams,
    k: u32,
    v: NodeId,
) -> bool {
    high_degree_neighbor_count(view, params, k, v) as f64 <= params.bad_threshold(k)
}

/// All active nodes violating the Invariant at scale `k` — the nodes step
/// 2(b) would mark bad.
pub fn invariant_violators(view: &ActiveView<'_>, params: &ArbParams, k: u32) -> Vec<NodeId> {
    view.active_nodes()
        .filter(|&v| !node_satisfies_invariant(view, params, k, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use arbmis_graph::gen;

    #[test]
    fn clean_low_degree_graph_has_no_violators() {
        let g = gen::grid(10, 10); // Δ = 4
        let params = ArbParams::new(2, g.max_degree(), ParamMode::default());
        let view = ActiveView::new(&g);
        // At scale 1 the high-degree threshold is Δ/2 + α = 4: no node
        // exceeds it, so nobody has high-degree neighbors.
        assert!(invariant_violators(&view, &params, 1).is_empty());
    }

    #[test]
    fn star_hub_makes_leaves_violate_at_deep_scales() {
        // Star K_{1,64}: Δ = 64. At scale k the hub (degree 64) is high
        // degree (64 > 64/2^k + 1 for k ≥ 1); a leaf has exactly 1
        // high-degree neighbor, and the bad threshold Δ/2^{k+2} drops
        // below 1 at k = 5. So at k = 5 leaves still satisfy (1 > 1 is
        // false... 1 ≤ 1), at k = 6 threshold is 0.25 and leaves violate.
        let g = gen::star(65);
        let params = ArbParams::new(1, 64, ParamMode::default());
        let view = ActiveView::new(&g);
        assert_eq!(high_degree_neighbor_count(&view, &params, 1, 1), 1);
        assert!(node_satisfies_invariant(&view, &params, 4, 1)); // 1 ≤ 1
        assert!(!node_satisfies_invariant(&view, &params, 6, 1)); // 1 > 0.25
        let violators = invariant_violators(&view, &params, 6);
        assert_eq!(violators.len(), 64); // every leaf; hub has 0 high-degree nbrs
        assert!(!violators.contains(&0));
    }

    #[test]
    fn deactivation_lowers_counts() {
        let g = gen::star(65);
        let params = ArbParams::new(1, 64, ParamMode::default());
        let mut view = ActiveView::new(&g);
        // Deactivate the hub: nobody has any active high-degree neighbor.
        view.deactivate(0);
        assert!(invariant_violators(&view, &params, 6).is_empty());
    }
}
