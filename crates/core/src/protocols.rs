//! CONGEST protocol implementations of the randomized MIS algorithms.
//!
//! Each protocol is the message-passing twin of a fast-path function in
//! this crate, drawing randomness from the *same counter-based generator*
//! ([`arbmis_congest::rng`]) indexed by the same iteration numbers — so a
//! protocol execution and its fast path produce **bit-identical**
//! independent sets under the same seed. Tests in this module and the
//! workspace integration suite assert exactly that.
//!
//! All protocols share a three-sub-round iteration skeleton:
//!
//! 1. **announce** — process exit notices from the previous iteration,
//!    then broadcast this iteration's competition payload (priority /
//!    mark / desire level);
//! 2. **decide** — compare against the inbox, broadcast a join bit;
//! 3. **exit** — nodes that joined or were dominated broadcast an exit
//!    notice and leave.
//!
//! `BoundedArbIndependentSet` adds two per-scale rounds for step 2(b)
//! (degree exchange + bad exits), at schedule positions derived from the
//! round number — the algorithm is oblivious, so every node tracks the
//! scale/iteration structure without coordination.

use crate::params::ArbParams;
use crate::{bounded_arb, ghaffari, luby, metivier};
use arbmis_congest::prelude::*;
use arbmis_graph::NodeId;

/// Wire messages shared by the MIS protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MisMsg {
    /// A (possibly 0 = non-competitive) priority.
    Priority(u64),
    /// Luby announce: current active degree and mark bit.
    LubyMark {
        /// Sender's active degree.
        degree: u64,
        /// Whether the sender marked itself.
        marked: bool,
    },
    /// Ghaffari announce: desire exponent and mark bit.
    GhaffariMark {
        /// Sender's desire exponent (`p = 2^-e`).
        exponent: u32,
        /// Whether the sender marked itself.
        marked: bool,
    },
    /// Decide sub-round: whether the sender joins the MIS.
    Join(bool),
    /// Exit sub-round: whether the sender leaves the computation.
    Exit(bool),
    /// Scale-end degree announcement (Algorithm 1 step 2(b)).
    Degree(u64),
}

impl Message for MisMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        use arbmis_congest::message::put_varint;
        match self {
            MisMsg::Priority(p) => {
                buf.push(0);
                put_varint(buf, *p);
            }
            MisMsg::LubyMark { degree, marked } => {
                buf.push(1);
                put_varint(buf, *degree);
                buf.push(u8::from(*marked));
            }
            MisMsg::GhaffariMark { exponent, marked } => {
                buf.push(2);
                put_varint(buf, u64::from(*exponent));
                buf.push(u8::from(*marked));
            }
            MisMsg::Join(b) => {
                buf.push(3);
                buf.push(u8::from(*b));
            }
            MisMsg::Exit(b) => {
                buf.push(4);
                buf.push(u8::from(*b));
            }
            MisMsg::Degree(d) => {
                buf.push(5);
                put_varint(buf, *d);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        use arbmis_congest::message::{get_u8, get_varint};
        let decode_flag = |buf: &mut &[u8]| match get_u8(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("flag byte not 0/1")),
        };
        match get_u8(buf)? {
            0 => Ok(MisMsg::Priority(get_varint(buf)?)),
            1 => Ok(MisMsg::LubyMark {
                degree: get_varint(buf)?,
                marked: decode_flag(buf)?,
            }),
            2 => Ok(MisMsg::GhaffariMark {
                exponent: u32::try_from(get_varint(buf)?)
                    .map_err(|_| DecodeError::Invalid("exponent overflows u32"))?,
                marked: decode_flag(buf)?,
            }),
            3 => Ok(MisMsg::Join(decode_flag(buf)?)),
            4 => Ok(MisMsg::Exit(decode_flag(buf)?)),
            5 => Ok(MisMsg::Degree(get_varint(buf)?)),
            _ => Err(DecodeError::Invalid("unknown MisMsg tag")),
        }
    }

    fn bit_size(&self) -> usize {
        use arbmis_congest::message::varint_len;
        let bytes = match self {
            MisMsg::Priority(p) => 1 + varint_len(*p),
            MisMsg::LubyMark { degree, .. } => 1 + varint_len(*degree) + 1,
            MisMsg::GhaffariMark { exponent, .. } => 1 + varint_len(u64::from(*exponent)) + 1,
            MisMsg::Join(_) | MisMsg::Exit(_) => 2,
            MisMsg::Degree(d) => 1 + varint_len(*d),
        };
        bytes * 8
    }
}

/// Common per-node bookkeeping for the three-phase skeleton.
#[derive(Clone, Debug)]
pub struct MisNodeState {
    /// Still competing.
    pub active: bool,
    /// Joined the MIS.
    pub in_mis: bool,
    /// Finished (output fixed).
    pub done: bool,
    /// Sorted ids of neighbors still active.
    pub active_nbrs: Vec<NodeId>,
    /// Whether this node decided to join in the current iteration.
    wins: bool,
    /// Scratch for Ghaffari's deferred exponent update.
    exponent: u32,
    pending_exponent: u32,
    /// Scratch for Algorithm 1: marked bad at scale end.
    pub bad: bool,
}

impl MisNodeState {
    fn new(node: &NodeInfo) -> Self {
        MisNodeState {
            active: true,
            in_mis: false,
            done: false,
            active_nbrs: node.neighbors.to_vec(),
            wins: false,
            exponent: 1,
            pending_exponent: 1,
            bad: false,
        }
    }

    fn process_exits(&mut self, inbox: &Inbox<MisMsg>) {
        for (s, m) in inbox {
            if matches!(m, MisMsg::Exit(true)) {
                if let Ok(pos) = self.active_nbrs.binary_search(&s) {
                    self.active_nbrs.remove(pos);
                }
            }
        }
    }
}

/// Shared decide/exit handling. Returns the outgoing message for the
/// phase.
fn decide_phase(state: &mut MisNodeState, wins: bool) -> Outgoing<MisMsg> {
    state.wins = wins;
    Outgoing::Broadcast(MisMsg::Join(wins))
}

fn exit_phase(state: &mut MisNodeState, inbox: &Inbox<MisMsg>) -> Outgoing<MisMsg> {
    let dominated = inbox.iter().any(|(_, m)| matches!(m, MisMsg::Join(true)));
    if state.wins {
        state.in_mis = true;
    }
    if state.wins || dominated {
        state.active = false;
        Outgoing::Broadcast(MisMsg::Exit(true))
    } else {
        Outgoing::Broadcast(MisMsg::Exit(false))
    }
}

// ---------------------------------------------------------------- Métivier

/// CONGEST twin of [`crate::metivier::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MetivierProtocol;

impl Protocol for MetivierProtocol {
    type State = MisNodeState;
    type Msg = MisMsg;

    fn init(&self, node: &NodeInfo) -> MisNodeState {
        MisNodeState::new(node)
    }

    fn round(
        &self,
        state: &mut MisNodeState,
        node: &NodeInfo,
        inbox: &Inbox<MisMsg>,
    ) -> Outgoing<MisMsg> {
        let iter = node.round / 3;
        match node.round % 3 {
            0 => {
                state.process_exits(inbox);
                if !state.active {
                    state.done = true;
                    return Outgoing::Halt;
                }
                let (p, _) = metivier::priority(node.seed, node.id, iter, node.n);
                Outgoing::Broadcast(MisMsg::Priority(p))
            }
            1 => {
                let pv = metivier::priority(node.seed, node.id, iter, node.n);
                let wins = inbox.iter().all(|(s, m)| match m {
                    MisMsg::Priority(p) => pv > (*p, s),
                    _ => true,
                });
                decide_phase(state, wins)
            }
            _ => exit_phase(state, inbox),
        }
    }

    fn is_done(&self, state: &MisNodeState) -> bool {
        state.done
    }
}

// ------------------------------------------------------------------- Luby

/// CONGEST twin of [`crate::luby::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LubyProtocol;

impl Protocol for LubyProtocol {
    type State = MisNodeState;
    type Msg = MisMsg;

    fn init(&self, node: &NodeInfo) -> MisNodeState {
        MisNodeState::new(node)
    }

    fn round(
        &self,
        state: &mut MisNodeState,
        node: &NodeInfo,
        inbox: &Inbox<MisMsg>,
    ) -> Outgoing<MisMsg> {
        let iter = node.round / 3;
        match node.round % 3 {
            0 => {
                state.process_exits(inbox);
                if !state.active {
                    state.done = true;
                    return Outgoing::Halt;
                }
                let d = state.active_nbrs.len();
                let marked = d > 0 && luby::is_marked(node.seed, node.id, iter, d);
                Outgoing::Broadcast(MisMsg::LubyMark {
                    degree: d as u64,
                    marked,
                })
            }
            1 => {
                let d = state.active_nbrs.len();
                let wins = if d == 0 {
                    true
                } else if luby::is_marked(node.seed, node.id, iter, d) {
                    let key = (d as u64, node.id);
                    inbox.iter().all(|(s, m)| match m {
                        MisMsg::LubyMark { degree, marked } => !*marked || (*degree, s) < key,
                        _ => true,
                    })
                } else {
                    false
                };
                decide_phase(state, wins)
            }
            _ => exit_phase(state, inbox),
        }
    }

    fn is_done(&self, state: &MisNodeState) -> bool {
        state.done
    }
}

// --------------------------------------------------------------- Ghaffari

/// CONGEST twin of [`crate::ghaffari::run`]. Only the desire *exponent*
/// crosses the wire — `O(log log Δ)` bits.
#[derive(Clone, Copy, Debug, Default)]
pub struct GhaffariProtocol;

impl Protocol for GhaffariProtocol {
    type State = MisNodeState;
    type Msg = MisMsg;

    fn init(&self, node: &NodeInfo) -> MisNodeState {
        MisNodeState::new(node)
    }

    fn round(
        &self,
        state: &mut MisNodeState,
        node: &NodeInfo,
        inbox: &Inbox<MisMsg>,
    ) -> Outgoing<MisMsg> {
        let iter = node.round / 3;
        match node.round % 3 {
            0 => {
                state.process_exits(inbox);
                if !state.active {
                    state.done = true;
                    return Outgoing::Halt;
                }
                let marked = ghaffari::is_marked(node.seed, node.id, iter, state.exponent);
                Outgoing::Broadcast(MisMsg::GhaffariMark {
                    exponent: state.exponent,
                    marked,
                })
            }
            1 => {
                let marked = ghaffari::is_marked(node.seed, node.id, iter, state.exponent);
                let any_marked_nbr = inbox
                    .iter()
                    .any(|(_, m)| matches!(m, MisMsg::GhaffariMark { marked: true, .. }));
                let wins = marked && !any_marked_nbr;
                // Effective degree from announced exponents (pre-removal
                // neighborhood, matching the fast path).
                let d: f64 = inbox
                    .iter()
                    .filter_map(|(_, m)| match m {
                        MisMsg::GhaffariMark { exponent, .. } => {
                            Some(0.5f64.powi(*exponent as i32))
                        }
                        _ => None,
                    })
                    .sum();
                state.pending_exponent = if d >= 2.0 {
                    state.exponent + 1
                } else {
                    state.exponent.saturating_sub(1).max(1)
                };
                decide_phase(state, wins)
            }
            _ => {
                state.exponent = state.pending_exponent;
                exit_phase(state, inbox)
            }
        }
    }

    fn is_done(&self, state: &MisNodeState) -> bool {
        state.done
    }
}

// ----------------------------------------------------- BoundedArbIndepSet

/// CONGEST twin of [`crate::bounded_arb::bounded_arb_independent_set`].
///
/// The schedule is oblivious: every node derives `(scale, iteration,
/// sub-round)` from the global round number; after the last scale all
/// nodes stop simultaneously, leaving the residual `VIB` in their states.
#[derive(Clone, Copy, Debug)]
pub struct BoundedArbProtocol {
    /// The instantiated parameter schedule (must be built from the *same*
    /// graph the protocol runs on).
    pub params: ArbParams,
    /// Whether the ρ_k opt-out is active (ablation switch).
    pub rho_cutoff: bool,
}

impl BoundedArbProtocol {
    /// Rounds per scale: 3 per iteration plus the two step-2(b) rounds.
    pub fn rounds_per_scale(&self) -> u64 {
        3 * self.params.lambda + 2
    }

    /// Total protocol rounds.
    pub fn total_rounds(&self) -> u64 {
        u64::from(self.params.theta) * self.rounds_per_scale()
    }
}

impl Protocol for BoundedArbProtocol {
    type State = MisNodeState;
    type Msg = MisMsg;

    fn init(&self, node: &NodeInfo) -> MisNodeState {
        MisNodeState::new(node)
    }

    fn round(
        &self,
        state: &mut MisNodeState,
        node: &NodeInfo,
        inbox: &Inbox<MisMsg>,
    ) -> Outgoing<MisMsg> {
        if node.round >= self.total_rounds() {
            state.done = true;
            return Outgoing::Halt;
        }
        let rps = self.rounds_per_scale();
        let scale = (node.round / rps) as u32 + 1;
        let within = node.round % rps;
        let iter_body = within < 3 * self.params.lambda;

        if iter_body {
            let global_iter = u64::from(scale - 1) * self.params.lambda + within / 3;
            match within % 3 {
                0 => {
                    state.process_exits(inbox);
                    if !state.active {
                        state.done = true;
                        return Outgoing::Halt;
                    }
                    let p = self.my_priority(state, node, scale, global_iter);
                    Outgoing::Broadcast(MisMsg::Priority(p))
                }
                1 => {
                    let p = self.my_priority(state, node, scale, global_iter);
                    let wins = p > 0
                        && inbox.iter().all(|(s, m)| match m {
                            MisMsg::Priority(q) => (p, node.id) > (*q, s),
                            _ => true,
                        });
                    decide_phase(state, wins)
                }
                _ => exit_phase(state, inbox),
            }
        } else {
            match within - 3 * self.params.lambda {
                0 => {
                    state.process_exits(inbox);
                    if !state.active {
                        state.done = true;
                        return Outgoing::Halt;
                    }
                    Outgoing::Broadcast(MisMsg::Degree(state.active_nbrs.len() as u64))
                }
                _ => {
                    let hd = self.params.high_degree_threshold(scale);
                    let bad_thr = self.params.bad_threshold(scale);
                    let high_count = inbox
                        .iter()
                        .filter(|(_, m)| matches!(m, MisMsg::Degree(d) if *d as f64 > hd))
                        .count();
                    if high_count as f64 > bad_thr {
                        state.bad = true;
                        state.active = false;
                        Outgoing::Broadcast(MisMsg::Exit(true))
                    } else {
                        Outgoing::Broadcast(MisMsg::Exit(false))
                    }
                }
            }
        }
    }

    fn is_done(&self, state: &MisNodeState) -> bool {
        state.done
    }
}

/// Runs a protocol twin over `g` on the parallel round engine, honoring
/// the process-wide default [`arbmis_congest::Parallelism`].
///
/// This is the canonical entry point for executing the protocol twins in
/// this module: results are bit-identical to the serial engine at every
/// thread count (see `arbmis_congest::parallel`), so fast-path
/// equivalence holds unchanged while large runs use all cores.
///
/// # Errors
///
/// Propagates [`SimulatorError`] from the engine.
pub fn simulate<P>(
    g: &arbmis_graph::Graph,
    seed: u64,
    protocol: &P,
    max_rounds: u64,
) -> Result<SimulatorRun<P::State>, SimulatorError>
where
    P: Protocol + Sync,
    P::State: Send,
    P::Msg: Send + Sync,
{
    Simulator::new(g, seed).run_parallel(protocol, max_rounds)
}

/// [`simulate`], additionally collecting a message transcript (identical
/// to the serial engine's, digest included).
///
/// # Errors
///
/// Propagates [`SimulatorError`] from the engine.
pub fn simulate_traced<P>(
    g: &arbmis_graph::Graph,
    seed: u64,
    protocol: &P,
    max_rounds: u64,
) -> Result<
    (
        SimulatorRun<P::State>,
        arbmis_congest::transcript::Transcript,
    ),
    SimulatorError,
>
where
    P: Protocol + Sync,
    P::State: Send,
    P::Msg: Send + Sync,
{
    Simulator::new(g, seed).run_parallel_traced(protocol, max_rounds)
}

impl BoundedArbProtocol {
    fn my_priority(
        &self,
        state: &MisNodeState,
        node: &NodeInfo,
        scale: u32,
        global_iter: u64,
    ) -> u64 {
        let competitive =
            !self.rho_cutoff || (state.active_nbrs.len() as f64) <= self.params.rho(scale);
        if competitive {
            bounded_arb::draw_priority(node.seed, node.id, global_iter, node.n)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
    use crate::verify::check_mis;
    use arbmis_graph::{gen, Graph};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn extract_mis(states: &[MisNodeState]) -> Vec<bool> {
        states.iter().map(|s| s.in_mis).collect()
    }

    #[test]
    fn metivier_protocol_matches_fast_path() {
        let mut r = rng(1);
        for (seed, g) in [
            (3u64, gen::gnp(80, 0.08, &mut r)),
            (4, gen::random_tree_prufer(120, &mut r)),
            (5, gen::complete(15)),
            (6, gen::cycle(40)),
        ] {
            let fast = metivier::run(&g, seed);
            let run = simulate(&g, seed, &MetivierProtocol, 10_000).unwrap();
            assert_eq!(extract_mis(&run.states), fast.in_mis, "graph {g}");
            assert!(run.metrics.within_budget(), "budget on {g}");
            assert!(check_mis(&g, &extract_mis(&run.states)).is_ok());
        }
    }

    #[test]
    fn luby_protocol_matches_fast_path() {
        let mut r = rng(2);
        for (seed, g) in [
            (7u64, gen::gnp(80, 0.1, &mut r)),
            (8, gen::star(40)),
            (9, gen::barabasi_albert(100, 2, &mut r)),
        ] {
            let fast = luby::run(&g, seed);
            let run = simulate(&g, seed, &LubyProtocol, 10_000).unwrap();
            assert_eq!(extract_mis(&run.states), fast.in_mis, "graph {g}");
            assert!(run.metrics.within_budget());
        }
    }

    #[test]
    fn ghaffari_protocol_matches_fast_path() {
        let mut r = rng(3);
        for (seed, g) in [
            (11u64, gen::gnp(70, 0.1, &mut r)),
            (12, gen::grid(9, 9)),
            (13, gen::random_ktree(90, 2, &mut r)),
        ] {
            let fast = ghaffari::run(&g, seed);
            let run = simulate(&g, seed, &GhaffariProtocol, 20_000).unwrap();
            assert_eq!(extract_mis(&run.states), fast.in_mis, "graph {g}");
            assert!(run.metrics.within_budget());
        }
    }

    #[test]
    fn bounded_arb_protocol_matches_fast_path() {
        let mut r = rng(4);
        for (seed, alpha, g) in [
            (21u64, 2usize, gen::random_ktree(150, 2, &mut r)),
            (22, 3, gen::apollonian(150, &mut r)),
            (23, 2, gen::forest_union(200, 2, &mut r)),
        ] {
            let cfg = BoundedArbConfig::new(alpha, seed);
            let fast = bounded_arb_independent_set(&g, &cfg);
            let proto = BoundedArbProtocol {
                params: fast.params,
                rho_cutoff: true,
            };
            let run = simulate(&g, seed, &proto, proto.total_rounds() + 2).unwrap();
            let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
            let bad: Vec<bool> = run.states.iter().map(|s| s.bad).collect();
            let active: Vec<bool> = run.states.iter().map(|s| s.active).collect();
            assert_eq!(mis, fast.in_mis, "I mismatch on {g}");
            assert_eq!(bad, fast.bad, "B mismatch on {g}");
            assert_eq!(active, fast.active, "VIB mismatch on {g}");
            assert!(run.metrics.within_budget());
        }
    }

    #[test]
    fn bounded_arb_ablation_equivalence_without_cutoff() {
        let mut r = rng(6);
        let g = gen::barabasi_albert(150, 2, &mut r);
        let cfg = BoundedArbConfig {
            rho_cutoff: false,
            ..BoundedArbConfig::new(2, 31)
        };
        let fast = bounded_arb_independent_set(&g, &cfg);
        let proto = BoundedArbProtocol {
            params: fast.params,
            rho_cutoff: false,
        };
        let run = simulate(&g, 31, &proto, proto.total_rounds() + 2).unwrap();
        assert_eq!(
            run.states.iter().map(|s| s.in_mis).collect::<Vec<_>>(),
            fast.in_mis
        );
        assert_eq!(
            run.states.iter().map(|s| s.bad).collect::<Vec<_>>(),
            fast.bad
        );
    }

    #[test]
    fn message_sizes_are_logarithmic() {
        let mut r = rng(5);
        let g = gen::gnp(200, 0.05, &mut r);
        let run = simulate(&g, 31, &MetivierProtocol, 10_000).unwrap();
        let budget = Simulator::new(&g, 31).budget_bits().unwrap() as u64;
        assert!(run.metrics.max_message_bits <= budget);
        // Priorities dominate: 4·⌈log₂ 200⌉ = 32 bits ≈ 5 bytes + tag.
        assert!(run.metrics.max_message_bits <= 8 * 7);
    }

    #[test]
    fn protocol_on_empty_graph() {
        let g = Graph::empty(5);
        let run = simulate(&g, 1, &MetivierProtocol, 100).unwrap();
        assert!(extract_mis(&run.states).iter().all(|&b| b));
    }

    #[test]
    fn msg_encoding_roundtrip_sizes() {
        let msgs = [
            MisMsg::Priority(0),
            MisMsg::Priority(u64::MAX >> 4),
            MisMsg::LubyMark {
                degree: 5,
                marked: true,
            },
            MisMsg::GhaffariMark {
                exponent: 3,
                marked: false,
            },
            MisMsg::Join(true),
            MisMsg::Exit(false),
            MisMsg::Degree(1000),
        ];
        for m in msgs {
            assert!(m.bit_size() >= 8, "{m:?} must at least carry its tag");
            assert!(m.bit_size() <= 96, "{m:?} too large");
            // The arithmetic bit_size override must agree with the wire
            // encoding it claims to measure.
            let mut buf = Vec::new();
            m.encode(&mut buf);
            assert_eq!(m.bit_size(), buf.len() * 8, "{m:?} bit_size mismatch");
        }
    }
}
