//! `BoundedArbIndependentSet` — Algorithm 1 of the paper.
//!
//! A parameter-rescaled `TreeIndependentSet` (Barenboim–Elkin–Pettie–
//! Schneider, FOCS 2012) run on arboricity-α graphs. The algorithm
//! proceeds in `Θ` *scales*; in scale `k` it runs `Λ` iterations of the
//! Métivier priority step, but nodes whose active degree exceeds the
//! cutoff `ρ_k` deterministically set their priority to 0 (they *opt out*
//! of the competition — the device that makes the node-vs-parent event a
//! read-ρ_k family, Theorem 3.2). After the `Λ` iterations, any node with
//! more than `Δ/2^{k+2}` high-degree active neighbors is exiled to the
//! "bad" set `B` (step 2(b)), enforcing the Invariant by construction.
//!
//! The algorithm returns the independent-but-not-maximal set `I`, the bad
//! set `B`, and the residual active set `VIB`; Algorithm 2
//! ([`mod@crate::arb_mis`]) finishes those up. Notably, the algorithm never
//! needs an edge orientation or forest decomposition — those exist only in
//! the analysis.

use crate::params::{ArbParams, ParamMode};
use crate::trace::ScaleTrace;
use arbmis_congest::rng;
use arbmis_graph::{ActiveView, Graph, NodeId};
use arbmis_obs::{Histogram, Recorder};
use serde::{Deserialize, Serialize};

/// Randomness tag for priority draws (shared with the CONGEST protocol).
pub const TAG_PRIORITY: u64 = 0x4241_5249; // "BARI"

/// CONGEST rounds per inner iteration (priorities, join bits, exit bits).
pub const ROUNDS_PER_ITERATION: u64 = 3;

/// CONGEST rounds per scale for step 2(b) (degree exchange, bad exits).
pub const ROUNDS_PER_SCALE_END: u64 = 2;

/// Configuration of one `BoundedArbIndependentSet` run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundedArbConfig {
    /// Arboricity bound `α` of the input (the only promise the algorithm
    /// needs).
    pub alpha: usize,
    /// Parameter regime (see [`ParamMode`]).
    pub mode: ParamMode,
    /// Master randomness seed.
    pub seed: u64,
    /// Whether the `ρ_k` opt-out is active. Disabling it is the E12
    /// ablation: the algorithm still runs, but the read-ρ_k structure of
    /// Event (2) is destroyed.
    pub rho_cutoff: bool,
    /// Record per-iteration joiner counts in the trace (costs memory).
    pub record_iterations: bool,
}

impl BoundedArbConfig {
    /// Practical-mode defaults for arboricity `alpha`.
    pub fn new(alpha: usize, seed: u64) -> Self {
        BoundedArbConfig {
            alpha,
            mode: ParamMode::default(),
            seed,
            rho_cutoff: true,
            record_iterations: false,
        }
    }
}

/// Output of `BoundedArbIndependentSet`: the paper's `(I, B)` plus the
/// residual `VIB` and observability data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShatterOutcome {
    /// Independent set `I` (independent, *not* necessarily maximal).
    pub in_mis: Vec<bool>,
    /// Bad set `B`.
    pub bad: Vec<bool>,
    /// Residual active set `VIB` at termination.
    pub active: Vec<bool>,
    /// Total inner iterations executed.
    pub iterations: u64,
    /// CONGEST rounds (iterations·3 + scales·2).
    pub rounds: u64,
    /// The instantiated parameter schedule.
    pub params: ArbParams,
    /// Per-scale statistics.
    pub trace: Vec<ScaleTrace>,
}

impl ShatterOutcome {
    /// Number of nodes in `I`.
    pub fn mis_size(&self) -> usize {
        self.in_mis.iter().filter(|&&b| b).count()
    }

    /// Number of nodes in `B`.
    pub fn bad_size(&self) -> usize {
        self.bad.iter().filter(|&&b| b).count()
    }

    /// Number of residual active nodes.
    pub fn active_size(&self) -> usize {
        self.active.iter().filter(|&&b| b).count()
    }
}

/// The priority of node `v` in global iteration `iter`: 0 when opted out,
/// otherwise a nonzero `O(log n)`-bit value; ties broken by id at
/// comparison sites.
#[inline]
pub(crate) fn draw_priority(seed: u64, v: NodeId, iter: u64, n: usize) -> u64 {
    rng::draw_priority(seed, v, iter, TAG_PRIORITY, n)
}

/// Runs Algorithm 1.
///
/// # Panics
///
/// Panics if `cfg.alpha == 0`.
///
/// ```
/// use arbmis_core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
/// use arbmis_graph::gen;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let g = gen::random_ktree(500, 2, &mut rng);
/// let out = bounded_arb_independent_set(&g, &BoundedArbConfig::new(2, 7));
/// // I is independent; I, B, VIB partition the decided/undecided world.
/// assert!(arbmis_core::is_independent(&g, &out.in_mis));
/// ```
pub fn bounded_arb_independent_set(g: &Graph, cfg: &BoundedArbConfig) -> ShatterOutcome {
    bounded_arb_independent_set_with(g, cfg, &arbmis_obs::global())
}

/// [`bounded_arb_independent_set`] with an explicit observability
/// [`Recorder`]. Opens a `shattering` phase span and records the
/// joiners-per-iteration histogram and, per scale, the Invariant
/// headroom gauge (`Δ/2^{k+2}` bad threshold minus the worst surviving
/// high-degree neighbor count). Recording never changes the outcome.
pub fn bounded_arb_independent_set_with(
    g: &Graph,
    cfg: &BoundedArbConfig,
    rec: &Recorder,
) -> ShatterOutcome {
    let _span = rec.span("shattering");
    let obs = rec.enabled();
    let mut joiners_hist = Histogram::new();
    let params = ArbParams::new(cfg.alpha, g.max_degree(), cfg.mode);
    let mut view = ActiveView::new(g);
    let mut in_mis = vec![false; g.n()];
    let mut bad = vec![false; g.n()];
    let mut trace = Vec::with_capacity(params.theta as usize);
    let mut global_iter = 0u64;

    for k in 1..=params.theta {
        let rho = params.rho(k);
        let active_start = view.active_count();
        let mut joined = 0usize;
        let mut eliminated = 0usize;
        let mut joined_per_iteration = Vec::new();

        // The schedule is oblivious: exactly Λ iterations run per scale
        // (the paper's algorithm never adaptively stops), so iteration
        // indices — and hence priority draws — are a pure function of the
        // schedule. This keeps the fast path and the CONGEST protocol
        // bit-identical. Empty iterations only bump the counter.
        for _ in 0..params.lambda {
            if view.active_count() > 0 {
                let joiners = iteration_joiners(&view, cfg, rho, global_iter);
                if cfg.record_iterations {
                    joined_per_iteration.push(joiners.len());
                }
                if obs {
                    joiners_hist.observe(joiners.len() as u64);
                }
                for &v in &joiners {
                    in_mis[v] = true;
                    joined += 1;
                    let nbrs: Vec<NodeId> = view.active_neighbors(v).collect();
                    view.deactivate(v);
                    for u in nbrs {
                        eliminated += 1;
                        view.deactivate(u);
                    }
                }
            } else {
                if cfg.record_iterations {
                    joined_per_iteration.push(0);
                }
                if obs {
                    joiners_hist.observe(0);
                }
            }
            global_iter += 1;
        }

        // Step 2(b): exile Invariant violators to B.
        let violators = crate::invariant::invariant_violators(&view, &params, k);
        for &v in &violators {
            bad[v] = true;
            view.deactivate(v);
        }

        if obs {
            rec.point("scale_bad_marked", violators.len() as u64);
            // Headroom of the Invariant check after exile: the bad
            // threshold Δ/2^{k+2} minus the worst surviving node's
            // high-degree neighbor count (≥ 0 by construction of 2(b)).
            let worst = view
                .active_nodes()
                .map(|v| crate::invariant::high_degree_neighbor_count(&view, &params, k, v))
                .max()
                .unwrap_or(0);
            rec.gauge(
                &format!("arbmis_invariant_headroom{{scale=\"{k}\"}}"),
                params.bad_threshold(k) - worst as f64,
            );
        }

        trace.push(ScaleTrace {
            k,
            rho,
            iterations: params.lambda,
            active_start,
            active_end: view.active_count(),
            joined,
            eliminated,
            bad_marked: violators.len(),
            max_active_degree_end: view.max_active_degree(),
            joined_per_iteration,
        });
    }

    let iterations = global_iter;
    let rounds = iterations * ROUNDS_PER_ITERATION + u64::from(params.theta) * ROUNDS_PER_SCALE_END;
    if obs {
        rec.add("arbmis_shatter_iterations", iterations);
        rec.add("arbmis_shatter_scales", u64::from(params.theta));
        rec.merge_histogram("arbmis_scale_joiners", &joiners_hist);
        rec.point("rounds", rounds);
    }
    ShatterOutcome {
        in_mis,
        bad,
        active: view.mask().to_vec(),
        iterations,
        rounds,
        params,
        trace,
    }
}

/// One iteration's joiners: competitive nodes beating all active
/// neighbors, with `(priority, id)` tie-break. Non-competitive nodes have
/// priority 0 and can neither join nor block a competitive neighbor —
/// except against other priority-0 nodes, which simply never join,
/// matching the paper (a node joins only on a *strictly greater*
/// priority, and `0 > 0` is false; our `(0, id)` comparison would let a
/// 0-priority node "beat" another, so competitiveness is required
/// explicitly).
fn iteration_joiners(
    view: &ActiveView<'_>,
    cfg: &BoundedArbConfig,
    rho: f64,
    iter: u64,
) -> Vec<NodeId> {
    let n = view.graph().n();
    let competitive =
        |v: NodeId| -> bool { !cfg.rho_cutoff || (view.active_degree(v) as f64) <= rho };
    let pri = |v: NodeId| -> (u64, NodeId) {
        if competitive(v) {
            (draw_priority(cfg.seed, v, iter, n), v)
        } else {
            (0, v)
        }
    };
    view.active_nodes()
        .filter(|&v| {
            competitive(v) && {
                let pv = pri(v);
                view.active_neighbors(v).all(|u| pv > pri(u))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_independent;
    use arbmis_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn sets_partition_consistently(g: &Graph, out: &ShatterOutcome) {
        for v in g.nodes() {
            let states = [out.in_mis[v], out.bad[v], out.active[v]];
            let count = states.iter().filter(|&&b| b).count();
            assert!(count <= 1, "node {v} in multiple sets");
            // A node in none of the sets must be a neighbor of I.
            if count == 0 {
                assert!(
                    g.neighbors(v).iter().any(|&u| out.in_mis[u]),
                    "node {v} vanished without an MIS neighbor"
                );
            }
        }
    }

    #[test]
    fn output_sets_are_consistent() {
        let mut r = rng(1);
        let g = gen::random_ktree(400, 2, &mut r);
        let out = bounded_arb_independent_set(&g, &BoundedArbConfig::new(2, 3));
        assert!(is_independent(&g, &out.in_mis));
        sets_partition_consistently(&g, &out);
        assert_eq!(out.trace.len(), out.params.theta as usize);
    }

    #[test]
    fn active_nodes_have_no_mis_neighbor() {
        let mut r = rng(2);
        let g = gen::apollonian(300, &mut r);
        let out = bounded_arb_independent_set(&g, &BoundedArbConfig::new(3, 5));
        for v in g.nodes() {
            if out.active[v] {
                assert!(!out.in_mis[v]);
                assert!(g.neighbors(v).iter().all(|&u| !out.in_mis[u]));
            }
        }
    }

    #[test]
    fn shattering_reduces_active_set_substantially() {
        let mut r = rng(3);
        let g = gen::forest_union(2000, 2, &mut r);
        let out = bounded_arb_independent_set(&g, &BoundedArbConfig::new(2, 9));
        assert!(
            out.active_size() + out.bad_size() < g.n() / 2,
            "residual {} + bad {} too large",
            out.active_size(),
            out.bad_size()
        );
    }

    #[test]
    fn trace_counts_add_up() {
        let mut r = rng(4);
        let g = gen::random_ktree(300, 3, &mut r);
        let mut cfg = BoundedArbConfig::new(3, 11);
        cfg.record_iterations = true;
        let out = bounded_arb_independent_set(&g, &cfg);
        for t in &out.trace {
            assert_eq!(
                t.active_start - t.active_end,
                t.joined + t.eliminated + t.bad_marked,
                "scale {} bookkeeping",
                t.k
            );
            assert_eq!(t.joined_per_iteration.iter().sum::<usize>(), t.joined);
        }
        let total_joined: usize = out.trace.iter().map(|t| t.joined).sum();
        assert_eq!(total_joined, out.mis_size());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r = rng(5);
        let g = gen::barabasi_albert(300, 2, &mut r);
        let a = bounded_arb_independent_set(&g, &BoundedArbConfig::new(2, 21));
        let b = bounded_arb_independent_set(&g, &BoundedArbConfig::new(2, 21));
        assert_eq!(a, b);
    }

    #[test]
    fn faithful_mode_with_zero_theta_is_a_noop() {
        let mut r = rng(6);
        let g = gen::random_tree_prufer(100, &mut r);
        let cfg = BoundedArbConfig {
            alpha: 1,
            mode: ParamMode::Faithful { p: 1 },
            seed: 1,
            rho_cutoff: true,
            record_iterations: false,
        };
        let out = bounded_arb_independent_set(&g, &cfg);
        // Δ too small for any faithful scale: nothing happens.
        assert_eq!(out.params.theta, 0);
        assert_eq!(out.mis_size(), 0);
        assert_eq!(out.active_size(), g.n());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn ablation_without_cutoff_still_independent() {
        let mut r = rng(7);
        let g = gen::barabasi_albert(400, 3, &mut r);
        let cfg = BoundedArbConfig {
            rho_cutoff: false,
            ..BoundedArbConfig::new(3, 2)
        };
        let out = bounded_arb_independent_set(&g, &cfg);
        assert!(is_independent(&g, &out.in_mis));
        sets_partition_consistently(&g, &out);
    }

    #[test]
    fn recorder_observes_scales_without_changing_results() {
        let mut r = rng(9);
        let g = gen::random_ktree(400, 2, &mut r);
        let cfg = BoundedArbConfig::new(2, 5);
        let rec = arbmis_obs::Recorder::deterministic();
        let observed = bounded_arb_independent_set_with(&g, &cfg, &rec);
        let plain = bounded_arb_independent_set(&g, &cfg);
        assert_eq!(observed, plain);

        let snap = rec.snapshot();
        assert!(snap.has_span("shattering"));
        assert_eq!(
            snap.counter("arbmis_shatter_iterations"),
            Some(plain.iterations)
        );
        assert_eq!(
            snap.counter("arbmis_shatter_scales"),
            Some(u64::from(plain.params.theta))
        );
        // One joiner observation per scheduled iteration, summing to |I|.
        let joiners = snap.histogram("arbmis_scale_joiners").unwrap();
        assert_eq!(joiners.count(), plain.iterations);
        assert_eq!(joiners.sum(), plain.mis_size() as u64);
        // Step 2(b) enforces the Invariant, so every scale's headroom
        // gauge (bad threshold minus worst surviving count) is ≥ 0.
        for k in 1..=plain.params.theta {
            let name = format!("arbmis_invariant_headroom{{scale=\"{k}\"}}");
            let v = snap
                .gauge_value(&name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(v >= 0.0, "{name} = {v}");
        }
    }

    #[test]
    fn rounds_formula() {
        let mut r = rng(8);
        let g = gen::random_ktree(200, 2, &mut r);
        let out = bounded_arb_independent_set(&g, &BoundedArbConfig::new(2, 1));
        assert_eq!(
            out.rounds,
            out.iterations * ROUNDS_PER_ITERATION
                + u64::from(out.params.theta) * ROUNDS_PER_SCALE_END
        );
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Graph::empty(0);
        let out = bounded_arb_independent_set(&g, &BoundedArbConfig::new(1, 0));
        assert_eq!(out.mis_size(), 0);
        let g1 = Graph::empty(5);
        let out1 = bounded_arb_independent_set(&g1, &BoundedArbConfig::new(1, 0));
        // Δ = 0: no scales; everything stays active for the finisher.
        assert_eq!(out1.active_size(), 5);
    }
}
