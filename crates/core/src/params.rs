//! Parameter schedules for `BoundedArbIndependentSet` (Algorithm 1).
//!
//! The paper fixes three parameters as functions of the arboricity `α` and
//! the maximum degree `Δ`:
//!
//! * the number of scales `Θ = ⌊log(Δ / (1176·16·α¹⁰·ln²Δ))⌋`,
//! * the iterations per scale
//!   `Λ = ⌈p·8α²(32α⁶+1)·ln(260·α⁴·ln²Δ)⌉` (`p` a large-enough constant),
//! * the per-scale competitiveness cutoff `ρ_k = 8 lnΔ · Δ/2^{k+1}`.
//!
//! [`ParamMode::Faithful`] implements these formulas verbatim. They are
//! astronomically conservative — for `α = 2`, `Λ ≈ 7·10⁴·p` iterations
//! *per scale* — which is fine for a proof but means a faithful run only
//! terminates on inputs whose `Θ` is zero or tiny. [`ParamMode::Practical`]
//! keeps the *functional shape* (geometric degree scales, `α²·log log Δ`
//! iterations, the same `ρ_k`) while dropping the proof-slack constants,
//! so shape-level claims (invariant decay, shattering, who-wins
//! comparisons) are measurable. Every experiment records which mode it
//! ran; see DESIGN.md §3.

use serde::{Deserialize, Serialize};

/// Which constant regime to instantiate the schedule with.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamMode {
    /// The paper's formulas verbatim, with the proof constant `p`.
    Faithful {
        /// The "large enough constant" `p` in `Λ` (the paper leaves it
        /// unnamed; 1 is already enormous).
        p: u32,
    },
    /// Same shapes, proof-slack constants dropped.
    Practical {
        /// Multiplier on the practical `Λ` (1.0 = default).
        lambda_scale: f64,
    },
}

impl Default for ParamMode {
    fn default() -> Self {
        ParamMode::Practical { lambda_scale: 1.0 }
    }
}

/// The fully-instantiated schedule for one run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArbParams {
    /// Arboricity bound `α ≥ 1` supplied by the caller.
    pub alpha: usize,
    /// Maximum degree `Δ` of the input graph.
    pub delta: usize,
    /// Number of scales `Θ` (0 means step 2 is skipped entirely).
    pub theta: u32,
    /// Iterations per scale `Λ`.
    pub lambda: u64,
    /// The mode the schedule was derived under.
    pub mode: ParamMode,
}

impl ArbParams {
    /// Derives the schedule for a graph with maximum degree `delta` and
    /// arboricity bound `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha == 0`.
    pub fn new(alpha: usize, delta: usize, mode: ParamMode) -> Self {
        assert!(alpha >= 1, "arboricity bound must be >= 1");
        let a = alpha as f64;
        let d = delta.max(2) as f64;
        let ln_d = d.ln();
        let (theta, lambda) = match mode {
            ParamMode::Faithful { p } => {
                let denom = 1176.0 * 16.0 * a.powi(10) * ln_d * ln_d;
                let theta = (d / denom).log2().floor().max(0.0) as u32;
                let lambda = (f64::from(p)
                    * 8.0
                    * a.powi(2)
                    * (32.0 * a.powi(6) + 1.0)
                    * (260.0 * a.powi(4) * ln_d * ln_d).ln())
                .ceil() as u64;
                (theta, lambda.max(1))
            }
            ParamMode::Practical { lambda_scale } => {
                // Keep scales until the bad threshold Δ/2^{k+2} reaches 1.
                let theta = if delta >= 4 {
                    ((d).log2().floor() as u32).saturating_sub(2).max(1)
                } else {
                    0
                };
                let lambda = (lambda_scale
                    * 8.0
                    * a.powi(2)
                    * (260.0 * a.powi(4) * ln_d * ln_d).ln().max(1.0))
                .ceil() as u64;
                (theta, lambda.max(1))
            }
        };
        ArbParams {
            alpha,
            delta,
            theta,
            lambda,
            mode,
        }
    }

    /// The competitiveness cutoff `ρ_k = 8 lnΔ · Δ/2^{k+1}` for scale
    /// `k ∈ 1..=Θ`. Nodes with active degree above this set priority 0.
    pub fn rho(&self, k: u32) -> f64 {
        let d = self.delta.max(2) as f64;
        8.0 * d.ln() * d / 2f64.powi(k as i32 + 1)
    }

    /// The scale-k high-degree threshold `Δ/2^k + α`: nodes with active
    /// degree above this count as "high degree" in the Invariant.
    pub fn high_degree_threshold(&self, k: u32) -> f64 {
        self.delta as f64 / 2f64.powi(k as i32) + self.alpha as f64
    }

    /// The scale-k bad threshold `Δ/2^{k+2}`: a node with more
    /// high-degree neighbors than this at scale end is marked bad.
    pub fn bad_threshold(&self, k: u32) -> f64 {
        self.delta as f64 / 2f64.powi(k as i32 + 2)
    }

    /// Total inner iterations `Θ·Λ`.
    pub fn total_iterations(&self) -> u64 {
        u64::from(self.theta) * self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_lambda_matches_formula() {
        let p = ArbParams::new(2, 1 << 20, ParamMode::Faithful { p: 1 });
        let a = 2f64;
        let ln_d = ((1u64 << 20) as f64).ln();
        let expect = (8.0
            * a
            * a
            * (32.0 * a.powi(6) + 1.0)
            * (260.0 * a.powi(4) * ln_d * ln_d).ln())
        .ceil() as u64;
        assert_eq!(p.lambda, expect);
        assert!(p.lambda > 50_000, "faithful Λ is enormous by design");
    }

    #[test]
    fn faithful_theta_zero_for_small_delta() {
        // Δ = 100 with α = 2: denominator dwarfs Δ, so Θ = 0.
        let p = ArbParams::new(2, 100, ParamMode::Faithful { p: 1 });
        assert_eq!(p.theta, 0);
        assert_eq!(p.total_iterations(), 0);
    }

    #[test]
    fn faithful_theta_positive_for_huge_delta() {
        // α = 1: denominator = 1176·16·ln²Δ; Δ = 2^40 clears it.
        let p = ArbParams::new(1, 1 << 40, ParamMode::Faithful { p: 1 });
        assert!(p.theta >= 1, "theta {}", p.theta);
    }

    #[test]
    fn practical_theta_tracks_log_delta() {
        let p8 = ArbParams::new(2, 256, ParamMode::default());
        assert_eq!(p8.theta, 6); // log2(256) − 2
        let p4 = ArbParams::new(2, 16, ParamMode::default());
        assert_eq!(p4.theta, 2);
        let tiny = ArbParams::new(2, 3, ParamMode::default());
        assert_eq!(tiny.theta, 0);
    }

    #[test]
    fn practical_lambda_scales_with_alpha_squared() {
        let l1 = ArbParams::new(1, 1024, ParamMode::default()).lambda;
        let l3 = ArbParams::new(3, 1024, ParamMode::default()).lambda;
        // α² factor: ratio should be roughly 9 (log factor shifts slightly).
        let ratio = l3 as f64 / l1 as f64;
        assert!((7.0..14.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rho_halves_per_scale() {
        let p = ArbParams::new(2, 1024, ParamMode::default());
        let r1 = p.rho(1);
        let r2 = p.rho(2);
        assert!((r1 / r2 - 2.0).abs() < 1e-9);
        // ρ_1 = 8 lnΔ · Δ/4.
        let expect = 8.0 * (1024f64).ln() * 1024.0 / 4.0;
        assert!((r1 - expect).abs() < 1e-6);
    }

    #[test]
    fn thresholds_consistent() {
        let p = ArbParams::new(3, 512, ParamMode::default());
        for k in 1..=p.theta {
            assert!(p.high_degree_threshold(k) > p.bad_threshold(k));
            assert!(p.bad_threshold(k) >= p.bad_threshold(k + 1));
        }
        // hd threshold at scale k is Δ/2^k + α.
        assert!((p.high_degree_threshold(1) - (256.0 + 3.0)).abs() < 1e-9);
        assert!((p.bad_threshold(1) - 64.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        let _ = ArbParams::new(0, 10, ParamMode::default());
    }

    #[test]
    fn lambda_scale_multiplier() {
        let base = ArbParams::new(2, 256, ParamMode::Practical { lambda_scale: 1.0 }).lambda;
        let double = ArbParams::new(2, 256, ParamMode::Practical { lambda_scale: 2.0 }).lambda;
        assert!(double >= 2 * base - 2);
    }
}
