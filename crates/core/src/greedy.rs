//! Sequential greedy MIS — the correctness oracle.
//!
//! Not a distributed algorithm: scans nodes in a given order and adds every
//! node with no earlier-added neighbor. Used by tests as a known-good MIS
//! construction and by experiments as the "ideal sequential" reference.

use arbmis_graph::{Graph, NodeId};

/// Greedy MIS in id order.
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    greedy_mis_in_order(g, g.nodes())
}

/// Greedy MIS scanning nodes in the given order (each node id must appear
/// at most once; missing ids are simply never added).
pub fn greedy_mis_in_order<I: IntoIterator<Item = NodeId>>(g: &Graph, order: I) -> Vec<bool> {
    let mut in_set = vec![false; g.n()];
    let mut blocked = vec![false; g.n()];
    for v in order {
        if !blocked[v] && !in_set[v] {
            in_set[v] = true;
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    in_set
}

/// Greedy MIS restricted to a region: only region nodes may join, and
/// maximality is guaranteed only within the region.
pub fn greedy_mis_of_region(g: &Graph, region: &[bool]) -> Vec<bool> {
    assert_eq!(region.len(), g.n());
    let mut in_set = vec![false; g.n()];
    let mut blocked = vec![false; g.n()];
    for v in g.nodes().filter(|&v| region[v]) {
        if !blocked[v] {
            in_set[v] = true;
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    in_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_mis, is_mis_of_region};
    use arbmis_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn greedy_on_path() {
        let g = gen::path(6);
        let set = greedy_mis(&g);
        assert!(check_mis(&g, &set).is_ok());
        assert_eq!(set, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn greedy_is_mis_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let g = gen::gnp(200, 0.05, &mut rng);
            assert!(check_mis(&g, &greedy_mis(&g)).is_ok());
        }
    }

    #[test]
    fn custom_order_respected() {
        let g = gen::path(3);
        let set = greedy_mis_in_order(&g, [1usize, 0, 2]);
        assert_eq!(set, vec![false, true, false]);
        assert!(check_mis(&g, &set).is_ok());
    }

    #[test]
    fn region_greedy() {
        let g = gen::path(6);
        let region = vec![false, true, true, true, false, false];
        let set = greedy_mis_of_region(&g, &region);
        assert!(is_mis_of_region(&g, &set, &region));
        assert!(set.iter().enumerate().all(|(v, &b)| !b || region[v]));
    }

    #[test]
    fn empty_graph() {
        let g = arbmis_graph::Graph::empty(0);
        assert!(greedy_mis(&g).is_empty());
    }
}
