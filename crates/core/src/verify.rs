//! MIS verification oracles.

use arbmis_graph::{Graph, NodeId};
use std::fmt;

/// Why a claimed MIS is not one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MisError {
    /// Two adjacent nodes are both in the set.
    NotIndependent {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A node outside the set has no neighbor in the set.
    NotMaximal {
        /// The addable node.
        v: NodeId,
    },
    /// Mask length does not match the graph.
    WrongLength {
        /// Provided mask length.
        got: usize,
        /// Expected `g.n()`.
        expected: usize,
    },
}

impl fmt::Display for MisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisError::NotIndependent { u, v } => {
                write!(f, "adjacent nodes {u} and {v} are both in the set")
            }
            MisError::NotMaximal { v } => {
                write!(f, "node {v} could be added: no neighbor is in the set")
            }
            MisError::WrongLength { got, expected } => {
                write!(f, "mask length {got} does not match n={expected}")
            }
        }
    }
}

impl std::error::Error for MisError {}

/// `true` iff no two set members are adjacent.
pub fn is_independent(g: &Graph, in_set: &[bool]) -> bool {
    in_set.len() == g.n() && g.edges().all(|(u, v)| !(in_set[u] && in_set[v]))
}

/// `true` iff every non-member has a member neighbor.
pub fn is_maximal(g: &Graph, in_set: &[bool]) -> bool {
    in_set.len() == g.n()
        && g.nodes()
            .all(|v| in_set[v] || g.neighbors(v).iter().any(|&u| in_set[u]))
}

/// Full MIS check with a descriptive error.
///
/// # Errors
///
/// Returns the first violation found (independence violations are checked
/// before maximality ones).
pub fn check_mis(g: &Graph, in_set: &[bool]) -> Result<(), MisError> {
    if in_set.len() != g.n() {
        return Err(MisError::WrongLength {
            got: in_set.len(),
            expected: g.n(),
        });
    }
    for (u, v) in g.edges() {
        if in_set[u] && in_set[v] {
            return Err(MisError::NotIndependent { u, v });
        }
    }
    for v in g.nodes() {
        if !in_set[v] && !g.neighbors(v).iter().any(|&u| in_set[u]) {
            return Err(MisError::NotMaximal { v });
        }
    }
    Ok(())
}

/// `true` iff `in_set` is a maximal independent set of `g` — the
/// boolean form of [`check_mis`], for property tests and backend
/// oracles that only need pass/fail.
pub fn is_valid_mis(g: &Graph, in_set: &[bool]) -> bool {
    check_mis(g, in_set).is_ok()
}

/// `true` iff `in_set` is an independent set that is maximal *within the
/// induced subgraph* of `region` — used to validate per-phase outputs of
/// the ArbMIS pipeline (a phase must dominate its own region, not the
/// whole graph).
pub fn is_mis_of_region(g: &Graph, in_set: &[bool], region: &[bool]) -> bool {
    if in_set.len() != g.n() || region.len() != g.n() {
        return false;
    }
    // Members must lie in the region and be independent.
    for v in g.nodes() {
        if in_set[v] && !region[v] {
            return false;
        }
    }
    if !is_independent(g, in_set) {
        return false;
    }
    // Every region node must be dominated within the region.
    g.nodes()
        .filter(|&v| region[v])
        .all(|v| in_set[v] || g.neighbors(v).iter().any(|&u| region[u] && in_set[u]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::gen;

    #[test]
    fn valid_mis_passes() {
        let g = gen::path(5);
        let set = vec![true, false, true, false, true];
        assert!(is_independent(&g, &set));
        assert!(is_maximal(&g, &set));
        assert!(check_mis(&g, &set).is_ok());
    }

    #[test]
    fn independence_violation_detected() {
        let g = gen::path(3);
        let set = vec![true, true, false];
        assert!(!is_independent(&g, &set));
        assert_eq!(
            check_mis(&g, &set),
            Err(MisError::NotIndependent { u: 0, v: 1 })
        );
    }

    #[test]
    fn maximality_violation_detected() {
        let g = gen::path(5);
        let set = vec![true, false, false, false, true];
        assert!(is_independent(&g, &set));
        assert!(!is_maximal(&g, &set));
        assert_eq!(check_mis(&g, &set), Err(MisError::NotMaximal { v: 2 }));
    }

    #[test]
    fn wrong_length_detected() {
        let g = gen::path(3);
        assert_eq!(
            check_mis(&g, &[true]),
            Err(MisError::WrongLength {
                got: 1,
                expected: 3
            })
        );
        assert!(!is_independent(&g, &[true]));
        assert!(!is_maximal(&g, &[true]));
    }

    #[test]
    fn empty_graph_empty_set_is_mis() {
        let g = arbmis_graph::Graph::empty(0);
        assert!(check_mis(&g, &[]).is_ok());
    }

    #[test]
    fn isolated_nodes_must_join() {
        let g = arbmis_graph::Graph::empty(3);
        assert!(check_mis(&g, &[true, true, true]).is_ok());
        assert_eq!(
            check_mis(&g, &[true, false, true]),
            Err(MisError::NotMaximal { v: 1 })
        );
    }

    #[test]
    fn region_mis_check() {
        let g = gen::path(6);
        // Region = {0,1,2}; set {0, 2} is an MIS of that region even though
        // nodes 3..5 are undominated.
        let region = vec![true, true, true, false, false, false];
        let set = vec![true, false, true, false, false, false];
        assert!(is_mis_of_region(&g, &set, &region));
        assert!(!is_maximal(&g, &set));
        // A member outside the region invalidates.
        let bad = vec![true, false, false, false, false, true];
        assert!(!is_mis_of_region(&g, &bad, &region));
        // Undominated region node invalidates.
        let sparse = vec![true, false, false, false, false, false];
        assert!(!is_mis_of_region(&g, &sparse, &region));
    }

    #[test]
    fn error_display() {
        for e in [
            MisError::NotIndependent { u: 0, v: 1 },
            MisError::NotMaximal { v: 2 },
            MisError::WrongLength {
                got: 1,
                expected: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
