//! Tree MIS in `O(√(log n · log log n))` rounds — the predecessor the
//! paper generalizes.
//!
//! Lenzen–Wattenhofer (PODC 2011) and Barenboim–Elkin–Pettie–Schneider
//! (FOCS 2012) compute an MIS on *unoriented trees* by (1) running the
//! Métivier priority step for a `√(log n · log log n)` budget — after
//! which, their analyses show, the surviving graph has shattered into
//! components of polylogarithmic size whp — and (2) finishing each
//! residual component deterministically. This module implements that
//! two-phase pipeline for forests:
//!
//! 1. **Shatter**: `⌈√(log₂ n · log₂ log₂ n)⌉` Métivier iterations.
//! 2. **Finish**: each residual component is a tree; root it (BFS from
//!    its minimum-id node, `O(component depth)` rounds), Cole–Vishkin
//!    3-color it (`O(log* n)`), and sweep the color classes (no
//!    tie-breaks needed — color classes of a tree are independent sets of
//!    the component). Components are processed in parallel; the phase
//!    costs the max over components.
//!
//! The paper's `BoundedArbIndependentSet` is exactly this algorithm with
//! the scale/cutoff machinery added so that the *analysis* survives
//! arboricity α > 1; on actual forests the two coincide up to parameter
//! schedules, which [`tree_mis`] demonstrates at α = 1.

use crate::{cole_vishkin, metivier};
use arbmis_graph::forest::RootedForest;
use arbmis_graph::{traversal, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Outcome of the tree pipeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeMisOutcome {
    /// The maximal independent set.
    pub in_mis: Vec<bool>,
    /// Total CONGEST rounds (shatter + max component finish).
    pub rounds: u64,
    /// Rounds spent in the shattering phase.
    pub shatter_rounds: u64,
    /// Max rounds spent finishing one residual component.
    pub finish_rounds: u64,
    /// Sizes of the residual components the finisher processed.
    pub residual_component_sizes: Vec<usize>,
}

impl TreeMisOutcome {
    /// Number of MIS members.
    pub fn mis_size(&self) -> usize {
        self.in_mis.iter().filter(|&&b| b).count()
    }
}

/// The shattering budget `⌈√(log₂ n · log₂ log₂ n)⌉`.
pub fn shatter_budget(n: usize) -> u64 {
    if n < 4 {
        return 1;
    }
    let logn = (n as f64).log2();
    (logn * logn.log2().max(1.0)).sqrt().ceil() as u64
}

/// Computes an MIS of a forest via shatter-then-finish.
///
/// # Panics
///
/// Panics if `g` contains a cycle (the deterministic finisher requires
/// tree components; use [`fn@crate::arb_mis::arb_mis`] for general graphs).
///
/// ```
/// use arbmis_graph::gen;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(8);
/// let g = gen::random_tree_prufer(5_000, &mut rng);
/// let out = arbmis_core::tree_mis::tree_mis(&g, 3);
/// assert!(arbmis_core::check_mis(&g, &out.in_mis).is_ok());
/// ```
pub fn tree_mis(g: &Graph, seed: u64) -> TreeMisOutcome {
    assert!(
        traversal::is_forest(g),
        "tree_mis requires a forest; got a graph with a cycle"
    );
    let budget = shatter_budget(g.n());
    let partial = metivier::run_partial(g, seed, budget);
    let mut in_mis = partial.in_mis;
    let shatter_rounds = partial.iterations * metivier::ROUNDS_PER_ITERATION;

    // Finish residual components deterministically. One extraction
    // scratch serves all components: O(|C| + m(C)) each, not O(n).
    let comps = traversal::components_of_subset(g, &partial.active);
    let mut scratch = arbmis_graph::SubgraphScratch::new();
    let mut finish_rounds = 0u64;
    let mut residual_component_sizes = Vec::new();
    for comp in comps.members() {
        if comp.is_empty() {
            continue;
        }
        residual_component_sizes.push(comp.len());
        finish_rounds = finish_rounds.max(finish_component(g, &comp, &mut in_mis, &mut scratch));
    }
    TreeMisOutcome {
        rounds: shatter_rounds + finish_rounds,
        shatter_rounds,
        finish_rounds,
        in_mis,
        residual_component_sizes,
    }
}

/// Roots one residual tree component, 3-colors it, and sweeps. Returns
/// the rounds used (rooting depth + CV + sweeps).
fn finish_component(
    g: &Graph,
    component: &[NodeId],
    in_mis: &mut [bool],
    scratch: &mut arbmis_graph::SubgraphScratch,
) -> u64 {
    let sub = scratch.induce(g, component);
    let cg = sub.graph();
    // Root at the minimum-id node: BFS gives parent pointers; depth =
    // rooting rounds in a distributed implementation.
    let dist = traversal::bfs_distances(cg, 0);
    let mut forest = RootedForest::new(cg.n());
    let mut depth = 0usize;
    for v in 1..cg.n() {
        let d = dist[v];
        debug_assert_ne!(d, usize::MAX, "component must be connected");
        depth = depth.max(d);
        let parent = *cg
            .neighbors(v)
            .iter()
            .find(|&&u| dist[u] + 1 == d)
            .expect("BFS parent exists");
        forest.set_parent(v, parent);
    }
    let coloring = cole_vishkin::cv_color_to_three(&forest);
    // The component *is* the forest, so no cross-edges exist and the
    // sweep needs no tie-breaks; `colorwise_mis` handles it uniformly.
    // Nodes dominated by shatter-phase MIS members must not rejoin.
    let region: Vec<bool> = (0..cg.n())
        .map(|i| {
            let v = sub.to_parent(i);
            !in_mis[v] && g.neighbors(v).iter().all(|&u| !in_mis[u])
        })
        .collect();
    let (local, sweep_rounds) =
        cole_vishkin::colorwise_mis(cg, &coloring.colors, coloring.num_colors, Some(&region));
    for i in 0..cg.n() {
        if local[i] {
            in_mis[sub.to_parent(i)] = true;
        }
    }
    depth as u64 + coloring.rounds + sweep_rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_mis;
    use arbmis_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn valid_on_random_trees() {
        for seed in 0..5 {
            let g = gen::random_tree_prufer(2_000, &mut rng(seed));
            let out = tree_mis(&g, seed);
            assert!(check_mis(&g, &out.in_mis).is_ok(), "seed {seed}");
            assert_eq!(out.rounds, out.shatter_rounds + out.finish_rounds);
        }
    }

    #[test]
    fn valid_on_forests_and_special_trees() {
        let graphs = vec![
            gen::path(500),
            gen::star(300),
            gen::caterpillar(50, 6),
            gen::broom(40, 30),
            gen::binary_tree(511),
            gen::random_forest(800, 0.7, &mut rng(3)),
            Graph::empty(10),
        ];
        for g in graphs {
            let out = tree_mis(&g, 1);
            assert!(check_mis(&g, &out.in_mis).is_ok(), "failed on {g}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_cyclic_graphs() {
        let _ = tree_mis(&gen::cycle(10), 1);
    }

    #[test]
    fn budget_grows_sublogarithmically() {
        assert_eq!(shatter_budget(2), 1);
        let b10 = shatter_budget(1 << 10);
        let b20 = shatter_budget(1 << 20);
        // log n doubles, budget grows by ~√2·√(loglog ratio) — far less
        // than double-and-a-bit.
        assert!(b20 < 2 * b10, "{b10} -> {b20}");
        assert!(b20 > b10);
    }

    #[test]
    fn round_budget_shape_vs_metivier() {
        // tree_mis's shattering phase is capped at the budget even when
        // plain Métivier would keep iterating.
        let g = gen::random_tree_prufer(10_000, &mut rng(9));
        let out = tree_mis(&g, 4);
        assert!(out.shatter_rounds <= shatter_budget(10_000) * 3);
        assert!(check_mis(&g, &out.in_mis).is_ok());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::random_tree_prufer(1_000, &mut rng(11));
        assert_eq!(tree_mis(&g, 5), tree_mis(&g, 5));
    }

    use arbmis_graph::Graph;
}
