//! Cole–Vishkin deterministic coin tossing.
//!
//! On a rooted forest, each node repeatedly replaces its color by the
//! index-and-value of the lowest bit on which it differs from its parent,
//! shrinking any initial coloring with `L`-bit colors to colors below 6 in
//! `O(log* L)` synchronous rounds; three shift-down/recolor steps then
//! reduce 6 colors to 3. A 3-colored forest yields an MIS of the forest in
//! 3 sweeps.
//!
//! The paper's Lemma 3.8 runs this machinery on each small component of
//! the bad set `B`, one forest of a Barenboim–Elkin decomposition at a
//! time. The brief announcement elides one detail: a color class of
//! forest `F_i` is independent *in `F_i`* but two of its nodes can be
//! adjacent through an edge of another forest. [`colorwise_mis`] therefore
//! breaks intra-class conflicts by node id — one extra comparison round
//! per class, preserving both correctness and the `O(α·log* n)` shape.

use crate::result::MisRun;
use arbmis_graph::forest::RootedForest;
use arbmis_graph::{Graph, NodeId};

/// A forest coloring: per-node colors plus the rounds spent computing
/// them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestColoring {
    /// Proper colors (per forest edge) in `0..num_colors`.
    pub colors: Vec<usize>,
    /// Number of distinct colors guaranteed (3 after full reduction).
    pub num_colors: usize,
    /// Synchronous rounds used.
    pub rounds: u64,
}

/// Index of the lowest bit where `a` and `b` differ.
///
/// # Panics
///
/// Panics if `a == b`.
#[inline]
fn lowest_differing_bit(a: usize, b: usize) -> u32 {
    debug_assert_ne!(a, b);
    (a ^ b).trailing_zeros()
}

/// One Cole–Vishkin step: every node recolors from `(i, bit)` where `i`
/// is the lowest bit differing from its parent's color and `bit` its own
/// bit there; roots use bit 0 of their own color.
fn cv_step(forest: &RootedForest, colors: &[usize]) -> Vec<usize> {
    (0..forest.n())
        .map(|v| match forest.parent(v) {
            Some(p) => {
                let i = lowest_differing_bit(colors[v], colors[p]);
                ((i as usize) << 1) | ((colors[v] >> i) & 1)
            }
            None => colors[v] & 1,
        })
        .collect()
}

/// Computes a proper 6-coloring of `forest` via iterated Cole–Vishkin,
/// starting from the identity coloring (`color(v) = v`).
pub fn cv_color_to_six(forest: &RootedForest) -> ForestColoring {
    let mut colors: Vec<usize> = (0..forest.n()).collect();
    let mut rounds = 0u64;
    while colors.iter().copied().max().unwrap_or(0) >= 6 {
        colors = cv_step(forest, &colors);
        rounds += 1;
    }
    ForestColoring {
        colors,
        num_colors: 6,
        rounds,
    }
}

/// Reduces a proper ≤ 6-coloring of `forest` to a proper 3-coloring via
/// three shift-down + recolor steps.
///
/// # Panics
///
/// Panics if `coloring` is not a proper ≤ 6-coloring of `forest`.
pub fn reduce_to_three(forest: &RootedForest, coloring: &ForestColoring) -> ForestColoring {
    let mut colors = coloring.colors.clone();
    assert!(is_proper_forest_coloring(forest, &colors));
    assert!(colors.iter().all(|&c| c < 6));
    let mut rounds = coloring.rounds;
    for target in (3..6).rev() {
        // Shift down: adopt the parent's color; roots rotate within
        // {0,1,2} away from their own color. After this, each node's
        // children are monochromatic.
        let shifted: Vec<usize> = (0..forest.n())
            .map(|v| match forest.parent(v) {
                Some(p) => colors[p],
                None => (colors[v] + 1) % 3,
            })
            .collect();
        // Recolor nodes holding `target`: pick the smallest color of
        // {0,1,2} unused by the (monochromatic) children and the parent.
        let children = forest.children_lists();
        colors = (0..forest.n())
            .map(|v| {
                if shifted[v] != target {
                    return shifted[v];
                }
                let parent_color = forest.parent(v).map(|p| shifted[p]);
                let child_color = children[v].first().map(|&c| shifted[c]);
                (0..3)
                    .find(|c| Some(*c) != parent_color && Some(*c) != child_color)
                    .expect("three colors always leave one free")
            })
            .collect();
        rounds += 2;
        debug_assert!(is_proper_forest_coloring(forest, &colors));
    }
    ForestColoring {
        colors,
        num_colors: 3,
        rounds,
    }
}

/// Computes a proper 3-coloring of `forest` (Cole–Vishkin + reduction).
///
/// ```
/// use arbmis_graph::{gen, forest::forests_by_degeneracy};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let tree = gen::random_tree_prufer(500, &mut rng);
/// let forest = forests_by_degeneracy(&tree).pop().unwrap();
/// let coloring = arbmis_core::cole_vishkin::cv_color_to_three(&forest);
/// assert!(coloring.colors.iter().all(|&c| c < 3));
/// ```
pub fn cv_color_to_three(forest: &RootedForest) -> ForestColoring {
    let six = cv_color_to_six(forest);
    reduce_to_three(forest, &six)
}

/// Whether `colors` is proper on the forest's edges.
pub fn is_proper_forest_coloring(forest: &RootedForest, colors: &[usize]) -> bool {
    (0..forest.n()).all(|v| match forest.parent(v) {
        Some(p) => colors[v] != colors[p],
        None => true,
    })
}

/// MIS of the *forest itself* by sweeping color classes: class by class,
/// every still-undominated node of the class joins. Within a class no two
/// nodes are forest-adjacent, so no tie-break is needed.
pub fn forest_mis(forest: &RootedForest) -> MisRun {
    let coloring = cv_color_to_three(forest);
    let fg = forest.to_graph();
    let (in_mis, sweep_rounds) = sweep_classes(&fg, &coloring.colors, 3, None);
    let rounds = coloring.rounds + sweep_rounds;
    MisRun::new(in_mis, rounds, rounds)
}

/// MIS of an arbitrary graph `g` from *any* vertex coloring whose classes
/// may contain `g`-adjacent pairs: classes are swept in order and
/// intra-class conflicts are broken by node id (largest id joins). The
/// `region` mask restricts which nodes participate (e.g. a bad-set
/// component); pass `None` for all nodes.
///
/// Returns the membership mask and the rounds used (3 per class: announce
/// candidacy, resolve, exit).
pub fn colorwise_mis(
    g: &Graph,
    colors: &[usize],
    num_colors: usize,
    region: Option<&[bool]>,
) -> (Vec<bool>, u64) {
    sweep_classes(g, colors, num_colors, region)
}

fn sweep_classes(
    g: &Graph,
    colors: &[usize],
    num_colors: usize,
    region: Option<&[bool]>,
) -> (Vec<bool>, u64) {
    assert_eq!(colors.len(), g.n());
    let in_region = |v: NodeId| region.is_none_or(|r| r[v]);
    let mut in_mis = vec![false; g.n()];
    let mut dominated = vec![false; g.n()];
    let mut rounds = 0u64;
    let mut candidate_set = vec![false; g.n()];
    for c in 0..num_colors {
        // A tie-break loser whose dominator did not join must get another
        // chance, so each class runs to a fixpoint. Every pass the largest
        // remaining candidate of each component joins, so passes are few
        // unless a class has long id-decreasing candidate chains.
        loop {
            let candidates: Vec<NodeId> = g
                .nodes()
                .filter(|&v| colors[v] == c && in_region(v) && !dominated[v] && !in_mis[v])
                .collect();
            if candidates.is_empty() {
                break;
            }
            rounds += 3;
            candidate_set.iter_mut().for_each(|b| *b = false);
            for &v in &candidates {
                candidate_set[v] = true;
            }
            for &v in &candidates {
                // Id tie-break against candidates adjacent in g (possible
                // for same-class nodes via non-forest edges).
                let wins = g.neighbors(v).iter().all(|&u| !candidate_set[u] || u < v);
                if wins {
                    in_mis[v] = true;
                    for &u in g.neighbors(v) {
                        dominated[u] = true;
                    }
                }
            }
        }
    }
    (in_mis, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_mis, is_mis_of_region};
    use arbmis_graph::forest::forests_by_degeneracy;
    use arbmis_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn tree_forest(n: usize, seed: u64) -> RootedForest {
        let g = gen::random_tree_prufer(n, &mut rng(seed));
        forests_by_degeneracy(&g).pop().unwrap()
    }

    #[test]
    fn six_coloring_is_proper_and_fast() {
        let f = tree_forest(10_000, 1);
        let c = cv_color_to_six(&f);
        assert!(is_proper_forest_coloring(&f, &c.colors));
        assert!(c.colors.iter().all(|&x| x < 6));
        // log* growth: 10k nodes need only a handful of rounds.
        assert!(c.rounds <= 6, "rounds {}", c.rounds);
    }

    #[test]
    fn three_coloring_is_proper() {
        for seed in 0..4 {
            let f = tree_forest(2000, seed);
            let c = cv_color_to_three(&f);
            assert!(is_proper_forest_coloring(&f, &c.colors));
            assert!(c.colors.iter().all(|&x| x < 3));
            assert_eq!(c.num_colors, 3);
        }
    }

    #[test]
    fn rounds_grow_very_slowly() {
        let small = cv_color_to_six(&tree_forest(64, 7)).rounds;
        let large = cv_color_to_six(&tree_forest(50_000, 7)).rounds;
        assert!(
            large <= small + 2,
            "log* growth violated: {small} -> {large}"
        );
    }

    #[test]
    fn path_forest_coloring() {
        // A path rooted at one end: deep recursion case.
        let mut f = RootedForest::new(1000);
        for v in 1..1000 {
            f.set_parent(v, v - 1);
        }
        let c = cv_color_to_three(&f);
        assert!(is_proper_forest_coloring(&f, &c.colors));
        assert!(c.colors.iter().all(|&x| x < 3));
    }

    #[test]
    fn single_node_and_empty_forest() {
        let f = RootedForest::new(1);
        let c = cv_color_to_three(&f);
        assert_eq!(c.colors.len(), 1);
        assert!(c.colors[0] < 3);
        let f0 = RootedForest::new(0);
        assert!(cv_color_to_three(&f0).colors.is_empty());
    }

    #[test]
    fn forest_mis_is_mis_of_forest_graph() {
        for seed in 0..3 {
            let f = tree_forest(800, seed + 10);
            let run = forest_mis(&f);
            let fg = f.to_graph();
            assert!(check_mis(&fg, &run.in_mis).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn colorwise_mis_handles_cross_edges() {
        // A cycle 2-colored "improperly" for the cycle (classes contain
        // adjacent pairs when n is odd) still yields an MIS thanks to the
        // id tie-break.
        let g = gen::cycle(7);
        let colors: Vec<usize> = (0..7).map(|v| v % 2).collect();
        let (mis, rounds) = colorwise_mis(&g, &colors, 2, None);
        assert!(check_mis(&g, &mis).is_ok());
        assert!(rounds >= 3 && rounds % 3 == 0, "rounds {rounds}");
    }

    #[test]
    fn colorwise_mis_respects_region() {
        let g = gen::path(8);
        let region = vec![true, true, true, true, false, false, false, false];
        let colors: Vec<usize> = (0..8).map(|v| v % 3).collect();
        let (mis, _) = colorwise_mis(&g, &colors, 3, Some(&region));
        assert!(is_mis_of_region(&g, &mis, &region));
        assert!(mis[4..].iter().all(|&b| !b));
    }

    #[test]
    fn colorwise_single_color_degenerates_to_id_greedy() {
        let g = gen::complete(6);
        let colors = vec![0usize; 6];
        let (mis, _) = colorwise_mis(&g, &colors, 1, None);
        assert!(check_mis(&g, &mis).is_ok());
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
        assert!(mis[5], "largest id should win the tie-break");
    }
}
