//! Ghaffari's desire-level MIS algorithm (SODA 2016).
//!
//! Every node maintains a *desire level* `p_v`, initially 1/2, always a
//! power of two in `(0, 1/2]`. Each iteration a node marks itself with
//! probability `p_v`; a marked node with no marked active neighbor joins
//! the MIS. The desire level then adapts to the *effective degree*
//! `d_v = Σ_{active u ∈ N(v)} p_u`: if `d_v ≥ 2` the node halves `p_v`,
//! otherwise it doubles it (capped at 1/2). Runs in
//! `O(log Δ) + 2^{O(√(log log n))}` rounds whp; the paper cites the
//! `O(log α + √(log n))` corollary for arboricity-α graphs as the fastest
//! known, dominating its own bound (§1.2).
//!
//! Desire levels being powers of two means the CONGEST protocol only
//! exchanges exponents — `O(log log Δ)` bits.

use crate::result::MisRun;
use arbmis_congest::rng;
use arbmis_graph::{ActiveView, Graph, NodeId};

/// Randomness tag for marking coins.
pub const TAG_MARK: u64 = 0x4748_4146; // "GHAF"

/// CONGEST rounds per iteration: exchange (exponent, mark), join bits,
/// exit bits.
pub const ROUNDS_PER_ITERATION: u64 = 3;

/// Hard iteration cap: Ghaffari's algorithm terminates whp long before
/// this; exceeding it indicates a bug and panics.
fn iteration_cap(n: usize) -> u64 {
    let logn = (n.max(2) as f64).log2();
    2000 + (60.0 * logn * logn) as u64
}

/// Whether `v` marks itself in `iter` at desire exponent `e` (`p = 2^-e`).
#[inline]
pub fn is_marked(seed: u64, v: NodeId, iter: u64, e: u32) -> bool {
    rng::draw_unit(seed, v, iter, TAG_MARK) < 0.5f64.powi(e as i32)
}

/// Runs Ghaffari's algorithm to completion.
///
/// # Panics
///
/// Panics if the (generous) internal iteration cap is exceeded, which
/// would indicate an implementation bug rather than bad luck.
///
/// ```
/// use arbmis_graph::gen;
/// let g = gen::grid(8, 8);
/// let run = arbmis_core::ghaffari::run(&g, 5);
/// assert!(arbmis_core::check_mis(&g, &run.in_mis).is_ok());
/// ```
pub fn run(g: &Graph, seed: u64) -> MisRun {
    let n = g.n();
    let mut view = ActiveView::new(g);
    let mut in_mis = vec![false; n];
    // Desire exponent e_v: p_v = 2^{-e_v}, e_v ≥ 1.
    let mut exponent = vec![1u32; n];
    let cap = iteration_cap(n);
    let mut iter = 0u64;
    while view.active_count() > 0 {
        assert!(iter < cap, "ghaffari exceeded iteration cap {cap}");
        let marked: Vec<bool> = (0..n)
            .map(|v| view.is_active(v) && is_marked(seed, v, iter, exponent[v]))
            .collect();
        let joiners: Vec<NodeId> = view
            .active_nodes()
            .filter(|&v| marked[v] && view.active_neighbors(v).all(|u| !marked[u]))
            .collect();
        // Desire update uses the *pre-removal* neighborhood, matching the
        // algorithm's simultaneous semantics.
        let new_exponent: Vec<u32> = (0..n)
            .map(|v| {
                if !view.is_active(v) {
                    return exponent[v];
                }
                let d: f64 = view
                    .active_neighbors(v)
                    .map(|u| 0.5f64.powi(exponent[u] as i32))
                    .sum();
                if d >= 2.0 {
                    exponent[v] + 1
                } else {
                    exponent[v].saturating_sub(1).max(1)
                }
            })
            .collect();
        exponent = new_exponent;
        for &v in &joiners {
            in_mis[v] = true;
            let nbrs: Vec<NodeId> = view.active_neighbors(v).collect();
            view.deactivate(v);
            for u in nbrs {
                view.deactivate(u);
            }
        }
        iter += 1;
    }
    MisRun::new(in_mis, iter, iter * ROUNDS_PER_ITERATION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_mis;
    use arbmis_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn produces_mis_on_families() {
        let mut r = rng(1);
        let graphs = vec![
            gen::path(40),
            gen::cycle(33),
            gen::complete(9),
            gen::star(20),
            gen::random_tree_prufer(250, &mut r),
            gen::gnp(150, 0.08, &mut r),
            gen::apollonian(150, &mut r),
            arbmis_graph::Graph::empty(7),
        ];
        for g in graphs {
            for seed in 0..3 {
                let run = run(&g, seed);
                assert!(
                    check_mis(&g, &run.in_mis).is_ok(),
                    "failed on {g} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r = rng(2);
        let g = gen::gnp(100, 0.1, &mut r);
        assert_eq!(run(&g, 4), run(&g, 4));
    }

    #[test]
    fn fast_on_bounded_degree() {
        let g = gen::grid(40, 40);
        let res = run(&g, 7);
        assert!(res.iterations <= 60, "iterations {}", res.iterations);
        assert!(check_mis(&g, &res.in_mis).is_ok());
    }

    #[test]
    fn desire_exponent_cannot_go_below_one() {
        // Isolated nodes keep e = 1 (p = 1/2) and join geometrically fast.
        let g = arbmis_graph::Graph::empty(20);
        let res = run(&g, 9);
        assert_eq!(res.size(), 20);
        assert!(res.iterations <= 30);
    }

    #[test]
    fn heavy_tailed_graph() {
        let mut r = rng(3);
        let g = gen::barabasi_albert(400, 3, &mut r);
        let res = run(&g, 2);
        assert!(check_mis(&g, &res.in_mis).is_ok());
    }
}
