//! Luby's Algorithm B: degree-proportional marking.
//!
//! Each iteration an active node `v` with current active degree `d > 0`
//! marks itself with probability `1/(2d)` (degree-0 nodes join outright).
//! A marked node joins the MIS unless a marked neighbor dominates it —
//! higher active degree wins, ties broken by id. O(log n) iterations whp
//! (Luby 1986; also Alon–Babai–Itai, Israeli–Itai).

use crate::result::MisRun;
use arbmis_congest::rng;
use arbmis_graph::{ActiveView, Graph, NodeId};

/// Randomness tag for marking coins.
pub const TAG_MARK: u64 = 0x4c55_4259; // "LUBY"

/// CONGEST rounds per iteration: exchange degrees+marks, join bits, exit
/// bits.
pub const ROUNDS_PER_ITERATION: u64 = 3;

/// Whether `v` marks itself in `iter` given active degree `d`.
#[inline]
pub fn is_marked(seed: u64, v: NodeId, iter: u64, d: usize) -> bool {
    debug_assert!(d > 0);
    rng::draw_unit(seed, v, iter, TAG_MARK) < 1.0 / (2.0 * d as f64)
}

/// Runs Luby's Algorithm B to completion.
///
/// ```
/// use arbmis_graph::gen;
/// let g = gen::cycle(30);
/// let run = arbmis_core::luby::run(&g, 3);
/// assert!(arbmis_core::check_mis(&g, &run.in_mis).is_ok());
/// ```
pub fn run(g: &Graph, seed: u64) -> MisRun {
    let mut view = ActiveView::new(g);
    let mut in_mis = vec![false; g.n()];
    let mut iter = 0u64;
    while view.active_count() > 0 {
        // Degree-0 nodes join unconditionally.
        let mut joiners: Vec<NodeId> = Vec::new();
        let marked: Vec<NodeId> = view
            .active_nodes()
            .filter(|&v| {
                let d = view.active_degree(v);
                if d == 0 {
                    joiners.push(v);
                    false
                } else {
                    is_marked(seed, v, iter, d)
                }
            })
            .collect();
        let mark_set: std::collections::HashSet<NodeId> = marked.iter().copied().collect();
        for &v in &marked {
            // v wins against marked neighbor u iff (d(v), v) > (d(u), u).
            let key_v = (view.active_degree(v), v);
            let dominated = view
                .active_neighbors(v)
                .any(|u| mark_set.contains(&u) && (view.active_degree(u), u) > key_v);
            if !dominated {
                joiners.push(v);
            }
        }
        for &v in &joiners {
            in_mis[v] = true;
            let nbrs: Vec<NodeId> = view.active_neighbors(v).collect();
            view.deactivate(v);
            for u in nbrs {
                view.deactivate(u);
            }
        }
        iter += 1;
    }
    MisRun::new(in_mis, iter, iter * ROUNDS_PER_ITERATION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_mis;
    use arbmis_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn produces_mis_on_families() {
        let mut r = rng(1);
        let graphs = vec![
            gen::path(40),
            gen::cycle(41),
            gen::complete(10),
            gen::star(25),
            gen::random_tree_prufer(250, &mut r),
            gen::gnp(200, 0.08, &mut r),
            gen::barabasi_albert(200, 3, &mut r),
            arbmis_graph::Graph::empty(6),
        ];
        for g in graphs {
            for seed in 0..3 {
                let run = run(&g, seed);
                assert!(
                    check_mis(&g, &run.in_mis).is_ok(),
                    "failed on {g} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r = rng(2);
        let g = gen::gnp(120, 0.1, &mut r);
        assert_eq!(run(&g, 8), run(&g, 8));
    }

    #[test]
    fn logarithmic_iterations() {
        let mut r = rng(3);
        let g = gen::gnp(2000, 0.01, &mut r);
        let res = run(&g, 4);
        assert!(res.iterations <= 80, "iterations {}", res.iterations);
    }

    #[test]
    fn isolated_nodes_join_in_first_iteration() {
        let g = arbmis_graph::Graph::empty(4);
        let res = run(&g, 0);
        assert_eq!(res.size(), 4);
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn dominance_tie_broken_by_id() {
        // On K2 both nodes have degree 1; if both mark in the same
        // iteration, the higher id must win. We can't force marks, but the
        // final set is always a single node and the run terminates.
        let g = gen::complete(2);
        for seed in 0..20 {
            let res = run(&g, seed);
            assert_eq!(res.size(), 1, "seed {seed}");
        }
    }
}
