//! Common result types for MIS executions.

use arbmis_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Outcome of one MIS algorithm execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisRun {
    /// Membership mask: `in_mis[v]` iff `v` is in the computed set.
    pub in_mis: Vec<bool>,
    /// Algorithm-level iterations (e.g. Métivier iterations). One
    /// iteration costs a small constant number of CONGEST rounds.
    pub iterations: u64,
    /// CONGEST rounds, counting each iteration's sub-rounds.
    pub rounds: u64,
}

impl MisRun {
    /// Creates a run result.
    pub fn new(in_mis: Vec<bool>, iterations: u64, rounds: u64) -> Self {
        MisRun {
            in_mis,
            iterations,
            rounds,
        }
    }

    /// Number of nodes in the set.
    pub fn size(&self) -> usize {
        self.in_mis.iter().filter(|&&b| b).count()
    }

    /// The members as a sorted id list.
    pub fn members(&self) -> Vec<NodeId> {
        self.in_mis
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| b.then_some(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = MisRun::new(vec![true, false, true], 4, 12);
        assert_eq!(r.size(), 2);
        assert_eq!(r.members(), vec![0, 2]);
        assert_eq!(r.iterations, 4);
        assert_eq!(r.rounds, 12);
    }

    #[test]
    fn empty_run() {
        let r = MisRun::new(vec![], 0, 0);
        assert_eq!(r.size(), 0);
        assert!(r.members().is_empty());
    }
}
