#![warn(missing_docs)]
//! Distributed MIS algorithms: the Pemmaraju–Riaz shattering pipeline and
//! its baselines.
//!
//! The centerpiece is [`bounded_arb::BoundedArbConfig`] /
//! [`bounded_arb::bounded_arb_independent_set`] — Algorithm 1 of the paper
//! (*BoundedArbIndependentSet*, a parameter-rescaled version of the
//! Barenboim–Elkin–Pettie–Schneider `TreeIndependentSet`) — and
//! [`arb_mis::arb_mis`] — Algorithm 2, the full MIS pipeline that finishes
//! up the residual active set and the "bad" set.
//!
//! Baselines (§1 of the paper):
//!
//! * [`luby`] — Luby's Algorithm B (degree-based marking), O(log n) whp.
//! * [`metivier`] — the Métivier et al. priority algorithm, the inner loop
//!   of Algorithm 1.
//! * [`ghaffari`] — Ghaffari's SODA 2016 desire-level algorithm,
//!   O(log Δ) + 2^O(√(log log n)).
//! * [`greedy`] — sequential greedy MIS (correctness oracle, not
//!   distributed).
//!
//! Finishing machinery (§3.3):
//!
//! * [`forest_decomp`] — Barenboim–Elkin H-partition and the derived
//!   ≤ (2+ε)α-forest decomposition.
//! * [`cole_vishkin`] — deterministic coin tossing: O(log* n) forest
//!   3-coloring and the color-sweep MIS for small components.
//!
//! Every randomized algorithm has two interchangeable executions drawing
//! *identical* random bits:
//!
//! 1. a **fast path** (`run` functions) — centralized simulation that
//!    reports CONGEST round counts analytically; and
//! 2. a **CONGEST protocol** ([`protocols`]) — runs on
//!    [`arbmis_congest::Simulator`] with real message passing and
//!    per-message bit accounting.
//!
//! Tests assert the two produce identical independent sets.

pub mod arb_mis;
pub mod bounded_arb;
pub mod cole_vishkin;
pub mod forest_decomp;
pub mod ghaffari;
pub mod greedy;
pub mod invariant;
pub mod luby;
pub mod metivier;
pub mod params;
pub mod protocols;
pub mod result;
pub mod trace;
pub mod tree_mis;
pub mod verify;

pub use arb_mis::{arb_mis, ArbMisConfig, ArbMisOutcome, PhaseRounds};
pub use bounded_arb::{bounded_arb_independent_set, BoundedArbConfig, ShatterOutcome};
pub use params::{ArbParams, ParamMode};
pub use result::MisRun;
pub use verify::{check_mis, is_independent, is_maximal, is_valid_mis, MisError};
