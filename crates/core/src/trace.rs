//! Execution traces for the shattering algorithm — the observability layer
//! every experiment reads.

use serde::{Deserialize, Serialize};

/// Statistics of one scale of `BoundedArbIndependentSet`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ScaleTrace {
    /// Scale index `k` (1-based, as in the paper).
    pub k: u32,
    /// Competitiveness cutoff `ρ_k` used this scale.
    pub rho: f64,
    /// Inner iterations executed.
    pub iterations: u64,
    /// Active nodes at scale start.
    pub active_start: usize,
    /// Active nodes after step 2(b).
    pub active_end: usize,
    /// Nodes that joined the MIS during the scale.
    pub joined: usize,
    /// Nodes eliminated as neighbors of joiners during the scale.
    pub eliminated: usize,
    /// Nodes marked bad in step 2(b) (= Invariant violations at scale
    /// end).
    pub bad_marked: usize,
    /// Maximum active degree after the scale.
    pub max_active_degree_end: usize,
    /// Per-iteration joiner counts, if iteration recording was enabled.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub joined_per_iteration: Vec<usize>,
}

impl ScaleTrace {
    /// Fraction of scale-start active nodes that were decided (joined,
    /// eliminated, or marked bad) during the scale.
    pub fn decided_fraction(&self) -> f64 {
        if self.active_start == 0 {
            0.0
        } else {
            (self.active_start - self.active_end) as f64 / self.active_start as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decided_fraction_math() {
        let t = ScaleTrace {
            active_start: 100,
            active_end: 25,
            ..ScaleTrace::default()
        };
        assert!((t.decided_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(ScaleTrace::default().decided_fraction(), 0.0);
    }
}
