//! Barenboim–Elkin H-partition and forest decomposition (PODC 2008).
//!
//! An arboricity-α graph always has a node of degree < 2α in every
//! subgraph, so repeatedly peeling all nodes of degree ≤ ⌈(2+ε)α⌉ empties
//! the graph in `O(log n / ε)` phases (each phase removes a constant
//! fraction). The phase index is a node's **H-partition level**; orienting
//! each edge toward the higher level (ties: higher id) gives an acyclic
//! orientation with out-degree ≤ ⌈(2+ε)α⌉, whose out-edge index splits the
//! edges into that many rooted forests. The paper's Lemma 3.8 runs this on
//! each small bad-set component before Cole–Vishkin.

use arbmis_graph::forest::{forests_from_orientation, RootedForest};
use arbmis_graph::orientation::Orientation;
use arbmis_graph::{ActiveView, Graph};
use std::fmt;

/// Failure of the H-partition: the supplied arboricity bound was wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArboricityTooSmall {
    /// The degree threshold that failed to peel anything.
    pub threshold: usize,
    /// How many nodes remained unpeelable.
    pub stuck: usize,
}

impl fmt::Display for ArboricityTooSmall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "H-partition stuck: {} nodes all have degree > {}; the arboricity bound is too small",
            self.stuck, self.threshold
        )
    }
}

impl std::error::Error for ArboricityTooSmall {}

/// An H-partition of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HPartition {
    /// `level[v]` = peeling phase in which `v` was removed (0-based).
    pub level: Vec<u32>,
    /// Number of phases used.
    pub num_levels: u32,
    /// Degree threshold `⌈(2+ε)·α⌉` used for peeling.
    pub threshold: usize,
    /// CONGEST rounds: one per phase (degree check + announcement).
    pub rounds: u64,
}

/// Computes the H-partition with slack `eps` (the paper's ε; 1.0 gives
/// the classic 3α threshold).
///
/// # Errors
///
/// Returns [`ArboricityTooSmall`] if peeling gets stuck, which certifies
/// that `alpha` underestimates the true arboricity.
///
/// # Panics
///
/// Panics if `alpha == 0` or `eps <= 0`.
pub fn h_partition(g: &Graph, alpha: usize, eps: f64) -> Result<HPartition, ArboricityTooSmall> {
    assert!(alpha >= 1, "alpha must be >= 1");
    assert!(eps > 0.0, "eps must be positive");
    let threshold = ((2.0 + eps) * alpha as f64).ceil() as usize;
    let n = g.n();
    let mut view = ActiveView::new(g);
    let mut level = vec![0u32; n];
    let mut phase = 0u32;
    while view.active_count() > 0 {
        let peel: Vec<usize> = view
            .active_nodes()
            .filter(|&v| view.active_degree(v) <= threshold)
            .collect();
        if peel.is_empty() {
            return Err(ArboricityTooSmall {
                threshold,
                stuck: view.active_count(),
            });
        }
        for &v in &peel {
            level[v] = phase;
            view.deactivate(v);
        }
        phase += 1;
    }
    Ok(HPartition {
        level,
        num_levels: phase,
        threshold,
        rounds: u64::from(phase),
    })
}

impl HPartition {
    /// The acyclic orientation induced by the partition: edges point to
    /// the higher `(level, id)` endpoint. Out-degree ≤ `threshold`.
    pub fn orientation(&self, g: &Graph) -> Orientation {
        assert_eq!(self.level.len(), g.n());
        let n = g.n();
        // Rank nodes by (level, id): position = level * n + id is a strict
        // total order consistent with the peeling.
        let position: Vec<usize> = (0..n).map(|v| self.level[v] as usize * n + v).collect();
        Orientation::from_position(g, &position)
    }
}

/// Full Barenboim–Elkin pipeline: H-partition → orientation → rooted
/// forests. Returns the forests and the rounds spent.
///
/// # Errors
///
/// Propagates [`ArboricityTooSmall`] from [`h_partition`].
///
/// ```
/// use arbmis_graph::gen;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let g = gen::apollonian(200, &mut rng);
/// let (forests, _rounds) = arbmis_core::forest_decomp::forest_decomposition(&g, 3, 1.0).unwrap();
/// assert!(forests.len() <= 9); // ≤ (2+ε)α = 9
/// ```
pub fn forest_decomposition(
    g: &Graph,
    alpha: usize,
    eps: f64,
) -> Result<(Vec<RootedForest>, u64), ArboricityTooSmall> {
    let hp = h_partition(g, alpha, eps)?;
    let o = hp.orientation(g);
    Ok((forests_from_orientation(g, &o), hp.rounds))
}

/// The H-partition as a CONGEST protocol: one round per peeling phase.
/// Nodes with (current) active degree ≤ `threshold` announce their
/// removal; receivers drop them before the next phase. Matches
/// [`h_partition`] level-for-level (asserted by tests).
///
/// If the threshold is below what the graph's arboricity requires, no
/// progress is made and the simulator reports
/// [`arbmis_congest::SimulatorError::RoundLimitExceeded`] — the
/// distributed signature of [`ArboricityTooSmall`].
#[derive(Clone, Copy, Debug)]
pub struct HPartitionProtocol {
    /// Peeling degree threshold `⌈(2+ε)α⌉`.
    pub threshold: usize,
}

/// Per-node state of [`HPartitionProtocol`].
#[derive(Clone, Debug)]
pub struct HPartitionState {
    /// Assigned level (peeling phase), once peeled.
    pub level: Option<u32>,
    /// Neighbors not yet peeled.
    active_degree: usize,
    done: bool,
}

impl arbmis_congest::Protocol for HPartitionProtocol {
    type State = HPartitionState;
    type Msg = bool;

    fn init(&self, node: &arbmis_congest::NodeInfo) -> HPartitionState {
        HPartitionState {
            level: None,
            active_degree: node.degree(),
            done: false,
        }
    }

    fn round(
        &self,
        st: &mut HPartitionState,
        node: &arbmis_congest::NodeInfo,
        inbox: &arbmis_congest::Inbox<bool>,
    ) -> arbmis_congest::Outgoing<bool> {
        if st.done {
            return arbmis_congest::Outgoing::Halt;
        }
        st.active_degree -= inbox.iter().filter(|&(_, &peeled)| peeled).count();
        if st.level.is_some() {
            // Announced last round; finished now.
            st.done = true;
            return arbmis_congest::Outgoing::Halt;
        }
        if st.active_degree <= self.threshold {
            st.level = Some(node.round as u32);
            arbmis_congest::Outgoing::Broadcast(true)
        } else {
            arbmis_congest::Outgoing::Silent
        }
    }

    fn is_done(&self, st: &HPartitionState) -> bool {
        st.done
    }

    /// Above-threshold unpeeled nodes are inert on an empty inbox at any
    /// round — only a neighbor's peel announcement changes their degree —
    /// and `done` nodes' next activation is `Halt` with `is_done` already
    /// true. Peeling therefore costs the engines O(#peeled + messages)
    /// per round, not O(n). (Announced-but-unfinished nodes are *not*
    /// quiescent: their next activation flips `done`.)
    fn is_quiescent(&self, st: &HPartitionState) -> bool {
        st.done || (st.level.is_none() && st.active_degree > self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::{gen, traversal};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn partition_covers_all_nodes_logarithmically() {
        let mut r = rng(1);
        let g = gen::random_ktree(1000, 3, &mut r);
        let hp = h_partition(&g, 3, 1.0).unwrap();
        assert_eq!(hp.level.len(), 1000);
        assert!(hp.num_levels >= 1);
        assert!(
            hp.num_levels <= 30,
            "levels {} should be O(log n)",
            hp.num_levels
        );
        assert_eq!(hp.threshold, 9);
    }

    #[test]
    fn orientation_out_degree_bounded_by_threshold() {
        let mut r = rng(2);
        let g = gen::apollonian(400, &mut r);
        let hp = h_partition(&g, 3, 1.0).unwrap();
        let o = hp.orientation(&g);
        assert!(o.max_out_degree() <= hp.threshold);
        assert!(o.covers(&g));
        assert!(o.is_acyclic());
    }

    #[test]
    fn forests_cover_edges_and_are_acyclic() {
        let mut r = rng(3);
        let g = gen::forest_union(500, 2, &mut r);
        let (forests, rounds) = forest_decomposition(&g, 2, 1.0).unwrap();
        assert!(forests.len() <= 6);
        assert!(rounds >= 1);
        let total: usize = forests.iter().map(|f| f.edge_count()).sum();
        assert_eq!(total, g.m());
        for f in &forests {
            assert!(f.is_acyclic());
            assert!(traversal::is_forest(&f.to_graph()));
        }
    }

    #[test]
    fn wrong_alpha_detected() {
        // K10 has arboricity 5; claiming α = 1 (threshold 3) must fail.
        let g = gen::complete(10);
        let err = h_partition(&g, 1, 1.0).unwrap_err();
        assert_eq!(err.threshold, 3);
        assert_eq!(err.stuck, 10);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn tree_partitions_in_one_or_two_levels() {
        let mut r = rng(4);
        let g = gen::random_tree_prufer(500, &mut r);
        let hp = h_partition(&g, 1, 1.0).unwrap();
        // Threshold 3 peels almost everything immediately on a tree.
        assert!(hp.num_levels <= 6, "levels {}", hp.num_levels);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let hp = h_partition(&g, 1, 1.0).unwrap();
        assert_eq!(hp.num_levels, 0);
        let (forests, _) = forest_decomposition(&g, 1, 1.0).unwrap();
        assert!(forests.is_empty());
    }

    #[test]
    fn protocol_matches_centralized_levels() {
        let mut r = rng(6);
        for g in [
            gen::random_ktree(200, 3, &mut r),
            gen::apollonian(150, &mut r),
            gen::forest_union(250, 2, &mut r),
        ] {
            let hp = h_partition(&g, 3, 1.0).unwrap();
            let proto = HPartitionProtocol {
                threshold: hp.threshold,
            };
            let run = arbmis_congest::Simulator::new(&g, 0)
                .run(&proto, 10_000)
                .unwrap();
            for v in 0..g.n() {
                assert_eq!(
                    run.states[v].level,
                    Some(hp.level[v]),
                    "node {v} level mismatch on {g}"
                );
            }
            assert!(run.metrics.within_budget());
        }
    }

    #[test]
    fn protocol_stalls_when_threshold_too_small() {
        let g = gen::complete(10);
        let proto = HPartitionProtocol { threshold: 3 };
        let err = arbmis_congest::Simulator::new(&g, 0)
            .run(&proto, 50)
            .unwrap_err();
        assert!(matches!(
            err,
            arbmis_congest::SimulatorError::RoundLimitExceeded { .. }
        ));
    }

    #[test]
    fn eps_tradeoff() {
        let mut r = rng(5);
        let g = gen::random_ktree(800, 2, &mut r);
        let tight = h_partition(&g, 2, 0.5).unwrap();
        let loose = h_partition(&g, 2, 2.0).unwrap();
        // Looser threshold peels faster (fewer levels), pays more forests.
        assert!(loose.num_levels <= tight.num_levels);
        assert!(loose.threshold > tight.threshold);
    }
}
