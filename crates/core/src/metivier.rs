//! The Métivier–Robson–Saheb-Djahromi–Zemmari priority MIS algorithm.
//!
//! Each iteration every active node draws a priority uniformly at random
//! and joins the MIS if its priority beats every active neighbor's; MIS
//! nodes and their neighbors then leave. O(log n) iterations whp. This is
//! the inner loop ("step 2(a)") of the paper's Algorithm 1, there with a
//! degree cutoff; here in its classic uncut form as a baseline.
//!
//! Priorities are 64-bit with node-id tie-break, so every iteration each
//! active component loses at least its maximum-priority node — termination
//! is deterministic in ≤ n iterations.

use crate::result::MisRun;
use arbmis_congest::rng;
use arbmis_graph::{ActiveView, Graph, NodeId};

/// Randomness tag for priority draws (shared with the CONGEST protocol so
/// both executions draw identical priorities).
pub const TAG_PRIORITY: u64 = 0x4d45_5449; // "METI"

/// CONGEST rounds per iteration: send priority, send join bit, send exit
/// bit.
pub const ROUNDS_PER_ITERATION: u64 = 3;

/// A stopped-early execution: the state after a fixed number of
/// iterations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialRun {
    /// MIS membership so far.
    pub in_mis: Vec<bool>,
    /// Nodes still undecided.
    pub active: Vec<bool>,
    /// Iterations actually executed (may be fewer if the graph emptied).
    pub iterations: u64,
}

/// The priority of node `v` in iteration `iter` of an `n`-node network:
/// `(random, id)` compared lexicographically. Random parts are
/// [`rng::priority_bits`]`(n)` wide so the CONGEST protocol can transmit
/// them within the message budget; the id tie-break makes comparisons
/// strict regardless.
#[inline]
pub fn priority(seed: u64, v: NodeId, iter: u64, n: usize) -> (u64, NodeId) {
    (rng::draw_priority(seed, v, iter, TAG_PRIORITY, n), v)
}

/// Runs one iteration on `view`: computes joiners, deactivates them and
/// their neighbors, records them in `in_mis`. Returns how many joined.
///
/// `prio` is caller-owned scratch of length `n`: each active node's draw
/// is hashed once per iteration and compared as the tuple `(prio[v], v)`
/// — exactly [`priority`], so joiner sets are identical to the naive
/// per-edge re-draw, at O(active) hashes instead of O(Σ deg).
pub(crate) fn step(
    view: &mut ActiveView<'_>,
    in_mis: &mut [bool],
    seed: u64,
    iter: u64,
    prio: &mut [u64],
) -> usize {
    let n = view.graph().n();
    for v in view.active_nodes() {
        prio[v] = rng::draw_priority(seed, v, iter, TAG_PRIORITY, n);
    }
    let joiners: Vec<NodeId> = view
        .active_nodes()
        .filter(|&v| {
            view.active_neighbors(v)
                .all(|u| (prio[v], v) > (prio[u], u))
        })
        .collect();
    for &v in &joiners {
        in_mis[v] = true;
        let nbrs: Vec<NodeId> = view.active_neighbors(v).collect();
        view.deactivate(v);
        for u in nbrs {
            view.deactivate(u);
        }
    }
    joiners.len()
}

/// Runs to completion.
///
/// ```
/// use arbmis_graph::gen;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = gen::random_tree_prufer(200, &mut rng);
/// let run = arbmis_core::metivier::run(&g, 7);
/// assert!(arbmis_core::check_mis(&g, &run.in_mis).is_ok());
/// ```
pub fn run(g: &Graph, seed: u64) -> MisRun {
    let mut view = ActiveView::new(g);
    let mut in_mis = vec![false; g.n()];
    let mut prio = vec![0u64; g.n()];
    let mut iter = 0u64;
    while view.active_count() > 0 {
        step(&mut view, &mut in_mis, seed, iter, &mut prio);
        iter += 1;
    }
    MisRun::new(in_mis, iter, iter * ROUNDS_PER_ITERATION)
}

/// Runs to completion on the subgraph induced by `region`: only region
/// nodes compete, and the result is an MIS *of the region* (see
/// [`crate::verify::is_mis_of_region`]). Used by the ArbMIS pipeline to
/// finish `V_lo`/`V_hi`.
pub fn run_region(g: &Graph, region: &[bool], seed: u64) -> MisRun {
    let mut view = ActiveView::from_mask(g, region);
    let mut in_mis = vec![false; g.n()];
    let mut prio = vec![0u64; g.n()];
    let mut iter = 0u64;
    while view.active_count() > 0 {
        step(&mut view, &mut in_mis, seed, iter, &mut prio);
        iter += 1;
    }
    MisRun::new(in_mis, iter, iter * ROUNDS_PER_ITERATION)
}

/// Runs at most `iterations` iterations and returns the partial state —
/// the "stop after shattering" usage.
pub fn run_partial(g: &Graph, seed: u64, iterations: u64) -> PartialRun {
    let mut view = ActiveView::new(g);
    let mut in_mis = vec![false; g.n()];
    let mut prio = vec![0u64; g.n()];
    let mut iter = 0u64;
    while iter < iterations && view.active_count() > 0 {
        step(&mut view, &mut in_mis, seed, iter, &mut prio);
        iter += 1;
    }
    PartialRun {
        in_mis,
        active: view.mask().to_vec(),
        iterations: iter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_mis, is_independent};
    use arbmis_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn produces_mis_on_families() {
        let mut r = rng(1);
        let graphs = vec![
            gen::path(50),
            gen::cycle(51),
            gen::complete(12),
            gen::star(30),
            gen::random_tree_prufer(300, &mut r),
            gen::gnp(200, 0.05, &mut r),
            gen::random_ktree(150, 3, &mut r),
            arbmis_graph::Graph::empty(10),
        ];
        for g in graphs {
            let run = run(&g, 42);
            assert!(check_mis(&g, &run.in_mis).is_ok(), "failed on {g}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r = rng(2);
        let g = gen::gnp(150, 0.1, &mut r);
        assert_eq!(run(&g, 5), run(&g, 5));
        // Different seeds usually differ.
        assert_ne!(run(&g, 5).in_mis, run(&g, 6).in_mis);
    }

    #[test]
    fn logarithmic_iterations_on_random_graph() {
        let mut r = rng(3);
        let g = gen::gnp(2000, 0.01, &mut r);
        let run = run(&g, 9);
        assert!(
            run.iterations <= 60,
            "expected O(log n) iterations, got {}",
            run.iterations
        );
        assert_eq!(run.rounds, run.iterations * ROUNDS_PER_ITERATION);
    }

    #[test]
    fn partial_run_is_independent_prefix() {
        let mut r = rng(4);
        let g = gen::gnp(300, 0.05, &mut r);
        let p = run_partial(&g, 11, 2);
        assert!(is_independent(&g, &p.in_mis));
        assert_eq!(p.iterations, 2);
        // Active nodes have no MIS neighbor and are not in the MIS.
        for v in g.nodes() {
            if p.active[v] {
                assert!(!p.in_mis[v]);
                assert!(g.neighbors(v).iter().all(|&u| !p.in_mis[u]));
            }
        }
        // Completing from scratch with same seed extends the prefix.
        let full = run(&g, 11);
        for v in g.nodes() {
            if p.in_mis[v] {
                assert!(full.in_mis[v], "node {v} joined early but not in full run");
            }
        }
    }

    #[test]
    fn complete_graph_single_winner_per_iteration() {
        let g = gen::complete(20);
        let run = run(&g, 1);
        assert_eq!(run.iterations, 1);
        assert_eq!(run.size(), 1);
    }

    #[test]
    fn isolated_nodes_join_immediately() {
        let g = arbmis_graph::Graph::empty(5);
        let run = run(&g, 3);
        assert_eq!(run.size(), 5);
        assert_eq!(run.iterations, 1);
    }
}
