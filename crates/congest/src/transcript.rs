//! Execution transcripts: per-round message traces for debugging and
//! regression testing.
//!
//! A [`Transcript`] records, for every round, who sent how many bits to
//! whom. It is collected by [`crate::Simulator::run_traced`] and supports
//! structural queries (per-round message counts, per-node send totals,
//! quiet detection) plus a compact digest for golden-transcript
//! regression tests: two executions of the same seeded protocol must have
//! identical digests.

use arbmis_graph::NodeId;
use serde::{Deserialize, Serialize};

/// One delivered message: `(round, from, to, bits)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Round in which the message was sent.
    pub round: u64,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Encoded size in bits.
    pub bits: usize,
}

/// A full message trace of one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transcript {
    entries: Vec<TraceEntry>,
}

impl Transcript {
    /// Creates an empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Records a message.
    pub(crate) fn record(&mut self, round: u64, from: NodeId, to: NodeId, bits: usize) {
        self.entries.push(TraceEntry {
            round,
            from,
            to,
            bits,
        });
    }

    /// All entries, in send order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Total messages recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was sent.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Messages sent in a given round.
    pub fn messages_in_round(&self, round: u64) -> usize {
        self.entries.iter().filter(|e| e.round == round).count()
    }

    /// Per-round message counts up to the last active round.
    pub fn round_profile(&self) -> Vec<usize> {
        let last = self.entries.iter().map(|e| e.round).max();
        match last {
            None => Vec::new(),
            Some(last) => {
                let mut counts = vec![0usize; last as usize + 1];
                for e in &self.entries {
                    counts[e.round as usize] += 1;
                }
                counts
            }
        }
    }

    /// Total messages sent by `v`.
    pub fn sent_by(&self, v: NodeId) -> usize {
        self.entries.iter().filter(|e| e.from == v).count()
    }

    /// Rounds in which no message was sent (within the active span).
    pub fn quiet_rounds(&self) -> Vec<u64> {
        self.round_profile()
            .iter()
            .enumerate()
            .filter_map(|(r, &c)| (c == 0).then_some(r as u64))
            .collect()
    }

    /// An order-sensitive 64-bit digest of the whole trace. Two
    /// executions of the same protocol/graph/seed must produce the same
    /// digest; use as a golden value in regression tests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for e in &self.entries {
            mix(e.round);
            mix(e.from as u64);
            mix(e.to as u64);
            mix(e.bits as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transcript {
        let mut t = Transcript::new();
        t.record(0, 0, 1, 8);
        t.record(0, 1, 0, 8);
        t.record(2, 0, 1, 16);
        t
    }

    #[test]
    fn counting_queries() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.messages_in_round(0), 2);
        assert_eq!(t.messages_in_round(1), 0);
        assert_eq!(t.round_profile(), vec![2, 0, 1]);
        assert_eq!(t.sent_by(0), 2);
        assert_eq!(t.quiet_rounds(), vec![1]);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = sample();
        let mut b = Transcript::new();
        b.record(0, 1, 0, 8);
        b.record(0, 0, 1, 8);
        b.record(2, 0, 1, 16);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), sample().digest());
    }

    #[test]
    fn empty_transcript() {
        let t = Transcript::new();
        assert!(t.is_empty());
        assert!(t.round_profile().is_empty());
        assert!(t.quiet_rounds().is_empty());
    }
}
