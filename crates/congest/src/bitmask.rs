//! Word-packed boolean masks over node ids.
//!
//! A [`BitMask`] stores one bit per node in `u64` words: membership
//! tests, sets, and clears are O(1) single-word operations, iteration
//! walks set bits in ascending order via `trailing_zeros` (64 nodes per
//! word), and bulk fill/clear are `memset`-speed word writes. The flat
//! MIS engine keeps its `active` / `marked` / `in_mis` / `bad` masks in
//! this form so a neighbor-flag probe touches 1 bit of a compact array
//! (n/8 bytes) instead of 1 byte of an n-byte array — at 10⁷ nodes the
//! whole mask fits in L2 where the byte array spilled to DRAM.
//!
//! The unused tail bits of the last word are always zero; every mutator
//! maintains this, so derived equality and [`count_ones`] are exact.
//!
//! [`count_ones`]: BitMask::count_ones

use arbmis_graph::NodeId;

/// A fixed-capacity packed bitset over `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMask {
    n: usize,
    /// Bit `v % 64` of `words[v / 64]` ⇔ `v` is set.
    words: Vec<u64>,
}

impl BitMask {
    /// An all-zero mask over `0..n`.
    pub fn new(n: usize) -> Self {
        BitMask {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Packs a `&[bool]` mask.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut m = BitMask::new(bools.len());
        for (v, &b) in bools.iter().enumerate() {
            if b {
                m.set(v);
            }
        }
        m
    }

    /// Unpacks to a `&[bool]`-style mask of length `n`.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.n).map(|v| self.test(v)).collect()
    }

    /// Capacity (number of addressable bits).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether bit `v` is set.
    #[inline]
    pub fn test(&self, v: NodeId) -> bool {
        self.words[v >> 6] & (1u64 << (v & 63)) != 0
    }

    /// Sets bit `v` (idempotent).
    #[inline]
    pub fn set(&mut self, v: NodeId) {
        self.words[v >> 6] |= 1u64 << (v & 63);
    }

    /// Clears bit `v` (idempotent).
    #[inline]
    pub fn clear(&mut self, v: NodeId) {
        self.words[v >> 6] &= !(1u64 << (v & 63));
    }

    /// Sets every bit in `0..n` (tail bits stay zero).
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        let tail = self.n & 63;
        if tail != 0 {
            *self.words.last_mut().expect("tail implies a word") = (1u64 << tail) - 1;
        }
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (bit `v % 64` of word `v / 64`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable backing words, for word-aligned bulk writers (the flat
    /// engine's parallel sweep fills disjoint word ranges). Callers must
    /// keep the tail bits of the last word zero.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Ascending iterator over set bits.
    pub fn iter(&self) -> SetBits<'_> {
        self.iter_words(0, self.words.len())
    }

    /// Ascending iterator over set bits in the word range `wlo..whi`
    /// (bit ids are absolute: word `w` holds bits `64w..64w + 64`).
    pub fn iter_words(&self, wlo: usize, whi: usize) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            widx: wlo,
            whi: whi.min(self.words.len()),
            bits: 0,
        }
    }
}

impl PartialEq<[bool]> for BitMask {
    fn eq(&self, other: &[bool]) -> bool {
        self.n == other.len() && (0..self.n).all(|v| self.test(v) == other[v])
    }
}

impl PartialEq<Vec<bool>> for BitMask {
    fn eq(&self, other: &Vec<bool>) -> bool {
        self == &other[..]
    }
}

/// Ascending iterator over the set bits of a [`BitMask`] word range.
/// Created by [`BitMask::iter`] / [`BitMask::iter_words`].
pub struct SetBits<'a> {
    words: &'a [u64],
    /// Next word to load once `bits` is exhausted.
    widx: usize,
    /// One past the last word to visit.
    whi: usize,
    /// Unconsumed bits of word `widx - 1`.
    bits: u64,
}

impl Iterator for SetBits<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        while self.bits == 0 {
            if self.widx >= self.whi {
                return None;
            }
            self.bits = self.words[self.widx];
            self.widx += 1;
        }
        let v = ((self.widx - 1) << 6) + self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_test_roundtrip() {
        let mut m = BitMask::new(200);
        for v in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!m.test(v));
            m.set(v);
            assert!(m.test(v));
        }
        m.set(64); // idempotent
        assert_eq!(m.count_ones(), 8);
        m.clear(64);
        m.clear(64); // idempotent
        assert!(!m.test(64));
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![0, 1, 63, 65, 127, 128, 199]
        );
    }

    #[test]
    fn set_all_masks_the_tail() {
        for n in [0, 1, 63, 64, 65, 130] {
            let mut m = BitMask::new(n);
            m.set_all();
            assert_eq!(m.count_ones(), n, "n={n}");
            assert_eq!(m.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
            let full = BitMask::from_bools(&vec![true; n]);
            assert_eq!(m, full, "set_all must equal bit-by-bit fill at n={n}");
            m.clear_all();
            assert_eq!(m.count_ones(), 0);
        }
    }

    #[test]
    fn bools_roundtrip_and_slice_equality() {
        let bools: Vec<bool> = (0..150).map(|v| v % 3 == 0 || v % 7 == 0).collect();
        let m = BitMask::from_bools(&bools);
        assert_eq!(m.to_bools(), bools);
        assert_eq!(m, bools[..]);
        assert_eq!(m, bools);
        let mut other = bools.clone();
        other[149] = !other[149];
        assert!(m != other[..]);
        assert!(m != bools[..149]); // length mismatch
    }

    #[test]
    fn word_range_iteration() {
        let mut m = BitMask::new(300);
        for v in [3, 63, 64, 100, 191, 192, 299] {
            m.set(v);
        }
        // Words 1..3 hold bits 64..192.
        assert_eq!(m.iter_words(1, 3).collect::<Vec<_>>(), vec![64, 100, 191]);
        assert_eq!(m.iter_words(0, 1).collect::<Vec<_>>(), vec![3, 63]);
        assert_eq!(m.iter_words(3, 5).collect::<Vec<_>>(), vec![192, 299]);
        assert_eq!(m.iter_words(2, 2).count(), 0);
        // Out-of-range upper bound clamps.
        assert_eq!(m.iter_words(4, 99).collect::<Vec<_>>(), vec![299]);
    }

    #[test]
    fn empty_mask() {
        let m = BitMask::new(0);
        assert_eq!(m.n(), 0);
        assert_eq!(m.count_ones(), 0);
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.to_bools(), Vec::<bool>::new());
    }
}
