//! Classic CONGEST building blocks: leader election by max-flooding, BFS
//! tree construction, and tree converge-cast aggregation.
//!
//! These are the textbook primitives larger protocols assume; they double
//! as non-trivial exercises of the simulator (unicast routing, per-node
//! termination, bit accounting) beyond the MIS protocols in
//! `arbmis-core`.

use crate::protocol::{Inbox, NodeInfo, Outgoing, Protocol};
use arbmis_graph::NodeId;

// ------------------------------------------------------------ LeaderElect

/// Leader election by flooding the maximum id for `rounds` rounds (any
/// upper bound on the diameter; `n` always works). After that every node
/// in a connected component agrees on the component's maximum id.
#[derive(Clone, Copy, Debug)]
pub struct LeaderElect {
    /// Number of flooding rounds (≥ diameter for correctness).
    pub rounds: u64,
}

/// State of [`LeaderElect`].
#[derive(Clone, Debug)]
pub struct LeaderState {
    /// Highest id seen so far (the elected leader at termination).
    pub leader: u64,
    /// Whether flooding has finished.
    pub done: bool,
}

impl Protocol for LeaderElect {
    type State = LeaderState;
    type Msg = u64;

    fn init(&self, node: &NodeInfo) -> LeaderState {
        LeaderState {
            leader: node.id as u64,
            done: false,
        }
    }

    fn round(&self, st: &mut LeaderState, node: &NodeInfo, inbox: &Inbox<u64>) -> Outgoing<u64> {
        let before = st.leader;
        for (_, &l) in inbox {
            st.leader = st.leader.max(l);
        }
        if node.round >= self.rounds {
            st.done = true;
            return Outgoing::Halt;
        }
        // Only re-broadcast on news (or in round 0); idle rounds are free.
        if node.round == 0 || st.leader != before {
            Outgoing::Broadcast(st.leader)
        } else {
            Outgoing::Silent
        }
    }

    fn is_done(&self, st: &LeaderState) -> bool {
        st.done
    }
}

// ---------------------------------------------------------------- BfsTree

/// Builds a BFS tree from `root`: every reachable node learns its BFS
/// distance and parent. Nodes terminate `horizon` rounds after start
/// (`horizon ≥ eccentricity(root) + 1`; `n` always works).
#[derive(Clone, Copy, Debug)]
pub struct BfsTree {
    /// The root node id.
    pub root: NodeId,
    /// Termination horizon in rounds.
    pub horizon: u64,
}

/// State of [`BfsTree`].
#[derive(Clone, Debug)]
pub struct BfsState {
    /// BFS distance from the root (`None` = unreached).
    pub distance: Option<u64>,
    /// BFS parent (`None` for the root and unreached nodes).
    pub parent: Option<NodeId>,
    done: bool,
}

impl Protocol for BfsTree {
    type State = BfsState;
    type Msg = u64;

    fn init(&self, node: &NodeInfo) -> BfsState {
        BfsState {
            distance: (node.id == self.root).then_some(0),
            parent: None,
            done: false,
        }
    }

    fn round(&self, st: &mut BfsState, node: &NodeInfo, inbox: &Inbox<u64>) -> Outgoing<u64> {
        if node.round >= self.horizon {
            st.done = true;
            return Outgoing::Halt;
        }
        // Adopt the first (smallest-id sender, since inboxes are sorted)
        // announcement heard.
        if st.distance.is_none() {
            if let Some((sender, &d)) = inbox.first() {
                st.distance = Some(d + 1);
                st.parent = Some(sender);
                return Outgoing::Broadcast(d + 1);
            }
            return Outgoing::Silent;
        }
        if node.round == 0 && node.id == self.root {
            return Outgoing::Broadcast(0);
        }
        Outgoing::Silent
    }

    fn is_done(&self, st: &BfsState) -> bool {
        st.done
    }
}

// ----------------------------------------------------------- ConvergeCast

/// Sums node values up a rooted tree (converge-cast): each node waits for
/// all children, then sends its subtree sum to its parent. The root ends
/// with the global sum in `O(depth)` rounds. The tree is given as parent
/// pointers (e.g. from [`BfsTree`]); tree edges must exist in the graph.
#[derive(Clone, Debug)]
pub struct ConvergeCast {
    /// `parent[v]` for every node (`None` = root of its tree).
    pub parent: Vec<Option<NodeId>>,
    /// `children_count[v]` = number of tree children of `v`.
    pub children_count: Vec<usize>,
    /// The value each node contributes.
    pub values: Vec<u64>,
}

impl ConvergeCast {
    /// Builds the protocol from parent pointers and per-node values.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn new(parent: Vec<Option<NodeId>>, values: Vec<u64>) -> Self {
        assert_eq!(parent.len(), values.len());
        let mut children_count = vec![0usize; parent.len()];
        for p in parent.iter().flatten() {
            children_count[*p] += 1;
        }
        ConvergeCast {
            parent,
            children_count,
            values,
        }
    }
}

/// State of [`ConvergeCast`].
#[derive(Clone, Debug)]
pub struct CastState {
    /// Accumulated subtree sum.
    pub sum: u64,
    /// Children still to report.
    pub pending: usize,
    /// Whether this node has reported to its parent (roots: finished).
    pub done: bool,
}

impl Protocol for ConvergeCast {
    type State = CastState;
    type Msg = u64;

    fn init(&self, node: &NodeInfo) -> CastState {
        CastState {
            sum: self.values[node.id],
            pending: self.children_count[node.id],
            done: false,
        }
    }

    fn round(&self, st: &mut CastState, node: &NodeInfo, inbox: &Inbox<u64>) -> Outgoing<u64> {
        if st.done {
            return Outgoing::Halt;
        }
        for (_, &s) in inbox {
            st.sum += s;
            st.pending -= 1;
        }
        if st.pending == 0 {
            st.done = true;
            match self.parent[node.id] {
                Some(p) => Outgoing::Unicast(vec![(p, st.sum)]),
                None => Outgoing::Silent,
            }
        } else {
            Outgoing::Silent
        }
    }

    fn is_done(&self, st: &CastState) -> bool {
        st.done
    }

    /// A node still waiting for children (`pending > 0`) is inert on an
    /// empty inbox at every round — only a child's report changes it — and
    /// a `done` node's next activation is `Halt` with `is_done` already
    /// true (unobservable if skipped). So the engines only step the wave
    /// front: per-round cost is O(1) on a path, not O(n).
    fn is_quiescent(&self, st: &CastState) -> bool {
        st.done || st.pending > 0
    }
}

/// A compact broadcast-with-echo primitive built from [`BfsTree`] +
/// [`ConvergeCast`] run back to back (two simulator invocations); returns
/// `(distances, parents, total)` where `total` is the sum of `values`
/// over the root's component.
///
/// # Errors
///
/// Propagates simulator errors.
/// Result of [`bfs_then_sum`]: per-node distances, per-node BFS parents,
/// and the component total.
pub type BfsSumResult = (Vec<Option<u64>>, Vec<Option<NodeId>>, u64);

/// Runs [`BfsTree`] from `root`, then [`ConvergeCast`] of `values` up the
/// resulting tree. Nodes outside the root's component contribute 0.
pub fn bfs_then_sum(
    g: &arbmis_graph::Graph,
    root: NodeId,
    values: &[u64],
    seed: u64,
) -> Result<BfsSumResult, crate::SimulatorError> {
    let horizon = g.n() as u64 + 1;
    let bfs = crate::Simulator::new(g, seed).run(&BfsTree { root, horizon }, horizon + 1)?;
    let parent: Vec<Option<NodeId>> = bfs.states.iter().map(|s| s.parent).collect();
    let distance: Vec<Option<u64>> = bfs.states.iter().map(|s| s.distance).collect();
    // Nodes outside the component keep value 0 contributions: mask them.
    let masked: Vec<u64> = values
        .iter()
        .enumerate()
        .map(|(v, &x)| if distance[v].is_some() { x } else { 0 })
        .collect();
    let cast = ConvergeCast::new(parent.clone(), masked);
    let run = crate::Simulator::new(g, seed).run(&cast, horizon + 2)?;
    Ok((distance, parent, run.states[root].sum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use arbmis_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn leader_election_elects_max() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gen::gnp(60, 0.1, &mut rng);
        let run = Simulator::new(&g, 1)
            .run(&LeaderElect { rounds: 60 }, 200)
            .unwrap();
        let comps = arbmis_graph::traversal::connected_components(&g);
        for v in 0..g.n() {
            let expected = (0..g.n())
                .filter(|&u| comps.label(u) == comps.label(v))
                .max()
                .unwrap() as u64;
            assert_eq!(run.states[v].leader, expected, "node {v}");
        }
    }

    #[test]
    fn leader_election_is_message_frugal() {
        // Silent-on-no-news keeps messages near O(m·diameter_of_change).
        let g = gen::path(50);
        let run = Simulator::new(&g, 1)
            .run(&LeaderElect { rounds: 55 }, 200)
            .unwrap();
        // A naive re-broadcast-every-round would send 55·2·49 ≈ 5390.
        assert!(
            run.metrics.messages < 3000,
            "messages {}",
            run.metrics.messages
        );
    }

    #[test]
    fn bfs_tree_distances_match_centralized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let g = gen::random_tree_prufer(80, &mut rng);
        let run = Simulator::new(&g, 1)
            .run(
                &BfsTree {
                    root: 0,
                    horizon: 90,
                },
                200,
            )
            .unwrap();
        let expect = arbmis_graph::traversal::bfs_distances(&g, 0);
        for (v, (st, &d)) in run.states.iter().zip(&expect).enumerate() {
            assert_eq!(st.distance, Some(d as u64), "node {v}");
        }
        // Parent pointers decrease distance by exactly 1.
        for v in 1..g.n() {
            let p = run.states[v].parent.unwrap();
            assert_eq!(expect[p] + 1, expect[v]);
        }
    }

    #[test]
    fn bfs_unreached_nodes() {
        let g = arbmis_graph::Graph::from_edges(4, &[(0, 1)]);
        let run = Simulator::new(&g, 1)
            .run(
                &BfsTree {
                    root: 0,
                    horizon: 6,
                },
                20,
            )
            .unwrap();
        assert_eq!(run.states[1].distance, Some(1));
        assert_eq!(run.states[2].distance, None);
        assert_eq!(run.states[3].parent, None);
    }

    #[test]
    fn converge_cast_sums_tree() {
        let g = gen::binary_tree(15);
        // Parent pointers of the complete binary tree.
        let parent: Vec<Option<usize>> = (0..15)
            .map(|v| if v == 0 { None } else { Some((v - 1) / 2) })
            .collect();
        let values: Vec<u64> = (0..15).map(|v| v as u64 + 1).collect();
        let cast = ConvergeCast::new(parent, values);
        let run = Simulator::new(&g, 1).run(&cast, 50).unwrap();
        assert_eq!(run.states[0].sum, (1..=15).sum::<u64>());
        // Leaf-to-root latency = depth.
        assert!(run.metrics.rounds <= 6);
    }

    #[test]
    fn bfs_then_sum_pipeline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = gen::forest_union(60, 2, &mut rng);
        let values: Vec<u64> = (0..60).map(|v| v as u64).collect();
        let (dist, parent, total) = bfs_then_sum(&g, 0, &values, 1).unwrap();
        let comps = arbmis_graph::traversal::connected_components(&g);
        let expect: u64 = (0..60)
            .filter(|&v| comps.label(v) == comps.label(0))
            .map(|v| v as u64)
            .sum();
        assert_eq!(total, expect);
        assert_eq!(dist[0], Some(0));
        assert_eq!(parent[0], None);
    }
}
