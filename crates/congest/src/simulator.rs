//! The round-driving engine.

use crate::message::Message;
use crate::metrics::Metrics;
use crate::protocol::{Inbox, NodeInfo, Outgoing, Protocol};
use arbmis_graph::{Graph, NodeId};
use std::fmt;

/// Errors a simulation can end with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulatorError {
    /// The protocol did not terminate within the round limit.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: u64,
        /// How many nodes were still not done.
        pending: usize,
    },
    /// A message exceeded the CONGEST bandwidth budget.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Offending message size in bits.
        bits: usize,
        /// The enforced budget in bits.
        budget: usize,
    },
    /// A node unicast to a non-neighbor.
    NotANeighbor {
        /// Sending node.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
}

impl fmt::Display for SimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatorError::RoundLimitExceeded { limit, pending } => {
                write!(f, "round limit {limit} exceeded with {pending} nodes pending")
            }
            SimulatorError::BandwidthExceeded { from, to, bits, budget } => write!(
                f,
                "message {from}->{to} of {bits} bits exceeds budget {budget} bits"
            ),
            SimulatorError::NotANeighbor { from, to } => {
                write!(f, "node {from} unicast to non-neighbor {to}")
            }
        }
    }
}

impl std::error::Error for SimulatorError {}

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct SimulatorRun<S> {
    /// Final per-node states, indexed by node id.
    pub states: Vec<S>,
    /// Round/message/bit counters.
    pub metrics: Metrics,
}

/// Drives a [`Protocol`] over a [`Graph`] in synchronous rounds.
///
/// The CONGEST bandwidth budget defaults to `16 · ⌈log₂ n⌉` bits per
/// message (a generous but honest `O(log n)`; our encodings are byte
/// granular, so a handful of log-sized fields fit). Use
/// [`with_bandwidth_factor`](Simulator::with_bandwidth_factor) or
/// [`without_budget`](Simulator::without_budget) to adjust.
#[derive(Clone, Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    seed: u64,
    budget_bits: Option<usize>,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over `graph` with master randomness `seed`.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        let logn = (graph.n().max(2) as f64).log2().ceil() as usize;
        Simulator {
            graph,
            seed,
            budget_bits: Some(16 * logn.max(1)),
        }
    }

    /// Overrides the per-message budget to `factor · ⌈log₂ n⌉` bits.
    pub fn with_bandwidth_factor(mut self, factor: usize) -> Self {
        let logn = (self.graph.n().max(2) as f64).log2().ceil() as usize;
        self.budget_bits = Some(factor * logn.max(1));
        self
    }

    /// Disables bandwidth enforcement (LOCAL-model behaviour).
    pub fn without_budget(mut self) -> Self {
        self.budget_bits = None;
        self
    }

    /// The enforced per-message budget in bits, if any.
    pub fn budget_bits(&self) -> Option<usize> {
        self.budget_bits
    }

    /// Runs `protocol` until every node is done (or has halted), up to
    /// `max_rounds` rounds.
    ///
    /// # Errors
    ///
    /// [`SimulatorError::RoundLimitExceeded`] if termination is not
    /// reached; [`SimulatorError::BandwidthExceeded`] /
    /// [`SimulatorError::NotANeighbor`] on protocol misbehaviour.
    pub fn run<P: Protocol>(
        &self,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<SimulatorRun<P::State>, SimulatorError> {
        self.run_impl(protocol, max_rounds, None)
    }

    /// Like [`run`](Self::run), but additionally records a full
    /// per-message [`crate::transcript::Transcript`] (who sent how many
    /// bits to whom, each round).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_traced<P: Protocol>(
        &self,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<(SimulatorRun<P::State>, crate::transcript::Transcript), SimulatorError> {
        let mut transcript = crate::transcript::Transcript::new();
        let run = self.run_impl(protocol, max_rounds, Some(&mut transcript))?;
        Ok((run, transcript))
    }

    fn run_impl<P: Protocol>(
        &self,
        protocol: &P,
        max_rounds: u64,
        mut transcript: Option<&mut crate::transcript::Transcript>,
    ) -> Result<SimulatorRun<P::State>, SimulatorError> {
        let g = self.graph;
        let n = g.n();
        let mut metrics = Metrics {
            budget_bits: self.budget_bits,
            ..Metrics::default()
        };

        let mut states: Vec<P::State> = (0..n)
            .map(|v| {
                let info = NodeInfo {
                    id: v,
                    n,
                    neighbors: g.neighbors(v),
                    round: 0,
                    seed: self.seed,
                };
                protocol.init(&info)
            })
            .collect();

        let mut halted = vec![false; n];
        let mut inboxes: Vec<Inbox<P::Msg>> = vec![Vec::new(); n];
        let mut next_inboxes: Vec<Inbox<P::Msg>> = vec![Vec::new(); n];

        for round in 0..max_rounds {
            if (0..n).all(|v| protocol.is_done(&states[v]) || halted[v]) {
                metrics.rounds = round;
                return Ok(SimulatorRun { states, metrics });
            }
            for v in 0..n {
                if halted[v] {
                    continue;
                }
                let info = NodeInfo {
                    id: v,
                    n,
                    neighbors: g.neighbors(v),
                    round,
                    seed: self.seed,
                };
                let out = protocol.round(&mut states[v], &info, &inboxes[v]);
                match out {
                    Outgoing::Silent => {}
                    Outgoing::Halt => halted[v] = true,
                    Outgoing::Broadcast(msg) => {
                        let bits = msg.bit_size();
                        for &u in g.neighbors(v) {
                            self.check_bits(v, u, bits)?;
                            metrics.record_message(bits);
                            if let Some(t) = transcript.as_deref_mut() {
                                t.record(round, v, u, bits);
                            }
                            next_inboxes[u].push((v, msg.clone()));
                        }
                    }
                    Outgoing::Unicast(list) => {
                        for (u, msg) in list {
                            if !g.has_edge(v, u) {
                                return Err(SimulatorError::NotANeighbor { from: v, to: u });
                            }
                            let bits = msg.bit_size();
                            self.check_bits(v, u, bits)?;
                            metrics.record_message(bits);
                            if let Some(t) = transcript.as_deref_mut() {
                                t.record(round, v, u, bits);
                            }
                            next_inboxes[u].push((v, msg));
                        }
                    }
                }
            }
            for v in 0..n {
                inboxes[v].clear();
                std::mem::swap(&mut inboxes[v], &mut next_inboxes[v]);
                // Deliver sorted by sender for determinism.
                inboxes[v].sort_by_key(|&(s, _)| s);
            }
        }

        if (0..n).all(|v| protocol.is_done(&states[v]) || halted[v]) {
            metrics.rounds = max_rounds;
            return Ok(SimulatorRun { states, metrics });
        }
        let pending = (0..n)
            .filter(|&v| !protocol.is_done(&states[v]) && !halted[v])
            .count();
        Err(SimulatorError::RoundLimitExceeded {
            limit: max_rounds,
            pending,
        })
    }

    fn check_bits(&self, from: NodeId, to: NodeId, bits: usize) -> Result<(), SimulatorError> {
        if let Some(budget) = self.budget_bits {
            if bits > budget {
                return Err(SimulatorError::BandwidthExceeded {
                    from,
                    to,
                    bits,
                    budget,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::gen;

    /// Each node floods the max id it has seen; terminates after `k`
    /// rounds (enough on a path of diameter < k).
    struct FloodMax {
        rounds: u64,
    }

    #[derive(Clone, Debug)]
    struct FloodState {
        best: u64,
        done: bool,
    }

    impl Protocol for FloodMax {
        type State = FloodState;
        type Msg = u64;

        fn init(&self, node: &NodeInfo) -> FloodState {
            FloodState {
                best: node.id as u64,
                done: false,
            }
        }

        fn round(
            &self,
            state: &mut FloodState,
            node: &NodeInfo,
            inbox: &Inbox<u64>,
        ) -> Outgoing<u64> {
            for &(_, b) in inbox {
                state.best = state.best.max(b);
            }
            if node.round >= self.rounds {
                state.done = true;
                Outgoing::Silent
            } else {
                Outgoing::Broadcast(state.best)
            }
        }

        fn is_done(&self, state: &FloodState) -> bool {
            state.done
        }
    }

    #[test]
    fn flood_max_converges_on_path() {
        let g = gen::path(10);
        let run = Simulator::new(&g, 1).run(&FloodMax { rounds: 10 }, 100).unwrap();
        assert!(run.states.iter().all(|s| s.best == 9));
        assert_eq!(run.metrics.rounds, 11);
        assert!(run.metrics.within_budget());
    }

    #[test]
    fn round_limit_error() {
        let g = gen::path(4);
        let err = Simulator::new(&g, 1)
            .run(&FloodMax { rounds: 50 }, 5)
            .unwrap_err();
        match err {
            SimulatorError::RoundLimitExceeded { limit, pending } => {
                assert_eq!(limit, 5);
                assert_eq!(pending, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn message_accounting() {
        let g = gen::star(5); // hub degree 4
        let run = Simulator::new(&g, 1).run(&FloodMax { rounds: 1 }, 10).unwrap();
        // Round 0: every node broadcasts once -> 2m = 8 messages.
        assert_eq!(run.metrics.messages, 8);
        assert!(run.metrics.max_message_bits <= 8);
    }

    /// A protocol that always sends an oversized message.
    struct Oversize;
    impl Protocol for Oversize {
        type State = ();
        type Msg = BigMsg;
        fn init(&self, _node: &NodeInfo) {}
        fn round(&self, _s: &mut (), _n: &NodeInfo, _i: &Inbox<BigMsg>) -> Outgoing<BigMsg> {
            Outgoing::Broadcast(BigMsg)
        }
        fn is_done(&self, _s: &()) -> bool {
            false
        }
    }

    #[derive(Clone, Debug)]
    struct BigMsg;
    impl Message for BigMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&[0u8; 1024]);
        }
    }

    #[test]
    fn bandwidth_violation_detected() {
        let g = gen::path(4);
        let err = Simulator::new(&g, 1).run(&Oversize, 3).unwrap_err();
        assert!(matches!(err, SimulatorError::BandwidthExceeded { .. }));
        // Without budget it instead hits the round limit.
        let err2 = Simulator::new(&g, 1)
            .without_budget()
            .run(&Oversize, 3)
            .unwrap_err();
        assert!(matches!(err2, SimulatorError::RoundLimitExceeded { .. }));
    }

    /// Unicast to a non-neighbor must be rejected.
    struct BadUnicast;
    impl Protocol for BadUnicast {
        type State = ();
        type Msg = u64;
        fn init(&self, _node: &NodeInfo) {}
        fn round(&self, _s: &mut (), node: &NodeInfo, _i: &Inbox<u64>) -> Outgoing<u64> {
            if node.id == 0 {
                Outgoing::Unicast(vec![(node.n - 1, 7u64)])
            } else {
                Outgoing::Silent
            }
        }
        fn is_done(&self, _s: &()) -> bool {
            false
        }
    }

    #[test]
    fn non_neighbor_unicast_detected() {
        let g = gen::path(5);
        let err = Simulator::new(&g, 1).run(&BadUnicast, 3).unwrap_err();
        assert_eq!(err, SimulatorError::NotANeighbor { from: 0, to: 4 });
    }

    #[test]
    fn determinism_same_seed() {
        use rand::SeedableRng;
        let g = gen::gnp(50, 0.1, &mut rand::rngs::StdRng::seed_from_u64(9));
        let r1 = Simulator::new(&g, 77).run(&FloodMax { rounds: 8 }, 50).unwrap();
        let r2 = Simulator::new(&g, 77).run(&FloodMax { rounds: 8 }, 50).unwrap();
        assert_eq!(r1.metrics, r2.metrics);
        let b1: Vec<u64> = r1.states.iter().map(|s| s.best).collect();
        let b2: Vec<u64> = r2.states.iter().map(|s| s.best).collect();
        assert_eq!(b1, b2);
    }

    #[test]
    fn halt_stops_simulation() {
        struct HaltNow;
        impl Protocol for HaltNow {
            type State = ();
            type Msg = u64;
            fn init(&self, _n: &NodeInfo) {}
            fn round(&self, _s: &mut (), _n: &NodeInfo, _i: &Inbox<u64>) -> Outgoing<u64> {
                Outgoing::Halt
            }
            fn is_done(&self, _s: &()) -> bool {
                false
            }
        }
        let g = gen::path(4);
        let run = Simulator::new(&g, 1).run(&HaltNow, 10).unwrap();
        assert_eq!(run.metrics.rounds, 1);
        assert_eq!(run.metrics.messages, 0);
    }

    #[test]
    fn traced_run_matches_untraced() {
        let g = gen::cycle(12);
        let plain = Simulator::new(&g, 3).run(&FloodMax { rounds: 8 }, 50).unwrap();
        let (traced, transcript) = Simulator::new(&g, 3)
            .run_traced(&FloodMax { rounds: 8 }, 50)
            .unwrap();
        assert_eq!(plain.metrics, traced.metrics);
        assert_eq!(transcript.len() as u64, plain.metrics.messages);
        // Round profile sums to the message count.
        assert_eq!(
            transcript.round_profile().iter().sum::<usize>() as u64,
            plain.metrics.messages
        );
        // Deterministic: same seed, same digest.
        let (_, t2) = Simulator::new(&g, 3)
            .run_traced(&FloodMax { rounds: 8 }, 50)
            .unwrap();
        assert_eq!(transcript.digest(), t2.digest());
    }

    #[test]
    fn error_display() {
        let e = SimulatorError::RoundLimitExceeded { limit: 3, pending: 2 };
        assert!(e.to_string().contains("round limit"));
    }
}
