//! The round-driving engine.

use crate::frontier::Frontier;
use crate::message::Message;
use crate::metrics::Metrics;
use crate::parallel::{self, Parallelism};
use crate::protocol::{Inbox, NodeInfo, Outgoing, Protocol};
use arbmis_graph::{Graph, NodeId};
use arbmis_obs::{FlightRecorder, Histogram, Recorder, RoundRecord};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Errors a simulation can end with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulatorError {
    /// The protocol did not terminate within the round limit.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: u64,
        /// How many nodes were still not done.
        pending: usize,
    },
    /// A message exceeded the CONGEST bandwidth budget.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Offending message size in bits.
        bits: usize,
        /// The enforced budget in bits.
        budget: usize,
    },
    /// A node unicast to a non-neighbor.
    NotANeighbor {
        /// Sending node.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
}

impl fmt::Display for SimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatorError::RoundLimitExceeded { limit, pending } => {
                write!(
                    f,
                    "round limit {limit} exceeded with {pending} nodes pending"
                )
            }
            SimulatorError::BandwidthExceeded {
                from,
                to,
                bits,
                budget,
            } => write!(
                f,
                "message {from}->{to} of {bits} bits exceeds budget {budget} bits"
            ),
            SimulatorError::NotANeighbor { from, to } => {
                write!(f, "node {from} unicast to non-neighbor {to}")
            }
        }
    }
}

impl std::error::Error for SimulatorError {}

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct SimulatorRun<S> {
    /// Final per-node states, indexed by node id.
    pub states: Vec<S>,
    /// Round/message/bit counters.
    pub metrics: Metrics,
}

/// Drives a [`Protocol`] over a [`Graph`] in synchronous rounds.
///
/// The CONGEST bandwidth budget defaults to `16 · ⌈log₂ n⌉` bits per
/// message (a generous but honest `O(log n)`; our encodings are byte
/// granular, so a handful of log-sized fields fit). Use
/// [`with_bandwidth_factor`](Simulator::with_bandwidth_factor) or
/// [`without_budget`](Simulator::without_budget) to adjust.
#[derive(Clone, Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    seed: u64,
    budget_bits: Option<usize>,
    parallelism: Parallelism,
    recorder: Recorder,
    flight: FlightRecorder,
    full_scan: bool,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over `graph` with master randomness `seed`.
    ///
    /// The parallelism policy for [`run_parallel`](Self::run_parallel)
    /// starts from the process-wide default
    /// ([`crate::parallel::default_parallelism`]); override per-instance
    /// with [`with_parallelism`](Self::with_parallelism).
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        let logn = (graph.n().max(2) as f64).log2().ceil() as usize;
        Simulator {
            graph,
            seed,
            budget_bits: Some(16 * logn.max(1)),
            parallelism: parallel::default_parallelism(),
            recorder: arbmis_obs::global(),
            flight: arbmis_obs::global_flight(),
            full_scan: false,
        }
    }

    /// Diagnostic knob: disables quiescence-based frontier shrinking, so
    /// every non-halted node is stepped every round (the pre-frontier
    /// behaviour). Results are identical either way — the differential
    /// suites use this to prove it; it is never needed for correctness.
    pub fn with_full_scan(mut self, full_scan: bool) -> Self {
        self.full_scan = full_scan;
        self
    }

    /// Attaches an observability [`Recorder`]. The default is the
    /// process-wide recorder ([`arbmis_obs::global`]), which is disabled
    /// unless a binary installed one. Recording never changes results:
    /// metrics, transcripts, and final states are bit-identical with the
    /// recorder enabled or disabled (see DESIGN.md §8).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Attaches a per-round [`FlightRecorder`]. The default is the
    /// process-wide one ([`arbmis_obs::global_flight`]), disabled unless
    /// a binary installed it. Like the metric recorder, flight capture
    /// never changes results, and the recorded bytes are identical
    /// across the serial and parallel engines at every thread count
    /// (DESIGN.md §8).
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// The attached flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Sets the thread-count policy used by
    /// [`run_parallel`](Self::run_parallel). Results are bit-identical at
    /// every setting; only wall-clock changes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configured thread-count policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Overrides the per-message budget to `factor · ⌈log₂ n⌉` bits.
    pub fn with_bandwidth_factor(mut self, factor: usize) -> Self {
        let logn = (self.graph.n().max(2) as f64).log2().ceil() as usize;
        self.budget_bits = Some(factor * logn.max(1));
        self
    }

    /// Disables bandwidth enforcement (LOCAL-model behaviour).
    pub fn without_budget(mut self) -> Self {
        self.budget_bits = None;
        self
    }

    /// The enforced per-message budget in bits, if any.
    pub fn budget_bits(&self) -> Option<usize> {
        self.budget_bits
    }

    /// Runs `protocol` until every node is done (or has halted), up to
    /// `max_rounds` rounds.
    ///
    /// # Errors
    ///
    /// [`SimulatorError::RoundLimitExceeded`] if termination is not
    /// reached; [`SimulatorError::BandwidthExceeded`] /
    /// [`SimulatorError::NotANeighbor`] on protocol misbehaviour.
    pub fn run<P: Protocol>(
        &self,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<SimulatorRun<P::State>, SimulatorError> {
        self.run_impl(protocol, max_rounds, None)
    }

    /// Like [`run`](Self::run), but additionally records a full
    /// per-message [`crate::transcript::Transcript`] (who sent how many
    /// bits to whom, each round).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_traced<P: Protocol>(
        &self,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<(SimulatorRun<P::State>, crate::transcript::Transcript), SimulatorError> {
        let mut transcript = crate::transcript::Transcript::new();
        let run = self.run_impl(protocol, max_rounds, Some(&mut transcript))?;
        Ok((run, transcript))
    }

    /// Like [`run`](Self::run), but fans each round's node activations
    /// across a scoped thread pool per the configured [`Parallelism`].
    ///
    /// Determinism contract (see [`crate::parallel`]): the outcome —
    /// final states, metrics, and any error — is bit-identical to
    /// [`run`](Self::run) for every thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_parallel<P>(
        &self,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<SimulatorRun<P::State>, SimulatorError>
    where
        P: Protocol + Sync,
        P::State: Send,
        P::Msg: Send + Sync,
    {
        self.run_parallel_impl(protocol, max_rounds, None)
    }

    /// Like [`run_traced`](Self::run_traced) on the parallel engine: the
    /// transcript (and its digest) is bit-identical to the serial one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_parallel_traced<P>(
        &self,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<(SimulatorRun<P::State>, crate::transcript::Transcript), SimulatorError>
    where
        P: Protocol + Sync,
        P::State: Send,
        P::Msg: Send + Sync,
    {
        let mut transcript = crate::transcript::Transcript::new();
        let run = self.run_parallel_impl(protocol, max_rounds, Some(&mut transcript))?;
        Ok((run, transcript))
    }

    fn run_parallel_impl<P>(
        &self,
        protocol: &P,
        max_rounds: u64,
        mut transcript: Option<&mut crate::transcript::Transcript>,
    ) -> Result<SimulatorRun<P::State>, SimulatorError>
    where
        P: Protocol + Sync,
        P::State: Send,
        P::Msg: Send + Sync,
    {
        let g = self.graph;
        let n = g.n();
        let threads = self.parallelism.effective_threads(n);
        if threads <= 1 || max_rounds == 0 || n == 0 {
            return self.run_impl(protocol, max_rounds, transcript);
        }
        let bounds = parallel::chunk_bounds(n, threads);
        let chunk_count = bounds.len();
        let workers = threads.min(chunk_count);
        let rec = &self.recorder;
        let flight = &self.flight;
        let obs = rec.enabled();
        let timing = rec.timing();
        let mut msg_bits_hist = Histogram::new();
        let mut metrics = Metrics {
            budget_bits: self.budget_bits.map(|b| b as u64),
            ..Metrics::default()
        };

        let states: Vec<P::State> = (0..n)
            .map(|v| {
                let info = NodeInfo {
                    id: v,
                    n,
                    neighbors: g.neighbors(v),
                    round: 0,
                    seed: self.seed,
                };
                protocol.init(&info)
            })
            .collect();

        // Top-of-round-0 termination check, exactly like the serial loop.
        if states.iter().all(|s| protocol.is_done(s)) {
            metrics.rounds = 0;
            flush_run_obs(rec, &metrics, &msg_bits_hist);
            return Ok(SimulatorRun { states, metrics });
        }

        // Node id -> chunk index, for partitioning sends by destination.
        let mut dest_chunk = vec![0u32; n];
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            dest_chunk[lo..hi].iter_mut().for_each(|c| *c = i as u32);
        }

        // Per-chunk simulation state. Lock contention is nil: each chunk
        // is claimed by exactly one worker per phase, and phases are
        // barrier-separated.
        let mut slots: Vec<Mutex<ChunkSlot<P>>> = Vec::with_capacity(chunk_count);
        {
            let mut it = states.into_iter();
            for &(lo, hi) in &bounds {
                let chunk: Vec<P::State> = it.by_ref().take(hi - lo).collect();
                let len = hi - lo;
                let done: Vec<bool> = chunk.iter().map(|s| protocol.is_done(s)).collect();
                let pending = done.iter().filter(|d| !**d).count();
                let mut cur_frontier = Frontier::new(len);
                for (off, s) in chunk.iter().enumerate() {
                    if self.full_scan || !protocol.is_quiescent(s) {
                        cur_frontier.insert(off);
                    }
                }
                slots.push(Mutex::new(ChunkSlot {
                    lo,
                    states: chunk,
                    halted: vec![false; len],
                    inbox_entries: vec![Vec::new(); len],
                    arena: Vec::new(),
                    done,
                    pending,
                    cur_frontier,
                    next_frontier: Frontier::new(len),
                    inbox_touched: Vec::new(),
                }));
            }
        }

        let traced = transcript.is_some();
        let outs: Vec<RwLock<ChunkOut<P::Msg>>> = (0..chunk_count)
            .map(|_| RwLock::new(ChunkOut::empty()))
            .collect();
        // Workers and the coordinator rendezvous three times per round:
        // round start, activations done, merge decision published.
        let barrier = Barrier::new(workers + 1);
        let stop = AtomicBool::new(false);
        let a_next = AtomicUsize::new(0);
        let b_next = AtomicUsize::new(0);
        let (seed, budget, full_scan) = (self.seed, self.budget_bits, self.full_scan);

        enum Outcome {
            Done,
            Limit,
            Fail(SimulatorError),
        }
        let mut outcome = Outcome::Limit;
        // Per-worker utilization: (chunks claimed, busy wall-time ns).
        // Written once per worker at exit; read after the scope ends.
        let worker_stats: Vec<Mutex<(u64, u64)>> =
            (0..workers).map(|_| Mutex::new((0, 0))).collect();

        crossbeam::scope(|scope| {
            for w in 0..workers {
                // Shadow the shared structures with references so the
                // `move` closure copies the borrows (and `w`) instead of
                // moving the structures themselves.
                #[allow(clippy::needless_borrow)]
                let (slots, outs, barrier, stop, a_next, b_next, dest_chunk, worker_stats) = (
                    &slots,
                    &outs,
                    &barrier,
                    &stop,
                    &a_next,
                    &b_next,
                    &dest_chunk,
                    &worker_stats,
                );
                scope.spawn(move |_| {
                    let mut round: u64 = 0;
                    let mut chunks_claimed = 0u64;
                    let mut busy_ns = 0u64;
                    loop {
                        barrier.wait(); // round start
                                        // Phase A: steal chunks, run their activations.
                        loop {
                            let i = a_next.fetch_add(1, Ordering::Relaxed);
                            if i >= chunk_count {
                                break;
                            }
                            let t0 = timing.then(Instant::now);
                            let mut slot = slots[i].lock();
                            let mut out = outs[i].write();
                            out.reset(chunk_count);
                            process_chunk(
                                protocol, g, seed, round, budget, traced, obs, full_scan,
                                dest_chunk, &mut slot, &mut out,
                            );
                            // Utilization bookkeeping is timing-class
                            // only: skip the counters entirely when
                            // wall-clock timing is off.
                            if let Some(t0) = t0 {
                                chunks_claimed += 1;
                                busy_ns += t0.elapsed().as_nanos() as u64;
                            }
                        }
                        barrier.wait(); // activations done; coordinator merges
                        barrier.wait(); // decision published
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // Phase B: steal chunks, deliver their inboxes.
                        loop {
                            let j = b_next.fetch_add(1, Ordering::Relaxed);
                            if j >= chunk_count {
                                break;
                            }
                            let t0 = timing.then(Instant::now);
                            let mut slot = slots[j].lock();
                            deliver_chunk(&mut slot, j, outs);
                            if let Some(t0) = t0 {
                                chunks_claimed += 1;
                                busy_ns += t0.elapsed().as_nanos() as u64;
                            }
                        }
                        round += 1;
                    }
                    if timing {
                        *worker_stats[w].lock() = (chunks_claimed, busy_ns);
                    }
                });
            }

            // Coordinator: merge in chunk index order (= ascending node
            // order) so the first error, metrics, and transcript all
            // coincide with the serial engine.
            for round in 0..max_rounds {
                let round_t0 = timing.then(Instant::now);
                barrier.wait(); // release phase A
                barrier.wait(); // phase A complete; workers idle

                let mut first_err = None;
                for out in &outs {
                    if let Some(e) = &out.read().error {
                        first_err = Some(e.clone());
                        break;
                    }
                }
                let decided = if let Some(e) = first_err {
                    Some(Outcome::Fail(e))
                } else {
                    let mut all_done = true;
                    let mut stepped: u64 = 0;
                    let (round_msgs0, round_bits0) = (metrics.messages, metrics.bits);
                    for out_lock in &outs {
                        let mut out = out_lock.write();
                        metrics.merge(&Metrics {
                            rounds: 0,
                            messages: out.messages,
                            bits: out.bits,
                            max_message_bits: out.max_bits as u64,
                            budget_bits: None,
                        });
                        all_done &= out.all_done;
                        stepped += out.stepped;
                        if obs {
                            msg_bits_hist.merge(&out.bits_hist);
                        }
                        if let Some(t) = transcript.as_deref_mut() {
                            for &(from, to, bits) in &out.events_flat {
                                t.record(round, from, to, bits);
                            }
                            out.events_flat.clear();
                        }
                    }
                    if obs {
                        observe_round(
                            rec,
                            stepped,
                            metrics.messages - round_msgs0,
                            metrics.bits - round_bits0,
                            round_t0,
                        );
                    }
                    if flight.enabled() {
                        // Chunk-order sums reproduce the serial engine's
                        // per-round quantities exactly, so this record
                        // is byte-identical to the serial one at every
                        // thread count.
                        flight.record(RoundRecord {
                            engine: "congest",
                            round,
                            frontier: stepped,
                            joiners: 0,
                            joiner_digest: 0,
                            coin_digest: 0,
                            messages: metrics.messages - round_msgs0,
                            bits: metrics.bits - round_bits0,
                            scan: if full_scan { "full" } else { "frontier" },
                            span_seq: rec.seq(),
                        });
                    }
                    if all_done {
                        metrics.rounds = round + 1;
                        Some(Outcome::Done)
                    } else if round + 1 == max_rounds {
                        Some(Outcome::Limit)
                    } else {
                        None
                    }
                };
                if let Some(o) = decided {
                    outcome = o;
                    stop.store(true, Ordering::SeqCst);
                    barrier.wait(); // release workers into their exit check
                    break;
                }
                // Workers are idle between the two barriers: safe to
                // reset the steal counters for phase B / the next round.
                a_next.store(0, Ordering::SeqCst);
                b_next.store(0, Ordering::SeqCst);
                barrier.wait(); // release phase B
            }
        })
        .expect("simulator worker thread panicked");

        let mut states = Vec::with_capacity(n);
        let mut halted = Vec::with_capacity(n);
        for slot in slots {
            let slot = slot.into_inner();
            states.extend(slot.states);
            halted.extend(slot.halted);
        }
        if timing {
            // Work-stealing utilization: timing class (chunk assignment
            // is a scheduling race), so only recorded with wall-clock
            // timing on — `Recorder::deterministic` output omits it.
            for (w, stats) in worker_stats.iter().enumerate() {
                let (chunks, busy) = *stats.lock();
                rec.gauge(&format!("worker_chunks{{worker=\"{w}\"}}"), chunks as f64);
                rec.gauge(&format!("worker_busy_ns{{worker=\"{w}\"}}"), busy as f64);
            }
        }
        match outcome {
            Outcome::Done => {
                flush_run_obs(rec, &metrics, &msg_bits_hist);
                Ok(SimulatorRun { states, metrics })
            }
            Outcome::Fail(e) => Err(e),
            Outcome::Limit => {
                let pending = (0..n)
                    .filter(|&v| !protocol.is_done(&states[v]) && !halted[v])
                    .count();
                Err(SimulatorError::RoundLimitExceeded {
                    limit: max_rounds,
                    pending,
                })
            }
        }
    }

    /// Creates an incremental round driver over `protocol`: the caller
    /// owns the loop and advances one synchronous round per
    /// [`Stepper::step`]. [`run`](Self::run) is exactly this followed by
    /// stepping until [`Stepper::is_done`]; external drivers use the
    /// same engine when they need to observe per-round state (e.g. the
    /// per-round joiner sets in the backend-equivalence suite).
    pub fn stepper<P: Protocol>(&self, protocol: P) -> Stepper<'g, P> {
        let g = self.graph;
        let n = g.n();
        let states: Vec<P::State> = (0..n)
            .map(|v| {
                let info = NodeInfo {
                    id: v,
                    n,
                    neighbors: g.neighbors(v),
                    round: 0,
                    seed: self.seed,
                };
                protocol.init(&info)
            })
            .collect();
        // Frontier bookkeeping (DESIGN.md §10): `done` caches `is_done`
        // per node (state only changes inside `round`, so the cache is
        // exact), `pending` counts nodes that are neither done nor halted
        // — termination detection is O(1) instead of an O(n) scan. The
        // double-buffered frontiers hold the nodes to step: survivors of
        // this round that are not quiescent, plus every node a message
        // woke. Halted nodes are never members.
        let mut done = vec![false; n];
        let mut pending = 0usize;
        let mut cur_frontier = Frontier::new(n);
        for v in 0..n {
            done[v] = protocol.is_done(&states[v]);
            if !done[v] {
                pending += 1;
            }
            if self.full_scan || !protocol.is_quiescent(&states[v]) {
                cur_frontier.insert(v);
            }
        }
        Stepper {
            graph: g,
            seed: self.seed,
            budget_bits: self.budget_bits,
            full_scan: self.full_scan,
            recorder: self.recorder.clone(),
            flight: self.flight.clone(),
            protocol,
            states,
            halted: vec![false; n],
            done,
            pending,
            cur_frontier,
            next_frontier: Frontier::new(n),
            // Double-buffered message plane: `cur` is read this round,
            // `next` is filled for the next one; both keep their
            // allocations across rounds (steady-state rounds allocate
            // nothing).
            cur: Plane::new(n),
            next: Plane::new(n),
            metrics: Metrics {
                budget_bits: self.budget_bits.map(|b| b as u64),
                ..Metrics::default()
            },
            msg_bits_hist: Histogram::new(),
            round: 0,
        }
    }

    fn run_impl<P: Protocol>(
        &self,
        protocol: &P,
        max_rounds: u64,
        mut transcript: Option<&mut crate::transcript::Transcript>,
    ) -> Result<SimulatorRun<P::State>, SimulatorError> {
        let mut st = self.stepper(protocol);
        for _ in 0..max_rounds {
            if st.is_done() {
                return Ok(st.finish());
            }
            st.step_traced(transcript.as_deref_mut())?;
        }
        if st.is_done() {
            return Ok(st.finish());
        }
        Err(SimulatorError::RoundLimitExceeded {
            limit: max_rounds,
            pending: st.pending(),
        })
    }
}

/// One in-flight serial simulation: per-node states, halt flags,
/// frontier bookkeeping, and the double-buffered message plane, advanced
/// one synchronous round per [`step`](Stepper::step).
///
/// Obtained from [`Simulator::stepper`]. Semantics are identical to
/// [`Simulator::run`] — same wake rules, same metrics, same
/// observability stream — the only difference is who owns the loop.
pub struct Stepper<'g, P: Protocol> {
    graph: &'g Graph,
    seed: u64,
    budget_bits: Option<usize>,
    full_scan: bool,
    recorder: Recorder,
    flight: FlightRecorder,
    protocol: P,
    states: Vec<P::State>,
    halted: Vec<bool>,
    done: Vec<bool>,
    pending: usize,
    cur_frontier: Frontier,
    next_frontier: Frontier,
    cur: Plane<P::Msg>,
    next: Plane<P::Msg>,
    metrics: Metrics,
    msg_bits_hist: Histogram,
    round: u64,
}

impl<P: Protocol> Stepper<'_, P> {
    /// Whether every node is done or halted — [`Simulator::run`] would
    /// stop here. Checked *before* a step: a fresh stepper can already be
    /// done (0-round run).
    pub fn is_done(&self) -> bool {
        self.pending == 0
    }

    /// Number of nodes that are neither done nor halted.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Per-node states, indexed by node id.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Metrics accumulated so far. `rounds` stays 0 until
    /// [`finish`](Self::finish) stamps it.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Executes one synchronous round.
    ///
    /// # Errors
    ///
    /// [`SimulatorError::BandwidthExceeded`] /
    /// [`SimulatorError::NotANeighbor`] on protocol misbehaviour; the
    /// stepper must not be stepped again after an error (matching
    /// [`Simulator::run`], which aborts the run).
    pub fn step(&mut self) -> Result<(), SimulatorError> {
        self.step_traced(None)
    }

    /// Like [`step`](Self::step), recording per-message transcript
    /// events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Self::step).
    pub fn step_traced(
        &mut self,
        mut transcript: Option<&mut crate::transcript::Transcript>,
    ) -> Result<(), SimulatorError> {
        let g = self.graph;
        let n = g.n();
        let seed = self.seed;
        let budget = self.budget_bits;
        let full_scan = self.full_scan;
        let obs = self.recorder.enabled();
        let timing = self.recorder.timing();
        let round = self.round;
        let Self {
            recorder,
            flight,
            protocol,
            states,
            halted,
            done,
            pending,
            cur_frontier,
            next_frontier,
            cur,
            next,
            metrics,
            msg_bits_hist,
            ..
        } = self;
        let (round_msgs0, round_bits0) = (metrics.messages, metrics.bits);
        let round_t0 = timing.then(Instant::now);
        // Nodes stepped this round (= the frontier size; the [`Frontier`]
        // keeps no count, so tally during iteration). Deterministic
        // class: identical across engines and thread counts.
        let mut stepped: u64 = 0;
        for v in cur_frontier.iter() {
            stepped += 1;
            let nbrs = g.neighbors(v);
            let info = NodeInfo {
                id: v,
                n,
                neighbors: nbrs,
                round,
                seed,
            };
            let inbox = cur.inbox(v, nbrs);
            let out = protocol.round(&mut states[v], &info, &inbox);
            let was_pending = !done[v];
            match out {
                Outgoing::Silent => {}
                Outgoing::Halt => {
                    halted[v] = true;
                    // An earlier sender may have woken it this round.
                    next_frontier.remove(v);
                }
                Outgoing::Broadcast(msg) => {
                    if !nbrs.is_empty() {
                        let bits = msg.bit_size();
                        // Every copy has the same size: one budget
                        // check for the whole neighborhood, reporting
                        // the first neighbor (= the edge the per-edge
                        // loop would have failed on).
                        check_bits(budget, v, nbrs[0], bits)?;
                        metrics.record_broadcast(bits, nbrs.len());
                        if obs {
                            msg_bits_hist.observe_n(bits as u64, nbrs.len() as u64);
                        }
                        if let Some(t) = transcript.as_deref_mut() {
                            for &u in nbrs {
                                t.record(round, v, u, bits);
                            }
                        }
                        // The payload is stored once and the sender's
                        // slot points at it; receivers find it by
                        // scanning their neighbor lists — no per-edge
                        // delivery work at all. The wake loop below is
                        // the only per-edge cost, within the
                        // "messages delivered" budget.
                        for &u in nbrs {
                            if !halted[u] {
                                next_frontier.insert(u);
                            }
                        }
                        next.push_broadcast(v, msg);
                    }
                }
                Outgoing::Unicast(list) => {
                    for (u, msg) in list {
                        if !g.has_edge(v, u) {
                            return Err(SimulatorError::NotANeighbor { from: v, to: u });
                        }
                        let bits = msg.bit_size();
                        check_bits(budget, v, u, bits)?;
                        metrics.record_message(bits);
                        if obs {
                            msg_bits_hist.observe(bits as u64);
                        }
                        if let Some(t) = transcript.as_deref_mut() {
                            t.record(round, v, u, bits);
                        }
                        if !halted[u] {
                            next_frontier.insert(u);
                        }
                        next.push_unicast(v, u, msg);
                    }
                }
            }
            if !halted[v] && (full_scan || !protocol.is_quiescent(&states[v])) {
                next_frontier.insert(v);
            }
            done[v] = protocol.is_done(&states[v]);
            let now_pending = !done[v] && !halted[v];
            match (was_pending, now_pending) {
                (true, false) => *pending -= 1,
                (false, true) => *pending += 1,
                _ => {}
            }
        }
        if obs {
            observe_round(
                recorder,
                stepped,
                metrics.messages - round_msgs0,
                metrics.bits - round_bits0,
                round_t0,
            );
        }
        if flight.enabled() {
            flight.record(RoundRecord {
                engine: "congest",
                round,
                frontier: stepped,
                joiners: 0,
                joiner_digest: 0,
                coin_digest: 0,
                messages: metrics.messages - round_msgs0,
                bits: metrics.bits - round_bits0,
                scan: if full_scan { "full" } else { "frontier" },
                span_seq: recorder.seq(),
            });
        }
        std::mem::swap(cur, next);
        next.clear();
        std::mem::swap(cur_frontier, next_frontier);
        next_frontier.clear();
        // No per-round sort: the ascending frontier iteration above
        // pushes into every inbox in ascending sender order already.
        debug_assert!(cur.is_sorted_by_sender(), "inbox delivery out of order");
        self.round += 1;
        Ok(())
    }

    /// Completes the run: stamps `metrics.rounds` and flushes the
    /// run-level observability counters, exactly like [`Simulator::run`]
    /// does on termination.
    pub fn finish(mut self) -> SimulatorRun<P::State> {
        self.metrics.rounds = self.round;
        flush_run_obs(&self.recorder, &self.metrics, &self.msg_bits_hist);
        SimulatorRun {
            states: self.states,
            metrics: self.metrics,
        }
    }
}

fn check_bits(
    budget: Option<usize>,
    from: NodeId,
    to: NodeId,
    bits: usize,
) -> Result<(), SimulatorError> {
    if let Some(budget) = budget {
        if bits > budget {
            return Err(SimulatorError::BandwidthExceeded {
                from,
                to,
                bits,
                budget,
            });
        }
    }
    Ok(())
}

/// One side of the serial engine's double-buffered message plane.
///
/// A broadcast costs the engine O(1): the payload is pushed into
/// `barena` once and the sender's slot in `bidx` records its index — no
/// per-edge writes at all. Receivers discover broadcasts lazily by
/// scanning their own (sorted) neighbor list against `bidx` while
/// iterating the [`Inbox`]. Unicasts go through explicit per-receiver
/// `(sender, arena index)` entry lists backed by `uarena`;
/// `unicast_touched` remembers which lists are non-empty so clearing is
/// O(#receivers-with-unicasts), not O(n). All buffers persist across
/// rounds, so steady-state rounds reuse the grown capacity instead of
/// reallocating.
struct Plane<M> {
    /// Per-sender broadcast slot ([`protocol::NO_BROADCAST`] = none).
    bidx: Vec<u32>,
    /// Broadcast payloads, one per broadcasting sender.
    barena: Vec<M>,
    /// Senders whose `bidx` slot is set this round (so clearing touches
    /// only dirty slots, not all n).
    bsenders: Vec<NodeId>,
    /// Per-receiver unicast entry lists.
    uentries: Vec<Vec<(NodeId, u32)>>,
    /// Unicast payloads.
    uarena: Vec<M>,
    /// Receivers whose `uentries` list is non-empty this round.
    unicast_touched: Vec<NodeId>,
}

impl<M> Plane<M> {
    fn new(n: usize) -> Self {
        Plane {
            bidx: vec![crate::protocol::NO_BROADCAST; n],
            barena: Vec::new(),
            bsenders: Vec::new(),
            uentries: vec![Vec::new(); n],
            uarena: Vec::new(),
            unicast_touched: Vec::new(),
        }
    }

    /// Records a broadcast from `from`: one arena push + one slot write.
    fn push_broadcast(&mut self, from: NodeId, msg: M) {
        let idx = u32::try_from(self.barena.len()).expect("round arena exceeds u32::MAX messages");
        self.barena.push(msg);
        self.bidx[from] = idx;
        self.bsenders.push(from);
    }

    /// Records a unicast `from → to`.
    fn push_unicast(&mut self, from: NodeId, to: NodeId, msg: M) {
        let idx = u32::try_from(self.uarena.len()).expect("round arena exceeds u32::MAX messages");
        self.uarena.push(msg);
        if self.uentries[to].is_empty() {
            self.unicast_touched.push(to);
        }
        self.uentries[to].push((from, idx));
    }

    /// The receiver-side [`Inbox`] view for node `v` with neighbor list
    /// `nbrs`.
    fn inbox<'a>(&'a self, v: NodeId, nbrs: &'a [NodeId]) -> Inbox<'a, M> {
        Inbox::from_plane(
            nbrs,
            &self.bidx,
            &self.barena,
            &self.uentries[v],
            &self.uarena,
        )
    }

    /// Empties the plane, keeping every allocation. Cost is proportional
    /// to the traffic the plane held, never n.
    fn clear(&mut self) {
        for v in self.bsenders.drain(..) {
            self.bidx[v] = crate::protocol::NO_BROADCAST;
        }
        self.barena.clear();
        for v in self.unicast_touched.drain(..) {
            self.uentries[v].clear();
        }
        self.uarena.clear();
    }

    /// Whether every unicast entry list is ascending by sender — true by
    /// construction (the emission loop visits senders in ascending
    /// order); asserted (debug builds) instead of re-sorting. The
    /// broadcast part is sorted by construction too: receivers scan
    /// their already-sorted neighbor lists.
    fn is_sorted_by_sender(&self) -> bool {
        self.uentries
            .iter()
            .all(|e| e.windows(2).all(|w| w[0].0 <= w[1].0))
    }
}

/// One chunk's long-lived simulation state: the node states, halt
/// flags, and arena-backed inboxes for nodes `lo..lo + states.len()`.
/// `arena` holds one copy of every payload delivered to this chunk in
/// the current round; `inbox_entries[off]` lists `(sender, arena index)`
/// pairs per node. All buffers persist (and are reused) across rounds.
///
/// Frontier bookkeeping is chunk-local (indexed by local offset):
/// phase A steps `cur_frontier` and inserts non-quiescent survivors into
/// `next_frontier`; phase B inserts a wake for every delivered message —
/// cross-chunk wakes need no extra machinery because delivery already
/// routes each message to its destination chunk — then promotes
/// `next_frontier` to `cur_frontier` for the next round.
struct ChunkSlot<P: Protocol> {
    lo: NodeId,
    states: Vec<P::State>,
    halted: Vec<bool>,
    inbox_entries: Vec<Vec<(NodeId, u32)>>,
    arena: Vec<P::Msg>,
    /// Cached `is_done` per local offset (exact: state only changes
    /// inside `round`, which only runs for frontier members).
    done: Vec<bool>,
    /// Number of chunk nodes that are neither done nor halted; the
    /// coordinator's termination test sums these instead of scanning.
    pending: usize,
    /// Nodes to step this round (local offsets).
    cur_frontier: Frontier,
    /// Nodes to step next round (local offsets).
    next_frontier: Frontier,
    /// Local offsets with a non-empty `inbox_entries` list, so clearing
    /// is O(#receivers), not O(chunk).
    inbox_touched: Vec<u32>,
}

/// One worker's output for one chunk's round: the chunk's outgoing
/// payload arena (broadcasts stored once, unicasts owned) plus index
/// events partitioned by destination chunk (each partition in serial
/// emission order) and local metric partials. The worker stops at its
/// first error (like the serial loop); earlier chunks are checked first
/// during the merge, so the reported error matches serial node order.
/// Reused across rounds via [`reset`](ChunkOut::reset).
struct ChunkOut<M> {
    /// Payloads this chunk sent this round.
    arena: Vec<M>,
    /// `(from, to, arena index)` per destination chunk, in serial
    /// emission order.
    events_by_dest: Vec<Vec<(NodeId, NodeId, u32)>>,
    /// `(from, to, bits)` in serial emission order; filled only when a
    /// transcript is being recorded.
    events_flat: Vec<(NodeId, NodeId, usize)>,
    messages: u64,
    bits: u64,
    max_bits: usize,
    /// Nodes stepped (frontier members) this round; the coordinator's
    /// chunk-order sum equals the serial engine's per-round frontier
    /// size exactly.
    stepped: u64,
    /// Per-message bit sizes, log₂-bucketed; filled only when a recorder
    /// is attached, merged (in chunk order) by the coordinator.
    bits_hist: Histogram,
    /// Whether every node of the chunk is halted or done after this
    /// round (= the serial engine's top-of-next-round termination test).
    all_done: bool,
    error: Option<SimulatorError>,
}

impl<M> ChunkOut<M> {
    /// Placeholder contents; reset + filled by phase A before any read.
    fn empty() -> Self {
        ChunkOut {
            arena: Vec::new(),
            events_by_dest: Vec::new(),
            events_flat: Vec::new(),
            messages: 0,
            bits: 0,
            max_bits: 0,
            stepped: 0,
            bits_hist: Histogram::new(),
            all_done: false,
            error: None,
        }
    }

    /// Clears for this round's refill, keeping all allocations, and
    /// ensures one destination partition per chunk.
    fn reset(&mut self, chunk_count: usize) {
        self.arena.clear();
        if self.events_by_dest.len() != chunk_count {
            self.events_by_dest.resize_with(chunk_count, Vec::new);
        }
        for d in &mut self.events_by_dest {
            d.clear();
        }
        self.events_flat.clear();
        self.messages = 0;
        self.bits = 0;
        self.max_bits = 0;
        self.stepped = 0;
        self.bits_hist.clear();
        self.all_done = false;
        self.error = None;
    }
}

/// Run-level accumulation shared by both engines: called once per
/// successful run, folding the run's totals and its message-size
/// histogram into the recorder.
fn flush_run_obs(rec: &Recorder, metrics: &Metrics, msg_bits: &Histogram) {
    if !rec.enabled() {
        return;
    }
    rec.add("congest_runs", 1);
    rec.add("congest_rounds", metrics.rounds);
    rec.add("congest_messages", metrics.messages);
    rec.add("congest_bits", metrics.bits);
    rec.merge_histogram("congest_message_bits", msg_bits);
}

/// Per-round observations shared by both engines. `frontier` is the
/// number of nodes stepped this round; `t0` is `Some` only when
/// wall-clock timing is on (timing class, name `*_ns`).
fn observe_round(rec: &Recorder, frontier: u64, msgs: u64, bits: u64, t0: Option<Instant>) {
    rec.observe("congest_round_frontier", frontier);
    rec.observe("congest_round_messages", msgs);
    rec.observe("congest_round_bits", bits);
    if let Some(t0) = t0 {
        rec.observe("congest_round_time_ns", t0.elapsed().as_nanos() as u64);
    }
}

/// Runs one round's activations for a chunk, mirroring the serial loop
/// body exactly. `out` must have been [`reset`](ChunkOut::reset) for
/// this round; a broadcast stores its payload once in `out.arena` and
/// emits one index event per edge.
#[allow(clippy::too_many_arguments)]
fn process_chunk<P: Protocol>(
    protocol: &P,
    g: &Graph,
    seed: u64,
    round: u64,
    budget: Option<usize>,
    traced: bool,
    obs: bool,
    full_scan: bool,
    dest_chunk: &[u32],
    slot: &mut ChunkSlot<P>,
    out: &mut ChunkOut<P::Msg>,
) {
    let n = g.n();
    let ChunkSlot {
        lo,
        states,
        halted,
        inbox_entries,
        arena,
        done,
        pending,
        cur_frontier,
        next_frontier,
        ..
    } = slot;
    let lo = *lo;
    let (inbox_entries, arena) = (&*inbox_entries, &*arena);
    let push_msg = |out: &mut ChunkOut<P::Msg>, msg: P::Msg| -> u32 {
        let idx = u32::try_from(out.arena.len()).expect("round arena exceeds u32::MAX messages");
        out.arena.push(msg);
        idx
    };
    // Halted nodes are never frontier members, so no halt check here.
    for off in cur_frontier.iter() {
        out.stepped += 1;
        let state = &mut states[off];
        let v = lo + off;
        let info = NodeInfo {
            id: v,
            n,
            neighbors: g.neighbors(v),
            round,
            seed,
        };
        let inbox = Inbox::from_parts(&inbox_entries[off], arena);
        let was_pending = !done[off];
        match protocol.round(state, &info, &inbox) {
            Outgoing::Silent => {}
            Outgoing::Halt => {
                halted[off] = true;
                // Phase B of the previous round may have woken it.
                next_frontier.remove(off);
            }
            Outgoing::Broadcast(msg) => {
                let nbrs = g.neighbors(v);
                if !nbrs.is_empty() {
                    let bits = msg.bit_size();
                    // One budget check per broadcast; the first neighbor
                    // is the reported edge, exactly like the serial
                    // engine.
                    if let Some(budget) = budget {
                        if bits > budget {
                            out.error = Some(SimulatorError::BandwidthExceeded {
                                from: v,
                                to: nbrs[0],
                                bits,
                                budget,
                            });
                            return;
                        }
                    }
                    out.messages += nbrs.len() as u64;
                    out.bits += (bits * nbrs.len()) as u64;
                    out.max_bits = out.max_bits.max(bits);
                    if obs {
                        out.bits_hist.observe_n(bits as u64, nbrs.len() as u64);
                    }
                    let idx = push_msg(out, msg);
                    for &u in nbrs {
                        if traced {
                            out.events_flat.push((v, u, bits));
                        }
                        out.events_by_dest[dest_chunk[u] as usize].push((v, u, idx));
                    }
                }
            }
            Outgoing::Unicast(list) => {
                for (u, msg) in list {
                    if !g.has_edge(v, u) {
                        out.error = Some(SimulatorError::NotANeighbor { from: v, to: u });
                        return;
                    }
                    let bits = msg.bit_size();
                    if let Some(budget) = budget {
                        if bits > budget {
                            out.error = Some(SimulatorError::BandwidthExceeded {
                                from: v,
                                to: u,
                                bits,
                                budget,
                            });
                            return;
                        }
                    }
                    out.messages += 1;
                    out.bits += bits as u64;
                    out.max_bits = out.max_bits.max(bits);
                    if obs {
                        out.bits_hist.observe(bits as u64);
                    }
                    if traced {
                        out.events_flat.push((v, u, bits));
                    }
                    let idx = push_msg(out, msg);
                    out.events_by_dest[dest_chunk[u] as usize].push((v, u, idx));
                }
            }
        }
        if !halted[off] && (full_scan || !protocol.is_quiescent(state)) {
            next_frontier.insert(off);
        }
        done[off] = protocol.is_done(state);
        let now_pending = !done[off] && !halted[off];
        match (was_pending, now_pending) {
            (true, false) => *pending -= 1,
            (false, true) => *pending += 1,
            _ => {}
        }
    }
    out.all_done = *pending == 0;
}

/// Rebuilds chunk `j`'s inboxes from every chunk's sends, visiting
/// source chunks in ascending order — the exact serial push sequence, so
/// each inbox comes out sorted by sender with no per-round sort. Each
/// payload that reaches this chunk is copied into the chunk-local arena
/// once (a degree-d broadcast costs one clone per destination *chunk*,
/// not one per edge); a broadcast's events for one destination chunk are
/// consecutive, so the source-index of the previous event suffices to
/// share the copy.
fn deliver_chunk<P: Protocol>(
    slot: &mut ChunkSlot<P>,
    j: usize,
    outs: &[RwLock<ChunkOut<P::Msg>>],
) {
    // Touched-based clear: only the inboxes that received something last
    // round are non-empty.
    while let Some(off) = slot.inbox_touched.pop() {
        slot.inbox_entries[off as usize].clear();
    }
    slot.arena.clear();
    let lo = slot.lo;
    for out_lock in outs {
        let out = out_lock.read();
        // (source arena index, local arena index) of the last copied
        // payload from this source chunk.
        let mut last: Option<(u32, u32)> = None;
        for &(from, to, src_idx) in &out.events_by_dest[j] {
            let local = match last {
                Some((s, l)) if s == src_idx => l,
                _ => {
                    let l = u32::try_from(slot.arena.len())
                        .expect("round arena exceeds u32::MAX messages");
                    slot.arena.push(out.arena[src_idx as usize].clone());
                    last = Some((src_idx, l));
                    l
                }
            };
            let off = to - lo;
            if slot.inbox_entries[off].is_empty() {
                slot.inbox_touched.push(off as u32);
            }
            slot.inbox_entries[off].push((from, local));
            // A delivered message wakes its destination — this resolves
            // same-chunk and cross-chunk wakes uniformly at the barrier,
            // matching the serial engine's emission-time wakes exactly
            // (halted nodes stay asleep in both).
            if !slot.halted[off] {
                slot.next_frontier.insert(off);
            }
        }
    }
    // Promote the next frontier (phase-A survivors + the wakes above)
    // for the next round's phase A.
    std::mem::swap(&mut slot.cur_frontier, &mut slot.next_frontier);
    slot.next_frontier.clear();
    debug_assert!(
        slot.inbox_entries
            .iter()
            .all(|e| e.windows(2).all(|w| w[0].0 <= w[1].0)),
        "inbox delivery out of order"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::gen;

    /// Each node floods the max id it has seen; terminates after `k`
    /// rounds (enough on a path of diameter < k).
    struct FloodMax {
        rounds: u64,
    }

    #[derive(Clone, Debug)]
    struct FloodState {
        best: u64,
        done: bool,
    }

    impl Protocol for FloodMax {
        type State = FloodState;
        type Msg = u64;

        fn init(&self, node: &NodeInfo) -> FloodState {
            FloodState {
                best: node.id as u64,
                done: false,
            }
        }

        fn round(
            &self,
            state: &mut FloodState,
            node: &NodeInfo,
            inbox: &Inbox<u64>,
        ) -> Outgoing<u64> {
            for (_, &b) in inbox {
                state.best = state.best.max(b);
            }
            if node.round >= self.rounds {
                state.done = true;
                Outgoing::Silent
            } else {
                Outgoing::Broadcast(state.best)
            }
        }

        fn is_done(&self, state: &FloodState) -> bool {
            state.done
        }
    }

    #[test]
    fn flood_max_converges_on_path() {
        let g = gen::path(10);
        let run = Simulator::new(&g, 1)
            .run(&FloodMax { rounds: 10 }, 100)
            .unwrap();
        assert!(run.states.iter().all(|s| s.best == 9));
        assert_eq!(run.metrics.rounds, 11);
        assert!(run.metrics.within_budget());
    }

    #[test]
    fn round_limit_error() {
        let g = gen::path(4);
        let err = Simulator::new(&g, 1)
            .run(&FloodMax { rounds: 50 }, 5)
            .unwrap_err();
        match err {
            SimulatorError::RoundLimitExceeded { limit, pending } => {
                assert_eq!(limit, 5);
                assert_eq!(pending, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn message_accounting() {
        let g = gen::star(5); // hub degree 4
        let run = Simulator::new(&g, 1)
            .run(&FloodMax { rounds: 1 }, 10)
            .unwrap();
        // Round 0: every node broadcasts once -> 2m = 8 messages.
        assert_eq!(run.metrics.messages, 8);
        assert!(run.metrics.max_message_bits <= 8);
    }

    /// A protocol that always sends an oversized message.
    struct Oversize;
    impl Protocol for Oversize {
        type State = ();
        type Msg = BigMsg;
        fn init(&self, _node: &NodeInfo) {}
        fn round(&self, _s: &mut (), _n: &NodeInfo, _i: &Inbox<BigMsg>) -> Outgoing<BigMsg> {
            Outgoing::Broadcast(BigMsg)
        }
        fn is_done(&self, _s: &()) -> bool {
            false
        }
    }

    #[derive(Clone, Debug)]
    struct BigMsg;
    impl Message for BigMsg {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&[0u8; 1024]);
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, crate::message::DecodeError> {
            if buf.len() < 1024 {
                return Err(crate::message::DecodeError::UnexpectedEof);
            }
            *buf = &buf[1024..];
            Ok(BigMsg)
        }
    }

    #[test]
    fn bandwidth_violation_detected() {
        let g = gen::path(4);
        let err = Simulator::new(&g, 1).run(&Oversize, 3).unwrap_err();
        assert!(matches!(err, SimulatorError::BandwidthExceeded { .. }));
        // Without budget it instead hits the round limit.
        let err2 = Simulator::new(&g, 1)
            .without_budget()
            .run(&Oversize, 3)
            .unwrap_err();
        assert!(matches!(err2, SimulatorError::RoundLimitExceeded { .. }));
    }

    /// Unicast to a non-neighbor must be rejected.
    struct BadUnicast;
    impl Protocol for BadUnicast {
        type State = ();
        type Msg = u64;
        fn init(&self, _node: &NodeInfo) {}
        fn round(&self, _s: &mut (), node: &NodeInfo, _i: &Inbox<u64>) -> Outgoing<u64> {
            if node.id == 0 {
                Outgoing::Unicast(vec![(node.n - 1, 7u64)])
            } else {
                Outgoing::Silent
            }
        }
        fn is_done(&self, _s: &()) -> bool {
            false
        }
    }

    #[test]
    fn non_neighbor_unicast_detected() {
        let g = gen::path(5);
        let err = Simulator::new(&g, 1).run(&BadUnicast, 3).unwrap_err();
        assert_eq!(err, SimulatorError::NotANeighbor { from: 0, to: 4 });
    }

    #[test]
    fn determinism_same_seed() {
        use rand::SeedableRng;
        let g = gen::gnp(50, 0.1, &mut rand::rngs::StdRng::seed_from_u64(9));
        let r1 = Simulator::new(&g, 77)
            .run(&FloodMax { rounds: 8 }, 50)
            .unwrap();
        let r2 = Simulator::new(&g, 77)
            .run(&FloodMax { rounds: 8 }, 50)
            .unwrap();
        assert_eq!(r1.metrics, r2.metrics);
        let b1: Vec<u64> = r1.states.iter().map(|s| s.best).collect();
        let b2: Vec<u64> = r2.states.iter().map(|s| s.best).collect();
        assert_eq!(b1, b2);
    }

    #[test]
    fn halt_stops_simulation() {
        struct HaltNow;
        impl Protocol for HaltNow {
            type State = ();
            type Msg = u64;
            fn init(&self, _n: &NodeInfo) {}
            fn round(&self, _s: &mut (), _n: &NodeInfo, _i: &Inbox<u64>) -> Outgoing<u64> {
                Outgoing::Halt
            }
            fn is_done(&self, _s: &()) -> bool {
                false
            }
        }
        let g = gen::path(4);
        let run = Simulator::new(&g, 1).run(&HaltNow, 10).unwrap();
        assert_eq!(run.metrics.rounds, 1);
        assert_eq!(run.metrics.messages, 0);
    }

    #[test]
    fn traced_run_matches_untraced() {
        let g = gen::cycle(12);
        let plain = Simulator::new(&g, 3)
            .run(&FloodMax { rounds: 8 }, 50)
            .unwrap();
        let (traced, transcript) = Simulator::new(&g, 3)
            .run_traced(&FloodMax { rounds: 8 }, 50)
            .unwrap();
        assert_eq!(plain.metrics, traced.metrics);
        assert_eq!(transcript.len() as u64, plain.metrics.messages);
        // Round profile sums to the message count.
        assert_eq!(
            transcript.round_profile().iter().sum::<usize>() as u64,
            plain.metrics.messages
        );
        // Deterministic: same seed, same digest.
        let (_, t2) = Simulator::new(&g, 3)
            .run_traced(&FloodMax { rounds: 8 }, 50)
            .unwrap();
        assert_eq!(transcript.digest(), t2.digest());
    }

    #[test]
    fn error_display() {
        let e = SimulatorError::RoundLimitExceeded {
            limit: 3,
            pending: 2,
        };
        assert!(e.to_string().contains("round limit"));
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        use rand::SeedableRng;
        let g = gen::gnp(120, 0.08, &mut rand::rngs::StdRng::seed_from_u64(4));
        let proto = FloodMax { rounds: 9 };
        let (serial, t_serial) = Simulator::new(&g, 5).run_traced(&proto, 100).unwrap();
        for threads in [1, 2, 4, 8] {
            let sim = Simulator::new(&g, 5).with_parallelism(Parallelism::Threads(threads));
            let (par, t_par) = sim.run_parallel_traced(&proto, 100).unwrap();
            assert_eq!(par.metrics, serial.metrics, "threads={threads}");
            assert_eq!(t_par.digest(), t_serial.digest(), "threads={threads}");
            assert_eq!(t_par.entries(), t_serial.entries(), "threads={threads}");
            let a: Vec<u64> = serial.states.iter().map(|s| s.best).collect();
            let b: Vec<u64> = par.states.iter().map(|s| s.best).collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn parallel_reports_same_errors_as_serial() {
        let g = gen::path(64);
        let serial_err = Simulator::new(&g, 1).run(&Oversize, 3).unwrap_err();
        let par_err = Simulator::new(&g, 1)
            .with_parallelism(Parallelism::Threads(4))
            .run_parallel(&Oversize, 3)
            .unwrap_err();
        assert_eq!(serial_err, par_err);

        let serial_err = Simulator::new(&g, 1).run(&BadUnicast, 3).unwrap_err();
        let par_err = Simulator::new(&g, 1)
            .with_parallelism(Parallelism::Threads(4))
            .run_parallel(&BadUnicast, 3)
            .unwrap_err();
        assert_eq!(serial_err, par_err);

        let serial_err = Simulator::new(&g, 1)
            .run(&FloodMax { rounds: 50 }, 5)
            .unwrap_err();
        let par_err = Simulator::new(&g, 1)
            .with_parallelism(Parallelism::Threads(4))
            .run_parallel(&FloodMax { rounds: 50 }, 5)
            .unwrap_err();
        assert_eq!(serial_err, par_err);
    }

    #[test]
    fn parallel_serial_policy_delegates() {
        let g = gen::cycle(20);
        let run = Simulator::new(&g, 2)
            .with_parallelism(Parallelism::Serial)
            .run_parallel(&FloodMax { rounds: 5 }, 50)
            .unwrap();
        let serial = Simulator::new(&g, 2)
            .run(&FloodMax { rounds: 5 }, 50)
            .unwrap();
        assert_eq!(run.metrics, serial.metrics);
    }

    #[test]
    fn parallel_handles_tiny_graphs() {
        // More threads than nodes: chunking must stay sound.
        let g = gen::path(3);
        let run = Simulator::new(&g, 1)
            .with_parallelism(Parallelism::Threads(8))
            .run_parallel(&FloodMax { rounds: 4 }, 50)
            .unwrap();
        assert!(run.states.iter().all(|s| s.best == 2));
    }
}
