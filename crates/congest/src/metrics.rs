//! Execution metrics: rounds, messages, and bandwidth accounting.

use serde::{Deserialize, Serialize};

/// Counters collected over one protocol execution.
///
/// All sizes are `u64` (not `usize`) so serialized artifacts have the
/// same width on every target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Total messages delivered (a broadcast over d edges counts d).
    pub messages: u64,
    /// Total bits delivered.
    pub bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
    /// The bandwidth budget that was enforced (bits per message), if any.
    pub budget_bits: Option<u64>,
}

impl Metrics {
    /// Records one delivered message of `bits` bits.
    pub(crate) fn record_message(&mut self, bits: usize) {
        self.messages += 1;
        self.bits += bits as u64;
        self.max_message_bits = self.max_message_bits.max(bits as u64);
    }

    /// Records a broadcast delivered as `copies` identical messages of
    /// `bits` bits each — one accounting update for the whole
    /// neighborhood instead of one per edge. Equivalent to `copies`
    /// calls to [`record_message`](Self::record_message).
    pub(crate) fn record_broadcast(&mut self, bits: usize, copies: usize) {
        if copies == 0 {
            return;
        }
        self.messages += copies as u64;
        self.bits += (bits * copies) as u64;
        self.max_message_bits = self.max_message_bits.max(bits as u64);
    }

    /// Merges `other` into `self` — the single accumulation point used
    /// by the parallel engine's chunk merge and by observability
    /// snapshots. Combination rules:
    ///
    /// * `rounds`: the maximum (partials of one run share its rounds);
    /// * `messages`, `bits`: summed;
    /// * `max_message_bits`: the maximum;
    /// * `budget_bits`: `None` is "unconstrained" and yields to any
    ///   `Some`; two enforced budgets combine to the *stricter* (both
    ///   were enforced, so every message respected the minimum).
    pub fn merge(&mut self, other: &Metrics) {
        self.rounds = self.rounds.max(other.rounds);
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.budget_bits = match (self.budget_bits, other.budget_bits) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// Average bits per message (0.0 if no messages).
    pub fn avg_message_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bits as f64 / self.messages as f64
        }
    }

    /// Whether every message respected the budget (vacuously true when no
    /// budget was set).
    pub fn within_budget(&self) -> bool {
        self.budget_bits.is_none_or(|b| self.max_message_bits <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Metrics::default();
        m.record_message(8);
        m.record_message(24);
        assert_eq!(m.messages, 2);
        assert_eq!(m.bits, 32);
        assert_eq!(m.max_message_bits, 24);
        assert!((m.avg_message_bits() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn record_broadcast_equals_per_copy_records() {
        let mut per_copy = Metrics::default();
        for _ in 0..5 {
            per_copy.record_message(24);
        }
        let mut batched = Metrics::default();
        batched.record_broadcast(24, 5);
        assert_eq!(batched, per_copy);
        // Zero copies (isolated sender) leaves everything untouched.
        batched.record_broadcast(1024, 0);
        assert_eq!(batched, per_copy);
    }

    #[test]
    fn budget_check() {
        let mut m = Metrics {
            budget_bits: Some(16),
            ..Metrics::default()
        };
        m.record_message(8);
        assert!(m.within_budget());
        m.record_message(17);
        assert!(!m.within_budget());
        let free = Metrics::default();
        assert!(free.within_budget());
    }

    #[test]
    fn empty_metrics_average() {
        assert_eq!(Metrics::default().avg_message_bits(), 0.0);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Metrics {
            rounds: 5,
            messages: 10,
            bits: 100,
            max_message_bits: 12,
            budget_bits: None,
        };
        let b = Metrics {
            rounds: 3,
            messages: 4,
            bits: 40,
            max_message_bits: 20,
            budget_bits: None,
        };
        a.merge(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 14);
        assert_eq!(a.bits, 140);
        assert_eq!(a.max_message_bits, 20);
        assert_eq!(a.budget_bits, None);
    }

    #[test]
    fn merge_budget_combination_rules() {
        let m = |budget: Option<u64>| Metrics {
            budget_bits: budget,
            ..Metrics::default()
        };
        // None yields to Some, in both directions.
        let mut a = m(None);
        a.merge(&m(Some(64)));
        assert_eq!(a.budget_bits, Some(64));
        let mut b = m(Some(64));
        b.merge(&m(None));
        assert_eq!(b.budget_bits, Some(64));
        // Two budgets combine to the stricter one.
        let mut c = m(Some(64));
        c.merge(&m(Some(48)));
        assert_eq!(c.budget_bits, Some(48));
        // None/None stays unconstrained.
        let mut d = m(None);
        d.merge(&m(None));
        assert_eq!(d.budget_bits, None);
    }

    #[test]
    fn merge_max_message_bits_is_order_independent() {
        let mk = |max| Metrics {
            max_message_bits: max,
            ..Metrics::default()
        };
        let mut ab = mk(7);
        ab.merge(&mk(31));
        let mut ba = mk(31);
        ba.merge(&mk(7));
        assert_eq!(ab.max_message_bits, 31);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_with_default_is_identity_except_budget() {
        let mut m = Metrics {
            rounds: 2,
            messages: 3,
            bits: 24,
            max_message_bits: 8,
            budget_bits: Some(16),
        };
        let before = m;
        m.merge(&Metrics::default());
        assert_eq!(m, before);
    }
}
