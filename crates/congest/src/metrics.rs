//! Execution metrics: rounds, messages, and bandwidth accounting.

use serde::{Deserialize, Serialize};

/// Counters collected over one protocol execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Total messages delivered (a broadcast over d edges counts d).
    pub messages: u64,
    /// Total bits delivered.
    pub bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// The bandwidth budget that was enforced (bits per message), if any.
    pub budget_bits: Option<usize>,
}

impl Metrics {
    /// Records one delivered message of `bits` bits.
    pub(crate) fn record_message(&mut self, bits: usize) {
        self.messages += 1;
        self.bits += bits as u64;
        self.max_message_bits = self.max_message_bits.max(bits);
    }

    /// Average bits per message (0.0 if no messages).
    pub fn avg_message_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bits as f64 / self.messages as f64
        }
    }

    /// Whether every message respected the budget (vacuously true when no
    /// budget was set).
    pub fn within_budget(&self) -> bool {
        self.budget_bits.is_none_or(|b| self.max_message_bits <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Metrics::default();
        m.record_message(8);
        m.record_message(24);
        assert_eq!(m.messages, 2);
        assert_eq!(m.bits, 32);
        assert_eq!(m.max_message_bits, 24);
        assert!((m.avg_message_bits() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn budget_check() {
        let mut m = Metrics {
            budget_bits: Some(16),
            ..Metrics::default()
        };
        m.record_message(8);
        assert!(m.within_budget());
        m.record_message(17);
        assert!(!m.within_budget());
        let free = Metrics::default();
        assert!(free.within_budget());
    }

    #[test]
    fn empty_metrics_average() {
        assert_eq!(Metrics::default().avg_message_bits(), 0.0);
    }
}
