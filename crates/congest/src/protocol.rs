//! The protocol abstraction: a distributed algorithm as a per-node state
//! machine.

use crate::message::Message;
use arbmis_graph::NodeId;

/// Immutable per-node context handed to every callback.
///
/// Mirrors what a CONGEST node knows locally: its id, its degree and
/// neighbor ids (port numbering), the network size `n` (standard
/// assumption), the global round number, and the RNG seed from which it
/// derives private randomness via [`crate::rng`].
#[derive(Clone, Debug)]
pub struct NodeInfo<'a> {
    /// This node's id.
    pub id: NodeId,
    /// Total number of nodes in the network.
    pub n: usize,
    /// Sorted neighbor ids.
    pub neighbors: &'a [NodeId],
    /// Current round (0-based; `round` 0 is the first invocation after
    /// `init`).
    pub round: u64,
    /// Master seed; combine with `id`/`round` via [`crate::rng::draw`].
    pub seed: u64,
}

impl NodeInfo<'_> {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Private uniform `u64` for this `(node, round, tag)`.
    pub fn draw(&self, tag: u64) -> u64 {
        crate::rng::draw(self.seed, self.id, self.round, tag)
    }

    /// Private uniform `f64` in `[0,1)` for this `(node, round, tag)`.
    pub fn draw_unit(&self, tag: u64) -> f64 {
        crate::rng::draw_unit(self.seed, self.id, self.round, tag)
    }
}

/// Messages received this round, as `(sender, payload)` pairs sorted by
/// sender id.
pub type Inbox<M> = Vec<(NodeId, M)>;

/// What a node emits at the end of a round.
#[derive(Clone, Debug)]
pub enum Outgoing<M> {
    /// Send nothing this round.
    Silent,
    /// Send the same message to every neighbor (one copy per edge — each
    /// copy is accounted against the bandwidth budget).
    Broadcast(M),
    /// Send distinct messages to selected neighbors.
    Unicast(Vec<(NodeId, M)>),
    /// Send nothing, and mark that this node will never send again. Once
    /// every node has halted the simulation stops even if `is_done` is
    /// still false for some (useful for passive states).
    Halt,
}

/// A distributed algorithm in the CONGEST model.
///
/// The simulator calls [`init`](Protocol::init) once per node, then
/// repeatedly: deliver the previous round's messages via `inbox`, call
/// [`round`](Protocol::round), and route the returned [`Outgoing`].
/// Execution stops when every node satisfies
/// [`is_done`](Protocol::is_done) (or has halted).
pub trait Protocol {
    /// Per-node local state.
    type State;
    /// Message type exchanged on edges.
    type Msg: Message;

    /// Creates node-local state before round 0. No messages yet.
    fn init(&self, node: &NodeInfo) -> Self::State;

    /// One synchronous round: consume `inbox` (messages sent in the
    /// previous round), update state, emit messages.
    fn round(
        &self,
        state: &mut Self::State,
        node: &NodeInfo,
        inbox: &Inbox<Self::Msg>,
    ) -> Outgoing<Self::Msg>;

    /// Whether this node has produced its final output.
    fn is_done(&self, state: &Self::State) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_info_accessors() {
        let nbrs = [1usize, 2, 3];
        let info = NodeInfo {
            id: 0,
            n: 4,
            neighbors: &nbrs,
            round: 5,
            seed: 9,
        };
        assert_eq!(info.degree(), 3);
        assert_eq!(info.draw(0), crate::rng::draw(9, 0, 5, 0));
        let u = info.draw_unit(1);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn outgoing_debug_impls() {
        let o: Outgoing<u64> = Outgoing::Broadcast(3);
        assert!(format!("{o:?}").contains("Broadcast"));
        let s: Outgoing<u64> = Outgoing::Silent;
        assert!(format!("{s:?}").contains("Silent"));
    }
}
