//! The protocol abstraction: a distributed algorithm as a per-node state
//! machine.

use crate::message::Message;
use arbmis_graph::NodeId;

/// Immutable per-node context handed to every callback.
///
/// Mirrors what a CONGEST node knows locally: its id, its degree and
/// neighbor ids (port numbering), the network size `n` (standard
/// assumption), the global round number, and the RNG seed from which it
/// derives private randomness via [`crate::rng`].
#[derive(Clone, Debug)]
pub struct NodeInfo<'a> {
    /// This node's id.
    pub id: NodeId,
    /// Total number of nodes in the network.
    pub n: usize,
    /// Sorted neighbor ids.
    pub neighbors: &'a [NodeId],
    /// Current round (0-based; `round` 0 is the first invocation after
    /// `init`).
    pub round: u64,
    /// Master seed; combine with `id`/`round` via [`crate::rng::draw`].
    pub seed: u64,
}

impl NodeInfo<'_> {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Private uniform `u64` for this `(node, round, tag)`.
    pub fn draw(&self, tag: u64) -> u64 {
        crate::rng::draw(self.seed, self.id, self.round, tag)
    }

    /// Private uniform `f64` in `[0,1)` for this `(node, round, tag)`.
    pub fn draw_unit(&self, tag: u64) -> f64 {
        crate::rng::draw_unit(self.seed, self.id, self.round, tag)
    }
}

/// Sentinel in a per-sender broadcast slot table: "did not broadcast".
pub(crate) const NO_BROADCAST: u32 = u32::MAX;

/// Messages received this round: `(sender, payload)` pairs sorted by
/// sender id, as a borrowed view into the engine's per-round message
/// arenas.
///
/// A broadcast payload is stored **once** and shared by every receiver —
/// iterating an inbox yields `(NodeId, &M)`, never an owned message. The
/// view has two parts, merged on the fly in ascending sender order:
///
/// * a *broadcast* part: the receiver's sorted neighbor list plus a
///   per-sender slot table (`bidx[u] != NO_BROADCAST` ⇔ neighbor `u`
///   broadcast this round, payload at `barena[bidx[u]]`). Delivering a
///   broadcast is O(1) for the engine — no per-edge writes at all; the
///   receiver discovers it by scanning its own neighbors.
/// * an *explicit* part: `(sender, arena index)` entries (unicasts in the
///   serial engine; all traffic in the parallel engine's chunk-local
///   inboxes).
///
/// Because senders emit either a broadcast or unicasts in a round (never
/// both) the two parts never collide, and the merge is a strict
/// ascending interleave. The view is `Copy` and only valid for the
/// duration of one [`Protocol::round`] call; protocols that need to keep
/// a payload across rounds clone it into their state.
///
/// [`len`](Inbox::len) / [`is_empty`](Inbox::is_empty) /
/// [`get`](Inbox::get) cost up to O(degree), not O(1): the broadcast
/// part is discovered by scanning.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    /// The receiver's sorted neighbor ids (broadcast part domain).
    nbrs: &'a [NodeId],
    /// Per-sender broadcast slot table ([`NO_BROADCAST`] = none). Indexed
    /// by the ids in `nbrs`; empty when there is no broadcast part.
    bidx: &'a [u32],
    /// Broadcast payload arena.
    barena: &'a [M],
    /// `(sender, arena index)` explicit entries, ascending by sender.
    entries: &'a [(NodeId, u32)],
    /// The arena the explicit entries point into.
    arena: &'a [M],
}

impl<M> Clone for Inbox<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for Inbox<'_, M> {}

impl<'a, M> Inbox<'a, M> {
    /// Assembles an explicit-entries-only view. Engine-internal:
    /// `entries` indices must be in bounds for `arena` and sorted by
    /// sender.
    pub(crate) fn from_parts(entries: &'a [(NodeId, u32)], arena: &'a [M]) -> Self {
        Inbox {
            nbrs: &[],
            bidx: &[],
            barena: &[],
            entries,
            arena,
        }
    }

    /// Assembles the serial engine's dual view: lazy broadcast part over
    /// the receiver's neighbors plus explicit unicast entries.
    /// Engine-internal: `bidx` must cover every id in `nbrs`, non-sentinel
    /// slots must be in bounds for `barena`, and `entries` must be sorted
    /// by sender.
    pub(crate) fn from_plane(
        nbrs: &'a [NodeId],
        bidx: &'a [u32],
        barena: &'a [M],
        entries: &'a [(NodeId, u32)],
        arena: &'a [M],
    ) -> Self {
        Inbox {
            nbrs,
            bidx,
            barena,
            entries,
            arena,
        }
    }

    /// An inbox with no messages.
    pub fn empty() -> Inbox<'static, M> {
        Inbox {
            nbrs: &[],
            bidx: &[],
            barena: &[],
            entries: &[],
            arena: &[],
        }
    }

    /// Number of messages received. Costs up to O(degree).
    pub fn len(&self) -> usize {
        self.broadcast_count() + self.entries.len()
    }

    /// Whether nothing was received. Costs up to O(degree).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.broadcast_count() == 0
    }

    fn broadcast_count(&self) -> usize {
        self.nbrs
            .iter()
            .filter(|&&u| self.bidx[u] != NO_BROADCAST)
            .count()
    }

    /// The `i`-th message in sender order. Costs up to O(degree).
    pub fn get(&self, i: usize) -> Option<(NodeId, &'a M)> {
        self.iter().nth(i)
    }

    /// The first message (smallest sender id), if any.
    pub fn first(&self) -> Option<(NodeId, &'a M)> {
        self.iter().next()
    }

    /// Iterates `(sender, &payload)` in ascending sender order.
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            nbrs: self.nbrs.iter(),
            bidx: self.bidx,
            barena: self.barena,
            entries: self.entries,
            arena: self.arena,
            pending: None,
        }
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = (NodeId, &'a M);
    type IntoIter = InboxIter<'a, M>;
    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

impl<'a, M> IntoIterator for &Inbox<'a, M> {
    type Item = (NodeId, &'a M);
    type IntoIter = InboxIter<'a, M>;
    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

/// Iterator over an [`Inbox`], yielding `(sender, &payload)` in
/// ascending sender order: a strict merge of the lazily-scanned
/// broadcast part and the explicit entry list.
#[derive(Clone, Debug)]
pub struct InboxIter<'a, M> {
    nbrs: std::slice::Iter<'a, NodeId>,
    bidx: &'a [u32],
    barena: &'a [M],
    entries: &'a [(NodeId, u32)],
    arena: &'a [M],
    /// Next broadcast item, already scanned but not yet merged out.
    pending: Option<(NodeId, u32)>,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (NodeId, &'a M);

    fn next(&mut self) -> Option<(NodeId, &'a M)> {
        if self.pending.is_none() {
            for &u in self.nbrs.by_ref() {
                let idx = self.bidx[u];
                if idx != NO_BROADCAST {
                    self.pending = Some((u, idx));
                    break;
                }
            }
        }
        match (self.pending, self.entries.first()) {
            (Some((bu, bidx)), Some(&(eu, eidx))) => {
                if bu < eu {
                    self.pending = None;
                    Some((bu, &self.barena[bidx as usize]))
                } else {
                    self.entries = &self.entries[1..];
                    Some((eu, &self.arena[eidx as usize]))
                }
            }
            (Some((bu, bidx)), None) => {
                self.pending = None;
                Some((bu, &self.barena[bidx as usize]))
            }
            (None, Some(&(eu, eidx))) => {
                self.entries = &self.entries[1..];
                Some((eu, &self.arena[eidx as usize]))
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let pending = usize::from(self.pending.is_some());
        let lower = self.entries.len() + pending;
        (lower, Some(lower + self.nbrs.len()))
    }
}

/// An owned inbox buffer: builds the arena-backed [`Inbox`] view outside
/// the engines, for driving [`Protocol::round`] directly in unit tests
/// or custom harnesses.
#[derive(Clone, Debug, Default)]
pub struct InboxBuf<M> {
    arena: Vec<M>,
    entries: Vec<(NodeId, u32)>,
}

impl<M> InboxBuf<M> {
    /// An empty buffer.
    pub fn new() -> Self {
        InboxBuf {
            arena: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Builds a buffer from `(sender, payload)` pairs (must already be in
    /// ascending sender order, like engine-delivered inboxes).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NodeId, M)>) -> Self {
        let mut buf = InboxBuf::new();
        for (from, msg) in pairs {
            buf.push(from, msg);
        }
        buf
    }

    /// Appends one message.
    pub fn push(&mut self, from: NodeId, msg: M) {
        let idx = u32::try_from(self.arena.len()).expect("inbox arena exceeds u32::MAX entries");
        self.arena.push(msg);
        self.entries.push((from, idx));
    }

    /// Empties the buffer, keeping its allocations.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.entries.clear();
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The borrowed [`Inbox`] view over the buffered messages.
    pub fn as_inbox(&self) -> Inbox<'_, M> {
        Inbox::from_parts(&self.entries, &self.arena)
    }
}

/// What a node emits at the end of a round.
#[derive(Clone, Debug)]
pub enum Outgoing<M> {
    /// Send nothing this round.
    Silent,
    /// Send the same message to every neighbor (one copy per edge — each
    /// copy is accounted against the bandwidth budget).
    Broadcast(M),
    /// Send distinct messages to selected neighbors.
    Unicast(Vec<(NodeId, M)>),
    /// Send nothing, and mark that this node will never send again. Once
    /// every node has halted the simulation stops even if `is_done` is
    /// still false for some (useful for passive states).
    Halt,
}

/// A distributed algorithm in the CONGEST model.
///
/// The simulator calls [`init`](Protocol::init) once per node, then
/// repeatedly: deliver the previous round's messages via `inbox`, call
/// [`round`](Protocol::round), and route the returned [`Outgoing`].
/// Execution stops when every node satisfies
/// [`is_done`](Protocol::is_done) (or has halted).
pub trait Protocol {
    /// Per-node local state.
    type State;
    /// Message type exchanged on edges.
    type Msg: Message;

    /// Creates node-local state before round 0. No messages yet.
    fn init(&self, node: &NodeInfo) -> Self::State;

    /// One synchronous round: consume `inbox` (a borrowed view of the
    /// messages sent in the previous round), update state, emit
    /// messages. Payloads are received by reference — see [`Inbox`].
    fn round(
        &self,
        state: &mut Self::State,
        node: &NodeInfo,
        inbox: &Inbox<'_, Self::Msg>,
    ) -> Outgoing<Self::Msg>;

    /// Whether this node has produced its final output.
    fn is_done(&self, state: &Self::State) -> bool;

    /// Whether a node in `state` is *quiescent*: given an **empty**
    /// inbox, [`round`](Protocol::round) is guaranteed to emit nothing
    /// and leave the state unchanged (observably a no-op), **at every
    /// round number**. The engines skip quiescent nodes that have no
    /// pending messages and wake them when a message targets them, so
    /// per-round cost tracks the active frontier instead of `n` — see
    /// DESIGN.md §10 for the full contract.
    ///
    /// Soundness rules for overriding:
    ///
    /// * The guarantee must hold for *any* round number, because a
    ///   skipped node does not observe rounds passing. Protocols that act
    ///   at a specific round (e.g. "halt at round `R`") must **not**
    ///   declare such states quiescent.
    /// * A state whose next activation would return [`Outgoing::Halt`]
    ///   may only be quiescent if [`is_done`](Protocol::is_done) already
    ///   holds (the halt is then unobservable: the node is skipped
    ///   forever and already counts toward termination).
    ///
    /// The default — `is_done` — is sound for every protocol whose done
    /// states are inert on an empty inbox, which all in-tree protocols
    /// satisfy: they set `done` together with halting or becoming silent.
    fn is_quiescent(&self, state: &Self::State) -> bool {
        self.is_done(state)
    }
}

/// A shared reference to a protocol is itself a protocol. Lets owning
/// drivers (e.g. [`crate::simulator::Stepper`]) and borrowing callers
/// (`Simulator::run(&proto, ..)`) share one code path.
impl<P: Protocol + ?Sized> Protocol for &P {
    type State = P::State;
    type Msg = P::Msg;

    fn init(&self, node: &NodeInfo) -> Self::State {
        (**self).init(node)
    }

    fn round(
        &self,
        state: &mut Self::State,
        node: &NodeInfo,
        inbox: &Inbox<'_, Self::Msg>,
    ) -> Outgoing<Self::Msg> {
        (**self).round(state, node, inbox)
    }

    fn is_done(&self, state: &Self::State) -> bool {
        (**self).is_done(state)
    }

    // Must forward explicitly: the default would collapse to `is_done`
    // and silently change frontier behavior for overriding protocols.
    fn is_quiescent(&self, state: &Self::State) -> bool {
        (**self).is_quiescent(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_info_accessors() {
        let nbrs = [1usize, 2, 3];
        let info = NodeInfo {
            id: 0,
            n: 4,
            neighbors: &nbrs,
            round: 5,
            seed: 9,
        };
        assert_eq!(info.degree(), 3);
        assert_eq!(info.draw(0), crate::rng::draw(9, 0, 5, 0));
        let u = info.draw_unit(1);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn inbox_view_shares_payloads() {
        let buf = InboxBuf::from_pairs([(2usize, 10u64), (5, 20), (9, 30)]);
        let inbox = buf.as_inbox();
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.first(), Some((2, &10)));
        assert_eq!(inbox.get(2), Some((9, &30)));
        assert_eq!(inbox.get(3), None);
        let collected: Vec<(usize, u64)> = inbox.iter().map(|(s, &m)| (s, m)).collect();
        assert_eq!(collected, vec![(2, 10), (5, 20), (9, 30)]);
        // Both by-value and by-ref IntoIterator forms work, and the view
        // is Copy: using it twice is fine.
        let senders: Vec<usize> = inbox.into_iter().map(|(s, _)| s).collect();
        assert_eq!(senders, vec![2, 5, 9]);
        assert_eq!(inbox.iter().count(), 3);
    }

    #[test]
    fn inbox_merges_broadcast_and_explicit_parts() {
        // Receiver has neighbors {1, 3, 4, 6}; 3 and 6 broadcast, 1 and 4
        // unicast. The merged view must interleave in sender order.
        let nbrs = [1usize, 3, 4, 6];
        let mut bidx = vec![NO_BROADCAST; 8];
        let barena = vec![30u64, 60];
        bidx[3] = 0;
        bidx[6] = 1;
        let entries = [(1usize, 0u32), (4, 1)];
        let arena = vec![10u64, 40];
        let inbox = Inbox::from_plane(&nbrs, &bidx, &barena, &entries, &arena);
        let collected: Vec<(usize, u64)> = inbox.iter().map(|(s, &m)| (s, m)).collect();
        assert_eq!(collected, vec![(1, 10), (3, 30), (4, 40), (6, 60)]);
        assert_eq!(inbox.len(), 4);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.first(), Some((1, &10)));
        assert_eq!(inbox.get(2), Some((4, &40)));
        assert_eq!(inbox.get(4), None);
        // Broadcast-only view (no explicit entries).
        let bonly = Inbox::from_plane(&nbrs, &bidx, &barena, &[], &arena);
        let senders: Vec<usize> = bonly.iter().map(|(s, _)| s).collect();
        assert_eq!(senders, vec![3, 6]);
        assert_eq!(bonly.len(), 2);
        // Neighbors none of whom broadcast: empty.
        let quiet = Inbox::from_plane(&nbrs[..1], &bidx, &barena, &[], &arena);
        assert!(quiet.is_empty());
        assert_eq!(quiet.first(), None);
    }

    #[test]
    fn empty_inbox() {
        let inbox = Inbox::<u64>::empty();
        assert!(inbox.is_empty());
        assert_eq!(inbox.len(), 0);
        assert_eq!(inbox.first(), None);
        assert_eq!(inbox.iter().count(), 0);
        let mut buf = InboxBuf::from_pairs([(0usize, 1u64)]);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert!(buf.as_inbox().is_empty());
    }

    #[test]
    fn outgoing_debug_impls() {
        let o: Outgoing<u64> = Outgoing::Broadcast(3);
        assert!(format!("{o:?}").contains("Broadcast"));
        let s: Outgoing<u64> = Outgoing::Silent;
        assert!(format!("{s:?}").contains("Silent"));
    }
}
