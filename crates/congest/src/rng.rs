//! Counter-based randomness shared by protocols and their centralized
//! fast-path re-implementations.
//!
//! Randomized rounds in the MIS algorithms draw fresh values like "the
//! priority of node `v` in iteration `t`". A *counter-based* generator
//! makes such a value a pure function `h(seed, v, t, tag)`, so a CONGEST
//! protocol and a centralized simulation of the same algorithm produce
//! bit-identical random choices without sharing any mutable RNG state.
//! The mixer is SplitMix64, whose output is equidistributed enough for
//! simulation purposes and is cheap.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a 64-bit mixing permutation.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform `u64` determined by `(seed, node, round, tag)`.
///
/// `tag` distinguishes independent draws a node makes within one round
/// (e.g. tag 0 = priority, tag 1 = coin).
#[inline]
pub fn draw(seed: u64, node: usize, round: u64, tag: u64) -> u64 {
    let mut z = seed;
    z = splitmix64(z ^ (node as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
    z = splitmix64(z ^ round.wrapping_mul(0xca5a_8268_9512_1157 ^ 0xff51_afd7_ed55_8ccd));
    splitmix64(z ^ tag.wrapping_mul(0xc4ce_b9fe_1a85_ec53))
}

/// A uniform `f64` in `[0, 1)` determined by `(seed, node, round, tag)`.
#[inline]
pub fn draw_unit(seed: u64, node: usize, round: u64, tag: u64) -> f64 {
    // 53 mantissa bits.
    (draw(seed, node, round, tag) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A Bernoulli(`p`) draw determined by `(seed, node, round, tag)`.
#[inline]
pub fn draw_bool(seed: u64, node: usize, round: u64, tag: u64, p: f64) -> bool {
    draw_unit(seed, node, round, tag) < p
}

/// Number of bits used for random priorities in an `n`-node network:
/// `min(60, 4·⌈log₂ n⌉)`. Pairwise collision probability per draw is
/// `≤ n⁻⁴`, and the encoded value honestly fits the CONGEST `O(log n)`-bit
/// message budget.
#[inline]
pub fn priority_bits(n: usize) -> u32 {
    let logn = (n.max(2) as f64).log2().ceil() as u32;
    (4 * logn).clamp(4, 60)
}

/// A nonzero uniform priority of [`priority_bits`]`(n)` bits for
/// `(seed, node, round, tag)`. The low bit is forced to 1 so 0 can encode
/// "non-competitive".
#[inline]
pub fn draw_priority(seed: u64, node: usize, round: u64, tag: u64, n: usize) -> u64 {
    (draw(seed, node, round, tag) >> (64 - priority_bits(n))) | 1
}

/// A per-node streaming RNG for protocols that prefer stateful draws.
/// Seeded from `(seed, node)`, so distinct nodes get independent streams.
pub type NodeRng = StdRng;

/// Creates the stream RNG for `node` under `seed`.
///
/// Note for parallel execution: a stream RNG carried *across* rounds in
/// node state is still deterministic (its seed depends only on
/// `(seed, node)` and it only ever advances inside that node's own
/// `round` calls), but [`node_round_rng`] is preferred for new protocols
/// because its derivation is auditable per round.
pub fn node_rng(seed: u64, node: usize) -> NodeRng {
    StdRng::seed_from_u64(splitmix64(
        seed ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    ))
}

/// Tag value reserved for seeding [`node_round_rng`] streams. Protocol
/// code must not pass this tag to [`draw`] directly, or its draws would
/// collide with the stream seed.
pub const STREAM_TAG: u64 = u64::MAX;

/// Creates a stream RNG for `node` in `round` under `seed` — a pure
/// function of the `(seed, node, round)` counters, with no state carried
/// between rounds.
///
/// This is the derivation the parallel round engine relies on: because
/// the stream is re-derived from counters each round, a node's random
/// choices are independent of *when* (and on which worker thread) its
/// activation runs, so serial and parallel executions draw bit-identical
/// randomness.
pub fn node_round_rng(seed: u64, node: usize, round: u64) -> NodeRng {
    StdRng::seed_from_u64(draw(seed, node, round, STREAM_TAG))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic() {
        assert_eq!(draw(1, 2, 3, 4), draw(1, 2, 3, 4));
    }

    #[test]
    fn draw_varies_in_every_coordinate() {
        let base = draw(1, 2, 3, 4);
        assert_ne!(base, draw(9, 2, 3, 4));
        assert_ne!(base, draw(1, 9, 3, 4));
        assert_ne!(base, draw(1, 2, 9, 4));
        assert_ne!(base, draw(1, 2, 3, 9));
    }

    #[test]
    fn draw_unit_in_range_and_roughly_uniform() {
        let mut sum = 0.0;
        let trials = 10_000;
        for i in 0..trials {
            let u = draw_unit(7, i, 0, 0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / trials as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn draw_bool_frequency() {
        let hits = (0..10_000).filter(|&i| draw_bool(11, i, 5, 0, 0.3)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.03, "freq {freq}");
    }

    #[test]
    fn node_rng_streams_differ() {
        use rand::RngCore;
        let a = node_rng(5, 0).next_u64();
        let b = node_rng(5, 1).next_u64();
        assert_ne!(a, b);
        // Same node, same seed: identical stream.
        assert_eq!(a, node_rng(5, 0).next_u64());
    }

    #[test]
    fn priority_bits_scale() {
        assert_eq!(priority_bits(2), 4);
        assert_eq!(priority_bits(1024), 40);
        assert_eq!(priority_bits(usize::MAX), 60);
    }

    #[test]
    fn priorities_nonzero_and_bounded() {
        for t in 0..1000u64 {
            let p = draw_priority(3, 5, t, 0, 256);
            assert!(p >= 1);
            assert!(p < 1 << priority_bits(256));
        }
    }

    /// Pins the counter derivation to golden values. If this test fails,
    /// the derivation changed: every recorded transcript digest, golden
    /// seed test, and fast-path/protocol equivalence in the workspace
    /// silently shifts with it — treat that as a breaking change, not a
    /// refresh-the-constants chore.
    #[test]
    fn derivation_is_pinned() {
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(draw(0, 0, 0, 0), 0x2382_75bc_38fc_be91);
        assert_eq!(draw(1, 2, 3, 4), 0x430a_ac1f_3b21_3935);
        assert_eq!(draw(0xDEAD_BEEF, 42, 7, 1), 0x25f0_712a_167c_cfd3);
        // node_round_rng seeds purely from draw(seed, node, round, STREAM_TAG).
        assert_eq!(draw(9, 5, 11, STREAM_TAG), 0xf1df_55ed_5128_c7d8);
        use rand::RngCore;
        assert_eq!(
            node_round_rng(9, 5, 11).next_u64(),
            StdRng::seed_from_u64(0xf1df_55ed_5128_c7d8).next_u64()
        );
    }

    #[test]
    fn node_round_rng_is_a_pure_counter_function() {
        use rand::RngCore;
        // Same counters: identical stream.
        let mut r1 = node_round_rng(3, 7, 2);
        let mut r2 = node_round_rng(3, 7, 2);
        let a: Vec<u64> = (0..4).map(|_| r1.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(a, b);
        // Any changed counter gives a different stream.
        assert_ne!(a[0], node_round_rng(4, 7, 2).next_u64());
        assert_ne!(a[0], node_round_rng(3, 8, 2).next_u64());
        assert_ne!(a[0], node_round_rng(3, 7, 3).next_u64());
    }

    #[test]
    fn splitmix_avalanche_sanity() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = splitmix64(0x1234_5678);
        let y = splitmix64(0x1234_5679);
        let flipped = (x ^ y).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped}");
    }
}
