//! Wire encoding and bit accounting for CONGEST messages.
//!
//! The CONGEST model bounds each message to `O(log n)` bits. To make that
//! bound *checkable* rather than aspirational, every message type must
//! [`encode`](Message::encode) itself into bytes; the simulator measures
//! the encoding of every message it delivers and rejects runs whose
//! messages exceed the bandwidth budget.

use bytes::BufMut;
use std::fmt;

/// Error while decoding a [`Message`] from bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the message was complete.
    UnexpectedEof,
    /// The bytes do not form a valid encoding (bad tag, overflow, …).
    Invalid(&'static str),
    /// [`Message::decode_all`] found bytes left over after the message.
    TrailingBytes {
        /// How many bytes remained unconsumed.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A message that knows its own wire encoding.
///
/// Implementations should encode compactly — the whole point is honest
/// `O(log n)`-bit accounting. Varint encoding is provided via
/// [`put_varint`] / [`get_varint`] for integer fields whose typical
/// values are small. `decode` must be the exact inverse of `encode`:
/// `T::decode_all(&encoding_of(m)) == Ok(m)` for every message `m`
/// (checked by property tests in `tests/properties.rs`).
pub trait Message: Clone + std::fmt::Debug {
    /// Appends the wire encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Parses one message from the front of `buf`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if `buf` is truncated or not a valid encoding.
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Parses a message that must occupy `bytes` exactly.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] as for [`decode`](Message::decode), plus
    /// [`DecodeError::TrailingBytes`] if input is left over.
    fn decode_all(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut cursor = bytes;
        let msg = Self::decode(&mut cursor)?;
        if cursor.is_empty() {
            Ok(msg)
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: cursor.len(),
            })
        }
    }

    /// Size of the wire encoding in bits.
    ///
    /// The default encodes into a thread-local scratch buffer so the
    /// per-message accounting in the simulator's hot loop never
    /// allocates (pinned by `tests/alloc_steady_state.rs`); fixed-layout
    /// messages should override it with arithmetic.
    fn bit_size(&self) -> usize {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut buf) => {
                buf.clear();
                self.encode(&mut buf);
                buf.len() * 8
            }
            // Re-entrant call (an `encode` that itself asks for a nested
            // bit size): fall back to a fresh buffer.
            Err(_) => {
                let mut buf = Vec::with_capacity(16);
                self.encode(&mut buf);
                buf.len() * 8
            }
        })
    }
}

/// LEB128-style varint: 7 payload bits per byte.
pub fn put_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Number of bytes [`put_varint`] uses for `x`.
pub fn varint_len(x: u64) -> usize {
    let bits = 64 - x.leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

/// Reads one [`put_varint`] value from the front of `buf`, advancing it.
///
/// # Errors
///
/// [`DecodeError::UnexpectedEof`] on a truncated varint,
/// [`DecodeError::Invalid`] if the value would overflow 64 bits.
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut x: u64 = 0;
    for shift in (0..64).step_by(7) {
        let (&byte, rest) = buf.split_first().ok_or(DecodeError::UnexpectedEof)?;
        *buf = rest;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(DecodeError::Invalid("varint overflows u64"));
        }
        x |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
    }
    Err(DecodeError::Invalid("varint longer than 10 bytes"))
}

/// Reads one byte from the front of `buf`, advancing it.
///
/// # Errors
///
/// [`DecodeError::UnexpectedEof`] on empty input.
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, DecodeError> {
    let (&byte, rest) = buf.split_first().ok_or(DecodeError::UnexpectedEof)?;
    *buf = rest;
    Ok(byte)
}

impl Message for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }

    fn bit_size(&self) -> usize {
        varint_len(*self) * 8
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        get_varint(buf)
    }
}

impl Message for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, u64::from(*self));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        u32::try_from(get_varint(buf)?).map_err(|_| DecodeError::Invalid("value overflows u32"))
    }

    fn bit_size(&self) -> usize {
        varint_len(u64::from(*self)) * 8
    }
}

impl Message for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(u8::from(*self));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match get_u8(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool byte not 0/1")),
        }
    }

    fn bit_size(&self) -> usize {
        8
    }
}

impl Message for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}

    fn decode(_buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(())
    }

    fn bit_size(&self) -> usize {
        0
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: Message> Message for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(t) => {
                buf.put_u8(1);
                t.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match get_u8(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(DecodeError::Invalid("option tag not 0/1")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
        for x in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, x);
            assert_eq!(buf.len(), varint_len(x), "x={x}");
        }
    }

    #[test]
    fn u64_message_size_scales() {
        assert_eq!(5u64.bit_size(), 8);
        assert_eq!((1u64 << 40).bit_size(), 48);
    }

    #[test]
    fn unit_message_free() {
        assert_eq!(().bit_size(), 0);
    }

    #[test]
    fn tuple_message_sums() {
        let m = (3u64, 300u64);
        assert_eq!(m.bit_size(), 8 + 16);
    }

    #[test]
    fn option_message_tagged() {
        assert_eq!(Option::<u64>::None.bit_size(), 8);
        assert_eq!(Some(5u64).bit_size(), 16);
    }

    #[test]
    fn bool_message() {
        assert_eq!(true.bit_size(), 8);
    }

    fn roundtrip<M: Message + PartialEq>(m: &M) {
        let mut buf = Vec::new();
        m.encode(&mut buf);
        assert_eq!(M::decode_all(&buf).as_ref(), Ok(m));
    }

    #[test]
    fn decode_inverts_encode() {
        for x in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            roundtrip(&x);
        }
        roundtrip(&u32::MAX);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&());
        roundtrip(&(7u64, Some(300u64)));
        roundtrip(&Option::<u64>::None);
        roundtrip(&Some((1u32, false)));
    }

    #[test]
    fn decode_error_paths() {
        // Truncated varint.
        assert_eq!(u64::decode_all(&[0x80]), Err(DecodeError::UnexpectedEof));
        // Empty input for a tagged type.
        assert_eq!(bool::decode_all(&[]), Err(DecodeError::UnexpectedEof));
        // Bad tag bytes.
        assert!(matches!(
            bool::decode_all(&[2]),
            Err(DecodeError::Invalid(_))
        ));
        assert!(matches!(
            Option::<u64>::decode_all(&[9]),
            Err(DecodeError::Invalid(_))
        ));
        // Trailing bytes rejected by decode_all but fine for decode.
        assert_eq!(
            u64::decode_all(&[5, 6]),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
        let mut cursor: &[u8] = &[5, 6];
        assert_eq!(u64::decode(&mut cursor), Ok(5));
        assert_eq!(cursor, &[6]);
        // u32 overflow.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::from(u32::MAX) + 1);
        assert!(matches!(
            u32::decode_all(&buf),
            Err(DecodeError::Invalid(_))
        ));
        // Varint overflowing 64 bits (11 × continuation).
        let overlong = [0xffu8; 11];
        assert!(u64::decode_all(&overlong).is_err());
    }

    #[test]
    fn decode_error_display() {
        assert!(DecodeError::UnexpectedEof
            .to_string()
            .contains("end of input"));
        assert!(DecodeError::Invalid("x").to_string().contains('x'));
        assert!(DecodeError::TrailingBytes { remaining: 3 }
            .to_string()
            .contains('3'));
    }
}
