//! Wire encoding and bit accounting for CONGEST messages.
//!
//! The CONGEST model bounds each message to `O(log n)` bits. To make that
//! bound *checkable* rather than aspirational, every message type must
//! [`encode`](Message::encode) itself into bytes; the simulator measures
//! the encoding of every message it delivers and rejects runs whose
//! messages exceed the bandwidth budget.

use bytes::BufMut;

/// A message that knows its own wire encoding.
///
/// Implementations should encode compactly — the whole point is honest
/// `O(log n)`-bit accounting. Varint encoding is provided via
/// [`put_varint`] for integer fields whose typical values are small.
pub trait Message: Clone + std::fmt::Debug {
    /// Appends the wire encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Size of the wire encoding in bits.
    fn bit_size(&self) -> usize {
        let mut buf = Vec::with_capacity(16);
        self.encode(&mut buf);
        buf.len() * 8
    }
}

/// LEB128-style varint: 7 payload bits per byte.
pub fn put_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Number of bytes [`put_varint`] uses for `x`.
pub fn varint_len(x: u64) -> usize {
    let bits = 64 - x.leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

impl Message for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }
}

impl Message for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, u64::from(*self));
    }
}

impl Message for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(u8::from(*self));
    }
}

impl Message for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}

    fn bit_size(&self) -> usize {
        0
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<T: Message> Message for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(t) => {
                buf.put_u8(1);
                t.encode(buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
        for x in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, x);
            assert_eq!(buf.len(), varint_len(x), "x={x}");
        }
    }

    #[test]
    fn u64_message_size_scales() {
        assert_eq!(5u64.bit_size(), 8);
        assert_eq!((1u64 << 40).bit_size(), 48);
    }

    #[test]
    fn unit_message_free() {
        assert_eq!(().bit_size(), 0);
    }

    #[test]
    fn tuple_message_sums() {
        let m = (3u64, 300u64);
        assert_eq!(m.bit_size(), 8 + 16);
    }

    #[test]
    fn option_message_tagged() {
        assert_eq!(Option::<u64>::None.bit_size(), 8);
        assert_eq!(Some(5u64).bit_size(), 16);
    }

    #[test]
    fn bool_message() {
        assert_eq!(true.bit_size(), 8);
    }
}
