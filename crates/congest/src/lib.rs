#![warn(missing_docs)]
//! A synchronous CONGEST-model simulator.
//!
//! The CONGEST model (Peleg) is a synchronous message-passing network: in
//! each round every node may send one message of `O(log n)` bits along each
//! incident edge, receive its neighbors' messages, and update local state.
//! The paper's round-complexity claims are all stated in this model, so the
//! simulator's job is to make *round counts and message sizes* exact, not
//! to model wall-clock time.
//!
//! Pieces:
//!
//! * [`protocol::Protocol`] — a distributed algorithm as a per-node state
//!   machine (init / round / termination predicate).
//! * [`simulator::Simulator`] — drives a protocol over a graph until every
//!   node terminates, collecting [`metrics::Metrics`].
//! * [`message::Message`] — wire encoding with per-message bit accounting,
//!   checked against the CONGEST budget `B = bandwidth_factor · ⌈log₂ n⌉`.
//! * [`rng`] — counter-based per-node randomness, so a protocol execution
//!   and a centralized "fast path" re-implementation of the same algorithm
//!   can draw *identical* random bits and be compared transcript-for-
//!   transcript.
//!
//! # Example
//!
//! ```
//! use arbmis_congest::prelude::*;
//! use arbmis_graph::gen;
//!
//! // One round of "send your id to all neighbors; remember the max".
//! struct MaxId;
//! #[derive(Clone, Debug)]
//! struct St { best: u64, done: bool }
//! impl Protocol for MaxId {
//!     type State = St;
//!     type Msg = u64;
//!     fn init(&self, node: &NodeInfo) -> St {
//!         St { best: node.id as u64, done: false }
//!     }
//!     fn round(&self, st: &mut St, node: &NodeInfo, inbox: &Inbox<u64>) -> Outgoing<u64> {
//!         match node.round {
//!             0 => Outgoing::Broadcast(node.id as u64),
//!             _ => {
//!                 for (_, &id) in inbox.iter() {
//!                     st.best = st.best.max(id);
//!                 }
//!                 st.done = true;
//!                 Outgoing::Halt
//!             }
//!         }
//!     }
//!     fn is_done(&self, st: &St) -> bool { st.done }
//! }
//!
//! let g = gen::complete(5);
//! let run = Simulator::new(&g, 42).run(&MaxId, 10).unwrap();
//! assert_eq!(run.metrics.rounds, 2);
//! assert!(run.states.iter().all(|s| s.best == 4));
//! ```

pub mod algorithms;
pub mod bitmask;
pub mod frontier;
pub mod message;
pub mod metrics;
pub mod parallel;
pub mod protocol;
pub mod rng;
pub mod simulator;
pub mod transcript;

pub use bitmask::BitMask;
pub use frontier::Frontier;
pub use message::{DecodeError, Message};
pub use metrics::Metrics;
pub use parallel::{default_parallelism, execute_indexed, set_default_parallelism, Parallelism};
pub use protocol::{Inbox, NodeInfo, Outgoing, Protocol};
pub use simulator::{Simulator, SimulatorError, SimulatorRun, Stepper};

/// Convenient glob import for protocol implementations.
pub mod prelude {
    pub use crate::message::{DecodeError, Message};
    pub use crate::metrics::Metrics;
    pub use crate::parallel::Parallelism;
    pub use crate::protocol::{Inbox, NodeInfo, Outgoing, Protocol};
    pub use crate::rng::{self, NodeRng};
    pub use crate::simulator::{Simulator, SimulatorError, SimulatorRun};
}
