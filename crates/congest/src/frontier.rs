//! Sparse active-set bookkeeping for the round engines.
//!
//! A [`Frontier`] is a two-level bitset over node ids: a packed
//! [`BitMask`] (one word per 64 nodes) plus a summary word per 64 words,
//! so membership updates are O(1), iteration is ascending and
//! proportional to the set bits (plus `n/4096` summary words), and
//! clearing only touches dirty words. The engines double-buffer two of
//! these per round — see DESIGN.md §10. The flat engine additionally
//! reads the inner mask directly ([`Frontier::mask`]) for dense
//! word-level sweeps and word-aligned parallel chunking.

use crate::bitmask::BitMask;
use arbmis_graph::NodeId;

/// A two-level bitset over `0..n` with ascending iteration.
#[derive(Clone, Debug)]
pub struct Frontier {
    /// The membership bits; bit `v % 64` of word `v / 64` ⇔ `v` is set.
    mask: BitMask,
    /// Bit `w % 64` of `summary[w / 64]` ⇔ `mask.words()[w] != 0`.
    summary: Vec<u64>,
}

impl Frontier {
    /// An empty set over `0..n`.
    pub fn new(n: usize) -> Self {
        let nwords = n.div_ceil(64);
        Frontier {
            mask: BitMask::new(n),
            summary: vec![0; nwords.div_ceil(64)],
        }
    }

    /// Inserts `v` (idempotent).
    #[inline]
    pub fn insert(&mut self, v: NodeId) {
        self.mask.set(v);
        let w = v >> 6;
        self.summary[w >> 6] |= 1u64 << (w & 63);
    }

    /// Removes `v` (idempotent).
    #[inline]
    pub fn remove(&mut self, v: NodeId) {
        self.mask.clear(v);
        let w = v >> 6;
        if self.mask.words()[w] == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.mask.test(v)
    }

    /// The packed membership mask (for dense word-level sweeps).
    #[inline]
    pub fn mask(&self) -> &BitMask {
        &self.mask
    }

    /// Sets every bit in `0..n` in bulk (word fills, no per-node loop).
    pub fn fill(&mut self) {
        self.mask.set_all();
        let nwords = self.mask.words().len();
        self.summary.fill(u64::MAX);
        let tail = nwords & 63;
        if tail != 0 {
            *self.summary.last_mut().expect("tail implies a word") = (1u64 << tail) - 1;
        }
        if nwords == 0 {
            self.summary.fill(0);
        }
    }

    /// Calls `f` with each word index that currently holds set bits, in
    /// ascending order. This is the summary-walk [`clear`](Self::clear)
    /// uses; scratch masks that shadow a frontier (the flat engine's
    /// defeat mask) reuse it to reset only the words a sweep can touch.
    pub fn for_each_dirty_word(&self, mut f: impl FnMut(usize)) {
        for (s, &sw) in self.summary.iter().enumerate() {
            let mut sbits = sw;
            while sbits != 0 {
                let w = (s << 6) + sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                f(w);
            }
        }
    }

    /// Empties the set, touching only dirty words.
    pub fn clear(&mut self) {
        let words = self.mask.words_mut();
        for (s, &sw) in self.summary.iter().enumerate() {
            let mut sbits = sw;
            while sbits != 0 {
                let w = (s << 6) + sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                words[w] = 0;
            }
        }
        self.summary.fill(0);
    }

    /// Iterates members in ascending order. The set must not be mutated
    /// while the iterator is live (enforced by the borrow).
    pub fn iter(&self) -> FrontierIter<'_> {
        FrontierIter {
            frontier: self,
            sidx: 0,
            sbits: self.summary.first().copied().unwrap_or(0),
            widx: 0,
            wbits: 0,
        }
    }
}

/// Ascending iterator over a [`Frontier`].
pub struct FrontierIter<'a> {
    frontier: &'a Frontier,
    /// Current summary word index.
    sidx: usize,
    /// Unconsumed bits of `summary[sidx]`.
    sbits: u64,
    /// Current word index (valid while `wbits != 0`).
    widx: usize,
    /// Unconsumed bits of `words[widx]`.
    wbits: u64,
}

impl Iterator for FrontierIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.wbits != 0 {
                let v = (self.widx << 6) + self.wbits.trailing_zeros() as usize;
                self.wbits &= self.wbits - 1;
                return Some(v);
            }
            if self.sbits != 0 {
                self.widx = (self.sidx << 6) + self.sbits.trailing_zeros() as usize;
                self.sbits &= self.sbits - 1;
                self.wbits = self.frontier.mask.words()[self.widx];
                continue;
            }
            self.sidx += 1;
            if self.sidx >= self.frontier.summary.len() {
                return None;
            }
            self.sbits = self.frontier.summary[self.sidx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_iterate() {
        let mut f = Frontier::new(300);
        for v in [0, 1, 63, 64, 65, 200, 299] {
            f.insert(v);
        }
        f.insert(65); // idempotent
        assert!(f.contains(65));
        f.remove(65);
        f.remove(65); // idempotent
        assert!(!f.contains(65));
        let got: Vec<usize> = f.iter().collect();
        assert_eq!(got, vec![0, 1, 63, 64, 200, 299]);
    }

    #[test]
    fn clear_empties_and_reuses() {
        let mut f = Frontier::new(10_000);
        for v in (0..10_000).step_by(97) {
            f.insert(v);
        }
        f.clear();
        assert_eq!(f.iter().count(), 0);
        f.insert(9_999);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![9_999]);
    }

    #[test]
    fn ascending_order_matches_reference_across_patterns() {
        // Dense, sparse, and word-boundary patterns against a Vec model.
        for (n, step) in [(1, 1), (64, 1), (65, 2), (4096, 31), (5000, 1)] {
            let mut f = Frontier::new(n);
            let expect: Vec<usize> = (0..n).step_by(step).collect();
            // Insert in a scrambled order; iteration must sort.
            for &v in expect.iter().rev() {
                f.insert(v);
            }
            assert_eq!(f.iter().collect::<Vec<_>>(), expect, "n={n} step={step}");
        }
    }

    #[test]
    fn empty_and_tiny_sets() {
        let f = Frontier::new(0);
        assert_eq!(f.iter().count(), 0);
        let mut f = Frontier::new(1);
        assert_eq!(f.iter().count(), 0);
        f.insert(0);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn fill_matches_inserting_every_node() {
        for n in [0, 1, 63, 64, 65, 4096, 4100, 5000] {
            let mut bulk = Frontier::new(n);
            bulk.fill();
            let mut one_by_one = Frontier::new(n);
            for v in 0..n {
                one_by_one.insert(v);
            }
            assert_eq!(
                bulk.iter().collect::<Vec<_>>(),
                one_by_one.iter().collect::<Vec<_>>(),
                "n={n}"
            );
            assert_eq!(bulk.mask(), one_by_one.mask(), "n={n}");
            // Removal keeps the summary consistent after a bulk fill.
            if n > 0 {
                bulk.remove(n - 1);
                assert_eq!(bulk.iter().count(), n - 1);
            }
            bulk.clear();
            assert_eq!(bulk.iter().count(), 0);
        }
    }

    #[test]
    fn mask_view_matches_membership() {
        let mut f = Frontier::new(130);
        for v in [0, 64, 129] {
            f.insert(v);
        }
        assert_eq!(f.mask().iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(f.mask().count_ones(), 3);
    }
}
