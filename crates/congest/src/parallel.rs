//! Parallel execution configuration for the round engine.
//!
//! The parallel engine (see [`crate::Simulator::run_parallel`]) fans each
//! synchronous round's node activations across a scoped thread pool. Its
//! determinism contract: for a fixed `(graph, seed, protocol)`, the
//! parallel engine produces *bit-identical* results to the serial engine
//! at every thread count — same final states, same [`crate::Metrics`],
//! same transcript digest, same error on protocol misbehaviour. This
//! holds because
//!
//! 1. node randomness is counter-based ([`crate::rng`]): a draw depends
//!    only on `(seed, node, round, tag)`, never on scheduling;
//! 2. nodes are partitioned into contiguous id-ranges ("chunks") whose
//!    boundaries are a pure function of `(n, threads)` — workers steal
//!    whole chunks, and each chunk's sends are buffered locally in node
//!    order;
//! 3. chunk buffers are merged *in chunk index order* (= ascending node
//!    order), which replays exactly the send sequence the serial
//!    `for v in 0..n` loop would have produced.
//!
//! Thread count therefore affects wall-clock only, never results.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many chunks each worker thread should get on average. More chunks
/// give better work-stealing balance on skewed degree distributions, at
/// the cost of slightly more merge bookkeeping.
pub(crate) const CHUNKS_PER_THREAD: usize = 4;

/// Thread-count policy for [`crate::Simulator::run_parallel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded: `run_parallel` behaves exactly like `run`.
    Serial,
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// Exactly this many worker threads (0 is treated as 1).
    Threads(usize),
}

impl Parallelism {
    /// Resolves the policy to a concrete worker count for an `n`-node
    /// simulation. Never returns 0; never exceeds `n`.
    pub fn effective_threads(self, n: usize) -> usize {
        let raw = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            Parallelism::Threads(t) => t.max(1),
        };
        raw.min(n.max(1))
    }
}

/// Contiguous node-id chunk boundaries: a pure function of `(n, threads)`
/// so a given configuration always produces the same partition.
pub(crate) fn chunk_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunks = (threads * CHUNKS_PER_THREAD).clamp(1, n.max(1));
    (0..chunks)
        .map(|i| (i * n / chunks, (i + 1) * n / chunks))
        .collect()
}

/// Runs `f` over the item indices `0..items` on a work-stealing crossbeam
/// pool sized by `parallelism`, returning the results **in item-index
/// order** regardless of which worker ran what.
///
/// This is the generalized form of the round engine's chunk pool: workers
/// claim the next unclaimed item off a shared atomic counter (whole-item
/// stealing), so load imbalance between items self-corrects, while the
/// result vector is assembled purely by index — scheduling can never leak
/// into output order. `f` receives `(worker_index, item_index)`; it must
/// be a pure function of the item index for the determinism contract to
/// carry over (worker index is for timing-class bookkeeping only).
///
/// With one effective thread (or ≤ 1 item) no pool is spun up and `f`
/// runs inline in index order, with `worker_index = 0`.
pub fn execute_indexed<T, F>(items: usize, parallelism: Parallelism, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let threads = parallelism.effective_threads(items);
    if threads <= 1 || items <= 1 {
        return (0..items).map(|i| f(0, i)).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..items).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for w in 0..threads {
            let (slots, next, f) = (&slots, &next, &f);
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                *slots[i].lock() = Some(f(w, i));
            });
        }
    })
    .expect("execute_indexed worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("claimed item left no result"))
        .collect()
}

/// Process-wide default [`Parallelism`], encoded as:
/// 0 = `Auto`, 1 = `Serial`, `t + 1` = `Threads(t)`.
static DEFAULT_PARALLELISM: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default parallelism picked up by
/// [`crate::Simulator::new`]. Benchmarks and the `experiments` binary use
/// this to route every simulation through one `--threads` setting.
pub fn set_default_parallelism(p: Parallelism) {
    let enc = match p {
        Parallelism::Auto => 0,
        Parallelism::Serial => 1,
        Parallelism::Threads(t) => t.saturating_add(1).max(2),
    };
    DEFAULT_PARALLELISM.store(enc, Ordering::Relaxed);
}

/// The current process-wide default parallelism (initially
/// [`Parallelism::Auto`]).
pub fn default_parallelism() -> Parallelism {
    match DEFAULT_PARALLELISM.load(Ordering::Relaxed) {
        0 => Parallelism::Auto,
        1 => Parallelism::Serial,
        t => Parallelism::Threads(t - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_partition_exactly() {
        for n in [0, 1, 2, 7, 100, 1001] {
            for threads in [1, 2, 4, 8] {
                let bounds = chunk_bounds(n, threads);
                assert!(!bounds.is_empty());
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds.last().unwrap().1, n);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                }
            }
        }
    }

    #[test]
    fn chunk_bounds_are_deterministic() {
        assert_eq!(chunk_bounds(1000, 4), chunk_bounds(1000, 4));
    }

    #[test]
    fn effective_threads_never_zero() {
        assert_eq!(Parallelism::Serial.effective_threads(100), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(100), 1);
        assert_eq!(Parallelism::Threads(4).effective_threads(100), 4);
        assert_eq!(Parallelism::Threads(64).effective_threads(3), 3);
        assert!(Parallelism::Auto.effective_threads(1_000_000) >= 1);
        assert_eq!(Parallelism::Auto.effective_threads(0), 1);
    }

    #[test]
    fn execute_indexed_preserves_item_order() {
        for threads in [1, 2, 4, 8] {
            let out = execute_indexed(100, Parallelism::Threads(threads), |_w, i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(execute_indexed(0, Parallelism::Auto, |_, i| i).is_empty());
        assert_eq!(
            execute_indexed(1, Parallelism::Auto, |w, i| (w, i)),
            [(0, 0)]
        );
    }

    #[test]
    fn execute_indexed_runs_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = execute_indexed(257, Parallelism::Threads(4), |_w, i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn parallelism_encoding_roundtrips() {
        for p in [
            Parallelism::Auto,
            Parallelism::Serial,
            Parallelism::Threads(1),
            Parallelism::Threads(8),
        ] {
            set_default_parallelism(p);
            assert_eq!(default_parallelism(), p);
        }
        // Restore the documented initial default for other tests.
        set_default_parallelism(Parallelism::Auto);
    }
}
