//! Parallel execution configuration for the round engine.
//!
//! The parallel engine (see [`crate::Simulator::run_parallel`]) fans each
//! synchronous round's node activations across a scoped thread pool. Its
//! determinism contract: for a fixed `(graph, seed, protocol)`, the
//! parallel engine produces *bit-identical* results to the serial engine
//! at every thread count — same final states, same [`crate::Metrics`],
//! same transcript digest, same error on protocol misbehaviour. This
//! holds because
//!
//! 1. node randomness is counter-based ([`crate::rng`]): a draw depends
//!    only on `(seed, node, round, tag)`, never on scheduling;
//! 2. nodes are partitioned into contiguous id-ranges ("chunks") whose
//!    boundaries are a pure function of `(n, threads)` — workers steal
//!    whole chunks, and each chunk's sends are buffered locally in node
//!    order;
//! 3. chunk buffers are merged *in chunk index order* (= ascending node
//!    order), which replays exactly the send sequence the serial
//!    `for v in 0..n` loop would have produced.
//!
//! Thread count therefore affects wall-clock only, never results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many chunks each worker thread should get on average. More chunks
/// give better work-stealing balance on skewed degree distributions, at
/// the cost of slightly more merge bookkeeping.
pub(crate) const CHUNKS_PER_THREAD: usize = 4;

/// Thread-count policy for [`crate::Simulator::run_parallel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded: `run_parallel` behaves exactly like `run`.
    Serial,
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// Exactly this many worker threads (0 is treated as 1).
    Threads(usize),
}

impl Parallelism {
    /// Resolves the policy to a concrete worker count for an `n`-node
    /// simulation. Never returns 0; never exceeds `n`.
    pub fn effective_threads(self, n: usize) -> usize {
        let raw = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            Parallelism::Threads(t) => t.max(1),
        };
        raw.min(n.max(1))
    }
}

/// Contiguous node-id chunk boundaries: a pure function of `(n, threads)`
/// so a given configuration always produces the same partition.
pub(crate) fn chunk_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunks = (threads * CHUNKS_PER_THREAD).clamp(1, n.max(1));
    (0..chunks)
        .map(|i| (i * n / chunks, (i + 1) * n / chunks))
        .collect()
}

/// Process-wide default [`Parallelism`], encoded as:
/// 0 = `Auto`, 1 = `Serial`, `t + 1` = `Threads(t)`.
static DEFAULT_PARALLELISM: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default parallelism picked up by
/// [`crate::Simulator::new`]. Benchmarks and the `experiments` binary use
/// this to route every simulation through one `--threads` setting.
pub fn set_default_parallelism(p: Parallelism) {
    let enc = match p {
        Parallelism::Auto => 0,
        Parallelism::Serial => 1,
        Parallelism::Threads(t) => t.saturating_add(1).max(2),
    };
    DEFAULT_PARALLELISM.store(enc, Ordering::Relaxed);
}

/// The current process-wide default parallelism (initially
/// [`Parallelism::Auto`]).
pub fn default_parallelism() -> Parallelism {
    match DEFAULT_PARALLELISM.load(Ordering::Relaxed) {
        0 => Parallelism::Auto,
        1 => Parallelism::Serial,
        t => Parallelism::Threads(t - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_partition_exactly() {
        for n in [0, 1, 2, 7, 100, 1001] {
            for threads in [1, 2, 4, 8] {
                let bounds = chunk_bounds(n, threads);
                assert!(!bounds.is_empty());
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds.last().unwrap().1, n);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                }
            }
        }
    }

    #[test]
    fn chunk_bounds_are_deterministic() {
        assert_eq!(chunk_bounds(1000, 4), chunk_bounds(1000, 4));
    }

    #[test]
    fn effective_threads_never_zero() {
        assert_eq!(Parallelism::Serial.effective_threads(100), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(100), 1);
        assert_eq!(Parallelism::Threads(4).effective_threads(100), 4);
        assert_eq!(Parallelism::Threads(64).effective_threads(3), 3);
        assert!(Parallelism::Auto.effective_threads(1_000_000) >= 1);
        assert_eq!(Parallelism::Auto.effective_threads(0), 1);
    }

    #[test]
    fn parallelism_encoding_roundtrips() {
        for p in [
            Parallelism::Auto,
            Parallelism::Serial,
            Parallelism::Threads(1),
            Parallelism::Threads(8),
        ] {
            set_default_parallelism(p);
            assert_eq!(default_parallelism(), p);
        }
        // Restore the documented initial default for other tests.
        set_default_parallelism(Parallelism::Auto);
    }
}
