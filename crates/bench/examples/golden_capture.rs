//! Prints the golden fingerprints used by `tests/message_plane.rs`:
//! transcript digest, metrics, and a state fingerprint for each
//! broadcast-heavy stress workload. Run once on a known-good engine and
//! paste the output into the test's golden table.

use arbmis_congest::Simulator;
use arbmis_core::protocols::{GhaffariProtocol, LubyProtocol, MetivierProtocol, MisNodeState};
use arbmis_graph::{gen, Graph};
use rand::SeedableRng;

fn fnv(mut h: u64, x: u64) -> u64 {
    h ^= x;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

fn state_fingerprint(states: &[MisNodeState]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in states {
        h = fnv(
            h,
            u64::from(s.in_mis) | u64::from(s.active) << 1 | u64::from(s.bad) << 2,
        );
    }
    h
}

fn capture(name: &str, g: &Graph, seed: u64, which: u8) {
    let sim = Simulator::new(g, seed);
    let (run, t) = match which {
        0 => sim.run_traced(&MetivierProtocol, 100_000).unwrap(),
        1 => sim.run_traced(&LubyProtocol, 100_000).unwrap(),
        _ => sim.run_traced(&GhaffariProtocol, 100_000).unwrap(),
    };
    println!(
        "(\"{name}\", {:#018x}, {}, {}, {}, {}, {:#018x}),",
        t.digest(),
        run.metrics.rounds,
        run.metrics.messages,
        run.metrics.bits,
        run.metrics.max_message_bits,
        state_fingerprint(&run.states),
    );
}

fn main() {
    let mut r11 = rand::rngs::StdRng::seed_from_u64(11);
    let mut r12 = rand::rngs::StdRng::seed_from_u64(12);
    capture("gnp300_dense_metivier", &gen::gnp(300, 0.2, &mut r11), 7, 0);
    capture("gnp150_half_luby", &gen::gnp(150, 0.5, &mut r12), 8, 1);
    capture("star400_metivier", &gen::star(400), 9, 0);
    capture("star257_ghaffari", &gen::star(257), 10, 2);
}
