//! Benchmarks of the workload generators.

use arbmis_graph::gen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("prufer_tree", n), &n, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| black_box(gen::random_tree_prufer(n, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("forest_union3", n), &n, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| black_box(gen::forest_union(n, 3, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("apollonian", n), &n, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            b.iter(|| black_box(gen::apollonian(n, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("ktree3", n), &n, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            b.iter(|| black_box(gen::random_ktree(n, 3, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("ba3", n), &n, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            b.iter(|| black_box(gen::barabasi_albert(n, 3, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("gnp_d8", n), &n, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            b.iter(|| black_box(gen::gnp_with_expected_degree(n, 8.0, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
