//! Benchmarks of the CONGEST simulator: message-passing overhead vs the
//! centralized fast paths of the same algorithms.

use arbmis_congest::{Parallelism, Simulator};
use arbmis_core::metivier;
use arbmis_core::protocols::{GhaffariProtocol, LubyProtocol, MetivierProtocol};
use arbmis_graph::gen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_congest(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gen::forest_union(n, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("metivier_fast", n), &g, |b, g| {
            b.iter(|| black_box(metivier::run(g, 3)))
        });
        group.bench_with_input(BenchmarkId::new("metivier_protocol", n), &g, |b, g| {
            b.iter(|| {
                black_box(
                    Simulator::new(g, 3)
                        .run(&MetivierProtocol, 100_000)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("luby_protocol", n), &g, |b, g| {
            b.iter(|| black_box(Simulator::new(g, 3).run(&LubyProtocol, 100_000).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("ghaffari_protocol", n), &g, |b, g| {
            b.iter(|| {
                black_box(
                    Simulator::new(g, 3)
                        .run(&GhaffariProtocol, 100_000)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Serial vs parallel round engine on the workloads from the acceptance
/// criteria: G(n, p = 4/n) and a random k-tree. The outputs are
/// bit-identical (asserted by `tests/parallel_equivalence.rs`); only
/// wall-clock differs.
fn bench_congest_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest_parallel");
    group.sample_size(10);

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let n = 50_000;
    let gnp = gen::gnp(n, 4.0 / n as f64, &mut rng);
    let ktree = gen::random_ktree(20_000, 3, &mut rng);

    for (name, g) in [("gnp50k_d4", &gnp), ("ktree20k_k3", &ktree)] {
        group.bench_with_input(BenchmarkId::new("metivier_serial", name), g, |b, g| {
            b.iter(|| {
                let sim = Simulator::new(g, 3).with_parallelism(Parallelism::Serial);
                black_box(sim.run(&MetivierProtocol, 100_000).unwrap())
            })
        });
        for threads in [2usize, 4, 8] {
            let id = BenchmarkId::new(format!("metivier_par{threads}"), name);
            group.bench_with_input(id, g, |b, g| {
                b.iter(|| {
                    let sim = Simulator::new(g, 3).with_parallelism(Parallelism::Threads(threads));
                    black_box(sim.run_parallel(&MetivierProtocol, 100_000).unwrap())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_congest, bench_congest_parallel);
criterion_main!(benches);
