//! Benchmarks of the CONGEST simulator: message-passing overhead vs the
//! centralized fast paths of the same algorithms.

use arbmis_congest::Simulator;
use arbmis_core::metivier;
use arbmis_core::protocols::{GhaffariProtocol, LubyProtocol, MetivierProtocol};
use arbmis_graph::gen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_congest(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gen::forest_union(n, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("metivier_fast", n), &g, |b, g| {
            b.iter(|| black_box(metivier::run(g, 3)))
        });
        group.bench_with_input(BenchmarkId::new("metivier_protocol", n), &g, |b, g| {
            b.iter(|| black_box(Simulator::new(g, 3).run(&MetivierProtocol, 100_000).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("luby_protocol", n), &g, |b, g| {
            b.iter(|| black_box(Simulator::new(g, 3).run(&LubyProtocol, 100_000).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("ghaffari_protocol", n), &g, |b, g| {
            b.iter(|| black_box(Simulator::new(g, 3).run(&GhaffariProtocol, 100_000).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_congest);
criterion_main!(benches);
