//! Wall-clock benchmarks of the MIS algorithms across graph families
//! (round counts are the paper's metric — see the `experiments` binary —
//! but wall time validates the implementations are usable at scale).

use arbmis_core::{arb_mis, ghaffari, greedy, luby, metivier, ArbMisConfig};
use arbmis_graph::gen::{GraphFamily, GraphSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn graphs() -> Vec<(String, arbmis_graph::Graph, usize)> {
    let n = 10_000;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    vec![
        (
            "tree".into(),
            GraphSpec::new(GraphFamily::RandomTree, n).generate(&mut rng),
            1,
        ),
        (
            "forests2".into(),
            GraphSpec::new(GraphFamily::ForestUnion { alpha: 2 }, n).generate(&mut rng),
            2,
        ),
        (
            "apollonian".into(),
            GraphSpec::new(GraphFamily::Apollonian, n).generate(&mut rng),
            3,
        ),
        (
            "gnp8".into(),
            GraphSpec::new(GraphFamily::GnpAvgDegree { d: 8.0 }, n).generate(&mut rng),
            4,
        ),
    ]
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis_algorithms");
    group.sample_size(10);
    for (name, g, alpha) in graphs() {
        group.bench_with_input(BenchmarkId::new("greedy", &name), &g, |b, g| {
            b.iter(|| black_box(greedy::greedy_mis(g)))
        });
        group.bench_with_input(BenchmarkId::new("luby", &name), &g, |b, g| {
            b.iter(|| black_box(luby::run(g, 7)))
        });
        group.bench_with_input(BenchmarkId::new("metivier", &name), &g, |b, g| {
            b.iter(|| black_box(metivier::run(g, 7)))
        });
        group.bench_with_input(BenchmarkId::new("ghaffari", &name), &g, |b, g| {
            b.iter(|| black_box(ghaffari::run(g, 7)))
        });
        group.bench_with_input(BenchmarkId::new("arbmis", &name), &g, |b, g| {
            b.iter(|| black_box(arb_mis(g, &ArbMisConfig::new(alpha, 7))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
