//! Benchmarks of the read-k toolkit: event evaluation and Monte-Carlo
//! throughput.

use arbmis_graph::gen;
use arbmis_graph::orientation::Orientation;
use arbmis_readk::events::EventScenario;
use arbmis_readk::family::sliding_window_family;
use arbmis_readk::montecarlo::estimate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_readk(c: &mut Criterion) {
    let mut group = c.benchmark_group("readk");
    group.sample_size(10);

    let fam = sliding_window_family(256, 4, 1, 0.3);
    group.bench_function("family_sample_count_n256", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(fam.sample_count(1, t))
        })
    });

    group.bench_function("montecarlo_10k_trials", |b| {
        b.iter(|| {
            black_box(estimate(10_000, |t| {
                arbmis_congest::rng::draw(1, 0, t, 0).is_multiple_of(3)
            }))
        })
    });

    for n in [2_000usize, 10_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let g = gen::forest_union(n, 3, &mut rng);
        let o = Orientation::by_degeneracy(&g);
        let sc = EventScenario::new(&g, &o, (0..500.min(n)).collect(), None);
        group.bench_with_input(BenchmarkId::new("event3_eval", n), &sc, |b, sc| {
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                let pri = sc.sample_priorities(5, t);
                black_box(sc.event3_eliminated(&pri).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_readk);
criterion_main!(benches);
