//! Benchmarks of the analysis substrate: degeneracy orderings,
//! orientations, forest decompositions, and the H-partition.

use arbmis_core::forest_decomp;
use arbmis_graph::orientation::{degeneracy_ordering, Orientation};
use arbmis_graph::{forest, gen};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_orientation(c: &mut Criterion) {
    let mut group = c.benchmark_group("orientation");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gen::random_ktree(n, 3, &mut rng);
        group.bench_with_input(BenchmarkId::new("degeneracy_ordering", n), &g, |b, g| {
            b.iter(|| black_box(degeneracy_ordering(g)))
        });
        group.bench_with_input(BenchmarkId::new("orientation", n), &g, |b, g| {
            b.iter(|| black_box(Orientation::by_degeneracy(g)))
        });
        group.bench_with_input(BenchmarkId::new("static_forests", n), &g, |b, g| {
            b.iter(|| black_box(forest::forests_by_degeneracy(g)))
        });
        group.bench_with_input(BenchmarkId::new("h_partition", n), &g, |b, g| {
            b.iter(|| black_box(forest_decomp::h_partition(g, 3, 1.0).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("be_forest_decomp", n), &g, |b, g| {
            b.iter(|| black_box(forest_decomp::forest_decomposition(g, 3, 1.0).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orientation);
criterion_main!(benches);
