#![warn(missing_docs)]
//! Experiment harness support: table formatting, experiment registry
//! plumbing, and shared workload helpers.
//!
//! The binary `experiments` (in `src/bin`) regenerates every quantitative
//! claim of the paper (the E1–E16 index in DESIGN.md / EXPERIMENTS.md).
//! This library keeps the presentation layer testable.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

pub mod backend;
pub mod cache;
pub mod cell;
pub mod churn;
pub mod exps;
pub mod flatref;
pub mod sched;

/// A rendered experiment: identifier, headline, table, commentary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"E3"`.
    pub id: String,
    /// One-line title naming the claim being reproduced.
    pub title: String,
    /// The regenerated table.
    pub table: Table,
    /// Free-form notes: what to look for, what held, caveats.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Renders the report as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}\n", self.id, self.title);
        out.push_str(&self.table.to_markdown());
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out.push('\n');
        out
    }

    /// Renders the report as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==\n", self.id, self.title);
        out.push_str(&self.table.to_text());
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out.push('\n');
        out
    }
}

/// A simple string table with aligned plain-text and markdown renderers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Column widths for aligned output.
    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            cells
                .iter()
                .zip(w)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &w));
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &w));
        }
        out
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a probability with enough precision for small tails.
pub fn fmt_p(p: f64) -> String {
    if p == 0.0 {
        "0".into()
    } else if p >= 0.001 {
        format!("{p:.4}")
    } else {
        format!("{p:.2e}")
    }
}

/// Formats a float to 2 decimals.
pub fn fmt_f(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_text_alignment() {
        let mut t = Table::new(["a", "long-header"]);
        t.push_row(["1", "2"]);
        t.push_row(["333", "4"]);
        let txt = t.to_text();
        assert!(txt.contains("long-header"));
        assert_eq!(txt.lines().count(), 4);
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn markdown_render() {
        let mut t = Table::new(["x"]);
        t.push_row(["1"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| x |"));
        assert!(md.contains("|---|"));
    }

    #[test]
    fn report_markdown() {
        let r = ExperimentReport {
            id: "E0".into(),
            title: "smoke".into(),
            table: Table::new(["c"]),
            notes: vec!["note".into()],
        };
        let md = r.to_markdown();
        assert!(md.contains("## E0"));
        assert!(md.contains("> note"));
        assert!(r.to_text().contains("E0"));
    }

    #[test]
    fn probability_formatting() {
        assert_eq!(fmt_p(0.0), "0");
        assert_eq!(fmt_p(0.25), "0.2500");
        assert!(fmt_p(1e-7).contains('e'));
    }
}
