//! Process-global MIS backend selection for the experiment suite.
//!
//! The experiments report *fast-path* round counts (`iterations × 3`).
//! Routing them through [`arbmis_flat`]'s backends must not change a
//! single byte of any report — the backends are round-identical to the
//! fast path modulo the final all-halt round they honestly count — so
//! the helpers here convert backend round counts back to the fast-path
//! convention. What *does* change is the cell cache key: executions by
//! different backends are distinct cache entries (see
//! EXPERIMENTS.md), keyed by [`key_suffix`].

use arbmis_core::{luby, metivier};
use arbmis_flat::{CongestBackend, FlatAlgo, FlatBackend, MisBackend};
use arbmis_graph::Graph;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which engine executes the Luby/Métivier baselines in experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MisBackendChoice {
    /// Centralized fast path (`luby::run` / `metivier::run`).
    #[default]
    Fast,
    /// The CONGEST message-passing simulator.
    Congest,
    /// The flat shared-memory backend.
    Flat,
}

impl MisBackendChoice {
    /// Stable name used in cache keys and `--backend` values.
    pub fn label(self) -> &'static str {
        match self {
            MisBackendChoice::Fast => "fast",
            MisBackendChoice::Congest => "congest",
            MisBackendChoice::Flat => "flat",
        }
    }
}

impl FromStr for MisBackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fast" => Ok(MisBackendChoice::Fast),
            "congest" => Ok(MisBackendChoice::Congest),
            "flat" => Ok(MisBackendChoice::Flat),
            other => Err(format!(
                "unknown backend {other:?} (expected fast, congest, or flat)"
            )),
        }
    }
}

static CHOICE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global backend (call before building plans, so cell
/// keys pick up the suffix).
pub fn set_choice(c: MisBackendChoice) {
    CHOICE.store(c as u8, Ordering::Relaxed);
}

/// The current process-global backend.
pub fn choice() -> MisBackendChoice {
    match CHOICE.load(Ordering::Relaxed) {
        1 => MisBackendChoice::Congest,
        2 => MisBackendChoice::Flat,
        _ => MisBackendChoice::Fast,
    }
}

/// Cache-key suffix naming the active backend. Appended to every cell
/// key whose closure routes through this module: the key must uniquely
/// determine the bytes *and* the execution that produced them.
pub fn key_suffix() -> String {
    format!(";backend={}", choice().label())
}

const MAX_ROUNDS: u64 = 10_000_000;

/// Backend round counts include the final all-halt round (`3I + 1`);
/// the fast path reports `3I`. Empty graphs finish in 0 rounds on both.
fn fast_equivalent_rounds(backend_rounds: u64) -> u64 {
    debug_assert!(backend_rounds == 0 || backend_rounds % 3 == 1);
    backend_rounds.saturating_sub(1)
}

fn routed_rounds(g: &Graph, seed: u64, algo: FlatAlgo) -> u64 {
    let rounds = match choice() {
        MisBackendChoice::Fast => unreachable!("fast path handled by caller"),
        MisBackendChoice::Congest => {
            CongestBackend::new(g, seed, algo)
                .run(MAX_ROUNDS)
                .expect("congest backend run failed")
                .rounds
        }
        MisBackendChoice::Flat => {
            FlatBackend::new(g, seed, algo)
                .run(MAX_ROUNDS)
                .expect("flat backend run failed")
                .rounds
        }
    };
    fast_equivalent_rounds(rounds)
}

/// Luby round count under the active backend (fast-path convention).
pub fn luby_rounds(g: &Graph, seed: u64) -> u64 {
    match choice() {
        MisBackendChoice::Fast => luby::run(g, seed).rounds,
        _ => routed_rounds(g, seed, FlatAlgo::Luby),
    }
}

/// Métivier round count under the active backend (fast-path convention).
pub fn metivier_rounds(g: &Graph, seed: u64) -> u64 {
    match choice() {
        MisBackendChoice::Fast => metivier::run(g, seed).rounds,
        _ => routed_rounds(g, seed, FlatAlgo::Metivier),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::gen;

    /// All three backends must report identical fast-convention rounds —
    /// this is the invariant that keeps experiment reports byte-identical
    /// across `--backend` values. One test (not several) because the
    /// choice is process-global.
    #[test]
    fn routed_rounds_match_fast_path() {
        let g = gen::cycle(40);
        for seed in [1, 7] {
            let fast_l = luby::run(&g, seed).rounds;
            let fast_m = metivier::run(&g, seed).rounds;
            for c in [MisBackendChoice::Congest, MisBackendChoice::Flat] {
                set_choice(c);
                assert_eq!(luby_rounds(&g, seed), fast_l, "{c:?} luby");
                assert_eq!(metivier_rounds(&g, seed), fast_m, "{c:?} metivier");
            }
            set_choice(MisBackendChoice::Fast);
            assert_eq!(luby_rounds(&g, seed), fast_l);
        }

        set_choice(MisBackendChoice::Flat);
        assert_eq!(key_suffix(), ";backend=flat");
        set_choice(MisBackendChoice::Fast);
        assert_eq!(key_suffix(), ";backend=fast");
        assert!("bogus".parse::<MisBackendChoice>().is_err());
        assert_eq!(
            "congest".parse::<MisBackendChoice>().unwrap(),
            MisBackendChoice::Congest
        );
    }
}
