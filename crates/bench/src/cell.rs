//! The cell decomposition of an experiment.
//!
//! A **cell** is the scheduler's unit of work: one (config, seed-range)
//! slice of an experiment, run by a pure function of its inputs. An
//! experiment is an [`ExperimentPlan`] — an ordered list of cells plus a
//! `reduce` closure that folds the per-cell outputs (in *cell index
//! order*, never completion order) into the final
//! [`ExperimentReport`](crate::ExperimentReport). Because every cell is
//! pure and reduction order is fixed, scheduling cells across any number
//! of workers — or replaying them from the on-disk cache — cannot change
//! a single output byte (DESIGN.md §9).
//!
//! Cell boundaries follow one rule: **a floating-point accumulation is
//! never split across cells.** Integer tallies (success counts, failure
//! counts) are order-invariant and may be chunked by seed range; `f64`
//! sums and means are not, so experiments that pool real-valued
//! statistics keep the whole seed loop inside one cell.

use crate::ExperimentReport;
use serde::{Deserialize, Serialize};

/// The serializable output of one cell: table-row fragments plus named
/// scalars for the reduce step.
///
/// Everything is exact under serialization — rows are strings and
/// scalars store IEEE-754 bit patterns — so a cell output read back from
/// the cache is indistinguishable from a freshly computed one.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CellOut {
    /// Row-major table cells this cell contributes, already formatted.
    pub rows: Vec<Vec<String>>,
    /// Named scalar results, stored as `f64::to_bits` patterns so the
    /// JSON round trip is bit-exact (and NaN-safe). Kept sorted by name
    /// so the serialized form is canonical.
    pub scalars: Vec<(String, u64)>,
}

impl CellOut {
    /// An output consisting of the given rows.
    pub fn from_rows(rows: Vec<Vec<String>>) -> Self {
        CellOut {
            rows,
            scalars: Vec::new(),
        }
    }

    /// Stores a named scalar (bit-exact under caching), replacing any
    /// previous value under the same name.
    pub fn put(&mut self, key: &str, value: f64) {
        match self.scalars.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.scalars[i].1 = value.to_bits(),
            Err(i) => self.scalars.insert(i, (key.to_string(), value.to_bits())),
        }
    }

    /// Reads a named scalar back.
    ///
    /// # Panics
    ///
    /// Panics if the key was never stored — a cell/reduce contract bug.
    pub fn get(&self, key: &str) -> f64 {
        match self.scalars.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => f64::from_bits(self.scalars[i].1),
            Err(_) => panic!("cell output missing scalar {key:?}"),
        }
    }

    /// Reads a named scalar back, `None` if never stored.
    pub fn try_get(&self, key: &str) -> Option<f64> {
        self.scalars
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| f64::from_bits(self.scalars[i].1))
    }

    /// Serializes to the canonical cache payload (compact JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("CellOut serialization cannot fail")
            .into_bytes()
    }

    /// Deserializes a cache payload; `None` on any malformed input (the
    /// cache treats that as a miss).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        serde_json::from_str(std::str::from_utf8(bytes).ok()?).ok()
    }
}

/// One schedulable unit of work.
pub struct Cell {
    /// Human-readable label for progress/tracing, e.g. `E9/ba(m=2)`.
    pub label: String,
    /// Cache-key material. Must uniquely determine the cell's output:
    /// experiment id, quick flag, config, and seed range all belong in
    /// here. The cache layer mixes in the code-version salt.
    pub key: String,
    /// The pure work function.
    pub run: Box<dyn Fn() -> CellOut + Send + Sync>,
}

impl Cell {
    /// Creates a cell.
    pub fn new<F>(label: impl Into<String>, key: impl Into<String>, run: F) -> Self
    where
        F: Fn() -> CellOut + Send + Sync + 'static,
    {
        Cell {
            label: label.into(),
            key: key.into(),
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell")
            .field("label", &self.label)
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

/// A plan's reduction: folds per-cell outputs (index order) into the
/// final report.
pub type ReduceFn = Box<dyn FnOnce(Vec<CellOut>) -> ExperimentReport + Send>;

/// An experiment decomposed into cells plus its reduction.
pub struct ExperimentPlan {
    /// Experiment id, e.g. `"E9"`.
    pub id: &'static str,
    /// The cells, in reduction order.
    pub cells: Vec<Cell>,
    /// Folds per-cell outputs (index order) into the final report.
    pub reduce: ReduceFn,
}

impl ExperimentPlan {
    /// Creates a plan.
    pub fn new<R>(id: &'static str, cells: Vec<Cell>, reduce: R) -> Self
    where
        R: FnOnce(Vec<CellOut>) -> ExperimentReport + Send + 'static,
    {
        ExperimentPlan {
            id,
            cells,
            reduce: Box::new(reduce),
        }
    }

    /// Runs every cell inline (no pool, no cache) and reduces — the
    /// legacy single-experiment path used by module unit tests.
    pub fn run_serial(self) -> ExperimentReport {
        let outs = self.cells.iter().map(|c| (c.run)()).collect();
        (self.reduce)(outs)
    }
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("id", &self.id)
            .field("cells", &self.cells.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Table;

    #[test]
    fn cellout_roundtrip_is_bit_exact() {
        let mut out = CellOut::from_rows(vec![vec!["a".into(), "1.50".into()]]);
        out.put("mean", 0.1 + 0.2); // a value with no short decimal form
        out.put("nan", f64::NAN);
        let back = CellOut::from_bytes(&out.to_bytes()).unwrap();
        assert_eq!(back, out);
        assert_eq!(back.get("mean").to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(back.get("nan").is_nan());
    }

    #[test]
    fn malformed_payload_is_a_miss() {
        assert!(CellOut::from_bytes(b"not json").is_none());
        assert!(CellOut::from_bytes(b"{\"rows\":3}").is_none());
    }

    #[test]
    #[should_panic(expected = "missing scalar")]
    fn missing_scalar_panics() {
        CellOut::default().get("absent");
    }

    #[test]
    fn plan_run_serial_reduces_in_cell_order() {
        let cells = (0..4)
            .map(|i| {
                Cell::new(format!("c{i}"), format!("k{i}"), move || {
                    CellOut::from_rows(vec![vec![i.to_string()]])
                })
            })
            .collect();
        let plan = ExperimentPlan::new("E0", cells, |outs| {
            let mut table = Table::new(["i"]);
            for o in outs {
                for r in o.rows {
                    table.push_row(r);
                }
            }
            ExperimentReport {
                id: "E0".into(),
                title: "order".into(),
                table,
                notes: vec![],
            }
        });
        let report = plan.run_serial();
        let col: Vec<&str> = report.table.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(col, ["0", "1", "2", "3"]);
    }
}
