//! Repair-vs-recompute benchmark for the incremental MIS layer: plays
//! the standard churn suite (localized, uniform, flash-crowd, hub)
//! through `DynamicMis`, timing locality-bounded repair against a
//! from-scratch re-solve after every batch, and writes
//! `BENCH_dynamic.json` so the trajectory accumulates across commits.
//!
//! Usage:
//!
//! ```text
//! bench_dynamic_json [--out PATH] [--n NODES] [--seed S] [--quick]
//! ```
//!
//! `--quick` drops to the CI-smoke scale (2k nodes). Every workload is
//! validity-audited on every batch; the run aborts rather than publish
//! numbers for an invalid MIS. Timings are 1-core wall-clock (the
//! repair path is serial by design — determinism first); the structural
//! columns are machine-independent.

use arbmis_bench::churn::{run_script, standard_suite};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct BenchDoc {
    schema: String,
    seed: u64,
    host_threads: u64,
    workloads: Vec<BenchEntry>,
}

#[derive(Serialize, Deserialize)]
struct BenchEntry {
    name: String,
    n0: u64,
    m0: u64,
    batches: u64,
    updates: u64,
    mean_region_nodes: f64,
    max_region_nodes: u64,
    repair_rounds: u64,
    repair_ms: f64,
    full_recompute_ms: f64,
    /// `full_recompute_ms / repair_ms` — the locality win.
    repair_speedup: f64,
    valid: bool,
}

fn main() {
    let mut out_path = "BENCH_dynamic.json".to_string();
    let mut n = 20_000usize;
    let mut seed = 9u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--n" => {
                n = args
                    .next()
                    .expect("--n needs a count")
                    .parse()
                    .expect("--n must be an integer")
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer")
            }
            "--quick" => n = 2_000,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let mut entries = Vec::new();
    for script in standard_suite(n, seed) {
        let r = run_script(&script, seed, true);
        assert!(r.valid, "workload {} produced an invalid MIS", r.name);
        eprintln!(
            "{}: repair {:.1} ms vs full {:.1} ms ({:.1}x), mean region {:.1} nodes",
            r.name,
            r.repair_ns as f64 / 1e6,
            r.full_ns as f64 / 1e6,
            r.speedup,
            r.mean_region,
        );
        entries.push(BenchEntry {
            name: r.name,
            n0: r.n0 as u64,
            m0: r.m0 as u64,
            batches: r.batches as u64,
            updates: r.updates as u64,
            mean_region_nodes: r.mean_region,
            max_region_nodes: r.max_region as u64,
            repair_rounds: r.repair_rounds,
            repair_ms: r.repair_ns as f64 / 1e6,
            full_recompute_ms: r.full_ns as f64 / 1e6,
            repair_speedup: r.speedup,
            valid: r.valid,
        });
    }

    let doc = BenchDoc {
        schema: "bench_dynamic/v1".to_string(),
        seed,
        host_threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1) as u64,
        workloads: entries,
    };
    let text = serde_json::to_string_pretty(&doc).expect("serializing the JSON artifact");
    std::fs::write(&out_path, text + "\n").expect("writing the JSON artifact");
    eprintln!("wrote {out_path}");
}
