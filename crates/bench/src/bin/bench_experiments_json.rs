//! Machine-readable bench of the experiment cell scheduler: measures the
//! full `--quick` suite sequentially (legacy `run_serial` path), then
//! scheduled at worker counts {1, 2, 4, 8}, then a cold + warm
//! content-addressed cache pass, and writes `BENCH_experiments.json` so
//! the scheduler's perf trajectory accumulates across commits.
//!
//! Usage:
//!
//! ```text
//! bench_experiments_json [--out PATH] [--full] [--cache-dir PATH]
//! ```
//!
//! Every configuration produces byte-identical reports (asserted here as
//! a safety net on top of the integration tests); only wall-clock
//! differs. `host_threads` records the core count of the measuring
//! machine — speedup numbers are meaningless without it.

use arbmis_bench::cache::{set_global_cache, Cache};
use arbmis_bench::cell::ExperimentPlan;
use arbmis_bench::exps;
use arbmis_bench::sched::{cell_count, run_scheduled};
use arbmis_congest::Parallelism;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BenchDoc {
    schema: String,
    quick: bool,
    /// Core count of the measuring machine.
    host_threads: u64,
    experiments: u64,
    cells: u64,
    /// Legacy sequential path: every plan `run_serial()` in order.
    sequential_wall_ns: u64,
    sequential_cells_per_sec: f64,
    /// Scheduled (work-stealing pool, no cache) at each worker count.
    scheduled: Vec<ScheduledEntry>,
    cache: CachePass,
}

#[derive(Serialize)]
struct ScheduledEntry {
    threads: u64,
    wall_ns: u64,
    cells_per_sec: f64,
    speedup_vs_sequential: f64,
}

#[derive(Serialize)]
struct CachePass {
    cold_wall_ns: u64,
    cold_hit_rate: f64,
    warm_wall_ns: u64,
    warm_hit_rate: f64,
    warm_speedup_vs_cold: f64,
}

fn plans(quick: bool) -> Vec<ExperimentPlan> {
    exps::all().into_iter().map(|(_, _, f)| f(quick)).collect()
}

fn main() {
    let mut out_path = "BENCH_experiments.json".to_string();
    let mut quick = true;
    let mut cache_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--full" => quick = false,
            "--cache-dir" => cache_dir = Some(args.next().expect("--cache-dir needs a path")),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1) as u64;

    let probe = plans(quick);
    let (experiments, cells) = (probe.len() as u64, cell_count(&probe) as u64);
    drop(probe);

    // Sequential baseline: the pre-scheduler execution shape.
    set_global_cache(None);
    let t0 = Instant::now();
    let baseline: Vec<String> = plans(quick)
        .into_iter()
        .map(|p| serde_json::to_string(&p.run_serial()).unwrap())
        .collect();
    let sequential_wall_ns = t0.elapsed().as_nanos() as u64;
    let cells_per_sec = |wall_ns: u64| cells as f64 / (wall_ns as f64 / 1e9);
    eprintln!(
        "sequential: {cells} cells in {:.2}s",
        sequential_wall_ns as f64 / 1e9
    );

    let render = |outcome: &arbmis_bench::sched::SchedOutcome| -> Vec<String> {
        outcome
            .reports
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect()
    };

    let mut scheduled = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let outcome = run_scheduled(plans(quick), Parallelism::Threads(threads));
        assert_eq!(
            render(&outcome),
            baseline,
            "threads={threads} must not change bytes"
        );
        let wall_ns = outcome.stats.wall.as_nanos() as u64;
        eprintln!(
            "scheduled threads={threads}: {:.2}s ({:.2}x)",
            wall_ns as f64 / 1e9,
            sequential_wall_ns as f64 / wall_ns as f64
        );
        scheduled.push(ScheduledEntry {
            threads: threads as u64,
            wall_ns,
            cells_per_sec: cells_per_sec(wall_ns),
            speedup_vs_sequential: sequential_wall_ns as f64 / wall_ns as f64,
        });
    }

    // Cold + warm cache pass in a scratch (or caller-chosen) directory.
    let dir = cache_dir.unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("arbmis-bench-cache-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let _ = std::fs::remove_dir_all(&dir);
    set_global_cache(Some(Arc::new(Cache::open(&dir).expect("open cache dir"))));
    let cold = run_scheduled(plans(quick), Parallelism::Auto);
    assert_eq!(render(&cold), baseline, "cold cache must not change bytes");
    set_global_cache(Some(Arc::new(Cache::open(&dir).expect("open cache dir"))));
    let warm = run_scheduled(plans(quick), Parallelism::Auto);
    assert_eq!(render(&warm), baseline, "warm cache must not change bytes");
    set_global_cache(None);
    let _ = std::fs::remove_dir_all(&dir);
    let cold_ns = cold.stats.wall.as_nanos() as u64;
    let warm_ns = warm.stats.wall.as_nanos() as u64;
    eprintln!(
        "cache: cold {:.2}s ({:.0}% hits) → warm {:.3}s ({:.0}% hits)",
        cold_ns as f64 / 1e9,
        cold.stats.hit_rate() * 100.0,
        warm_ns as f64 / 1e9,
        warm.stats.hit_rate() * 100.0
    );

    let doc = BenchDoc {
        schema: "bench_experiments/v1".to_string(),
        quick,
        host_threads,
        experiments,
        cells,
        sequential_wall_ns,
        sequential_cells_per_sec: cells_per_sec(sequential_wall_ns),
        scheduled,
        cache: CachePass {
            cold_wall_ns: cold_ns,
            cold_hit_rate: cold.stats.hit_rate(),
            warm_wall_ns: warm_ns,
            warm_hit_rate: warm.stats.hit_rate(),
            warm_speedup_vs_cold: cold_ns as f64 / warm_ns.max(1) as f64,
        },
    };
    let text = serde_json::to_string_pretty(&doc).expect("serializing the JSON artifact");
    std::fs::write(&out_path, text + "\n").expect("writing the JSON artifact");
    eprintln!("wrote {out_path}");
}
