//! Machine-readable companion to the `bench_congest` Criterion group:
//! measures median ns/round of the CONGEST round engines on the standard
//! acceptance workloads — broadcast-heavy G(50k, p = 4/n) and a random
//! k-tree — and writes `BENCH_congest.json` so the perf trajectory
//! accumulates across commits.
//!
//! Usage:
//!
//! ```text
//! bench_congest_json [--out PATH] [--baseline PATH] [--samples N]
//! ```
//!
//! `--baseline` points at a previously emitted JSON (e.g. captured before
//! a refactor); its `serial_ns_per_round` values are copied into
//! `baseline_serial_ns_per_round` and the speedup ratio is reported, so
//! the committed artifact carries both numbers.

use arbmis_congest::algorithms::ConvergeCast;
use arbmis_congest::{Parallelism, Protocol, Simulator};
use arbmis_core::params::{ArbParams, ParamMode};
use arbmis_core::protocols::{BoundedArbProtocol, MetivierProtocol};
use arbmis_graph::{gen, Graph};
use arbmis_obs::{FlightRecorder, Recorder};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 3;
const MAX_ROUNDS: u64 = 100_000;

#[derive(Serialize, Deserialize)]
struct BenchDoc {
    schema: String,
    samples: u64,
    /// Core count of the machine that produced the numbers — without it
    /// the `threads_parallel` timings are uninterpretable across hosts.
    #[serde(default)]
    host_threads: u64,
    threads_parallel: u64,
    workloads: Vec<BenchEntry>,
    /// Observability-overhead guardrail: serial ns/round on `gnp50k_d4`
    /// with the deterministic metric recorder *and* a bounded flight
    /// recorder attached, vs the plain run. Capture must stay cheap
    /// enough to leave on everywhere (DESIGN.md §8).
    #[serde(default)]
    obs_overhead: Option<ObsOverhead>,
}

#[derive(Serialize, Deserialize)]
struct ObsOverhead {
    workload: String,
    plain_ns_per_round: f64,
    recorded_ns_per_round: f64,
    overhead_ratio: f64,
}

#[derive(Serialize, Deserialize)]
struct BenchEntry {
    name: String,
    protocol: String,
    n: u64,
    m: u64,
    rounds: u64,
    serial_ns_per_round: f64,
    parallel_ns_per_round: f64,
    baseline_serial_ns_per_round: Option<f64>,
    serial_speedup_vs_baseline: Option<f64>,
}

/// The protocol a workload drives — broadcast-heavy MIS twins plus the
/// shattering-tail cases where activity collapses long before the run
/// ends (most rounds touch a handful of nodes; the frontier engine must
/// not bill O(n) for them).
enum WorkloadProto {
    Metivier,
    BoundedArb(BoundedArbProtocol),
    ConvergeCast(ConvergeCast),
}

struct Workload {
    name: &'static str,
    protocol: &'static str,
    graph: Graph,
    proto: WorkloadProto,
    max_rounds: u64,
}

fn workloads() -> Vec<Workload> {
    // Same generator seeds as benches/bench_congest.rs, so the Criterion
    // group and this emitter measure the same graphs.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let n = 50_000;
    let gnp = gen::gnp(n, 4.0 / n as f64, &mut rng);
    let ktree = gen::random_ktree(20_000, 3, &mut rng);

    // BoundedArb twin on the k-tree: nodes halt as soon as they resolve,
    // so the later rounds step a shrinking survivor set — the frontier
    // engine must bill those rounds by survivors, not by n.
    let params = ArbParams::new(
        3,
        ktree.max_degree(),
        ParamMode::Practical { lambda_scale: 1.0 },
    );
    let arb = BoundedArbProtocol {
        params,
        rho_cutoff: true,
    };
    let arb_rounds = arb.total_rounds() + 2;

    // Sparse-activity tail in the extreme: a converge-cast wave up a
    // path steps exactly one node per round for ~n rounds. Engine cost
    // must track the wave front, not n.
    let wave_n = 20_000;
    let path = gen::path(wave_n);
    let parent: Vec<Option<usize>> = (0..wave_n)
        .map(|v| (v + 1 < wave_n).then_some(v + 1))
        .collect();
    let cast = ConvergeCast::new(parent, vec![1u64; wave_n]);

    vec![
        Workload {
            name: "gnp50k_d4",
            protocol: "metivier",
            graph: gnp,
            proto: WorkloadProto::Metivier,
            max_rounds: MAX_ROUNDS,
        },
        Workload {
            name: "ktree20k_k3",
            protocol: "metivier",
            graph: ktree.clone(),
            proto: WorkloadProto::Metivier,
            max_rounds: MAX_ROUNDS,
        },
        Workload {
            name: "ktree20k_arb",
            protocol: "bounded_arb",
            graph: ktree,
            proto: WorkloadProto::BoundedArb(arb),
            max_rounds: arb_rounds,
        },
        Workload {
            name: "wavepath20k",
            protocol: "converge_cast",
            graph: path,
            proto: WorkloadProto::ConvergeCast(cast),
            max_rounds: wave_n as u64 + 5,
        },
    ]
}

/// Median of `samples` measurements of `ns/round`; also returns the round
/// count (identical across samples — the engines are deterministic).
fn median_ns_per_round(samples: usize, mut run: impl FnMut() -> (u64, u64)) -> (f64, u64) {
    let mut rounds = 0;
    let mut per_round: Vec<f64> = (0..samples)
        .map(|_| {
            let (ns, r) = run();
            rounds = r;
            ns as f64 / r.max(1) as f64
        })
        .collect();
    per_round.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (per_round[per_round.len() / 2], rounds)
}

/// Serial + parallel median ns/round for one protocol on one graph.
fn measure<P>(
    g: &Graph,
    proto: &P,
    max_rounds: u64,
    samples: usize,
    threads: usize,
) -> (f64, f64, u64)
where
    P: Protocol + Sync,
    P::State: Send,
    P::Msg: Send + Sync,
{
    let (serial, rounds) = median_ns_per_round(samples, || {
        let sim = Simulator::new(g, SEED).with_parallelism(Parallelism::Serial);
        let t0 = Instant::now();
        let run = sim.run(proto, max_rounds).unwrap();
        (t0.elapsed().as_nanos() as u64, run.metrics.rounds)
    });
    let (parallel, _) = median_ns_per_round(samples, || {
        let sim = Simulator::new(g, SEED).with_parallelism(Parallelism::Threads(threads));
        let t0 = Instant::now();
        let run = sim.run_parallel(proto, max_rounds).unwrap();
        (t0.elapsed().as_nanos() as u64, run.metrics.rounds)
    });
    (serial, parallel, rounds)
}

fn main() {
    let mut out_path = "BENCH_congest.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut samples = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            "--samples" => {
                samples = args
                    .next()
                    .expect("--samples needs a count")
                    .parse()
                    .expect("--samples must be an integer")
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let baseline: Option<BenchDoc> = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p).expect("baseline JSON must be readable");
        serde_json::from_str(&text).expect("baseline JSON must parse")
    });
    let baseline_serial = |name: &str| -> Option<f64> {
        baseline
            .as_ref()?
            .workloads
            .iter()
            .find(|w| w.name == name)
            .map(|w| w.serial_ns_per_round)
    };

    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut entries = Vec::new();
    let mut obs_overhead = None;
    for w in workloads() {
        let g = &w.graph;
        let (serial, parallel, rounds) = match &w.proto {
            WorkloadProto::Metivier => {
                measure(g, &MetivierProtocol, w.max_rounds, samples, threads)
            }
            WorkloadProto::BoundedArb(p) => measure(g, p, w.max_rounds, samples, threads),
            WorkloadProto::ConvergeCast(p) => measure(g, p, w.max_rounds, samples, threads),
        };
        if w.name == "gnp50k_d4" {
            // Guardrail: the same serial run with full capture attached
            // (deterministic metric recorder + bounded flight ring).
            let (recorded, _) = median_ns_per_round(samples, || {
                let sim = Simulator::new(g, SEED)
                    .with_parallelism(Parallelism::Serial)
                    .with_recorder(Recorder::deterministic())
                    .with_flight(FlightRecorder::bounded(4096));
                let t0 = Instant::now();
                let run = sim.run(&MetivierProtocol, w.max_rounds).unwrap();
                (t0.elapsed().as_nanos() as u64, run.metrics.rounds)
            });
            eprintln!(
                "{}: obs-recorded serial {recorded:.0} ns/round ({:.2}x plain)",
                w.name,
                recorded / serial
            );
            obs_overhead = Some(ObsOverhead {
                workload: w.name.to_string(),
                plain_ns_per_round: serial,
                recorded_ns_per_round: recorded,
                overhead_ratio: recorded / serial,
            });
        }
        let base = baseline_serial(w.name);
        eprintln!(
            "{}: serial {serial:.0} ns/round, parallel({threads}) {parallel:.0} ns/round{}",
            w.name,
            base.map(|b| format!(", baseline {b:.0} ({:.2}x)", b / serial))
                .unwrap_or_default()
        );
        entries.push(BenchEntry {
            name: w.name.to_string(),
            protocol: w.protocol.to_string(),
            n: g.n() as u64,
            m: g.m() as u64,
            rounds,
            serial_ns_per_round: serial,
            parallel_ns_per_round: parallel,
            baseline_serial_ns_per_round: base,
            serial_speedup_vs_baseline: base.map(|b| b / serial),
        });
    }

    let doc = BenchDoc {
        schema: "bench_congest/v1".to_string(),
        samples: samples as u64,
        host_threads: threads as u64,
        threads_parallel: threads as u64,
        workloads: entries,
        obs_overhead,
    };
    let text = serde_json::to_string_pretty(&doc).expect("serializing the JSON artifact");
    std::fs::write(&out_path, text + "\n").expect("writing the JSON artifact");
    eprintln!("wrote {out_path}");
}
