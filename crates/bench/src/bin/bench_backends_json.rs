//! Backend benchmark: measures median ns/round of the CONGEST
//! simulator, the historical byte-mask flat engine, and the bit-packed
//! flat engine on identical executions (same coins, same rounds) and
//! writes `BENCH_backends.json` so the speedup trajectory accumulates
//! across commits.
//!
//! Usage:
//!
//! ```text
//! bench_backends_json [--out PATH] [--samples N] [--quick]
//! ```
//!
//! The workload is G(n, d̄ = 4): Métivier at generator scales
//! 50k / 1M / 10M nodes plus a Luby row at 1M; `--quick` keeps only the
//! 50k Métivier and Luby points (the CI smoke). Before timing, each
//! point cross-checks that all three engines computed the same MIS in
//! the same number of rounds — the numbers are only comparable because
//! the executions are identical.
//!
//! Columns per row:
//!
//! * `congest_serial_ns_per_round` — the message-passing simulator.
//! * `flat_ns_per_round` — the byte-mask flat path
//!   ([`arbmis_bench::flatref::ByteMaskFlat`], the engine as it was
//!   before bit-packing), kept so the column stays comparable with
//!   artifacts committed before the optimization.
//! * `flat_opt_ns_per_round` — the current bit-packed engine
//!   ([`arbmis_flat::FlatBackend`]) at identity order, single thread.
//! * `flat_speedup` — congest / flat; `flat_opt_speedup` — flat /
//!   flat_opt (the win of bit-packing alone, same machine, same run).

use arbmis_bench::flatref::{ByteMaskFlat, RefAlgo};
use arbmis_congest::{Parallelism, Simulator};
use arbmis_core::protocols::{LubyProtocol, MetivierProtocol, MisNodeState};
use arbmis_flat::{FlatAlgo, FlatBackend, MisBackend};
use arbmis_graph::{gen, Graph};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 3;
const MAX_ROUNDS: u64 = 100_000;

#[derive(Serialize, Deserialize)]
struct BenchDoc {
    schema: String,
    samples: u64,
    host_threads: u64,
    workloads: Vec<BenchEntry>,
}

#[derive(Serialize, Deserialize)]
struct BenchEntry {
    name: String,
    protocol: String,
    n: u64,
    m: u64,
    /// CONGEST rounds — identical for all engines by construction.
    rounds: u64,
    congest_serial_ns_per_round: f64,
    flat_ns_per_round: f64,
    flat_opt_ns_per_round: f64,
    /// `congest_serial_ns_per_round / flat_ns_per_round`.
    flat_speedup: f64,
    /// `flat_ns_per_round / flat_opt_ns_per_round`.
    flat_opt_speedup: f64,
}

/// Median of `samples` measurements of `ns/round`; also returns the
/// round count (identical across samples — the engines are
/// deterministic).
fn median_ns_per_round(samples: usize, mut run: impl FnMut() -> (u64, u64)) -> (f64, u64) {
    let mut rounds = 0;
    let mut per_round: Vec<f64> = (0..samples)
        .map(|_| {
            let (ns, r) = run();
            rounds = r;
            ns as f64 / r.max(1) as f64
        })
        .collect();
    per_round.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (per_round[per_round.len() / 2], rounds)
}

fn measure(g: &Graph, algo: FlatAlgo, samples: usize) -> BenchEntry {
    let ref_algo = match algo {
        FlatAlgo::Luby => RefAlgo::Luby,
        FlatAlgo::Metivier => RefAlgo::Metivier,
        FlatAlgo::BoundedArb { .. } => unreachable!("benchmark covers maximal protocols"),
    };
    // Cross-check once: same MIS, same round count, all three engines.
    let sim_states: Vec<MisNodeState> = match algo {
        FlatAlgo::Luby => {
            Simulator::new(g, SEED)
                .with_parallelism(Parallelism::Serial)
                .run(&LubyProtocol, MAX_ROUNDS)
                .expect("congest run")
                .states
        }
        _ => {
            Simulator::new(g, SEED)
                .with_parallelism(Parallelism::Serial)
                .run(&MetivierProtocol, MAX_ROUNDS)
                .expect("congest run")
                .states
        }
    };
    let mut flat_opt = FlatBackend::new(g, SEED, algo);
    let opt_run = flat_opt.run(MAX_ROUNDS).expect("flat run");
    let mut flat_ref = ByteMaskFlat::new(g, SEED, ref_algo);
    let ref_rounds = flat_ref.run(MAX_ROUNDS);
    assert_eq!(
        opt_run.rounds, ref_rounds,
        "flat engines disagree on round count"
    );
    for (v, s) in sim_states.iter().enumerate() {
        assert_eq!(
            flat_opt.mis().test(v),
            s.in_mis,
            "backends disagree on node {v}"
        );
        assert_eq!(
            flat_ref.mis()[v],
            s.in_mis,
            "reference engine disagrees on node {v}"
        );
    }

    let (congest_ns, rounds) = median_ns_per_round(samples, || {
        let sim = Simulator::new(g, SEED).with_parallelism(Parallelism::Serial);
        let t0 = Instant::now();
        let r = match algo {
            FlatAlgo::Luby => sim.run(&LubyProtocol, MAX_ROUNDS).unwrap().metrics.rounds,
            _ => {
                sim.run(&MetivierProtocol, MAX_ROUNDS)
                    .unwrap()
                    .metrics
                    .rounds
            }
        };
        (t0.elapsed().as_nanos() as u64, r)
    });
    // The two flat engines are sampled interleaved (ref/opt inside each
    // sample, order alternating) rather than in separate blocks: on a
    // shared host a slow window then inflates both columns instead of
    // whichever engine happened to be measured during it, so the
    // flat-vs-flat_opt ratio survives machine-level drift.
    let mut ref_samples = Vec::with_capacity(samples);
    let mut opt_samples = Vec::with_capacity(samples);
    for s in 0..samples {
        let mut time_ref = |v: &mut Vec<f64>| {
            let t0 = Instant::now();
            let r = flat_ref.run(MAX_ROUNDS);
            assert_eq!(r, rounds);
            v.push(t0.elapsed().as_nanos() as f64 / r.max(1) as f64);
        };
        let mut time_opt = |v: &mut Vec<f64>| {
            let t0 = Instant::now();
            let run = flat_opt.run(MAX_ROUNDS).unwrap();
            assert_eq!(run.rounds, rounds);
            v.push(t0.elapsed().as_nanos() as f64 / run.rounds.max(1) as f64);
        };
        if s % 2 == 0 {
            time_ref(&mut ref_samples);
            time_opt(&mut opt_samples);
        } else {
            time_opt(&mut opt_samples);
            time_ref(&mut ref_samples);
        }
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let flat_ns = median(&mut ref_samples);
    let flat_opt_ns = median(&mut opt_samples);

    let name = format!("gnp{}_d4", fmt_scale(g.n()));
    eprintln!(
        "{name}/{}: congest {congest_ns:.0} ns/round, flat {flat_ns:.0}, flat_opt {flat_opt_ns:.0} ({:.2}x over flat)",
        algo.label(),
        flat_ns / flat_opt_ns
    );
    BenchEntry {
        name,
        protocol: algo.label().to_string(),
        n: g.n() as u64,
        m: g.m() as u64,
        rounds,
        congest_serial_ns_per_round: congest_ns,
        flat_ns_per_round: flat_ns,
        flat_opt_ns_per_round: flat_opt_ns,
        flat_speedup: congest_ns / flat_ns,
        flat_opt_speedup: flat_ns / flat_opt_ns,
    }
}

fn fmt_scale(n: usize) -> String {
    if n.is_multiple_of(1_000_000) {
        format!("{}m", n / 1_000_000)
    } else {
        format!("{}k", n / 1_000)
    }
}

fn main() {
    let mut out_path = "BENCH_backends.json".to_string();
    let mut samples = 3usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--samples" => {
                samples = args
                    .next()
                    .expect("--samples needs a count")
                    .parse()
                    .expect("--samples must be an integer")
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    // (scale, protocol) rows; graphs are regenerated per scale so the
    // two 1M rows share a workload.
    let rows: &[(usize, FlatAlgo)] = if quick {
        &[(50_000, FlatAlgo::Metivier), (50_000, FlatAlgo::Luby)]
    } else {
        &[
            (50_000, FlatAlgo::Metivier),
            (1_000_000, FlatAlgo::Metivier),
            (1_000_000, FlatAlgo::Luby),
            (10_000_000, FlatAlgo::Metivier),
        ]
    };
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut entries = Vec::new();
    let mut cached: Option<(usize, Graph)> = None;
    for &(n, algo) in rows {
        if cached.as_ref().is_none_or(|(cn, _)| *cn != n) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            cached = Some((n, gen::gnp_with_expected_degree(n, 4.0, &mut rng)));
        }
        let (_, g) = cached.as_ref().unwrap();
        entries.push(measure(g, algo, samples));
    }

    let doc = BenchDoc {
        schema: "bench_backends/v1".to_string(),
        samples: samples as u64,
        host_threads: threads as u64,
        workloads: entries,
    };
    let text = serde_json::to_string_pretty(&doc).expect("serializing the JSON artifact");
    std::fs::write(&out_path, text + "\n").expect("writing the JSON artifact");
    eprintln!("wrote {out_path}");
}
