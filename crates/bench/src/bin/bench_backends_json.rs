//! Congest-vs-flat backend benchmark: measures median ns/round of the
//! CONGEST simulator against the flat shared-memory backend on the same
//! Métivier executions (identical coins, identical rounds) and writes
//! `BENCH_backends.json` so the speedup trajectory accumulates across
//! commits.
//!
//! Usage:
//!
//! ```text
//! bench_backends_json [--out PATH] [--samples N] [--quick]
//! ```
//!
//! The workload is G(n, d̄ = 4) at generator scales 50k / 1M / 10M
//! nodes; `--quick` keeps only the 50k point (the CI smoke). Before
//! timing, each point cross-checks that the two backends computed the
//! same MIS in the same number of rounds — the numbers are only
//! comparable because the executions are identical.

use arbmis_congest::{Parallelism, Simulator};
use arbmis_core::protocols::MetivierProtocol;
use arbmis_flat::{FlatAlgo, FlatBackend, MisBackend};
use arbmis_graph::{gen, Graph};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 3;
const MAX_ROUNDS: u64 = 100_000;

#[derive(Serialize, Deserialize)]
struct BenchDoc {
    schema: String,
    samples: u64,
    host_threads: u64,
    workloads: Vec<BenchEntry>,
}

#[derive(Serialize, Deserialize)]
struct BenchEntry {
    name: String,
    protocol: String,
    n: u64,
    m: u64,
    /// CONGEST rounds — identical for both backends by construction.
    rounds: u64,
    congest_serial_ns_per_round: f64,
    flat_ns_per_round: f64,
    /// `congest_serial_ns_per_round / flat_ns_per_round`.
    flat_speedup: f64,
}

/// Median of `samples` measurements of `ns/round`; also returns the
/// round count (identical across samples — the engines are
/// deterministic).
fn median_ns_per_round(samples: usize, mut run: impl FnMut() -> (u64, u64)) -> (f64, u64) {
    let mut rounds = 0;
    let mut per_round: Vec<f64> = (0..samples)
        .map(|_| {
            let (ns, r) = run();
            rounds = r;
            ns as f64 / r.max(1) as f64
        })
        .collect();
    per_round.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (per_round[per_round.len() / 2], rounds)
}

fn measure(g: &Graph, samples: usize) -> BenchEntry {
    // Cross-check once: same MIS, same round count.
    let sim_run = Simulator::new(g, SEED)
        .with_parallelism(Parallelism::Serial)
        .run(&MetivierProtocol, MAX_ROUNDS)
        .expect("congest run");
    let mut flat = FlatBackend::new(g, SEED, FlatAlgo::Metivier);
    let flat_run = flat.run(MAX_ROUNDS).expect("flat run");
    assert_eq!(
        flat_run.rounds, sim_run.metrics.rounds,
        "backends disagree on round count"
    );
    for (v, s) in sim_run.states.iter().enumerate() {
        assert_eq!(flat.mis()[v], s.in_mis, "backends disagree on node {v}");
    }

    let (congest_ns, rounds) = median_ns_per_round(samples, || {
        let sim = Simulator::new(g, SEED).with_parallelism(Parallelism::Serial);
        let t0 = Instant::now();
        let run = sim.run(&MetivierProtocol, MAX_ROUNDS).unwrap();
        (t0.elapsed().as_nanos() as u64, run.metrics.rounds)
    });
    let (flat_ns, flat_rounds) = median_ns_per_round(samples, || {
        let t0 = Instant::now();
        let run = flat.run(MAX_ROUNDS).unwrap();
        (t0.elapsed().as_nanos() as u64, run.rounds)
    });
    assert_eq!(rounds, flat_rounds);

    let name = format!("gnp{}_d4", fmt_scale(g.n()));
    eprintln!(
        "{name}: congest {congest_ns:.0} ns/round, flat {flat_ns:.0} ns/round ({:.1}x)",
        congest_ns / flat_ns
    );
    BenchEntry {
        name,
        protocol: "metivier".to_string(),
        n: g.n() as u64,
        m: g.m() as u64,
        rounds,
        congest_serial_ns_per_round: congest_ns,
        flat_ns_per_round: flat_ns,
        flat_speedup: congest_ns / flat_ns,
    }
}

fn fmt_scale(n: usize) -> String {
    if n.is_multiple_of(1_000_000) {
        format!("{}m", n / 1_000_000)
    } else {
        format!("{}k", n / 1_000)
    }
}

fn main() {
    let mut out_path = "BENCH_backends.json".to_string();
    let mut samples = 3usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--samples" => {
                samples = args
                    .next()
                    .expect("--samples needs a count")
                    .parse()
                    .expect("--samples must be an integer")
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let scales: &[usize] = if quick {
        &[50_000]
    } else {
        &[50_000, 1_000_000, 10_000_000]
    };
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut entries = Vec::new();
    for &n in scales {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let g = gen::gnp_with_expected_degree(n, 4.0, &mut rng);
        entries.push(measure(&g, samples));
    }

    let doc = BenchDoc {
        schema: "bench_backends/v1".to_string(),
        samples: samples as u64,
        host_threads: threads as u64,
        workloads: entries,
    };
    let text = serde_json::to_string_pretty(&doc).expect("serializing the JSON artifact");
    std::fs::write(&out_path, text + "\n").expect("writing the JSON artifact");
    eprintln!("wrote {out_path}");
}
