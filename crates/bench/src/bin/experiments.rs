//! Regenerates every quantitative claim of the paper (experiment index
//! E1–E16; see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! ```sh
//! experiments                 # run the full suite (text to stdout)
//! experiments --list          # print the experiment index and exit
//! experiments --exp E3 E7     # selected experiments
//! experiments --quick         # reduced sizes (used in CI/tests)
//! experiments --markdown      # markdown rendering (for EXPERIMENTS.md)
//! experiments --json out.json # machine-readable results
//! experiments --threads 4     # cells in flight on the worker pool
//!                             # (0 = auto, 1 = serial; results identical)
//! experiments --cache-dir D   # graph/result cache root (default
//!                             # target/arbmis-cache)
//! experiments --no-cache      # recompute everything, touch no disk state
//! experiments --metrics-out m.prom  # Prometheus text exposition of the run
//! experiments --trace-out t.jsonl   # JSONL span/event log of the run
//! experiments --perfetto-out t.json # Chrome trace-event (Perfetto) export
//! experiments --flight        # bounded per-round flight recorder, dumped
//!                             # to stderr on panic (--flight-out saves it)
//! experiments --backend flat  # route Luby/Métivier baselines through a
//!                             # MisBackend engine (fast|congest|flat);
//!                             # reports are byte-identical, cache keys
//!                             # differ (DESIGN.md §11)
//! ```
//!
//! Experiments are decomposed into cells and fanned onto one shared
//! work-stealing pool; reports are reduced in deterministic cell order,
//! so `--threads N`, `--no-cache`, and cache temperature never change a
//! report byte (DESIGN.md §9) — only the stderr status lines.
//!
//! `--metrics-out` / `--trace-out` / `--perfetto-out` install a
//! process-wide recorder (`arbmis_obs::set_global`), and `--flight`
//! installs the process-wide flight ring; per DESIGN.md §8 none of this
//! ever changes an experiment result — the `--json` report is
//! byte-identical with and without them (CI diffs exactly that).

use arbmis_bench::backend::MisBackendChoice;
use arbmis_bench::cache::{set_global_cache, Cache};
use arbmis_bench::sched::{cell_count, run_scheduled};
use arbmis_bench::ExperimentReport;
use arbmis_congest::Parallelism;
use std::io::Write as _;
use std::sync::Arc;

/// Default on-disk cache root (relative to the working directory).
const DEFAULT_CACHE_DIR: &str = "target/arbmis-cache";

struct Args {
    quick: bool,
    markdown: bool,
    list: bool,
    json: Option<String>,
    selected: Vec<String>,
    threads: Option<usize>,
    cache_dir: Option<String>,
    no_cache: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    perfetto_out: Option<String>,
    flight: bool,
    flight_out: Option<String>,
    backend: MisBackendChoice,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        markdown: false,
        list: false,
        json: None,
        selected: Vec::new(),
        threads: None,
        cache_dir: None,
        no_cache: false,
        metrics_out: None,
        trace_out: None,
        perfetto_out: None,
        flight: false,
        flight_out: None,
        backend: MisBackendChoice::Fast,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--markdown" => args.markdown = true,
            "--list" => args.list = true,
            "--json" => {
                args.json = Some(it.next().expect("--json needs a path"));
            }
            "--threads" => {
                let v = it.next().expect("--threads needs a count");
                args.threads = Some(v.parse().expect("--threads needs an integer"));
            }
            "--cache-dir" => {
                args.cache_dir = Some(it.next().expect("--cache-dir needs a path"));
            }
            "--no-cache" => args.no_cache = true,
            "--metrics-out" => {
                args.metrics_out = Some(it.next().expect("--metrics-out needs a path"));
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().expect("--trace-out needs a path"));
            }
            "--perfetto-out" => {
                args.perfetto_out = Some(it.next().expect("--perfetto-out needs a path"));
            }
            "--flight" => args.flight = true,
            "--flight-out" => {
                args.flight_out = Some(it.next().expect("--flight-out needs a path"));
            }
            "--backend" => {
                let v = it.next().expect("--backend needs fast, congest, or flat");
                args.backend = v.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--exp" => {
                // Consume ids until the next flag.
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--list] [--quick] [--markdown] [--json PATH] \
                     [--threads N] [--cache-dir PATH] [--no-cache] [--metrics-out PATH] \
                     [--trace-out PATH] [--perfetto-out PATH] [--flight] [--flight-out PATH] \
                     [--backend fast|congest|flat] [--exp E1 E2 ...]"
                );
                std::process::exit(0);
            }
            id if id.starts_with('E') || id.starts_with('e') => {
                args.selected.push(id.to_uppercase());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // Before building plans: cell keys embed the backend label.
    arbmis_bench::backend::set_choice(args.backend);
    if args.backend != MisBackendChoice::Fast {
        eprintln!("[experiments] backend: {}", args.backend.label());
    }
    let registry = arbmis_bench::exps::all();
    if args.list {
        for (id, desc, _) in registry {
            println!("{id:<4} {desc}");
        }
        return;
    }
    // Validate every requested id up front: an unknown id is an error,
    // never a silent skip.
    let unknown: Vec<&str> = args
        .selected
        .iter()
        .filter(|s| !registry.iter().any(|(id, _, _)| id == s))
        .map(String::as_str)
        .collect();
    if !unknown.is_empty() {
        let valid: Vec<&str> = registry.iter().map(|(id, _, _)| *id).collect();
        eprintln!(
            "unknown experiment id(s): {} (valid: {})",
            unknown.join(" "),
            valid.join(" ")
        );
        std::process::exit(2);
    }
    let parallelism = match args.threads {
        None | Some(0) => Parallelism::Auto,
        Some(1) => Parallelism::Serial,
        Some(t) => Parallelism::Threads(t),
    };
    if args.no_cache {
        set_global_cache(None);
        eprintln!("[experiments] cache: disabled");
    } else {
        let dir = args.cache_dir.as_deref().unwrap_or(DEFAULT_CACHE_DIR);
        match Cache::open(dir) {
            Ok(cache) => {
                eprintln!("[experiments] cache: {dir}");
                set_global_cache(Some(Arc::new(cache)));
            }
            Err(e) => {
                eprintln!("[experiments] cache disabled ({dir}: {e})");
                set_global_cache(None);
            }
        }
    }
    let observing =
        args.metrics_out.is_some() || args.trace_out.is_some() || args.perfetto_out.is_some();
    let recorder = if observing {
        // One process-wide recorder feeds the simulator, the ArbMIS
        // pipeline, the Monte-Carlo driver, and the cell scheduler for
        // the whole run.
        let rec = arbmis_obs::Recorder::new();
        arbmis_obs::set_global(rec.clone());
        Some(rec)
    } else {
        None
    };
    // The flight recorder rides along without a metric recorder: its
    // ring captures the last rounds of every engine in the run, and the
    // panic hook dumps them if anything trips (DESIGN.md 8).
    let flight = if args.flight || args.flight_out.is_some() {
        let f = arbmis_obs::FlightRecorder::bounded(4096);
        arbmis_obs::set_global_flight(f.clone());
        arbmis_obs::install_flight_panic_hook();
        eprintln!("[experiments] flight recorder: last 4096 rounds");
        Some(f)
    } else {
        None
    };
    let to_run: Vec<_> = registry
        .into_iter()
        .filter(|(id, _, _)| args.selected.is_empty() || args.selected.iter().any(|s| s == id))
        .collect();
    if to_run.is_empty() {
        eprintln!("no experiments matched {:?}", args.selected);
        std::process::exit(2);
    }

    let ids: Vec<&str> = to_run.iter().map(|(id, _, _)| *id).collect();
    let plans: Vec<_> = to_run
        .iter()
        .map(|(_, _, plan_fn)| plan_fn(args.quick))
        .collect();
    eprintln!(
        "[experiments] {} experiment(s) [{}] resolved to {} cells ({}mode, {parallelism:?})",
        plans.len(),
        ids.join(" "),
        cell_count(&plans),
        if args.quick { "quick " } else { "" }
    );
    let outcome = run_scheduled(plans, parallelism);
    eprintln!(
        "[experiments] done in {:.1?}: {} cells on {} worker(s), cell cache {}/{} hits ({:.0}%)",
        outcome.stats.wall,
        outcome.stats.cells,
        outcome.stats.workers,
        outcome.stats.cell_hits,
        outcome.stats.cells,
        outcome.stats.hit_rate() * 100.0
    );
    let reports: Vec<ExperimentReport> = outcome.reports;
    for report in &reports {
        if args.markdown {
            println!("{}", report.to_markdown());
        } else {
            println!("{}", report.to_text());
        }
    }

    if let Some(path) = args.json {
        let json = serde_json::to_string_pretty(&reports).expect("serialize reports");
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("[experiments] wrote {path}");
    }

    if let Some(rec) = recorder {
        let snap = rec.snapshot();
        if let Some(path) = args.metrics_out {
            std::fs::write(&path, snap.to_prometheus()).expect("write metrics output");
            eprintln!("[experiments] wrote {path}");
        }
        if let Some(path) = args.trace_out {
            std::fs::write(&path, snap.to_jsonl()).expect("write trace output");
            eprintln!("[experiments] wrote {path}");
        }
        if let Some(path) = args.perfetto_out {
            std::fs::write(&path, snap.to_chrome_trace()).expect("write perfetto output");
            eprintln!("[experiments] wrote {path}");
        }
    }
    if let (Some(f), Some(path)) = (&flight, args.flight_out) {
        std::fs::write(&path, f.to_jsonl()).expect("write flight output");
        eprintln!("[experiments] wrote {path}");
    }
}
