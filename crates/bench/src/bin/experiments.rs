//! Regenerates every quantitative claim of the paper (experiment index
//! E1–E14; see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! ```sh
//! experiments                 # run the full suite (text to stdout)
//! experiments --list          # print the experiment index and exit
//! experiments --exp E3 E7     # selected experiments
//! experiments --quick         # reduced sizes (used in CI/tests)
//! experiments --markdown      # markdown rendering (for EXPERIMENTS.md)
//! experiments --json out.json # machine-readable results
//! experiments --threads 4     # simulator/Monte-Carlo worker threads
//!                             # (0 = auto, 1 = serial; results identical)
//! experiments --metrics-out m.prom  # Prometheus text exposition of the run
//! experiments --trace-out t.jsonl   # JSONL span/event log of the run
//! ```
//!
//! `--metrics-out` / `--trace-out` install a process-wide recorder
//! (`arbmis_obs::set_global`); per DESIGN.md §8 this never changes any
//! experiment result — the `--json` report is byte-identical with and
//! without them (CI diffs exactly that).

use arbmis_bench::exps;
use arbmis_bench::ExperimentReport;
use arbmis_congest::Parallelism;
use std::io::Write as _;

struct Args {
    quick: bool,
    markdown: bool,
    list: bool,
    json: Option<String>,
    selected: Vec<String>,
    threads: Option<usize>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        markdown: false,
        list: false,
        json: None,
        selected: Vec::new(),
        threads: None,
        metrics_out: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--markdown" => args.markdown = true,
            "--list" => args.list = true,
            "--json" => {
                args.json = Some(it.next().expect("--json needs a path"));
            }
            "--threads" => {
                let v = it.next().expect("--threads needs a count");
                args.threads = Some(v.parse().expect("--threads needs an integer"));
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().expect("--metrics-out needs a path"));
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().expect("--trace-out needs a path"));
            }
            "--exp" => {
                // Consume ids until the next flag.
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--list] [--quick] [--markdown] [--json PATH] \
                     [--threads N] [--metrics-out PATH] [--trace-out PATH] [--exp E1 E2 ...]"
                );
                std::process::exit(0);
            }
            id if id.starts_with('E') || id.starts_with('e') => {
                args.selected.push(id.to_uppercase());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if args.list {
        for (id, desc, _) in exps::all() {
            println!("{id:<4} {desc}");
        }
        return;
    }
    if let Some(t) = args.threads {
        // One global policy for both the CONGEST round engine and the
        // read-k Monte-Carlo driver; every experiment is thread-count
        // invariant, so this only changes wall-clock.
        let policy = match t {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            t => Parallelism::Threads(t),
        };
        arbmis_congest::set_default_parallelism(policy);
        eprintln!("[experiments] parallelism: {policy:?}");
    }
    let observing = args.metrics_out.is_some() || args.trace_out.is_some();
    let recorder = if observing {
        // One process-wide recorder feeds the simulator, the ArbMIS
        // pipeline, and the Monte-Carlo driver for the whole run.
        let rec = arbmis_obs::Recorder::new();
        arbmis_obs::set_global(rec.clone());
        Some(rec)
    } else {
        None
    };
    let registry = exps::all();
    let to_run: Vec<_> = registry
        .into_iter()
        .filter(|(id, _, _)| args.selected.is_empty() || args.selected.iter().any(|s| s == id))
        .collect();
    if to_run.is_empty() {
        eprintln!("no experiments matched {:?}", args.selected);
        std::process::exit(2);
    }

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for (id, _desc, runner) in to_run {
        eprintln!(
            "[experiments] running {id} ({}mode)…",
            if args.quick { "quick " } else { "" }
        );
        let start = std::time::Instant::now();
        let report = runner(args.quick);
        eprintln!("[experiments] {id} done in {:.1?}", start.elapsed());
        if args.markdown {
            println!("{}", report.to_markdown());
        } else {
            println!("{}", report.to_text());
        }
        reports.push(report);
    }

    if let Some(path) = args.json {
        let json = serde_json::to_string_pretty(&reports).expect("serialize reports");
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("[experiments] wrote {path}");
    }

    if let Some(rec) = recorder {
        let snap = rec.snapshot();
        if let Some(path) = args.metrics_out {
            std::fs::write(&path, snap.to_prometheus()).expect("write metrics output");
            eprintln!("[experiments] wrote {path}");
        }
        if let Some(path) = args.trace_out {
            std::fs::write(&path, snap.to_jsonl()).expect("write trace output");
            eprintln!("[experiments] wrote {path}");
        }
    }
}
