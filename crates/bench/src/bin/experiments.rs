//! Regenerates every quantitative claim of the paper (experiment index
//! E1–E14; see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! ```sh
//! experiments                 # run the full suite (text to stdout)
//! experiments --exp E3 E7     # selected experiments
//! experiments --quick         # reduced sizes (used in CI/tests)
//! experiments --markdown      # markdown rendering (for EXPERIMENTS.md)
//! experiments --json out.json # machine-readable results
//! experiments --threads 4     # simulator/Monte-Carlo worker threads
//!                             # (0 = auto, 1 = serial; results identical)
//! ```

use arbmis_bench::exps;
use arbmis_bench::ExperimentReport;
use arbmis_congest::Parallelism;
use std::io::Write as _;

struct Args {
    quick: bool,
    markdown: bool,
    json: Option<String>,
    selected: Vec<String>,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        markdown: false,
        json: None,
        selected: Vec::new(),
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--markdown" => args.markdown = true,
            "--json" => {
                args.json = Some(it.next().expect("--json needs a path"));
            }
            "--threads" => {
                let v = it.next().expect("--threads needs a count");
                args.threads = Some(v.parse().expect("--threads needs an integer"));
            }
            "--exp" => {
                // Consume ids until the next flag.
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick] [--markdown] [--json PATH] \
                     [--threads N] [--exp E1 E2 ...]"
                );
                std::process::exit(0);
            }
            id if id.starts_with('E') || id.starts_with('e') => {
                args.selected.push(id.to_uppercase());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if let Some(t) = args.threads {
        // One global policy for both the CONGEST round engine and the
        // read-k Monte-Carlo driver; every experiment is thread-count
        // invariant, so this only changes wall-clock.
        let policy = match t {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            t => Parallelism::Threads(t),
        };
        arbmis_congest::set_default_parallelism(policy);
        eprintln!("[experiments] parallelism: {policy:?}");
    }
    let registry = exps::all();
    let to_run: Vec<_> = registry
        .into_iter()
        .filter(|(id, _)| args.selected.is_empty() || args.selected.iter().any(|s| s == id))
        .collect();
    if to_run.is_empty() {
        eprintln!("no experiments matched {:?}", args.selected);
        std::process::exit(2);
    }

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for (id, runner) in to_run {
        eprintln!(
            "[experiments] running {id} ({}mode)…",
            if args.quick { "quick " } else { "" }
        );
        let start = std::time::Instant::now();
        let report = runner(args.quick);
        eprintln!("[experiments] {id} done in {:.1?}", start.elapsed());
        if args.markdown {
            println!("{}", report.to_markdown());
        } else {
            println!("{}", report.to_text());
        }
        reports.push(report);
    }

    if let Some(path) = args.json {
        let json = serde_json::to_string_pretty(&reports).expect("serialize reports");
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("[experiments] wrote {path}");
    }
}
