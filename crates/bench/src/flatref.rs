//! The pre-bit-packing flat engine, preserved as a benchmark baseline.
//!
//! [`ByteMaskFlat`] replays Luby/Métivier exactly the way the flat
//! backend did before its masks were word-packed: `Vec<bool>` flags
//! (one byte per node), a full both-direction neighbor scan in the
//! decide round, and per-node loops in reset. It exists so
//! `bench_backends_json` can report the byte-mask path
//! (`flat_ns_per_round`) next to the bit-packed engine
//! (`flat_opt_ns_per_round`) from a single binary — the committed
//! artifact then shows the layout win directly, not across commits.
//!
//! The engine is execution-identical to `arbmis_flat::FlatBackend` (the
//! benchmark cross-checks rounds and the final MIS before timing), but
//! it is **not** a backend: no observability, no coin flips, no
//! BoundedArb, no layout or threading knobs.

use arbmis_congest::{rng, Frontier};
use arbmis_core::{luby, metivier};
use arbmis_graph::{Graph, NodeId};

/// Which protocol the reference engine replays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefAlgo {
    /// Luby's Algorithm B.
    Luby,
    /// Métivier et al. priority competition.
    Metivier,
}

/// `Auto` threshold of the historical engine (matches
/// `arbmis_flat::DENSE_FRACTION`).
const DENSE_FRACTION: usize = 8;

/// The byte-mask flat MIS engine (see the module docs).
pub struct ByteMaskFlat<'g> {
    g: &'g Graph,
    seed: u64,
    algo: RefAlgo,
    round: u64,
    unfinished: usize,
    active: Vec<bool>,
    in_mis: Vec<bool>,
    active_deg: Vec<u32>,
    frontier: Frontier,
    active_count: usize,
    prio: Vec<u64>,
    marked: Vec<bool>,
    wins: Vec<NodeId>,
    joiners: Vec<NodeId>,
    retiring: Vec<NodeId>,
}

/// Visits every active node in ascending order, dense (byte scan over
/// `0..n`) or sparse (frontier iteration) by the historical `Auto` rule.
fn sweep(
    n: usize,
    frontier: &Frontier,
    active: &[bool],
    active_count: usize,
    mut f: impl FnMut(NodeId),
) {
    if active_count * DENSE_FRACTION >= n {
        for (v, &a) in active.iter().enumerate() {
            if a {
                f(v);
            }
        }
    } else {
        for v in frontier.iter() {
            f(v);
        }
    }
}

impl<'g> ByteMaskFlat<'g> {
    /// A reference engine for `algo` on `g` under `seed`, ready at
    /// round 0.
    pub fn new(g: &'g Graph, seed: u64, algo: RefAlgo) -> Self {
        let n = g.n();
        let mut b = ByteMaskFlat {
            g,
            seed,
            algo,
            round: 0,
            unfinished: 0,
            active: vec![false; n],
            in_mis: vec![false; n],
            active_deg: vec![0; n],
            frontier: Frontier::new(n),
            active_count: 0,
            prio: vec![0; n],
            marked: vec![false; n],
            wins: Vec::new(),
            joiners: Vec::new(),
            retiring: Vec::new(),
        };
        b.reset();
        b
    }

    /// Alloc-free rewind to round 0 (per-node loop, as historically).
    pub fn reset(&mut self) {
        let g = self.g;
        let n = g.n();
        self.round = 0;
        self.unfinished = n;
        self.active_count = n;
        self.frontier.clear();
        self.wins.clear();
        self.joiners.clear();
        self.retiring.clear();
        for v in 0..n {
            self.active[v] = true;
            self.in_mis[v] = false;
            self.active_deg[v] = g.degree(v) as u32;
            self.prio[v] = 0;
            self.marked[v] = false;
            self.frontier.insert(v);
        }
    }

    /// Final MIS membership mask.
    pub fn mis(&self) -> &[bool] {
        &self.in_mis
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// True once every node has halted.
    pub fn is_done(&self) -> bool {
        self.unfinished == 0
    }

    /// Runs from a fresh reset to completion, returning the round count.
    ///
    /// # Panics
    ///
    /// Panics if the run is still pending after `max_rounds`.
    pub fn run(&mut self, max_rounds: u64) -> u64 {
        self.reset();
        while !self.is_done() {
            assert!(self.round < max_rounds, "round limit {max_rounds}");
            self.step_round();
        }
        self.round
    }

    fn deactivate(&mut self, v: NodeId) {
        debug_assert!(self.active[v]);
        self.active[v] = false;
        self.frontier.remove(v);
        self.active_count -= 1;
        self.retiring.push(v);
        for &u in self.g.neighbors(v) {
            self.active_deg[u] -= 1;
        }
    }

    fn promote_finished(&mut self) {
        self.unfinished -= self.retiring.len();
        self.retiring.clear();
    }

    /// Two full sweeps: priority fill, then a both-direction win scan
    /// reading every neighbor's byte flags twice per edge in aggregate.
    fn decide_metivier(&mut self, iter: u64) {
        let g = self.g;
        let n = g.n();
        let seed = self.seed;
        let count = self.active_count;
        self.wins.clear();
        let Self {
            frontier,
            active,
            prio,
            wins,
            ..
        } = self;
        sweep(n, frontier, active, count, |v| {
            prio[v] = rng::draw_priority(seed, v, iter, metivier::TAG_PRIORITY, n);
        });
        let (active, prio) = (&active[..], &prio[..]);
        sweep(n, frontier, active, count, |v| {
            let pv = (prio[v], v);
            if g.neighbors(v)
                .iter()
                .all(|&u| !active[u] || pv > (prio[u], u))
            {
                wins.push(v);
            }
        });
    }

    fn decide_luby(&mut self, iter: u64) {
        let g = self.g;
        let n = g.n();
        let seed = self.seed;
        let count = self.active_count;
        self.wins.clear();
        let Self {
            frontier,
            active,
            active_deg,
            marked,
            wins,
            ..
        } = self;
        sweep(n, frontier, active, count, |v| {
            let d = active_deg[v] as usize;
            marked[v] = d > 0 && luby::is_marked(seed, v, iter, d);
        });
        let (active, active_deg, marked) = (&active[..], &active_deg[..], &marked[..]);
        sweep(n, frontier, active, count, |v| {
            let d = active_deg[v];
            let win = if d == 0 {
                true
            } else if marked[v] {
                let key = (u64::from(d), v);
                g.neighbors(v)
                    .iter()
                    .all(|&u| !active[u] || !marked[u] || (u64::from(active_deg[u]), u) < key)
            } else {
                false
            };
            if win {
                wins.push(v);
            }
        });
    }

    fn exit_step(&mut self) {
        let g = self.g;
        let wins = std::mem::take(&mut self.wins);
        for &w in &wins {
            self.in_mis[w] = true;
            self.deactivate(w);
            for &u in g.neighbors(w) {
                if self.active[u] {
                    self.deactivate(u);
                }
            }
        }
        self.joiners.extend_from_slice(&wins);
        self.wins = wins;
    }

    /// One CONGEST round on the 3-sub-round iteration timeline.
    pub fn step_round(&mut self) {
        self.joiners.clear();
        match self.round % 3 {
            0 => self.promote_finished(),
            1 => {
                let iter = self.round / 3;
                match self.algo {
                    RefAlgo::Luby => self.decide_luby(iter),
                    RefAlgo::Metivier => self.decide_metivier(iter),
                }
            }
            _ => self.exit_step(),
        }
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_flat::{FlatAlgo, FlatBackend, MisBackend};
    use arbmis_graph::gen;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn reference_engine_matches_flat_backend() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::gnp_with_expected_degree(2_000, 4.0, &mut rng);
        for (ra, fa) in [
            (RefAlgo::Metivier, FlatAlgo::Metivier),
            (RefAlgo::Luby, FlatAlgo::Luby),
        ] {
            let mut reference = ByteMaskFlat::new(&g, 3, ra);
            let rounds = reference.run(100_000);
            let mut flat = FlatBackend::new(&g, 3, fa);
            let run = flat.run(100_000).unwrap();
            assert_eq!(rounds, run.rounds, "{ra:?} rounds");
            assert_eq!(flat.mis(), reference.mis(), "{ra:?} MIS");
        }
    }
}
