//! E6 — the Invariant / Theorem 3.6: nodes enter the bad set `B` with
//! probability ≤ Δ^{-2p}.

use crate::cache::cached_graph;
use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::exps::seed_chunks;
use crate::{fmt_p, ExperimentReport, Table};
use arbmis_core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis_core::params::ParamMode;
use arbmis_graph::gen::{GraphFamily, GraphSpec};

const FAMILIES: [(GraphFamily, usize); 5] = [
    (GraphFamily::RandomTree, 1usize),
    (GraphFamily::ForestUnion { alpha: 2 }, 2),
    (GraphFamily::KTree { k: 3 }, 3),
    (GraphFamily::Apollonian, 3),
    (GraphFamily::BarabasiAlbert { m: 3 }, 3),
];

/// E6 as a cell plan: one cell per `(family, seed-range)` — the
/// cross-seed aggregate is an integer bad-node tally, and the derived
/// parameters (Θ, Λ) are a pure function of `(graph, α, mode)`, so
/// seed ranges merge exactly.
pub fn e6_invariant_plan(quick: bool) -> ExperimentPlan {
    let (n, seeds) = if quick { (2_000, 5u64) } else { (20_000, 20) };
    let chunks = seed_chunks(seeds, 5);
    let mut cells = Vec::new();
    for (fam, alpha) in FAMILIES {
        let spec = GraphSpec::new(fam, n);
        for &(lo, hi) in &chunks {
            cells.push(Cell::new(
                format!("E6/{}[{lo}..{hi})", fam.label()),
                format!("E6;{};gseed=230;seeds={lo}..{hi}", spec.stable_key()),
                move || {
                    let g = cached_graph(&spec, 0xe6);
                    let mut total_bad = 0usize;
                    let mut params = None;
                    for seed in lo..hi {
                        let cfg = BoundedArbConfig {
                            // Λ scaled down: full-Λ runs finish before any bad
                            // marking could occur, which verifies nothing. One
                            // iteration per scale is the adversarial setting.
                            mode: ParamMode::Practical { lambda_scale: 1e-9 },
                            ..BoundedArbConfig::new(alpha, seed)
                        };
                        let out = bounded_arb_independent_set(&g, &cfg);
                        total_bad += out.bad_size();
                        params = Some(out.params);
                    }
                    let params = params.unwrap();
                    let mut out = CellOut::default();
                    out.put("bad", total_bad as f64);
                    out.put("delta", g.max_degree().max(2) as f64);
                    out.put("gn", g.n() as f64);
                    out.put("theta", params.theta as f64);
                    out.put("lambda", params.lambda as f64);
                    out
                },
            ));
        }
    }
    let chunks_per_family = chunks.len();
    ExperimentPlan::new("E6", cells, move |outs| {
        let mut table = Table::new([
            "family",
            "α",
            "Δ",
            "Θ",
            "Λ",
            "runs",
            "nodes ever bad",
            "bad frac",
            "bound Δ⁻²",
        ]);
        let mut worst_frac = 0.0f64;
        for (i, (fam, alpha)) in FAMILIES.into_iter().enumerate() {
            let group = &outs[i * chunks_per_family..(i + 1) * chunks_per_family];
            let total_bad: usize = group.iter().map(|o| o.get("bad") as usize).sum();
            let delta = group[0].get("delta") as usize;
            let gn = group[0].get("gn");
            let frac = total_bad as f64 / (seeds as f64 * gn);
            worst_frac = worst_frac.max(frac);
            table.push_row([
                fam.label(),
                alpha.to_string(),
                delta.to_string(),
                (group[0].get("theta") as u64).to_string(),
                (group[0].get("lambda") as u64).to_string(),
                seeds.to_string(),
                total_bad.to_string(),
                fmt_p(frac),
                fmt_p(1.0 / (delta as f64 * delta as f64)),
            ]);
        }
        ExperimentReport {
            id: "E6".into(),
            title: "Theorem 3.6: Pr[node joins B] ≤ Δ^(-2p) — Invariant violations per run".into(),
            table,
            notes: vec![
                "Λ is forced to 1 iteration/scale — the most adversarial schedule; the paper's Λ makes B emptier still.".into(),
                format!("worst observed bad fraction: {} — the theorem allows Δ⁻² (p = 1) and observations stay below it.", fmt_p(worst_frac)),
                "empty B at full Λ (see E13) is the paper's designed regime: step 2(b) exists as a safety valve the analysis shows almost never fires.".into(),
            ],
        }
    })
}

/// E6: run Algorithm 1 over many seeds and families; count Invariant
/// violations (= bad markings) per scale and overall.
pub fn e6_invariant(quick: bool) -> ExperimentReport {
    e6_invariant_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_quick_runs() {
        let r = super::e6_invariant(true);
        assert_eq!(r.table.rows.len(), 5);
        // Bad fractions must respect the Δ⁻² bound with slack.
        for row in &r.table.rows {
            let frac: f64 = row[7]
                .parse()
                .unwrap_or_else(|_| row[7].parse().unwrap_or(0.0));
            assert!(frac <= 0.05, "row {row:?}");
        }
    }
}
