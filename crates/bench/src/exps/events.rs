//! E3/E4/E5 — the paper's Figure 1 events, measured on
//! bounded-arboricity graphs.

use crate::cache::cached_graph;
use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::{fmt_p, ExperimentReport, Table};
use arbmis_graph::gen::{GraphFamily, GraphSpec};
use arbmis_graph::orientation::Orientation;
use arbmis_graph::Graph;
use arbmis_readk::events::EventScenario;
use arbmis_readk::{bounds, estimate};
use std::sync::Arc;

fn trials(quick: bool) -> u64 {
    if quick {
        2_000
    } else {
        40_000
    }
}

fn workload(alpha: usize, n: usize) -> (Arc<Graph>, Orientation) {
    let spec = GraphSpec::new(GraphFamily::ForestUnion { alpha }, n);
    let g = cached_graph(&spec, 1000 + alpha as u64);
    let o = Orientation::by_degeneracy(&g);
    (g, o)
}

fn workload_key(alpha: usize, n: usize) -> String {
    format!("alpha={alpha};n={n};gseed={}", 1000 + alpha)
}

/// E3 as a cell plan: one cell per `(α, |M|)` configuration.
pub fn e3_event1_plan(quick: bool) -> ExperimentPlan {
    let trials = trials(quick);
    let n = if quick { 2_000 } else { 8_000 };
    let mut cells = Vec::new();
    for alpha in 1..=4usize {
        for m_size in [20usize, 100, 400] {
            cells.push(Cell::new(
                format!("E3/α={alpha},|M|={m_size}"),
                format!("E3;trials={trials};{};m={m_size}", workload_key(alpha, n)),
                move || {
                    let (g, o) = workload(alpha, n);
                    let m: Vec<usize> = (0..m_size).collect();
                    let sc = EventScenario::new(&g, &o, m, None);
                    let est = estimate(trials, |t| sc.event1_holds(&sc.sample_priorities(0xe3, t)));
                    let delta_m = sc.max_degree_of_m().max(1);
                    let lower = bounds::event1_lower_bound(m_size, delta_m, alpha);
                    let (lo, _) = est.wilson_ci(2.58);
                    // The theorem is stated for an α-orientation; ours is a
                    // degeneracy orientation with out-degree ≤ 2α−1, so compare
                    // against the bound at the *measured* out-degree bound.
                    let holds = lo >= lower - 0.02 || est.p_hat() >= lower;
                    let mut out = CellOut::from_rows(vec![vec![
                        alpha.to_string(),
                        m_size.to_string(),
                        sc.event1_read_parameter().to_string(),
                        (o.max_out_degree() + 1).to_string(),
                        fmt_p(est.p_hat()),
                        fmt_p(lower),
                        if holds {
                            "✓".into()
                        } else {
                            "BELOW".to_string()
                        },
                    ]]);
                    out.put("viol", if holds { 0.0 } else { 1.0 });
                    out
                },
            ));
        }
    }
    ExperimentPlan::new("E3", cells, move |outs| {
        let mut table = Table::new([
            "α",
            "|M|",
            "k measured",
            "k bound α+1",
            "measured",
            "thm 3.1 lower bd",
            "holds",
        ]);
        let mut violations = 0usize;
        for out in outs {
            violations += out.get("viol") as usize;
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E3".into(),
            title: "Event (1) / Figure 1A: some node of M beats all its children (Theorem 3.1)"
                .into(),
            table,
            notes: vec![
                format!("{trials} trials per row on unions of α random forests (n = {n})."),
                "the measured read parameter never exceeds out-degree + 1, matching the read-α structure the proof builds on an independent subset of M.".into(),
                format!("rows where the measured probability fell below the theorem's lower bound: {violations} (expected 0)."),
            ],
        }
    })
}

/// E3 (Figure 1A): Theorem 3.1 — some node of `M` beats all its children
/// with probability ≥ 1 − (1 − 1/Δ_M)^{|M|/2α²}.
pub fn e3_event1(quick: bool) -> ExperimentReport {
    e3_event1_plan(quick).run_serial()
}

/// E4 as a cell plan: one cell per `(α, |M|)` configuration.
pub fn e4_event2_plan(quick: bool) -> ExperimentPlan {
    let trials = trials(quick);
    let n = if quick { 2_000 } else { 8_000 };
    let mut cells = Vec::new();
    for alpha in 1..=4usize {
        for m_size in [100usize, 400, 1600] {
            cells.push(Cell::new(
                format!("E4/α={alpha},|M|={m_size}"),
                format!("E4;trials={trials};{};m={m_size}", workload_key(alpha, n)),
                move || {
                    let (g, o) = workload(alpha, n);
                    let rho =
                        4.0 * (g.max_degree().max(2) as f64) * (g.max_degree().max(2) as f64).ln();
                    let m: Vec<usize> = (0..m_size).collect();
                    let sc = EventScenario::new(&g, &o, m, Some(rho as usize));
                    let est = estimate(trials, |t| {
                        sc.event2_holds(&sc.sample_priorities(0xe4, t), alpha)
                    });
                    let fail_bound = bounds::event2_failure_bound(m_size, alpha, rho);
                    let measured_failure = 1.0 - est.p_hat();
                    let holds = measured_failure <= fail_bound + 0.02;
                    let mut out = CellOut::from_rows(vec![vec![
                        alpha.to_string(),
                        m_size.to_string(),
                        format!("{rho:.0}"),
                        sc.event2_read_parameter().to_string(),
                        fmt_p(est.p_hat()),
                        fmt_p(fail_bound),
                        if holds {
                            "✓".into()
                        } else {
                            "ABOVE".to_string()
                        },
                    ]]);
                    out.put("viol", if holds { 0.0 } else { 1.0 });
                    out
                },
            ));
        }
    }
    ExperimentPlan::new("E4", cells, move |outs| {
        let mut table = Table::new([
            "α",
            "|M|",
            "ρ cutoff",
            "k measured",
            "Pr[success]",
            "thm 3.2 failure bd",
            "holds",
        ]);
        let mut violations = 0usize;
        for out in outs {
            violations += out.get("viol") as usize;
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E4".into(),
            title: "Event (2) / Figure 1B: > |M|/2α nodes of M beat all parents (Theorem 3.2)"
                .into(),
            table,
            notes: vec![
                format!("{trials} trials per row; the ρ cutoff makes every parent's priority read by ≤ ρ children — the read-ρ_k device of the paper."),
                format!("rows whose measured failure exceeded the theorem bound: {violations} (expected 0)."),
                "the measured read parameter stays far below ρ on sparse graphs: the bound is loose but valid.".into(),
            ],
        }
    })
}

/// E4 (Figure 1B): Theorem 3.2 — more than |M|/2α nodes of M beat their
/// parents, failure probability ≤ exp(−2(1/4α²)|M|/ρ).
pub fn e4_event2(quick: bool) -> ExperimentReport {
    e4_event2_plan(quick).run_serial()
}

/// E5 as a cell plan: one cell per `(α, |M|)` configuration.
pub fn e5_event3_plan(quick: bool) -> ExperimentPlan {
    let trials = trials(quick);
    let n = if quick { 2_000 } else { 8_000 };
    let mut cells = Vec::new();
    for alpha in 1..=4usize {
        for m_size in [100usize, 400] {
            cells.push(Cell::new(
                format!("E5/α={alpha},|M|={m_size}"),
                format!("E5;trials={trials};{};m={m_size}", workload_key(alpha, n)),
                move || {
                    let (g, o) = workload(alpha, n);
                    let m: Vec<usize> = (0..m_size).collect();
                    let sc = EventScenario::new(&g, &o, m, None);
                    let est = estimate(trials, |t| {
                        sc.event3_holds(&sc.sample_priorities(0xe5, t), alpha)
                    });
                    let mean_frac = {
                        let sample = trials.min(2_000);
                        let total: usize = (0..sample)
                            .map(|t| sc.event3_eliminated(&sc.sample_priorities(0xe5, t)).len())
                            .sum();
                        total as f64 / (sample as f64 * m_size as f64)
                    };
                    let d = o.max_out_degree();
                    CellOut::from_rows(vec![vec![
                        alpha.to_string(),
                        m_size.to_string(),
                        sc.event3_read_parameter().to_string(),
                        (d * (d + 1) + 1).to_string(),
                        fmt_p(est.p_hat()),
                        fmt_p(mean_frac),
                        fmt_p(bounds::event3_elimination_fraction(alpha)),
                    ]])
                },
            ));
        }
    }
    ExperimentPlan::new("E5", cells, move |outs| {
        let mut table = Table::new([
            "α",
            "|M|",
            "k measured",
            "k bound α(α+1)+1",
            "Pr[enough eliminated]",
            "mean elim frac",
            "required frac",
        ]);
        for out in outs {
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E5".into(),
            title: "Event (3) / Figure 1C: elimination via children joining the MIS (Theorem 3.3)"
                .into(),
            table,
            notes: vec![
                format!("{trials} trials per row; 'Pr[enough eliminated]' should be ≈ 1 — the theorem asks only for the microscopic fraction 1/(8α²(32α⁶+1))."),
                "the mean eliminated fraction is orders of magnitude above the requirement: the paper's constants are proof slack, exactly as §1.2 concedes ('not difficult to reduce this degree').".into(),
                "the measured read parameter respects the α(α+1) family structure (children + grandchildren).".into(),
            ],
        }
    })
}

/// E5 (Figure 1C): Theorem 3.3 — at least |M|/(8α²(32α⁶+1)) nodes of M
/// are eliminated per iteration, w.p. ≥ 1 − 1/Δ³.
pub fn e5_event3(quick: bool) -> ExperimentReport {
    e5_event3_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_quick() {
        let r = super::e3_event1(true);
        assert_eq!(r.table.rows.len(), 12);
        assert!(r.notes.iter().any(|n| n.contains(": 0")));
    }

    #[test]
    fn e4_quick() {
        let r = super::e4_event2(true);
        assert_eq!(r.table.rows.len(), 12);
        assert!(r.notes.iter().any(|n| n.contains(": 0")));
    }

    #[test]
    fn e5_quick() {
        let r = super::e5_event3(true);
        assert_eq!(r.table.rows.len(), 8);
        // Success probability ~1 in every row.
        for row in &r.table.rows {
            let p: f64 = row[4].parse().unwrap_or(0.0);
            assert!(p > 0.9, "row {row:?}");
        }
    }
}
