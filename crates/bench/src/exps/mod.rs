//! The experiment implementations, one module per DESIGN.md group.
//!
//! Every experiment is a plan factory `fn plan(quick: bool) ->
//! ExperimentPlan`: an ordered list of pure cells plus a reduce closure
//! (see [`crate::cell`]). `quick` shrinks trial counts and sizes so the
//! whole suite stays test-runnable; the full-size run regenerates the
//! tables recorded in EXPERIMENTS.md. Each module also keeps a legacy
//! `fn run(quick) -> ExperimentReport` wrapper (`plan(quick)
//! .run_serial()`) for unit tests and single-experiment callers.
//!
//! Cell-decomposition conventions:
//!
//! * one cell per table-row config, with the whole seed/trial loop
//!   inside, **unless** every cross-seed aggregate is an integer (sums,
//!   maxima) — those experiments chunk seeds across cells via
//!   [`seed_chunks`], because integer merges are order-invariant;
//! * floating-point accumulations are never split across cells
//!   (addition order would leak into the bytes);
//! * cache keys spell out the *derived* workload numbers (trial counts,
//!   sizes, seeds), not just the `quick` flag, so changing a constant
//!   self-invalidates the affected entries.

pub mod ablation;
pub mod congest_model;
pub mod events;
pub mod finishing;
pub mod invariant;
pub mod readk_bounds;
pub mod rounds;
pub mod shattering;
pub mod trees;

use crate::cell::ExperimentPlan;

/// An experiment entry: id, one-line description, and plan factory.
pub type Entry = (&'static str, &'static str, fn(bool) -> ExperimentPlan);

/// Splits `0..total` into `[lo, hi)` seed ranges of at most `chunk`
/// seeds — the cell granularity for integer-aggregating experiments.
pub(crate) fn seed_chunks(total: u64, chunk: u64) -> Vec<(u64, u64)> {
    assert!(chunk > 0);
    (0..total.div_ceil(chunk))
        .map(|i| (i * chunk, ((i + 1) * chunk).min(total)))
        .collect()
}

/// All experiments in index order.
pub fn all() -> Vec<Entry> {
    vec![
        (
            "E1",
            "Theorem 1.1: read-k conjunction bound Pr[Y_1=…=Y_n=1] ≤ p^(n/k)",
            readk_bounds::e1_conjunction_plan,
        ),
        (
            "E2",
            "Theorem 1.2: read-k lower-tail bounds vs Chernoff/Azuma",
            readk_bounds::e2_tail_plan,
        ),
        (
            "E3",
            "Event (1) / Figure 1A: some node of M beats all its children (Theorem 3.1)",
            events::e3_event1_plan,
        ),
        (
            "E4",
            "Event (2) / Figure 1B: > |M|/2α nodes of M beat all parents (Theorem 3.2)",
            events::e4_event2_plan,
        ),
        (
            "E5",
            "Event (3) / Figure 1C: elimination via children joining the MIS (Theorem 3.3)",
            events::e5_event3_plan,
        ),
        (
            "E6",
            "Theorem 3.6: Pr[node joins B] ≤ Δ^(-2p) — Invariant violations per run",
            invariant::e6_invariant_plan,
        ),
        (
            "E7",
            "Lemma 3.7: connected components of the bad set B are small",
            shattering::e7_bad_components_plan,
        ),
        (
            "E8",
            "Theorem 2.1 shape: ArbMIS rounds vs n (fixed α) and vs α (fixed n)",
            rounds::e8_scaling_plan,
        ),
        (
            "E9",
            "§1 comparison: CONGEST rounds to a complete MIS across algorithms",
            rounds::e9_race_plan,
        ),
        (
            "E10",
            "Shattering: residual active-set components after truncated priority iterations",
            shattering::e10_residual_plan,
        ),
        (
            "E11",
            "CONGEST compliance: per-message bit accounting for every protocol",
            congest_model::e11_congest_plan,
        ),
        (
            "E12",
            "Ablation: the ρ_k opt-out (high-degree nodes set priority 0)",
            ablation::e12_rho_cutoff_plan,
        ),
        (
            "E13",
            "Ablation: iterations per scale Λ — invariant failures vs schedule budget",
            ablation::e13_lambda_sweep_plan,
        ),
        (
            "E14",
            "Lemma 3.8: forest decomposition + Cole–Vishkin finishing of bad components",
            finishing::e14_cole_vishkin_plan,
        ),
        (
            "E15",
            "Tree specialization: shatter-then-finish tree MIS vs baselines (§1 lineage)",
            trees::e15_tree_specialization_plan,
        ),
        (
            "E16",
            "Workload characterization: structural statistics of every family",
            trees::e16_workloads_plan,
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_ids_unique_and_ordered() {
        let entries = super::all();
        assert_eq!(entries.len(), 16);
        for (i, (id, desc, _)) in entries.iter().enumerate() {
            assert_eq!(*id, format!("E{}", i + 1));
            assert!(!desc.is_empty(), "{id} needs a description");
        }
    }

    #[test]
    fn plan_ids_match_registry_and_keys_are_globally_unique() {
        let mut keys = std::collections::BTreeSet::new();
        for (id, _, plan_fn) in super::all() {
            let plan = plan_fn(true);
            assert_eq!(plan.id, id);
            assert!(!plan.cells.is_empty(), "{id} has no cells");
            for cell in &plan.cells {
                assert!(
                    cell.key.starts_with(&format!("{id};")),
                    "{id} cell key {:?} must be namespaced by experiment id",
                    cell.key
                );
                assert!(
                    keys.insert(cell.key.clone()),
                    "duplicate cell key {:?}",
                    cell.key
                );
            }
        }
    }

    #[test]
    fn seed_chunks_cover_exactly() {
        assert_eq!(super::seed_chunks(5, 2), vec![(0, 2), (2, 4), (4, 5)]);
        assert_eq!(super::seed_chunks(4, 4), vec![(0, 4)]);
        assert_eq!(super::seed_chunks(0, 3), Vec::<(u64, u64)>::new());
    }
}
