//! The experiment implementations, one module per DESIGN.md group.
//!
//! Every experiment is a pure function `fn run(quick: bool) ->
//! ExperimentReport`. `quick` shrinks trial counts and sizes so the whole
//! suite stays test-runnable; the full-size run regenerates the tables
//! recorded in EXPERIMENTS.md.

pub mod ablation;
pub mod congest_model;
pub mod events;
pub mod finishing;
pub mod invariant;
pub mod readk_bounds;
pub mod rounds;
pub mod shattering;
pub mod trees;

use crate::ExperimentReport;

/// An experiment entry: id and runner.
pub type Entry = (&'static str, fn(bool) -> ExperimentReport);

/// All experiments in index order.
pub fn all() -> Vec<Entry> {
    vec![
        ("E1", readk_bounds::e1_conjunction),
        ("E2", readk_bounds::e2_tail),
        ("E3", events::e3_event1),
        ("E4", events::e4_event2),
        ("E5", events::e5_event3),
        ("E6", invariant::e6_invariant),
        ("E7", shattering::e7_bad_components),
        ("E8", rounds::e8_scaling),
        ("E9", rounds::e9_race),
        ("E10", shattering::e10_residual),
        ("E11", congest_model::e11_congest),
        ("E12", ablation::e12_rho_cutoff),
        ("E13", ablation::e13_lambda_sweep),
        ("E14", finishing::e14_cole_vishkin),
        ("E15", trees::e15_tree_specialization),
        ("E16", trees::e16_workloads),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_ids_unique_and_ordered() {
        let entries = super::all();
        assert_eq!(entries.len(), 16);
        for (i, (id, _)) in entries.iter().enumerate() {
            assert_eq!(*id, format!("E{}", i + 1));
        }
    }
}
