//! The experiment implementations, one module per DESIGN.md group.
//!
//! Every experiment is a pure function `fn run(quick: bool) ->
//! ExperimentReport`. `quick` shrinks trial counts and sizes so the whole
//! suite stays test-runnable; the full-size run regenerates the tables
//! recorded in EXPERIMENTS.md.

pub mod ablation;
pub mod congest_model;
pub mod events;
pub mod finishing;
pub mod invariant;
pub mod readk_bounds;
pub mod rounds;
pub mod shattering;
pub mod trees;

use crate::ExperimentReport;

/// An experiment entry: id, one-line description, and runner.
pub type Entry = (&'static str, &'static str, fn(bool) -> ExperimentReport);

/// All experiments in index order.
pub fn all() -> Vec<Entry> {
    vec![
        (
            "E1",
            "Theorem 1.1: read-k conjunction bound Pr[Y_1=…=Y_n=1] ≤ p^(n/k)",
            readk_bounds::e1_conjunction,
        ),
        (
            "E2",
            "Theorem 1.2: read-k lower-tail bounds vs Chernoff/Azuma",
            readk_bounds::e2_tail,
        ),
        (
            "E3",
            "Event (1) / Figure 1A: some node of M beats all its children (Theorem 3.1)",
            events::e3_event1,
        ),
        (
            "E4",
            "Event (2) / Figure 1B: > |M|/2α nodes of M beat all parents (Theorem 3.2)",
            events::e4_event2,
        ),
        (
            "E5",
            "Event (3) / Figure 1C: elimination via children joining the MIS (Theorem 3.3)",
            events::e5_event3,
        ),
        (
            "E6",
            "Theorem 3.6: Pr[node joins B] ≤ Δ^(-2p) — Invariant violations per run",
            invariant::e6_invariant,
        ),
        (
            "E7",
            "Lemma 3.7: connected components of the bad set B are small",
            shattering::e7_bad_components,
        ),
        (
            "E8",
            "Theorem 2.1 shape: ArbMIS rounds vs n (fixed α) and vs α (fixed n)",
            rounds::e8_scaling,
        ),
        (
            "E9",
            "§1 comparison: CONGEST rounds to a complete MIS across algorithms",
            rounds::e9_race,
        ),
        (
            "E10",
            "Shattering: residual active-set components after truncated priority iterations",
            shattering::e10_residual,
        ),
        (
            "E11",
            "CONGEST compliance: per-message bit accounting for every protocol",
            congest_model::e11_congest,
        ),
        (
            "E12",
            "Ablation: the ρ_k opt-out (high-degree nodes set priority 0)",
            ablation::e12_rho_cutoff,
        ),
        (
            "E13",
            "Ablation: iterations per scale Λ — invariant failures vs schedule budget",
            ablation::e13_lambda_sweep,
        ),
        (
            "E14",
            "Lemma 3.8: forest decomposition + Cole–Vishkin finishing of bad components",
            finishing::e14_cole_vishkin,
        ),
        (
            "E15",
            "Tree specialization: shatter-then-finish tree MIS vs baselines (§1 lineage)",
            trees::e15_tree_specialization,
        ),
        (
            "E16",
            "Workload characterization: structural statistics of every family",
            trees::e16_workloads,
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_ids_unique_and_ordered() {
        let entries = super::all();
        assert_eq!(entries.len(), 16);
        for (i, (id, desc, _)) in entries.iter().enumerate() {
            assert_eq!(*id, format!("E{}", i + 1));
            assert!(!desc.is_empty(), "{id} needs a description");
        }
    }
}
