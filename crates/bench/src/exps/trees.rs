//! E15/E16 — the tree specialization (the paper's §1 lineage) and
//! workload characterization.

use crate::cache::cached_graph;
use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::{fmt_f, ExperimentReport, Table};
use arbmis_core::{arb_mis, check_mis, luby, metivier, tree_mis, ArbMisConfig};
use arbmis_graph::gen::{GraphFamily, GraphSpec};
use arbmis_graph::stats::GraphStats;

const E15_FAMILIES: [GraphFamily; 2] = [
    GraphFamily::RandomTree,
    GraphFamily::Caterpillar { legs: 5 },
];

/// E15 as a cell plan: one cell per `(family, n)` — the seed loop
/// accumulates f64 means, so it stays whole inside the cell.
pub fn e15_tree_specialization_plan(quick: bool) -> ExperimentPlan {
    let seeds: u64 = if quick { 2 } else { 5 };
    let sizes: &[usize] = if quick {
        &[1 << 10, 1 << 12]
    } else {
        &[1 << 10, 1 << 13, 1 << 16]
    };
    let mut cells = Vec::new();
    for fam in E15_FAMILIES {
        for &n in sizes {
            let spec = GraphSpec::new(fam, n);
            cells.push(Cell::new(
                format!("E15/{}:n={n}", fam.label()),
                format!("E15;{};gseed=21;seeds={seeds}", spec.stable_key()),
                move || {
                    let g = cached_graph(&spec, 0x15);
                    let mut sums = [0f64; 6];
                    for seed in 0..seeds {
                        let t = tree_mis::tree_mis(&g, seed);
                        check_mis(&g, &t.in_mis).expect("tree_mis invalid");
                        let a = arb_mis(&g, &ArbMisConfig::new(1, seed));
                        check_mis(&g, &a.in_mis).expect("arbmis invalid");
                        let vals = [
                            luby::run(&g, seed).rounds as f64,
                            metivier::run(&g, seed).rounds as f64,
                            t.rounds as f64,
                            t.shatter_rounds as f64,
                            t.finish_rounds as f64,
                            a.rounds as f64,
                        ];
                        for (s, v) in sums.iter_mut().zip(vals) {
                            *s += v;
                        }
                    }
                    let k = seeds as f64;
                    let logn = (g.n() as f64).log2();
                    CellOut::from_rows(vec![vec![
                        fam.label(),
                        g.n().to_string(),
                        fmt_f(sums[0] / k),
                        fmt_f(sums[1] / k),
                        fmt_f(sums[2] / k),
                        fmt_f(sums[3] / k),
                        fmt_f(sums[4] / k),
                        fmt_f(sums[5] / k),
                        fmt_f((logn * logn.log2()).sqrt()),
                    ]])
                },
            ));
        }
    }
    ExperimentPlan::new("E15", cells, move |outs| {
        let mut table = Table::new([
            "tree family",
            "n",
            "luby",
            "metivier",
            "tree-mis",
            "  (shatter)",
            "  (finish)",
            "arbmis α=1",
            "√(lg n·lglg n)",
        ]);
        for out in outs {
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E15".into(),
            title: "Tree specialization: shatter-then-finish tree MIS vs baselines (§1 lineage)"
                .into(),
            table,
            notes: vec![
                format!("mean over {seeds} seeds; every output verified to be an MIS."),
                "tree-mis caps its randomized phase at ⌈√(log₂ n·log₂log₂ n)⌉ iterations and finishes residual components with Cole–Vishkin — the Lenzen-Wattenhofer/BEPS recipe the paper generalizes.".into(),
                "arbmis at α = 1 runs the same machinery through the general scale schedule: same asymptotics, bigger schedule constant — the specialization relationship is visible directly.".into(),
            ],
        }
    })
}

/// E15: on forests, compare the dedicated shatter-then-finish tree
/// pipeline (Lenzen–Wattenhofer / BEPS style) against the baselines and
/// against `ArbMIS` run at α = 1 — the specialization relationship §1 of
/// the paper describes.
pub fn e15_tree_specialization(quick: bool) -> ExperimentReport {
    e15_tree_specialization_plan(quick).run_serial()
}

const E16_FAMILIES: [GraphFamily; 13] = [
    GraphFamily::RandomTree,
    GraphFamily::Caterpillar { legs: 4 },
    GraphFamily::ForestUnion { alpha: 2 },
    GraphFamily::ForestUnion { alpha: 4 },
    GraphFamily::KTree { k: 3 },
    GraphFamily::Apollonian,
    GraphFamily::SeriesParallel,
    GraphFamily::BarabasiAlbert { m: 3 },
    GraphFamily::PowerlawCluster { m: 3, p: 0.7 },
    GraphFamily::GnpAvgDegree { d: 8.0 },
    GraphFamily::Geometric { radius: 0.02 },
    GraphFamily::RingOfCliques { k: 6 },
    GraphFamily::Grid,
];

/// E16 as a cell plan: one cell per family — `GraphStats::compute` is the
/// expensive part and each family's statistics are independent.
pub fn e16_workloads_plan(quick: bool) -> ExperimentPlan {
    let n = if quick { 1_000 } else { 10_000 };
    let cells = E16_FAMILIES
        .into_iter()
        .map(|fam| {
            let spec = GraphSpec::new(fam, n);
            Cell::new(
                format!("E16/{}", fam.label()),
                format!("E16;{};gseed=22", spec.stable_key()),
                move || {
                    let g = cached_graph(&spec, 0x16);
                    let s = GraphStats::compute(&g);
                    CellOut::from_rows(vec![vec![
                        fam.label(),
                        s.n.to_string(),
                        s.m.to_string(),
                        s.max_degree.to_string(),
                        fmt_f(s.avg_degree),
                        s.degeneracy.to_string(),
                        format!("[{},{}]", s.arboricity_lower, s.arboricity_upper),
                        s.components.to_string(),
                        s.triangles.to_string(),
                        format!("{:.3}", s.clustering),
                    ]])
                },
            )
        })
        .collect();
    ExperimentPlan::new("E16", cells, |outs| {
        let mut table = Table::new([
            "family",
            "n",
            "m",
            "Δ",
            "avg deg",
            "degen",
            "α bounds",
            "comps",
            "triangles",
            "clustering",
        ]);
        for out in outs {
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E16".into(),
            title: "Workload characterization: structural statistics of every family".into(),
            table,
            notes: vec![
                "degeneracy certifies the arboricity upper bound used as α in the algorithm runs; families advertised as arboricity-bounded must show degen ≤ 2α−1.".into(),
            ],
        }
    })
}

/// E16: structural characterization of every workload family used across
/// the suite — so the other tables are interpretable.
pub fn e16_workloads(quick: bool) -> ExperimentReport {
    e16_workloads_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e15_quick() {
        let r = super::e15_tree_specialization(true);
        assert_eq!(r.table.rows.len(), 4);
    }

    #[test]
    fn e16_quick() {
        let r = super::e16_workloads(true);
        assert_eq!(r.table.rows.len(), 13);
        // Bounded families: degeneracy within certificate.
        for row in &r.table.rows {
            let degen: usize = row[5].parse().unwrap();
            assert!(degen <= 40, "row {row:?}");
        }
    }
}
