//! E12/E13 — ablations: the ρ_k opt-out device and the Λ iteration
//! budget.

use crate::cache::cached_graph;
use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::exps::seed_chunks;
use crate::{fmt_p, ExperimentReport, Table};
use arbmis_core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis_core::params::ParamMode;
use arbmis_graph::gen::{GraphFamily, GraphSpec};
use arbmis_graph::orientation::Orientation;
use arbmis_readk::events::EventScenario;

const E12_FAMILIES: [(GraphFamily, usize); 3] = [
    (GraphFamily::BarabasiAlbert { m: 2 }, 2usize),
    (GraphFamily::BarabasiAlbert { m: 3 }, 3),
    (GraphFamily::Apollonian, 3),
];

/// E12 as a cell plan: one cell per graph family (each cell is one row).
pub fn e12_rho_cutoff_plan(quick: bool) -> ExperimentPlan {
    let n = if quick { 2_000 } else { 20_000 };
    let cells = E12_FAMILIES
        .into_iter()
        .map(|(fam, alpha)| {
            let spec = GraphSpec::new(fam, n);
            Cell::new(
                format!("E12/{}", fam.label()),
                format!("E12;{};gseed=18;alpha={alpha}", spec.stable_key()),
                move || {
                    let g = cached_graph(&spec, 0x12);
                    let o = Orientation::by_degeneracy(&g);
                    let delta = g.max_degree();
                    // ρ at a deep scale, where the cutoff actually bites
                    // (ρ_1 ≈ 4Δ·lnΔ exceeds Δ, so early scales never
                    // exclude anyone).
                    let rho = (delta / 8).max(2);
                    let m: Vec<usize> = (0..n.min(2_000)).collect();
                    let uncut = EventScenario::new(&g, &o, m.clone(), None);
                    let cut = EventScenario::new(&g, &o, m, Some(rho));

                    let on = bounded_arb_independent_set(&g, &BoundedArbConfig::new(alpha, 7));
                    let off = bounded_arb_independent_set(
                        &g,
                        &BoundedArbConfig {
                            rho_cutoff: false,
                            ..BoundedArbConfig::new(alpha, 7)
                        },
                    );
                    CellOut::from_rows(vec![vec![
                        fam.label(),
                        delta.to_string(),
                        rho.to_string(),
                        uncut.event2_read_parameter().to_string(),
                        cut.event2_read_parameter().to_string(),
                        on.mis_size().to_string(),
                        off.mis_size().to_string(),
                        on.rounds.to_string(),
                        off.rounds.to_string(),
                    ]])
                },
            )
        })
        .collect();
    ExperimentPlan::new("E12", cells, |outs| {
        let mut table = Table::new([
            "graph",
            "Δ",
            "ρ",
            "k(Event2) no cutoff",
            "k(Event2) cutoff",
            "|I| on",
            "|I| off",
            "rounds on",
            "rounds off",
        ]);
        for out in outs {
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E12".into(),
            title: "Ablation: the ρ_k opt-out (high-degree nodes set priority 0)".into(),
            table,
            notes: vec![
                "the cutoff caps the Event (2) read parameter at ρ — without it a hub's priority is read by its whole (unbounded) child set, and Theorem 3.2's read-ρ_k argument collapses.".into(),
                "operationally the algorithm barely changes on these inputs (columns on/off): the device exists for the *analysis*, exactly as the paper presents it.".into(),
            ],
        }
    })
}

/// E12: the ρ_k cutoff. Its analytical role is to cap the Event (2) read
/// parameter at ρ_k (a parent's priority is read only by its ≤ ρ_k
/// children when competitive). Measured: the read parameter of the
/// Event (2) family with and without the cutoff on heavy-tailed graphs,
/// plus whole-algorithm outcomes with the cutoff disabled.
pub fn e12_rho_cutoff(quick: bool) -> ExperimentReport {
    e12_rho_cutoff_plan(quick).run_serial()
}

const E13_SCALES: [f64; 6] = [1e-9, 0.002, 0.01, 0.05, 0.2, 1.0];

/// E13 as a cell plan: one cell per `(λ-scale, seed-range)` — cross-seed
/// aggregates are integer sums, and Λ itself is a pure function of
/// `(α, Δ, mode)`, so any chunk can report it.
pub fn e13_lambda_sweep_plan(quick: bool) -> ExperimentPlan {
    let n = if quick { 2_000 } else { 20_000 };
    let seeds: u64 = if quick { 3 } else { 10 };
    let chunks = seed_chunks(seeds, 5);
    let spec = GraphSpec::new(GraphFamily::BarabasiAlbert { m: 3 }, n);
    let mut cells = Vec::new();
    for scale in E13_SCALES {
        for &(lo, hi) in &chunks {
            cells.push(Cell::new(
                format!("E13/λ×{scale}[{lo}..{hi})"),
                format!(
                    "E13;{};gseed=19;scale=f{:016x};seeds={lo}..{hi}",
                    spec.stable_key(),
                    scale.to_bits()
                ),
                move || {
                    let g = cached_graph(&spec, 0x13);
                    let mut mis = 0usize;
                    let mut residual = 0usize;
                    let mut bad = 0usize;
                    let mut rounds = 0u64;
                    let mut lambda = 0u64;
                    for seed in lo..hi {
                        let cfg = BoundedArbConfig {
                            mode: ParamMode::Practical {
                                lambda_scale: scale,
                            },
                            ..BoundedArbConfig::new(3, seed)
                        };
                        let out = bounded_arb_independent_set(&g, &cfg);
                        mis += out.mis_size();
                        residual += out.active_size();
                        bad += out.bad_size();
                        rounds += out.rounds;
                        lambda = out.params.lambda;
                    }
                    let mut out = CellOut::default();
                    out.put("mis", mis as f64);
                    out.put("residual", residual as f64);
                    out.put("bad", bad as f64);
                    out.put("rounds", rounds as f64);
                    out.put("lambda", lambda as f64);
                    out
                },
            ));
        }
    }
    let per_scale = chunks.len();
    ExperimentPlan::new("E13", cells, move |outs| {
        let mut table = Table::new([
            "λ-scale",
            "Λ",
            "mean |I|",
            "mean residual",
            "mean |B|",
            "bad frac",
            "rounds",
        ]);
        for (i, scale) in E13_SCALES.into_iter().enumerate() {
            let group = &outs[i * per_scale..(i + 1) * per_scale];
            let sum =
                |k: &str| -> f64 { group.iter().map(|o| o.get(k) as u64).sum::<u64>() as f64 };
            let s = seeds as f64;
            let bad = sum("bad");
            table.push_row([
                format!("{scale}"),
                (group[0].get("lambda") as u64).to_string(),
                format!("{:.0}", sum("mis") / s),
                format!("{:.1}", sum("residual") / s),
                format!("{:.2}", bad / s),
                fmt_p(bad / (s * n as f64)),
                format!("{:.0}", sum("rounds") / s),
            ]);
        }
        ExperimentReport {
            id: "E13".into(),
            title: "Ablation: iterations per scale Λ — invariant failures vs schedule budget"
                .into(),
            table,
            notes: vec![
                format!("n = {n}, {seeds} seeds on a heavy-tailed α=3 graph."),
                "even Λ = 1 leaves a near-empty residual and a bad fraction far below Δ⁻²; the paper's Λ ~ α⁸·log(α·logΔ) is pure proof slack (its own §1.2 concedes the α-degree is reducible).".into(),
                "rounds grow linearly in Λ — the knob trades schedule cost against the probability the Invariant needs its step-2(b) safety valve.".into(),
            ],
        }
    })
}

/// E13: Λ sweep — how many inner iterations a scale actually needs.
pub fn e13_lambda_sweep(quick: bool) -> ExperimentReport {
    e13_lambda_sweep_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_quick() {
        let r = super::e12_rho_cutoff(true);
        assert_eq!(r.table.rows.len(), 3);
        for row in &r.table.rows {
            let k_off: usize = row[3].parse().unwrap();
            let k_on: usize = row[4].parse().unwrap();
            assert!(
                k_on <= k_off,
                "cutoff must not increase the read parameter: {row:?}"
            );
        }
    }

    #[test]
    fn e13_quick() {
        let r = super::e13_lambda_sweep(true);
        assert_eq!(r.table.rows.len(), 6);
        // Rounds must be monotone in Λ.
        let rounds: Vec<f64> = r.table.rows.iter().map(|r| r[6].parse().unwrap()).collect();
        for w in rounds.windows(2) {
            assert!(w[0] <= w[1] + 1.0, "{rounds:?}");
        }
    }
}
