//! E11 — CONGEST compliance: message sizes and counts under real message
//! passing.

use crate::cache::cached_graph;
use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::{fmt_f, ExperimentReport, Table};
use arbmis_congest::Simulator;
use arbmis_core::bounded_arb::{bounded_arb_independent_set, BoundedArbConfig};
use arbmis_core::params::ParamMode;
use arbmis_core::protocols::{
    BoundedArbProtocol, GhaffariProtocol, LubyProtocol, MetivierProtocol,
};
use arbmis_graph::gen::{GraphFamily, GraphSpec};

const PROTOCOLS: [&str; 4] = ["metivier", "luby", "ghaffari", "bounded-arb (alg 1)"];

fn metrics_row(name: &str, m: arbmis_congest::Metrics, budget: usize) -> Vec<String> {
    vec![
        name.to_string(),
        m.rounds.to_string(),
        m.messages.to_string(),
        m.bits.to_string(),
        m.max_message_bits.to_string(),
        fmt_f(m.avg_message_bits()),
        budget.to_string(),
        if m.within_budget() {
            "✓".into()
        } else {
            "NO".to_string()
        },
    ]
}

/// E11 as a cell plan: one cell per protocol, each simulating the full
/// message-passing run on the shared cached workload graph.
pub fn e11_congest_plan(quick: bool) -> ExperimentPlan {
    let n = if quick { 300 } else { 2_000 };
    let seed = 0x11u64;
    let spec = GraphSpec::new(GraphFamily::ForestUnion { alpha: 2 }, n);
    let cells = PROTOCOLS
        .into_iter()
        .map(|name| {
            Cell::new(
                format!("E11/{name}"),
                format!("E11;proto={name};{};gseed=17", spec.stable_key()),
                move || {
                    let g = cached_graph(&spec, seed);
                    let budget = Simulator::new(&g, seed).budget_bits().unwrap();
                    let mut out = CellOut::default();
                    let metrics = match name {
                        "metivier" => {
                            Simulator::new(&g, seed)
                                .run(&MetivierProtocol, 100_000)
                                .unwrap()
                                .metrics
                        }
                        "luby" => {
                            Simulator::new(&g, seed)
                                .run(&LubyProtocol, 100_000)
                                .unwrap()
                                .metrics
                        }
                        "ghaffari" => {
                            Simulator::new(&g, seed)
                                .run(&GhaffariProtocol, 100_000)
                                .unwrap()
                                .metrics
                        }
                        _ => {
                            // BoundedArb with a trimmed Λ so the oblivious
                            // schedule stays cheap to message-simulate; the
                            // equivalence with the fast path is exact either
                            // way (protocol tests in arbmis-core assert it).
                            let cfg = BoundedArbConfig {
                                mode: ParamMode::Practical { lambda_scale: 0.02 },
                                ..BoundedArbConfig::new(2, seed)
                            };
                            let fast = bounded_arb_independent_set(&g, &cfg);
                            let proto = BoundedArbProtocol {
                                params: fast.params,
                                rho_cutoff: true,
                            };
                            let run = Simulator::new(&g, seed)
                                .run(&proto, proto.total_rounds() + 2)
                                .unwrap();
                            let mis: Vec<bool> = run.states.iter().map(|s| s.in_mis).collect();
                            out.put("equal", (mis == fast.in_mis) as u64 as f64);
                            run.metrics
                        }
                    };
                    out.rows = vec![metrics_row(name, metrics, budget)];
                    out
                },
            )
        })
        .collect();
    ExperimentPlan::new("E11", cells, move |outs| {
        let mut table = Table::new([
            "protocol",
            "rounds",
            "messages",
            "total bits",
            "max msg bits",
            "avg msg bits",
            "budget bits",
            "within",
        ]);
        let mut equal = true;
        for out in outs {
            if out.try_get("equal").is_some() {
                equal = out.get("equal") != 0.0;
            }
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E11".into(),
            title: "CONGEST compliance: per-message bit accounting for every protocol".into(),
            table,
            notes: vec![
                format!("n = {n}; budget = 16·⌈log₂ n⌉ bits/message, enforced by the simulator (a violation aborts the run)."),
                format!("bounded-arb protocol vs fast path bit-identical MIS: {equal} (also asserted by unit tests)."),
                "priorities are 4·⌈log₂ n⌉-bit values — the dominant payload; Ghaffari's desire levels cross the wire as exponents (O(log log Δ) bits).".into(),
            ],
        }
    })
}

/// E11: run every protocol on the simulator and account for bandwidth.
pub fn e11_congest(quick: bool) -> ExperimentReport {
    e11_congest_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_quick_within_budget() {
        let r = super::e11_congest(true);
        assert_eq!(r.table.rows.len(), 4);
        for row in &r.table.rows {
            assert_eq!(row[7], "✓", "row {row:?}");
        }
        assert!(r
            .notes
            .iter()
            .any(|n| n.contains("bit-identical MIS: true")));
    }
}
