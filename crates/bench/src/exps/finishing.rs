//! E14 — the Lemma 3.8 finishing machinery: Cole–Vishkin log* behaviour
//! and the per-component pipeline.

use crate::{ExperimentReport, Table};
use arbmis_core::{cole_vishkin, forest_decomp};
use arbmis_graph::forest::forests_by_degeneracy;
use arbmis_graph::{gen, traversal};
use rand::SeedableRng;

/// E14: (a) CV coloring rounds vs forest size — log* growth; (b) the full
/// bad-component pipeline (decomposition + coloring + sweep) on synthetic
/// components.
pub fn e14_cole_vishkin(quick: bool) -> ExperimentReport {
    let mut table = Table::new([
        "part",
        "input",
        "n",
        "rounds decomp",
        "rounds CV",
        "rounds sweep",
        "total",
        "valid MIS",
    ]);
    // Part (a): CV on random trees of growing size.
    let sizes: &[usize] = if quick {
        &[100, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    for &n in sizes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x14);
        let g = gen::random_tree_prufer(n, &mut rng);
        let forest = forests_by_degeneracy(&g).pop().unwrap();
        let coloring = cole_vishkin::cv_color_to_three(&forest);
        let run = cole_vishkin::forest_mis(&forest);
        let ok = arbmis_core::check_mis(&forest.to_graph(), &run.in_mis).is_ok();
        table.push_row([
            "a:CV".into(),
            "random tree".into(),
            n.to_string(),
            "-".into(),
            coloring.rounds.to_string(),
            (run.rounds - coloring.rounds).to_string(),
            run.rounds.to_string(),
            if ok { "✓".into() } else { "NO".to_string() },
        ]);
    }
    // Part (b): the full Lemma 3.8 pipeline on component-sized graphs of
    // arboricity ≤ 3 (the size regime Lemma 3.7 guarantees for B).
    let comp_sizes: &[usize] = if quick {
        &[50, 200]
    } else {
        &[50, 200, 1_000, 5_000]
    };
    for &n in comp_sizes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x14b);
        let g = gen::apollonian(n.max(3), &mut rng);
        let (forests, decomp_rounds) = forest_decomp::forest_decomposition(&g, 3, 1.0).unwrap();
        let coloring = cole_vishkin::cv_color_to_three(&forests[0]);
        let (mis, sweep_rounds) =
            cole_vishkin::colorwise_mis(&g, &coloring.colors, coloring.num_colors, None);
        let ok = arbmis_core::check_mis(&g, &mis).is_ok();
        table.push_row([
            "b:pipeline".into(),
            "apollonian comp".into(),
            n.to_string(),
            decomp_rounds.to_string(),
            coloring.rounds.to_string(),
            sweep_rounds.to_string(),
            (decomp_rounds + coloring.rounds + sweep_rounds).to_string(),
            if ok { "✓".into() } else { "NO".to_string() },
        ]);
    }
    // Cross-check: the forests of a decomposition are genuinely forests.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x14c);
    let g = gen::random_ktree(2_000, 3, &mut rng);
    let (forests, _) = forest_decomp::forest_decomposition(&g, 3, 1.0).unwrap();
    let all_forests = forests.iter().all(|f| traversal::is_forest(&f.to_graph()));

    ExperimentReport {
        id: "E14".into(),
        title: "Lemma 3.8: forest decomposition + Cole–Vishkin finishing of bad components".into(),
        table,
        notes: vec![
            "part (a): CV rounds grow like log* n — 10⁴× more nodes buys ~1 extra round.".into(),
            "part (b): decomposition rounds are O(log n) peeling phases; the sweep is O(1) classes; total matches the O(log Δ + log log n + α·log* n) shape of Lemma 3.8.".into(),
            format!("decomposition classes verified to be forests: {all_forests}."),
            "intra-class conflicts across forests are broken by node id (one extra comparison round) — a detail the brief announcement elides; see DESIGN.md.".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_quick_all_valid() {
        let r = super::e14_cole_vishkin(true);
        assert_eq!(r.table.rows.len(), 4);
        for row in &r.table.rows {
            assert_eq!(row[7], "✓", "row {row:?}");
        }
        assert!(r.notes.iter().any(|n| n.contains("forests: true")));
    }
}
