//! E14 — the Lemma 3.8 finishing machinery: Cole–Vishkin log* behaviour
//! and the per-component pipeline.

use crate::cache::cached_graph;
use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::{ExperimentReport, Table};
use arbmis_core::{cole_vishkin, forest_decomp};
use arbmis_graph::forest::forests_by_degeneracy;
use arbmis_graph::gen::{GraphFamily, GraphSpec};
use arbmis_graph::traversal;

/// E14 as a cell plan: one cell per part-(a) tree size, one per part-(b)
/// component size, plus the forest-decomposition cross-check cell. Rows
/// land in a-then-b order because reduction follows cell order.
pub fn e14_cole_vishkin_plan(quick: bool) -> ExperimentPlan {
    let mut cells = Vec::new();
    // Part (a): CV on random trees of growing size.
    let sizes: &[usize] = if quick {
        &[100, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    for &n in sizes {
        let spec = GraphSpec::new(GraphFamily::RandomTree, n);
        cells.push(Cell::new(
            format!("E14/a:n={n}"),
            format!("E14;part=a;{};gseed=20", spec.stable_key()),
            move || {
                let g = cached_graph(&spec, 0x14);
                let forest = forests_by_degeneracy(&g).pop().unwrap();
                let coloring = cole_vishkin::cv_color_to_three(&forest);
                let run = cole_vishkin::forest_mis(&forest);
                let ok = arbmis_core::check_mis(&forest.to_graph(), &run.in_mis).is_ok();
                CellOut::from_rows(vec![vec![
                    "a:CV".into(),
                    "random tree".into(),
                    n.to_string(),
                    "-".into(),
                    coloring.rounds.to_string(),
                    (run.rounds - coloring.rounds).to_string(),
                    run.rounds.to_string(),
                    if ok { "✓".into() } else { "NO".to_string() },
                ]])
            },
        ));
    }
    // Part (b): the full Lemma 3.8 pipeline on component-sized graphs of
    // arboricity ≤ 3 (the size regime Lemma 3.7 guarantees for B).
    let comp_sizes: &[usize] = if quick {
        &[50, 200]
    } else {
        &[50, 200, 1_000, 5_000]
    };
    for &n in comp_sizes {
        let spec = GraphSpec::new(GraphFamily::Apollonian, n);
        cells.push(Cell::new(
            format!("E14/b:n={n}"),
            format!("E14;part=b;{};gseed=331", spec.stable_key()),
            move || {
                let g = cached_graph(&spec, 0x14b);
                let (forests, decomp_rounds) =
                    forest_decomp::forest_decomposition(&g, 3, 1.0).unwrap();
                let coloring = cole_vishkin::cv_color_to_three(&forests[0]);
                let (mis, sweep_rounds) =
                    cole_vishkin::colorwise_mis(&g, &coloring.colors, coloring.num_colors, None);
                let ok = arbmis_core::check_mis(&g, &mis).is_ok();
                CellOut::from_rows(vec![vec![
                    "b:pipeline".into(),
                    "apollonian comp".into(),
                    n.to_string(),
                    decomp_rounds.to_string(),
                    coloring.rounds.to_string(),
                    sweep_rounds.to_string(),
                    (decomp_rounds + coloring.rounds + sweep_rounds).to_string(),
                    if ok { "✓".into() } else { "NO".to_string() },
                ]])
            },
        ));
    }
    // Cross-check: the forests of a decomposition are genuinely forests.
    {
        let spec = GraphSpec::new(GraphFamily::KTree { k: 3 }, 2_000);
        cells.push(Cell::new(
            "E14/forest-check",
            format!("E14;part=check;{};gseed=332", spec.stable_key()),
            move || {
                let g = cached_graph(&spec, 0x14c);
                let (forests, _) = forest_decomp::forest_decomposition(&g, 3, 1.0).unwrap();
                let all_forests = forests.iter().all(|f| traversal::is_forest(&f.to_graph()));
                let mut out = CellOut::default();
                out.put("all_forests", all_forests as u64 as f64);
                out
            },
        ));
    }
    ExperimentPlan::new("E14", cells, |outs| {
        let mut table = Table::new([
            "part",
            "input",
            "n",
            "rounds decomp",
            "rounds CV",
            "rounds sweep",
            "total",
            "valid MIS",
        ]);
        let mut all_forests = true;
        for out in outs {
            if let Some(v) = out.try_get("all_forests") {
                all_forests = v != 0.0;
            }
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E14".into(),
            title: "Lemma 3.8: forest decomposition + Cole–Vishkin finishing of bad components"
                .into(),
            table,
            notes: vec![
                "part (a): CV rounds grow like log* n — 10⁴× more nodes buys ~1 extra round.".into(),
                "part (b): decomposition rounds are O(log n) peeling phases; the sweep is O(1) classes; total matches the O(log Δ + log log n + α·log* n) shape of Lemma 3.8.".into(),
                format!("decomposition classes verified to be forests: {all_forests}."),
                "intra-class conflicts across forests are broken by node id (one extra comparison round) — a detail the brief announcement elides; see DESIGN.md.".into(),
            ],
        }
    })
}

/// E14: (a) CV coloring rounds vs forest size — log* growth; (b) the full
/// bad-component pipeline (decomposition + coloring + sweep) on synthetic
/// components.
pub fn e14_cole_vishkin(quick: bool) -> ExperimentReport {
    e14_cole_vishkin_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_quick_all_valid() {
        let r = super::e14_cole_vishkin(true);
        assert_eq!(r.table.rows.len(), 4);
        for row in &r.table.rows {
            assert_eq!(row[7], "✓", "row {row:?}");
        }
        assert!(r.notes.iter().any(|n| n.contains("forests: true")));
    }
}
