//! E7/E10 — shattering structure: bad-set components (Lemma 3.7) and
//! residual active-set components.

use crate::{ExperimentReport, Table};
use arbmis_core::metivier;
use arbmis_graph::gen::{GraphFamily, GraphSpec};
use arbmis_graph::{powerband, traversal};
use rand::SeedableRng;

/// E7: Lemma 3.7 — components of the bad set are small.
///
/// Algorithm runs at simulable scales produce an *empty* B (see E6), so
/// the structural half of the lemma is exercised directly: mark each node
/// bad independently with the Theorem 3.6 probability Δ^{-2p}, exactly
/// the distributional premise of the lemma (Theorem 3.6 additionally
/// shows independence beyond distance 7, which independent marking
/// satisfies trivially), and measure components of B both in `G` and in
/// the paper's `G^[7,13]` band graph.
pub fn e7_bad_components(quick: bool) -> ExperimentReport {
    let (n, seeds) = if quick { (3_000, 3u64) } else { (30_000, 10) };
    let mut table = Table::new([
        "family",
        "Δ",
        "p_bad",
        "mean |B|",
        "max comp in G",
        "max comp in G^[7,13]",
        "lemma cap Δ⁶·log_Δ n",
    ]);
    let families = [
        (GraphFamily::ForestUnion { alpha: 2 }, 2usize),
        (GraphFamily::Apollonian, 3),
        (GraphFamily::BarabasiAlbert { m: 3 }, 3),
        (GraphFamily::GnpAvgDegree { d: 6.0 }, 4),
    ];
    for (fam, _alpha) in families {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xe7);
        let g = GraphSpec::new(fam, n).generate(&mut rng);
        let delta = g.max_degree().max(2) as f64;
        // p = 1: the weakest version of Theorem 3.6.
        let p_bad = (1.0 / (delta * delta)).min(0.5);
        let mut total_b = 0usize;
        let mut max_g = 0usize;
        let mut max_band = 0usize;
        for seed in 0..seeds {
            let bad: Vec<bool> = (0..g.n())
                .map(|v| arbmis_congest::rng::draw_bool(0xbad0 + seed, v, 0, 0, p_bad))
                .collect();
            total_b += bad.iter().filter(|&&b| b).count();
            let sizes = traversal::subset_component_sizes(&g, &bad);
            max_g = max_g.max(sizes.into_iter().max().unwrap_or(0));
            if !quick || g.n() <= 3_000 {
                let band = powerband::power_band_of_subset(&g, 7, 13, &bad);
                let band_sizes = traversal::subset_component_sizes(&band, &bad);
                max_band = max_band.max(band_sizes.into_iter().max().unwrap_or(0));
            }
        }
        let cap = delta.powi(6) * (g.n() as f64).log(delta.max(2.0));
        table.push_row([
            fam.label(),
            format!("{delta:.0}"),
            crate::fmt_p(p_bad),
            format!("{:.1}", total_b as f64 / seeds as f64),
            max_g.to_string(),
            max_band.to_string(),
            format!("{cap:.1e}"),
        ]);
    }
    ExperimentReport {
        id: "E7".into(),
        title: "Lemma 3.7: connected components of the bad set B are small".into(),
        table,
        notes: vec![
            "B is sampled i.i.d. at the Theorem 3.6 rate Δ^(-2p), p = 1 — algorithm runs themselves produce B = ∅ at simulable scales (E6).".into(),
            "observed components are tiny in both G and the band graph G^[7,13] the lemma's union bound walks over; the Δ⁶·log_Δ n cap is astronomically loose.".into(),
        ],
    }
}

/// E10: residual components after truncated Métivier — the shattering
/// picture itself.
pub fn e10_residual(quick: bool) -> ExperimentReport {
    let (n, seeds) = if quick { (3_000, 3u64) } else { (50_000, 10) };
    let mut table = Table::new([
        "family",
        "iters",
        "mean active",
        "mean #comps",
        "mean max comp",
        "max comp (all seeds)",
    ]);
    let families = [
        GraphFamily::ForestUnion { alpha: 2 },
        GraphFamily::Apollonian,
        GraphFamily::GnpAvgDegree { d: 10.0 },
    ];
    for fam in families {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x10);
        let g = GraphSpec::new(fam, n).generate(&mut rng);
        for iters in [1u64, 2, 3] {
            let mut sum_active = 0usize;
            let mut sum_comps = 0usize;
            let mut sum_max = 0usize;
            let mut overall_max = 0usize;
            for seed in 0..seeds {
                let p = metivier::run_partial(&g, seed, iters);
                let sizes = traversal::subset_component_sizes(&g, &p.active);
                sum_active += sizes.iter().sum::<usize>();
                sum_comps += sizes.len();
                let mx = sizes.into_iter().max().unwrap_or(0);
                sum_max += mx;
                overall_max = overall_max.max(mx);
            }
            let s = seeds as f64;
            table.push_row([
                fam.label(),
                iters.to_string(),
                format!("{:.0}", sum_active as f64 / s),
                format!("{:.0}", sum_comps as f64 / s),
                format!("{:.1}", sum_max as f64 / s),
                overall_max.to_string(),
            ]);
        }
    }
    ExperimentReport {
        id: "E10".into(),
        title: "Shattering: residual active-set components after truncated priority iterations".into(),
        table,
        notes: vec![
            format!("n = {n}, {seeds} seeds; after 2-3 iterations the giant component is gone and residual components are O(1)-sized — the structure all shattering MIS algorithms (Lenzen-Wattenhofer, BEPS, this paper) exploit."),
        ],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_quick() {
        let r = super::e7_bad_components(true);
        assert_eq!(r.table.rows.len(), 4);
        // Observed max component must stay far below the lemma cap.
        for row in &r.table.rows {
            let max_g: usize = row[4].parse().unwrap();
            assert!(max_g < 100, "row {row:?}");
        }
    }

    #[test]
    fn e10_quick() {
        let r = super::e10_residual(true);
        assert_eq!(r.table.rows.len(), 9);
    }
}
