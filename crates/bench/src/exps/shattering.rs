//! E7/E10 — shattering structure: bad-set components (Lemma 3.7) and
//! residual active-set components.

use crate::cache::cached_graph;
use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::exps::seed_chunks;
use crate::{ExperimentReport, Table};
use arbmis_core::metivier;
use arbmis_graph::gen::{GraphFamily, GraphSpec};
use arbmis_graph::{powerband, traversal};

const E7_FAMILIES: [GraphFamily; 4] = [
    GraphFamily::ForestUnion { alpha: 2 },
    GraphFamily::Apollonian,
    GraphFamily::BarabasiAlbert { m: 3 },
    GraphFamily::GnpAvgDegree { d: 6.0 },
];

/// E7 as a cell plan: one cell per `(family, seed-range)` — all
/// cross-seed aggregates are integer sums and maxima.
pub fn e7_bad_components_plan(quick: bool) -> ExperimentPlan {
    let (n, seeds) = if quick { (3_000, 3u64) } else { (30_000, 10) };
    let chunks = seed_chunks(seeds, 3);
    let mut cells = Vec::new();
    for fam in E7_FAMILIES {
        let spec = GraphSpec::new(fam, n);
        for &(lo, hi) in &chunks {
            cells.push(Cell::new(
                format!("E7/{}[{lo}..{hi})", fam.label()),
                format!(
                    "E7;{};gseed=231;seeds={lo}..{hi};quick={}",
                    spec.stable_key(),
                    quick as u8
                ),
                move || {
                    let g = cached_graph(&spec, 0xe7);
                    let delta = g.max_degree().max(2) as f64;
                    // p = 1: the weakest version of Theorem 3.6.
                    let p_bad = (1.0 / (delta * delta)).min(0.5);
                    let mut total_b = 0usize;
                    let mut max_g = 0usize;
                    let mut max_band = 0usize;
                    for seed in lo..hi {
                        let bad: Vec<bool> = (0..g.n())
                            .map(|v| arbmis_congest::rng::draw_bool(0xbad0 + seed, v, 0, 0, p_bad))
                            .collect();
                        total_b += bad.iter().filter(|&&b| b).count();
                        let sizes = traversal::subset_component_sizes(&g, &bad);
                        max_g = max_g.max(sizes.into_iter().max().unwrap_or(0));
                        if !quick || g.n() <= 3_000 {
                            let band = powerband::power_band_of_subset(&g, 7, 13, &bad);
                            let band_sizes = traversal::subset_component_sizes(&band, &bad);
                            max_band = max_band.max(band_sizes.into_iter().max().unwrap_or(0));
                        }
                    }
                    let mut out = CellOut::default();
                    out.put("total_b", total_b as f64);
                    out.put("max_g", max_g as f64);
                    out.put("max_band", max_band as f64);
                    out.put("delta", delta);
                    out.put("p_bad", p_bad);
                    out.put("gn", g.n() as f64);
                    out
                },
            ));
        }
    }
    let per_family = chunks.len();
    ExperimentPlan::new("E7", cells, move |outs| {
        let mut table = Table::new([
            "family",
            "Δ",
            "p_bad",
            "mean |B|",
            "max comp in G",
            "max comp in G^[7,13]",
            "lemma cap Δ⁶·log_Δ n",
        ]);
        for (i, fam) in E7_FAMILIES.into_iter().enumerate() {
            let group = &outs[i * per_family..(i + 1) * per_family];
            let total_b: usize = group.iter().map(|o| o.get("total_b") as usize).sum();
            let max_g = group.iter().map(|o| o.get("max_g") as usize).max().unwrap();
            let max_band = group
                .iter()
                .map(|o| o.get("max_band") as usize)
                .max()
                .unwrap();
            let delta = group[0].get("delta");
            let gn = group[0].get("gn");
            let cap = delta.powi(6) * gn.log(delta.max(2.0));
            table.push_row([
                fam.label(),
                format!("{delta:.0}"),
                crate::fmt_p(group[0].get("p_bad")),
                format!("{:.1}", total_b as f64 / seeds as f64),
                max_g.to_string(),
                max_band.to_string(),
                format!("{cap:.1e}"),
            ]);
        }
        ExperimentReport {
            id: "E7".into(),
            title: "Lemma 3.7: connected components of the bad set B are small".into(),
            table,
            notes: vec![
                "B is sampled i.i.d. at the Theorem 3.6 rate Δ^(-2p), p = 1 — algorithm runs themselves produce B = ∅ at simulable scales (E6).".into(),
                "observed components are tiny in both G and the band graph G^[7,13] the lemma's union bound walks over; the Δ⁶·log_Δ n cap is astronomically loose.".into(),
            ],
        }
    })
}

/// E7: Lemma 3.7 — components of the bad set are small.
///
/// Algorithm runs at simulable scales produce an *empty* B (see E6), so
/// the structural half of the lemma is exercised directly: mark each node
/// bad independently with the Theorem 3.6 probability Δ^{-2p}, exactly
/// the distributional premise of the lemma (Theorem 3.6 additionally
/// shows independence beyond distance 7, which independent marking
/// satisfies trivially), and measure components of B both in `G` and in
/// the paper's `G^[7,13]` band graph.
pub fn e7_bad_components(quick: bool) -> ExperimentReport {
    e7_bad_components_plan(quick).run_serial()
}

const E10_FAMILIES: [GraphFamily; 3] = [
    GraphFamily::ForestUnion { alpha: 2 },
    GraphFamily::Apollonian,
    GraphFamily::GnpAvgDegree { d: 10.0 },
];

/// E10 as a cell plan: one cell per `(family, iters, seed-range)` — all
/// cross-seed aggregates are integer sums and maxima.
pub fn e10_residual_plan(quick: bool) -> ExperimentPlan {
    let (n, seeds) = if quick { (3_000, 3u64) } else { (50_000, 10) };
    let chunks = seed_chunks(seeds, 3);
    let mut cells = Vec::new();
    for fam in E10_FAMILIES {
        let spec = GraphSpec::new(fam, n);
        for iters in [1u64, 2, 3] {
            for &(lo, hi) in &chunks {
                cells.push(Cell::new(
                    format!("E10/{}×{iters}[{lo}..{hi})", fam.label()),
                    format!(
                        "E10;{};gseed=16;iters={iters};seeds={lo}..{hi}",
                        spec.stable_key()
                    ),
                    move || {
                        let g = cached_graph(&spec, 0x10);
                        let mut sum_active = 0usize;
                        let mut sum_comps = 0usize;
                        let mut sum_max = 0usize;
                        let mut overall_max = 0usize;
                        for seed in lo..hi {
                            let p = metivier::run_partial(&g, seed, iters);
                            let sizes = traversal::subset_component_sizes(&g, &p.active);
                            sum_active += sizes.iter().sum::<usize>();
                            sum_comps += sizes.len();
                            let mx = sizes.into_iter().max().unwrap_or(0);
                            sum_max += mx;
                            overall_max = overall_max.max(mx);
                        }
                        let mut out = CellOut::default();
                        out.put("sum_active", sum_active as f64);
                        out.put("sum_comps", sum_comps as f64);
                        out.put("sum_max", sum_max as f64);
                        out.put("overall_max", overall_max as f64);
                        out
                    },
                ));
            }
        }
    }
    let per_config = chunks.len();
    ExperimentPlan::new("E10", cells, move |outs| {
        let mut table = Table::new([
            "family",
            "iters",
            "mean active",
            "mean #comps",
            "mean max comp",
            "max comp (all seeds)",
        ]);
        let mut groups = outs.chunks(per_config);
        for fam in E10_FAMILIES {
            for iters in [1u64, 2, 3] {
                let group = groups.next().unwrap();
                let sum = |k: &str| -> usize { group.iter().map(|o| o.get(k) as usize).sum() };
                let overall_max = group
                    .iter()
                    .map(|o| o.get("overall_max") as usize)
                    .max()
                    .unwrap();
                let s = seeds as f64;
                table.push_row([
                    fam.label(),
                    iters.to_string(),
                    format!("{:.0}", sum("sum_active") as f64 / s),
                    format!("{:.0}", sum("sum_comps") as f64 / s),
                    format!("{:.1}", sum("sum_max") as f64 / s),
                    overall_max.to_string(),
                ]);
            }
        }
        ExperimentReport {
            id: "E10".into(),
            title: "Shattering: residual active-set components after truncated priority iterations"
                .into(),
            table,
            notes: vec![
                format!("n = {n}, {seeds} seeds; after 2-3 iterations the giant component is gone and residual components are O(1)-sized — the structure all shattering MIS algorithms (Lenzen-Wattenhofer, BEPS, this paper) exploit."),
            ],
        }
    })
}

/// E10: residual components after truncated Métivier — the shattering
/// picture itself.
pub fn e10_residual(quick: bool) -> ExperimentReport {
    e10_residual_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_quick() {
        let r = super::e7_bad_components(true);
        assert_eq!(r.table.rows.len(), 4);
        // Observed max component must stay far below the lemma cap.
        for row in &r.table.rows {
            let max_g: usize = row[4].parse().unwrap();
            assert!(max_g < 100, "row {row:?}");
        }
    }

    #[test]
    fn e10_quick() {
        let r = super::e10_residual(true);
        assert_eq!(r.table.rows.len(), 9);
    }
}
