//! E8/E9 — round-complexity scaling and the cross-algorithm race.

use crate::cache::cached_graph;
use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::exps::seed_chunks;
use crate::{fmt_f, ExperimentReport, Table};
use arbmis_core::{arb_mis, check_mis, ghaffari, ArbMisConfig};
use arbmis_graph::gen::{GraphFamily, GraphSpec};

fn e8_sweep(quick: bool) -> Vec<(&'static str, usize, usize)> {
    let n_sweep: &[usize] = if quick {
        &[1 << 9, 1 << 11]
    } else {
        &[1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 16]
    };
    let mut points: Vec<(&'static str, usize, usize)> =
        n_sweep.iter().map(|&n| ("n", n, 2usize)).collect();
    let n = if quick { 1 << 11 } else { 1 << 14 };
    points.extend((1..=5usize).map(|alpha| ("α", n, alpha)));
    points
}

/// E8 as a cell plan: one cell per sweep point. The per-point seed loop
/// accumulates f64 means, so it is never split across cells.
pub fn e8_scaling_plan(quick: bool) -> ExperimentPlan {
    let seeds: u64 = if quick { 2 } else { 5 };
    let cells = e8_sweep(quick)
        .into_iter()
        .map(|(sweep, n, alpha)| {
            let spec = GraphSpec::new(GraphFamily::ForestUnion { alpha }, n);
            Cell::new(
                format!("E8/{sweep}:n={n},α={alpha}"),
                format!(
                    "E8;sweep={sweep};{};gseed=232;seeds={seeds}",
                    spec.stable_key()
                ),
                move || {
                    let g = cached_graph(&spec, 0xe8);
                    let mut rounds = 0.0;
                    let mut shatter = 0.0;
                    let mut finish = 0.0;
                    for seed in 0..seeds {
                        let out = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
                        debug_assert!(check_mis(&g, &out.in_mis).is_ok());
                        rounds += out.rounds as f64;
                        shatter += out.phases.shattering as f64;
                        finish +=
                            (out.phases.vlo + out.phases.vhi + out.phases.bad_components) as f64;
                    }
                    let s = seeds as f64;
                    let (rounds, shatter, finish) = (rounds / s, shatter / s, finish / s);
                    let logn = (n as f64).log2();
                    let ref_shape = (logn * logn.log2()).sqrt();
                    CellOut::from_rows(vec![vec![
                        sweep.into(),
                        n.to_string(),
                        alpha.to_string(),
                        format!("{:.0}", g.max_degree() as f64),
                        fmt_f(rounds),
                        fmt_f(shatter),
                        fmt_f(finish),
                        fmt_f(ref_shape),
                        fmt_f(rounds / (alpha * alpha) as f64),
                    ]])
                },
            )
        })
        .collect();
    ExperimentPlan::new("E8", cells, |outs| {
        let mut table = Table::new([
            "sweep",
            "n",
            "α",
            "Δ",
            "rounds",
            "shatter",
            "finish",
            "√(lg n·lglg n)",
            "rounds/α²",
        ]);
        for out in outs {
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E8".into(),
            title: "Theorem 2.1 shape: ArbMIS rounds vs n (fixed α) and vs α (fixed n)".into(),
            table,
            notes: vec![
                "practical-mode Λ keeps the α² · log log Δ iteration shape (the paper's α⁸ slack dropped), so rounds/α² should be roughly flat in the α sweep.".into(),
                "in the n sweep, rounds grow only through Δ(n) (via Θ·Λ) and the finishing phases — sublogarithmic in n, the headline of the paper vs Luby's Θ(log n).".into(),
                "the shattering phase dominates: it is an oblivious schedule, so its cost is a deterministic function of (α, Δ), independent of n — the crossover vs O(log n) algorithms sits at astronomically large n with the paper's constants.".into(),
            ],
        }
    })
}

/// E8: ArbMIS rounds vs n (fixed α) and vs α (fixed n) — Theorem 2.1's
/// shape `O(α⁹·√(log n)·log log n)`.
pub fn e8_scaling(quick: bool) -> ExperimentReport {
    e8_scaling_plan(quick).run_serial()
}

const E9_FAMILIES: [(GraphFamily, usize); 7] = [
    (GraphFamily::RandomTree, 1usize),
    (GraphFamily::Caterpillar { legs: 4 }, 1),
    (GraphFamily::ForestUnion { alpha: 2 }, 2),
    (GraphFamily::Apollonian, 3),
    (GraphFamily::KTree { k: 3 }, 3),
    (GraphFamily::BarabasiAlbert { m: 2 }, 2),
    (GraphFamily::GnpAvgDegree { d: 8.0 }, 4),
];

/// E9 as a cell plan: one cell per `(family, seed-range)` — the
/// cross-seed aggregates are u64 round sums; the reduce divides once.
pub fn e9_race_plan(quick: bool) -> ExperimentPlan {
    let n = if quick { 2_000 } else { 20_000 };
    let seeds: u64 = if quick { 2 } else { 5 };
    let chunks = seed_chunks(seeds, 2);
    let mut cells = Vec::new();
    for (fam, alpha) in E9_FAMILIES {
        let spec = GraphSpec::new(fam, n);
        for &(lo, hi) in &chunks {
            cells.push(Cell::new(
                format!("E9/{}[{lo}..{hi})", fam.label()),
                format!(
                    "E9;{};gseed=233;seeds={lo}..{hi}{}",
                    spec.stable_key(),
                    crate::backend::key_suffix()
                ),
                move || {
                    let g = cached_graph(&spec, 0xe9);
                    let mut sums = [0u64; 5];
                    for seed in lo..hi {
                        let out = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
                        debug_assert!(check_mis(&g, &out.in_mis).is_ok());
                        let runs = [
                            crate::backend::luby_rounds(&g, seed),
                            crate::backend::metivier_rounds(&g, seed),
                            ghaffari::run(&g, seed).rounds,
                            out.rounds,
                            out.phases.shattering,
                        ];
                        for (s, r) in sums.iter_mut().zip(runs) {
                            *s += r;
                        }
                    }
                    let mut out = CellOut::default();
                    for (name, sum) in ["luby", "metivier", "ghaffari", "arbmis", "shatter"]
                        .into_iter()
                        .zip(sums)
                    {
                        out.put(name, sum as f64);
                    }
                    out
                },
            ));
        }
    }
    let per_family = chunks.len();
    ExperimentPlan::new("E9", cells, move |outs| {
        let mut table = Table::new([
            "family",
            "α",
            "luby",
            "metivier",
            "ghaffari",
            "arbmis",
            "arbmis shatter-only",
        ]);
        for (i, (fam, alpha)) in E9_FAMILIES.into_iter().enumerate() {
            let group = &outs[i * per_family..(i + 1) * per_family];
            let mean = |k: &str| -> String {
                let sum: u64 = group.iter().map(|o| o.get(k) as u64).sum();
                (sum / seeds).to_string()
            };
            table.push_row([
                fam.label(),
                alpha.to_string(),
                mean("luby"),
                mean("metivier"),
                mean("ghaffari"),
                mean("arbmis"),
                mean("shatter"),
            ]);
        }
        ExperimentReport {
            id: "E9".into(),
            title: "§1 comparison: CONGEST rounds to a complete MIS across algorithms".into(),
            table,
            notes: vec![
                format!("n = {n}, mean over {seeds} seeds; every algorithm's output verified to be an MIS."),
                "at laptop scales the O(log n) baselines win on wall-rounds — the paper's algorithm trades a huge α-dependent constant for n-independence of its shattering schedule; the asymptotic claim is the E8 shape, not a small-n win.".into(),
                "Ghaffari > Métivier here is the desire-level warm-up cost; its advantage is worst-case Δ dependence, invisible on these benign inputs.".into(),
            ],
        }
    })
}

/// E9: the §1 comparison — Luby vs Métivier vs Ghaffari vs ArbMIS across
/// families.
pub fn e9_race(quick: bool) -> ExperimentReport {
    e9_race_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_quick() {
        let r = super::e8_scaling(true);
        assert_eq!(r.table.rows.len(), 2 + 5);
    }

    #[test]
    fn e9_quick() {
        let r = super::e9_race(true);
        assert_eq!(r.table.rows.len(), 7);
        // Baselines must all be positive round counts.
        for row in &r.table.rows {
            for cell in &row[2..] {
                let v: u64 = cell.parse().unwrap();
                assert!(v > 0, "row {row:?}");
            }
        }
    }
}
