//! E8/E9 — round-complexity scaling and the cross-algorithm race.

use crate::{fmt_f, ExperimentReport, Table};
use arbmis_core::{arb_mis, check_mis, ghaffari, luby, metivier, ArbMisConfig};
use arbmis_graph::gen::{GraphFamily, GraphSpec};
use rand::SeedableRng;

/// E8: ArbMIS rounds vs n (fixed α) and vs α (fixed n) — Theorem 2.1's
/// shape `O(α⁹·√(log n)·log log n)`.
pub fn e8_scaling(quick: bool) -> ExperimentReport {
    let seeds: u64 = if quick { 2 } else { 5 };
    let mut table = Table::new([
        "sweep",
        "n",
        "α",
        "Δ",
        "rounds",
        "shatter",
        "finish",
        "√(lg n·lglg n)",
        "rounds/α²",
    ]);
    let n_sweep: &[usize] = if quick {
        &[1 << 9, 1 << 11]
    } else {
        &[1 << 9, 1 << 11, 1 << 13, 1 << 15, 1 << 16]
    };
    // Rounds vs n at α = 2.
    for &n in n_sweep {
        let (rounds, shatter, finish, delta) =
            mean_arbmis(GraphFamily::ForestUnion { alpha: 2 }, n, 2, seeds);
        let logn = (n as f64).log2();
        let ref_shape = (logn * logn.log2()).sqrt();
        table.push_row([
            "n".into(),
            n.to_string(),
            "2".into(),
            format!("{delta:.0}"),
            fmt_f(rounds),
            fmt_f(shatter),
            fmt_f(finish),
            fmt_f(ref_shape),
            fmt_f(rounds / 4.0),
        ]);
    }
    // Rounds vs α at fixed n.
    let n = if quick { 1 << 11 } else { 1 << 14 };
    for alpha in 1..=5usize {
        let (rounds, shatter, finish, delta) =
            mean_arbmis(GraphFamily::ForestUnion { alpha }, n, alpha, seeds);
        let logn = (n as f64).log2();
        let ref_shape = (logn * logn.log2()).sqrt();
        table.push_row([
            "α".into(),
            n.to_string(),
            alpha.to_string(),
            format!("{delta:.0}"),
            fmt_f(rounds),
            fmt_f(shatter),
            fmt_f(finish),
            fmt_f(ref_shape),
            fmt_f(rounds / (alpha * alpha) as f64),
        ]);
    }
    ExperimentReport {
        id: "E8".into(),
        title: "Theorem 2.1 shape: ArbMIS rounds vs n (fixed α) and vs α (fixed n)".into(),
        table,
        notes: vec![
            "practical-mode Λ keeps the α² · log log Δ iteration shape (the paper's α⁸ slack dropped), so rounds/α² should be roughly flat in the α sweep.".into(),
            "in the n sweep, rounds grow only through Δ(n) (via Θ·Λ) and the finishing phases — sublogarithmic in n, the headline of the paper vs Luby's Θ(log n).".into(),
            "the shattering phase dominates: it is an oblivious schedule, so its cost is a deterministic function of (α, Δ), independent of n — the crossover vs O(log n) algorithms sits at astronomically large n with the paper's constants.".into(),
        ],
    }
}

fn mean_arbmis(fam: GraphFamily, n: usize, alpha: usize, seeds: u64) -> (f64, f64, f64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xe8);
    let g = GraphSpec::new(fam, n).generate(&mut rng);
    let mut rounds = 0.0;
    let mut shatter = 0.0;
    let mut finish = 0.0;
    for seed in 0..seeds {
        let out = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
        debug_assert!(check_mis(&g, &out.in_mis).is_ok());
        rounds += out.rounds as f64;
        shatter += out.phases.shattering as f64;
        finish += (out.phases.vlo + out.phases.vhi + out.phases.bad_components) as f64;
    }
    let s = seeds as f64;
    (rounds / s, shatter / s, finish / s, g.max_degree() as f64)
}

/// E9: the §1 comparison — Luby vs Métivier vs Ghaffari vs ArbMIS across
/// families.
pub fn e9_race(quick: bool) -> ExperimentReport {
    let n = if quick { 2_000 } else { 20_000 };
    let seeds: u64 = if quick { 2 } else { 5 };
    let mut table = Table::new([
        "family",
        "α",
        "luby",
        "metivier",
        "ghaffari",
        "arbmis",
        "arbmis shatter-only",
    ]);
    let families = [
        (GraphFamily::RandomTree, 1usize),
        (GraphFamily::Caterpillar { legs: 4 }, 1),
        (GraphFamily::ForestUnion { alpha: 2 }, 2),
        (GraphFamily::Apollonian, 3),
        (GraphFamily::KTree { k: 3 }, 3),
        (GraphFamily::BarabasiAlbert { m: 2 }, 2),
        (GraphFamily::GnpAvgDegree { d: 8.0 }, 4),
    ];
    for (fam, alpha) in families {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xe9);
        let g = GraphSpec::new(fam, n).generate(&mut rng);
        let mut sums = [0u64; 5];
        for seed in 0..seeds {
            let out = arb_mis(&g, &ArbMisConfig::new(alpha, seed));
            debug_assert!(check_mis(&g, &out.in_mis).is_ok());
            let runs = [
                luby::run(&g, seed).rounds,
                metivier::run(&g, seed).rounds,
                ghaffari::run(&g, seed).rounds,
                out.rounds,
                out.phases.shattering,
            ];
            for (s, r) in sums.iter_mut().zip(runs) {
                *s += r;
            }
        }
        table.push_row([
            fam.label(),
            alpha.to_string(),
            (sums[0] / seeds).to_string(),
            (sums[1] / seeds).to_string(),
            (sums[2] / seeds).to_string(),
            (sums[3] / seeds).to_string(),
            (sums[4] / seeds).to_string(),
        ]);
    }
    ExperimentReport {
        id: "E9".into(),
        title: "§1 comparison: CONGEST rounds to a complete MIS across algorithms".into(),
        table,
        notes: vec![
            format!("n = {n}, mean over {seeds} seeds; every algorithm's output verified to be an MIS."),
            "at laptop scales the O(log n) baselines win on wall-rounds — the paper's algorithm trades a huge α-dependent constant for n-independence of its shattering schedule; the asymptotic claim is the E8 shape, not a small-n win.".into(),
            "Ghaffari > Métivier here is the desire-level warm-up cost; its advantage is worst-case Δ dependence, invisible on these benign inputs.".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_quick() {
        let r = super::e8_scaling(true);
        assert_eq!(r.table.rows.len(), 2 + 5);
    }

    #[test]
    fn e9_quick() {
        let r = super::e9_race(true);
        assert_eq!(r.table.rows.len(), 7);
        // Baselines must all be positive round counts.
        for row in &r.table.rows {
            for cell in &row[2..] {
                let v: u64 = cell.parse().unwrap();
                assert!(v > 0, "row {row:?}");
            }
        }
    }
}
