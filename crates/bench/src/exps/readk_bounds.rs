//! E1/E2 — the Gavinsky et al. inequalities on synthetic read-k families.

use crate::cell::{Cell, CellOut, ExperimentPlan};
use crate::{fmt_p, ExperimentReport, Table};
use arbmis_readk::family::sliding_window_family;
use arbmis_readk::{bounds, estimate};

fn trials(quick: bool) -> u64 {
    if quick {
        3_000
    } else {
        60_000
    }
}

/// E1 as a cell plan: one cell per `(n, span, frac)` configuration, all
/// trials inside (the Monte-Carlo tally is a single integer count).
pub fn e1_conjunction_plan(quick: bool) -> ExperimentPlan {
    let trials = trials(quick);
    // Window span s with stride 1 gives read parameter s; the per-Y
    // marginal is (1 − frac)^s.
    let configs = [
        (8usize, 1usize, 0.2f64),
        (8, 2, 0.2),
        (8, 3, 0.2),
        (12, 2, 0.1),
        (12, 4, 0.1),
        (16, 4, 0.05),
    ];
    let cells = configs
        .into_iter()
        .map(|(n, span, frac)| {
            Cell::new(
                format!("E1/n={n},span={span}"),
                format!(
                    "E1;trials={trials};n={n};span={span};frac=f{:016x}",
                    frac.to_bits()
                ),
                move || {
                    let fam = sliding_window_family(n, span, 1, frac);
                    let p = (1.0 - frac).powi(span as i32);
                    let k = fam.read_parameter();
                    let est = estimate(trials, |t| {
                        let x = fam.sample_base(0xe1, t);
                        fam.all_ones(&x)
                    });
                    let bound = bounds::conjunction_bound(p, n, k);
                    // The bound is tight at k = 1 (true probability = bound),
                    // so the statistically sound check is that the 99% *lower*
                    // CI does not exceed the bound.
                    let (lo, _) = est.wilson_ci(2.58);
                    let holds = lo <= bound + 1e-9;
                    let mut out = CellOut::from_rows(vec![vec![
                        n.to_string(),
                        span.to_string(),
                        k.to_string(),
                        fmt_p(p),
                        fmt_p(est.p_hat()),
                        fmt_p(bound),
                        if holds {
                            "✓".into()
                        } else {
                            "VIOLATED".to_string()
                        },
                    ]]);
                    out.put("viol", if holds { 0.0 } else { 1.0 });
                    out
                },
            )
        })
        .collect();
    ExperimentPlan::new("E1", cells, move |outs| {
        let mut table = Table::new([
            "n",
            "span",
            "k",
            "p per Y",
            "measured",
            "bound p^(n/k)",
            "holds",
        ]);
        let mut violations = 0usize;
        for out in outs {
            violations += out.get("viol") as usize;
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E1".into(),
            title: "Theorem 1.1: read-k conjunction bound Pr[Y_1=…=Y_n=1] ≤ p^(n/k)".into(),
            table,
            notes: vec![
                format!("{trials} Monte-Carlo trials per row; 'holds' compares the 99% Wilson upper CI against the bound."),
                format!("violations: {violations} (expected 0 — the bound is a theorem)"),
                "with k = 1 the family is independent and the bound is tight (p^n); growing k weakens it exponentially, exactly the paper's reading.".into(),
            ],
        }
    })
}

/// E1: Theorem 1.1 — `Pr[∧ Y_j] ≤ p^{n/k}` on sliding-window families.
pub fn e1_conjunction(quick: bool) -> ExperimentReport {
    e1_conjunction_plan(quick).run_serial()
}

/// E2 as a cell plan: one cell per `(n, span, delta)` configuration.
pub fn e2_tail_plan(quick: bool) -> ExperimentPlan {
    let trials = trials(quick);
    let configs = [
        (200usize, 1usize, 0.5f64),
        (200, 2, 0.5),
        (200, 4, 0.5),
        (200, 2, 0.3),
        (400, 3, 0.4),
    ];
    let cells = configs
        .into_iter()
        .map(|(n, span, delta)| {
            Cell::new(
                format!("E2/n={n},span={span},δ={delta}"),
                format!(
                    "E2;trials={trials};n={n};span={span};delta=f{:016x}",
                    delta.to_bits()
                ),
                move || {
                    let fam = sliding_window_family(n, span, 1, 0.5);
                    let p = 0.5f64.powi(span as i32);
                    let exp_y = p * n as f64;
                    let threshold = ((1.0 - delta) * exp_y).floor() as usize;
                    let k = fam.read_parameter();
                    let est = estimate(trials, |t| fam.sample_count(0xe2, t) <= threshold);
                    let form2 = bounds::tail_form2(delta, exp_y, k);
                    // Form (1) with ε = δ·p̄ (same threshold expressed additively).
                    let form1 = bounds::tail_form1(delta * p, n, k);
                    let chern = bounds::chernoff_lower_tail(delta, exp_y);
                    let azuma = bounds::azuma_lower_tail(delta * exp_y, fam.m(), k);
                    let (lo, _) = est.wilson_ci(2.58);
                    let mut out = CellOut::from_rows(vec![vec![
                        n.to_string(),
                        k.to_string(),
                        format!("{delta}"),
                        fmt_p(est.p_hat()),
                        fmt_p(form2),
                        fmt_p(form1),
                        fmt_p(chern),
                        fmt_p(azuma),
                    ]]);
                    out.put("viol", if lo > form2 + 1e-9 { 1.0 } else { 0.0 });
                    out
                },
            )
        })
        .collect();
    ExperimentPlan::new("E2", cells, move |outs| {
        let mut table = Table::new([
            "n",
            "k",
            "δ",
            "measured",
            "read-k form2",
            "form1",
            "chernoff",
            "azuma",
        ]);
        let mut violations = 0usize;
        for out in outs {
            violations += out.get("viol") as usize;
            for row in out.rows {
                table.push_row(row);
            }
        }
        ExperimentReport {
            id: "E2".into(),
            title: "Theorem 1.2: read-k lower-tail bounds vs Chernoff/Azuma".into(),
            table,
            notes: vec![
                format!("{trials} trials per row; read-k form (2) must upper-bound 'measured' (violations: {violations}, expected 0)."),
                "Chernoff (k = 1 case) is NOT valid for dependent rows — where measured exceeds it, the dependence is biting.".into(),
                "Azuma treats Y as a k-Lipschitz function of the m base variables; the read-k bound is tighter whenever n ≈ m (GLSS §1), visible in every row.".into(),
            ],
        }
    })
}

/// E2: Theorem 1.2 — read-k lower tails, forms (1)/(2), vs Chernoff and
/// Azuma comparators.
pub fn e2_tail(quick: bool) -> ExperimentReport {
    e2_tail_plan(quick).run_serial()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_runs_quick_with_no_violations() {
        let r = super::e1_conjunction(true);
        assert_eq!(r.table.rows.len(), 6);
        assert!(
            r.notes.iter().any(|n| n.contains("violations: 0")),
            "{:?}",
            r.notes
        );
    }

    #[test]
    fn e2_runs_quick_with_no_violations() {
        let r = super::e2_tail(true);
        assert_eq!(r.table.rows.len(), 5);
        assert!(
            r.notes.iter().any(|n| n.contains("violations: 0")),
            "{:?}",
            r.notes
        );
    }
}
