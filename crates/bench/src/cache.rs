//! Content-addressed on-disk cache for generated graphs and completed
//! cell results.
//!
//! Entries are addressed by an FNV-1a 128 digest
//! ([`arbmis_graph::digest`] — frozen arithmetic, not `std::hash`) of
//! `(CODE_SALT, namespace, key)`. The salt names the cell/cache code
//! generation: bumping it on any change that could alter cell outputs
//! orphans every stale entry at once, with no manual eviction protocol.
//! Within one salt generation a key is immutable — the same digest
//! always stores the same bytes — which is what makes a warm-cache run
//! byte-identical to a cold one (DESIGN.md §9).
//!
//! Each entry is one file `<dir>/<salt>/<namespace>/<digest>.entry`
//! holding a header line (`arbmis-cache v1 <checksum> <len>`) followed
//! by the payload; the checksum is verified on every read, so a
//! truncated or corrupted entry is *rejected and deleted*, and the
//! caller recomputes — poisoning degrades to a cache miss, never to
//! wrong results. Writes go to a temp file first and are published by
//! `rename`, so concurrent writers and readers only ever see complete
//! entries.
//!
//! **Bounded growth.** Salting alone would leak: every [`CODE_SALT`]
//! bump orphans a whole generation of entries that nothing would ever
//! read *or delete* again. Two mechanisms keep the directory bounded:
//!
//! * the salt is the first path component, so [`Cache::open`] prunes
//!   every sibling salt directory that is not the current generation;
//! * the cache carries a byte capacity ([`Cache::open_with_capacity`];
//!   default [`DEFAULT_CAPACITY`]). Each publish that pushes the current
//!   generation over capacity evicts entries oldest-mtime-first
//!   (ties broken by path) until it fits, never evicting the entry just
//!   published. A single entry larger than the capacity is stored alone.

use arbmis_graph::digest::{checksum64, Fnv128};
use arbmis_graph::gen::GraphSpec;
use arbmis_graph::{io as graph_io, Graph};
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The code-version salt mixed into every cache digest. Bump whenever a
/// generator, experiment cell, or the cache payload encoding changes in
/// a way that could alter stored bytes.
pub const CODE_SALT: &str = "arbmis-cells-v1";

/// Entry-file magic + format version.
const MAGIC: &str = "arbmis-cache v1";

/// Default byte capacity of the current salt generation (256 MiB —
/// generous for edge lists and cell JSON, small next to a target dir).
pub const DEFAULT_CAPACITY: u64 = 256 * 1024 * 1024;

/// Cache hit/miss tallies. These depend on prior process runs (disk
/// state), so they are *timing-class* data under the DESIGN.md §8
/// quarantine — never put them in deterministic output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries found but rejected (checksum/format mismatch) — counted
    /// in addition to the miss they become.
    pub rejected: u64,
    /// Entries evicted to stay under the byte capacity.
    pub evicted: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A content-addressed cache rooted at one directory.
pub struct Cache {
    dir: PathBuf,
    capacity: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
    /// Serializes capacity sweeps so concurrent publishers do not race
    /// each other deleting files.
    sweep: Mutex<()>,
    /// In-memory graph memo so one process never loads or generates the
    /// same `(spec, seed)` twice, keyed by entry digest.
    graph_memo: Mutex<HashMap<String, Arc<Graph>>>,
}

impl Cache {
    /// Opens (creating if needed) a cache rooted at `dir` with the
    /// [`DEFAULT_CAPACITY`] byte cap.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Cache> {
        Self::open_with_capacity(dir, DEFAULT_CAPACITY)
    }

    /// Opens (creating if needed) a cache rooted at `dir`, capping the
    /// current salt generation at `capacity` bytes. Opening also prunes
    /// every foreign-salt sibling directory — entries a [`CODE_SALT`]
    /// bump orphaned — so stale generations cannot accumulate.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures (pruning is best-effort).
    pub fn open_with_capacity(dir: impl Into<PathBuf>, capacity: u64) -> io::Result<Cache> {
        let dir = dir.into();
        fs::create_dir_all(dir.join(CODE_SALT))?;
        if let Ok(siblings) = fs::read_dir(&dir) {
            for entry in siblings.flatten() {
                let is_foreign_dir = entry.file_type().is_ok_and(|t| t.is_dir())
                    && entry.file_name() != std::ffi::OsStr::new(CODE_SALT);
                if is_foreign_dir {
                    let _ = fs::remove_dir_all(entry.path());
                }
            }
        }
        Ok(Cache {
            dir,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            sweep: Mutex::new(()),
            graph_memo: Mutex::new(HashMap::new()),
        })
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current salt generation's directory (everything the byte cap
    /// governs lives under here).
    pub fn salt_dir(&self) -> PathBuf {
        self.dir.join(CODE_SALT)
    }

    /// The byte capacity of the current salt generation.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current hit/miss tallies.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// The digest addressing `(CODE_SALT, namespace, key)`.
    fn digest(namespace: &str, key: &str) -> String {
        let mut h = Fnv128::new();
        h.write_str(CODE_SALT).write_str(namespace).write_str(key);
        h.hex()
    }

    /// The on-disk path an entry would live at (exposed so tests and CI
    /// can corrupt or inspect specific entries).
    pub fn entry_path(&self, namespace: &str, key: &str) -> PathBuf {
        self.salt_dir()
            .join(namespace)
            .join(format!("{}.entry", Self::digest(namespace, key)))
    }

    /// Looks up an entry, verifying its checksum. Rejected (corrupt)
    /// entries are deleted and reported as misses.
    pub fn get(&self, namespace: &str, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(namespace, key);
        let Ok(bytes) = fs::read(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match Self::decode(&bytes) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores an entry (atomic publish via temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers typically treat a failed store
    /// as best-effort and continue.
    pub fn put(&self, namespace: &str, key: &str, payload: &[u8]) -> io::Result<()> {
        let path = self.entry_path(namespace, key);
        let parent = path.parent().expect("entry path always has a parent");
        fs::create_dir_all(parent)?;
        let mut framed =
            format!("{MAGIC} {:016x} {}\n", checksum64(payload), payload.len()).into_bytes();
        framed.extend_from_slice(payload);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &framed)?;
        fs::rename(&tmp, &path)?;
        self.enforce_capacity(&path);
        Ok(())
    }

    /// Brings the current salt generation back under [`Self::capacity`]
    /// by deleting entries oldest-mtime-first (ties broken by path),
    /// sparing `just_published`. Best-effort: I/O hiccups skip a file
    /// rather than failing the publish that triggered the sweep.
    fn enforce_capacity(&self, just_published: &Path) {
        let _guard = self.sweep.lock().unwrap();
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut used = 0u64;
        collect_entries(&self.salt_dir(), &mut entries, &mut used);
        if used <= self.capacity {
            return;
        }
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for (_, path, len) in entries {
            if used <= self.capacity {
                break;
            }
            if path == just_published {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                used = used.saturating_sub(len);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Splits a raw entry file into its verified payload.
    fn decode(bytes: &[u8]) -> Option<Vec<u8>> {
        let newline = bytes.iter().position(|&b| b == b'\n')?;
        let header = std::str::from_utf8(&bytes[..newline]).ok()?;
        let rest = &bytes[newline + 1..];
        let fields = header.strip_prefix(MAGIC)?;
        let mut it = fields.split_whitespace();
        let sum = u64::from_str_radix(it.next()?, 16).ok()?;
        let len: usize = it.next()?.parse().ok()?;
        if it.next().is_some() || rest.len() != len || checksum64(rest) != sum {
            return None;
        }
        Some(rest.to_vec())
    }

    /// The generated graph for `(spec, seed)`: from the in-process memo,
    /// else from disk (edge-list payload), else generated and stored.
    /// The returned graph is structurally identical on every path — the
    /// edge-list round trip is lossless — so results never depend on
    /// cache temperature.
    pub fn graph(&self, spec: &GraphSpec, seed: u64) -> Arc<Graph> {
        let key = graph_key(spec, seed);
        let digest = Self::digest(NS_GRAPH, &key);
        if let Some(g) = self.graph_memo.lock().unwrap().get(&digest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(g);
        }
        let g = match self.get(NS_GRAPH, &key).and_then(|payload| {
            let g = graph_io::parse_edge_list(std::str::from_utf8(&payload).ok()?).ok()?;
            Some(g)
        }) {
            Some(g) => Arc::new(g),
            None => {
                let g = Arc::new(generate(spec, seed));
                let mut payload = Vec::new();
                graph_io::write_edge_list(&g, &mut payload).expect("writing to a Vec cannot fail");
                let _ = self.put(NS_GRAPH, &key, &payload);
                g
            }
        };
        self.graph_memo
            .lock()
            .unwrap()
            .entry(digest)
            .or_insert_with(|| Arc::clone(&g));
        g
    }
}

/// Recursively lists `*.entry` files under `root`, accumulating
/// `(mtime, path, len)` rows and the total byte count (leftover temp
/// files count toward usage but are never eviction candidates — they
/// are transient by construction).
fn collect_entries(
    root: &Path,
    entries: &mut Vec<(std::time::SystemTime, PathBuf, u64)>,
    used: &mut u64,
) {
    let Ok(dir) = fs::read_dir(root) else {
        return;
    };
    for entry in dir.flatten() {
        let path = entry.path();
        let Ok(meta) = entry.metadata() else {
            continue;
        };
        if meta.is_dir() {
            collect_entries(&path, entries, used);
        } else {
            *used += meta.len();
            if path.extension().is_some_and(|e| e == "entry") {
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                entries.push((mtime, path, meta.len()));
            }
        }
    }
}

/// Namespace for generated-graph entries.
pub const NS_GRAPH: &str = "graph";
/// Namespace for completed cell results.
pub const NS_CELL: &str = "cell";

/// The canonical cache key for a generated graph.
fn graph_key(spec: &GraphSpec, seed: u64) -> String {
    format!("{};seed={seed}", spec.stable_key())
}

/// Generates `(spec, seed)` from scratch — the cache's ground truth.
fn generate(spec: &GraphSpec, seed: u64) -> Graph {
    spec.generate(&mut rand::rngs::StdRng::seed_from_u64(seed))
}

/// Process-wide cache handle, set once by the CLI (`--cache-dir` /
/// `--no-cache`). `None` means caching is off and every lookup
/// recomputes.
static GLOBAL: Mutex<Option<Arc<Cache>>> = Mutex::new(None);

/// Installs (or clears) the process-wide cache.
pub fn set_global_cache(cache: Option<Arc<Cache>>) {
    *GLOBAL.lock().unwrap() = cache;
}

/// The process-wide cache, if one is installed.
pub fn global_cache() -> Option<Arc<Cache>> {
    GLOBAL.lock().unwrap().clone()
}

/// Generates `(spec, seed)` through the process-wide cache when one is
/// installed, from scratch otherwise. Experiment cells route all graph
/// construction through this so warm reruns skip generation entirely.
pub fn cached_graph(spec: &GraphSpec, seed: u64) -> Arc<Graph> {
    match global_cache() {
        Some(cache) => cache.graph(spec, seed),
        None => Arc::new(generate(spec, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::gen::GraphFamily;

    fn tmp_cache(tag: &str) -> Cache {
        let dir =
            std::env::temp_dir().join(format!("arbmis-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Cache::open(dir).unwrap()
    }

    #[test]
    fn roundtrip_and_stats() {
        let c = tmp_cache("roundtrip");
        assert_eq!(c.get(NS_CELL, "k"), None);
        c.put(NS_CELL, "k", b"payload").unwrap();
        assert_eq!(c.get(NS_CELL, "k").as_deref(), Some(&b"payload"[..]));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                rejected: 0,
                evicted: 0
            }
        );
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn distinct_keys_and_namespaces_do_not_collide() {
        let c = tmp_cache("collide");
        c.put(NS_CELL, "a", b"1").unwrap();
        c.put(NS_CELL, "b", b"2").unwrap();
        c.put(NS_GRAPH, "a", b"3").unwrap();
        assert_eq!(c.get(NS_CELL, "a").as_deref(), Some(&b"1"[..]));
        assert_eq!(c.get(NS_CELL, "b").as_deref(), Some(&b"2"[..]));
        assert_eq!(c.get(NS_GRAPH, "a").as_deref(), Some(&b"3"[..]));
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn corrupted_entry_is_rejected_and_deleted() {
        let c = tmp_cache("poison");
        c.put(NS_CELL, "k", b"good payload").unwrap();
        let path = c.entry_path(NS_CELL, "k");
        // Flip payload bytes without fixing the checksum.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(c.get(NS_CELL, "k"), None, "corrupt entry must not serve");
        assert!(!path.exists(), "corrupt entry must be evicted");
        assert_eq!(c.stats().rejected, 1);
        // Truncation is also caught.
        c.put(NS_CELL, "k", b"good payload").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(c.get(NS_CELL, "k"), None);
        assert_eq!(c.stats().rejected, 2);
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn graph_identical_across_memo_disk_and_generation() {
        let spec = GraphSpec::new(GraphFamily::ForestUnion { alpha: 2 }, 200);
        let fresh = generate(&spec, 7);
        let c = tmp_cache("graph");
        let g1 = c.graph(&spec, 7); // generated + stored
        let g2 = c.graph(&spec, 7); // memo
        assert_eq!(*g1, fresh);
        assert!(Arc::ptr_eq(&g1, &g2));
        drop(c);
        // A fresh handle on the same dir reads the disk entry.
        let c2 = Cache::open(
            std::env::temp_dir().join(format!("arbmis-cache-test-graph-{}", std::process::id())),
        )
        .unwrap();
        let g3 = c2.graph(&spec, 7);
        assert_eq!(*g3, fresh);
        assert_eq!(c2.stats().hits, 1);
        // Different seed is a different graph and a different entry.
        let g4 = c2.graph(&spec, 8);
        assert_ne!(*g4, fresh);
        let _ = fs::remove_dir_all(c2.dir());
    }

    #[test]
    fn salt_is_part_of_the_address() {
        // The digest must move if the salt does; pin the current mapping
        // so accidental digest-scheme changes are caught.
        let d = Cache::digest(NS_CELL, "key");
        let mut h = Fnv128::new();
        h.write_str(CODE_SALT).write_str(NS_CELL).write_str("key");
        assert_eq!(d, h.hex());
    }

    /// Total bytes currently under `root`, recursively.
    fn dir_size(root: &Path) -> u64 {
        let mut entries = Vec::new();
        let mut used = 0;
        collect_entries(root, &mut entries, &mut used);
        used
    }

    #[test]
    fn capacity_evicts_oldest_entries_first() {
        let dir =
            std::env::temp_dir().join(format!("arbmis-cache-test-cap-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Each ~100-byte payload frames to ~140 bytes; capacity fits
        // roughly two entries.
        let c = Cache::open_with_capacity(&dir, 300).unwrap();
        let payload = [7u8; 100];
        c.put(NS_CELL, "a", &payload).unwrap();
        // mtime has coarse granularity on some filesystems; space the
        // writes out so "oldest" is unambiguous.
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.put(NS_CELL, "b", &payload).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.put(NS_CELL, "c", &payload).unwrap();
        assert!(dir_size(&c.salt_dir()) <= c.capacity(), "cap enforced");
        assert_eq!(c.get(NS_CELL, "a"), None, "oldest entry evicted");
        assert!(c.get(NS_CELL, "c").is_some(), "just-published entry kept");
        assert!(c.stats().evicted >= 1);
        // An entry larger than the whole capacity is stored alone.
        c.put(NS_CELL, "big", &[1u8; 400]).unwrap();
        assert!(c.get(NS_CELL, "big").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_salt_generations_are_pruned_on_open() {
        let dir =
            std::env::temp_dir().join(format!("arbmis-cache-test-salt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Simulate entries orphaned by an earlier CODE_SALT generation.
        let stale = dir.join("arbmis-cells-v0").join(NS_CELL);
        fs::create_dir_all(&stale).unwrap();
        fs::write(stale.join("dead.entry"), vec![0u8; 4096]).unwrap();
        let c = Cache::open(&dir).unwrap();
        assert!(!dir.join("arbmis-cells-v0").exists(), "stale salt pruned");
        assert!(c.salt_dir().exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_reheal_and_salt_bump_stay_under_cap() {
        // The unbounded-growth regression: repeated poison/reheal cycles
        // plus an abandoned salt generation must leave the directory
        // bounded by the capacity, not growing with history.
        let dir =
            std::env::temp_dir().join(format!("arbmis-cache-test-bound-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let stale = dir.join("some-older-salt").join(NS_GRAPH);
        fs::create_dir_all(&stale).unwrap();
        fs::write(stale.join("orphan.entry"), vec![0u8; 1 << 16]).unwrap();
        let cap = 2_000;
        let c = Cache::open_with_capacity(&dir, cap).unwrap();
        for round in 0..20 {
            let key = format!("cell-{round}");
            c.put(NS_CELL, &key, &[round as u8; 512]).unwrap();
            // Poison it, observe the rejection, then reheal.
            let path = c.entry_path(NS_CELL, &key);
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff;
            fs::write(&path, &bytes).unwrap();
            assert_eq!(c.get(NS_CELL, &key), None);
            c.put(NS_CELL, &key, &[round as u8; 512]).unwrap();
        }
        assert!(
            dir_size(&dir) <= cap,
            "directory must stay bounded: {} > {cap}",
            dir_size(&dir)
        );
        assert!(c.stats().evicted > 0, "history this long must evict");
        // The newest generation of entries still serves.
        assert!(c.get(NS_CELL, "cell-19").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_graph_without_global_cache_generates() {
        let spec = GraphSpec::new(GraphFamily::KTree { k: 2 }, 64);
        // Not installing a global cache here: global state is exercised
        // by the integration suite to avoid cross-test interference.
        let g = cached_graph(&spec, 3);
        assert_eq!(*g, generate(&spec, 3));
    }
}
