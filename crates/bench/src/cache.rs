//! Content-addressed on-disk cache for generated graphs and completed
//! cell results.
//!
//! Entries are addressed by an FNV-1a 128 digest
//! ([`arbmis_graph::digest`] — frozen arithmetic, not `std::hash`) of
//! `(CODE_SALT, namespace, key)`. The salt names the cell/cache code
//! generation: bumping it on any change that could alter cell outputs
//! orphans every stale entry at once, with no manual eviction protocol.
//! Within one salt generation a key is immutable — the same digest
//! always stores the same bytes — which is what makes a warm-cache run
//! byte-identical to a cold one (DESIGN.md §9).
//!
//! Each entry is one file `<dir>/<namespace>/<digest>.entry` holding a
//! header line (`arbmis-cache v1 <checksum> <len>`) followed by the
//! payload; the checksum is verified on every read, so a truncated or
//! corrupted entry is *rejected and deleted*, and the caller recomputes
//! — poisoning degrades to a cache miss, never to wrong results. Writes
//! go to a temp file first and are published by `rename`, so concurrent
//! writers and readers only ever see complete entries.

use arbmis_graph::digest::{checksum64, Fnv128};
use arbmis_graph::gen::GraphSpec;
use arbmis_graph::{io as graph_io, Graph};
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The code-version salt mixed into every cache digest. Bump whenever a
/// generator, experiment cell, or the cache payload encoding changes in
/// a way that could alter stored bytes.
pub const CODE_SALT: &str = "arbmis-cells-v1";

/// Entry-file magic + format version.
const MAGIC: &str = "arbmis-cache v1";

/// Cache hit/miss tallies. These depend on prior process runs (disk
/// state), so they are *timing-class* data under the DESIGN.md §8
/// quarantine — never put them in deterministic output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries found but rejected (checksum/format mismatch) — counted
    /// in addition to the miss they become.
    pub rejected: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A content-addressed cache rooted at one directory.
pub struct Cache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    /// In-memory graph memo so one process never loads or generates the
    /// same `(spec, seed)` twice, keyed by entry digest.
    graph_memo: Mutex<HashMap<String, Arc<Graph>>>,
}

impl Cache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Cache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Cache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            graph_memo: Mutex::new(HashMap::new()),
        })
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current hit/miss tallies.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// The digest addressing `(CODE_SALT, namespace, key)`.
    fn digest(namespace: &str, key: &str) -> String {
        let mut h = Fnv128::new();
        h.write_str(CODE_SALT).write_str(namespace).write_str(key);
        h.hex()
    }

    /// The on-disk path an entry would live at (exposed so tests and CI
    /// can corrupt or inspect specific entries).
    pub fn entry_path(&self, namespace: &str, key: &str) -> PathBuf {
        self.dir
            .join(namespace)
            .join(format!("{}.entry", Self::digest(namespace, key)))
    }

    /// Looks up an entry, verifying its checksum. Rejected (corrupt)
    /// entries are deleted and reported as misses.
    pub fn get(&self, namespace: &str, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(namespace, key);
        let Ok(bytes) = fs::read(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match Self::decode(&bytes) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores an entry (atomic publish via temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers typically treat a failed store
    /// as best-effort and continue.
    pub fn put(&self, namespace: &str, key: &str, payload: &[u8]) -> io::Result<()> {
        let path = self.entry_path(namespace, key);
        let parent = path.parent().expect("entry path always has a parent");
        fs::create_dir_all(parent)?;
        let mut framed =
            format!("{MAGIC} {:016x} {}\n", checksum64(payload), payload.len()).into_bytes();
        framed.extend_from_slice(payload);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &framed)?;
        fs::rename(&tmp, &path)
    }

    /// Splits a raw entry file into its verified payload.
    fn decode(bytes: &[u8]) -> Option<Vec<u8>> {
        let newline = bytes.iter().position(|&b| b == b'\n')?;
        let header = std::str::from_utf8(&bytes[..newline]).ok()?;
        let rest = &bytes[newline + 1..];
        let fields = header.strip_prefix(MAGIC)?;
        let mut it = fields.split_whitespace();
        let sum = u64::from_str_radix(it.next()?, 16).ok()?;
        let len: usize = it.next()?.parse().ok()?;
        if it.next().is_some() || rest.len() != len || checksum64(rest) != sum {
            return None;
        }
        Some(rest.to_vec())
    }

    /// The generated graph for `(spec, seed)`: from the in-process memo,
    /// else from disk (edge-list payload), else generated and stored.
    /// The returned graph is structurally identical on every path — the
    /// edge-list round trip is lossless — so results never depend on
    /// cache temperature.
    pub fn graph(&self, spec: &GraphSpec, seed: u64) -> Arc<Graph> {
        let key = graph_key(spec, seed);
        let digest = Self::digest(NS_GRAPH, &key);
        if let Some(g) = self.graph_memo.lock().unwrap().get(&digest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(g);
        }
        let g = match self.get(NS_GRAPH, &key).and_then(|payload| {
            let g = graph_io::parse_edge_list(std::str::from_utf8(&payload).ok()?).ok()?;
            Some(g)
        }) {
            Some(g) => Arc::new(g),
            None => {
                let g = Arc::new(generate(spec, seed));
                let mut payload = Vec::new();
                graph_io::write_edge_list(&g, &mut payload).expect("writing to a Vec cannot fail");
                let _ = self.put(NS_GRAPH, &key, &payload);
                g
            }
        };
        self.graph_memo
            .lock()
            .unwrap()
            .entry(digest)
            .or_insert_with(|| Arc::clone(&g));
        g
    }
}

/// Namespace for generated-graph entries.
pub const NS_GRAPH: &str = "graph";
/// Namespace for completed cell results.
pub const NS_CELL: &str = "cell";

/// The canonical cache key for a generated graph.
fn graph_key(spec: &GraphSpec, seed: u64) -> String {
    format!("{};seed={seed}", spec.stable_key())
}

/// Generates `(spec, seed)` from scratch — the cache's ground truth.
fn generate(spec: &GraphSpec, seed: u64) -> Graph {
    spec.generate(&mut rand::rngs::StdRng::seed_from_u64(seed))
}

/// Process-wide cache handle, set once by the CLI (`--cache-dir` /
/// `--no-cache`). `None` means caching is off and every lookup
/// recomputes.
static GLOBAL: Mutex<Option<Arc<Cache>>> = Mutex::new(None);

/// Installs (or clears) the process-wide cache.
pub fn set_global_cache(cache: Option<Arc<Cache>>) {
    *GLOBAL.lock().unwrap() = cache;
}

/// The process-wide cache, if one is installed.
pub fn global_cache() -> Option<Arc<Cache>> {
    GLOBAL.lock().unwrap().clone()
}

/// Generates `(spec, seed)` through the process-wide cache when one is
/// installed, from scratch otherwise. Experiment cells route all graph
/// construction through this so warm reruns skip generation entirely.
pub fn cached_graph(spec: &GraphSpec, seed: u64) -> Arc<Graph> {
    match global_cache() {
        Some(cache) => cache.graph(spec, seed),
        None => Arc::new(generate(spec, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_graph::gen::GraphFamily;

    fn tmp_cache(tag: &str) -> Cache {
        let dir =
            std::env::temp_dir().join(format!("arbmis-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Cache::open(dir).unwrap()
    }

    #[test]
    fn roundtrip_and_stats() {
        let c = tmp_cache("roundtrip");
        assert_eq!(c.get(NS_CELL, "k"), None);
        c.put(NS_CELL, "k", b"payload").unwrap();
        assert_eq!(c.get(NS_CELL, "k").as_deref(), Some(&b"payload"[..]));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                rejected: 0
            }
        );
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn distinct_keys_and_namespaces_do_not_collide() {
        let c = tmp_cache("collide");
        c.put(NS_CELL, "a", b"1").unwrap();
        c.put(NS_CELL, "b", b"2").unwrap();
        c.put(NS_GRAPH, "a", b"3").unwrap();
        assert_eq!(c.get(NS_CELL, "a").as_deref(), Some(&b"1"[..]));
        assert_eq!(c.get(NS_CELL, "b").as_deref(), Some(&b"2"[..]));
        assert_eq!(c.get(NS_GRAPH, "a").as_deref(), Some(&b"3"[..]));
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn corrupted_entry_is_rejected_and_deleted() {
        let c = tmp_cache("poison");
        c.put(NS_CELL, "k", b"good payload").unwrap();
        let path = c.entry_path(NS_CELL, "k");
        // Flip payload bytes without fixing the checksum.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(c.get(NS_CELL, "k"), None, "corrupt entry must not serve");
        assert!(!path.exists(), "corrupt entry must be evicted");
        assert_eq!(c.stats().rejected, 1);
        // Truncation is also caught.
        c.put(NS_CELL, "k", b"good payload").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(c.get(NS_CELL, "k"), None);
        assert_eq!(c.stats().rejected, 2);
        let _ = fs::remove_dir_all(c.dir());
    }

    #[test]
    fn graph_identical_across_memo_disk_and_generation() {
        let spec = GraphSpec::new(GraphFamily::ForestUnion { alpha: 2 }, 200);
        let fresh = generate(&spec, 7);
        let c = tmp_cache("graph");
        let g1 = c.graph(&spec, 7); // generated + stored
        let g2 = c.graph(&spec, 7); // memo
        assert_eq!(*g1, fresh);
        assert!(Arc::ptr_eq(&g1, &g2));
        drop(c);
        // A fresh handle on the same dir reads the disk entry.
        let c2 = Cache::open(
            std::env::temp_dir().join(format!("arbmis-cache-test-graph-{}", std::process::id())),
        )
        .unwrap();
        let g3 = c2.graph(&spec, 7);
        assert_eq!(*g3, fresh);
        assert_eq!(c2.stats().hits, 1);
        // Different seed is a different graph and a different entry.
        let g4 = c2.graph(&spec, 8);
        assert_ne!(*g4, fresh);
        let _ = fs::remove_dir_all(c2.dir());
    }

    #[test]
    fn salt_is_part_of_the_address() {
        // The digest must move if the salt does; pin the current mapping
        // so accidental digest-scheme changes are caught.
        let d = Cache::digest(NS_CELL, "key");
        let mut h = Fnv128::new();
        h.write_str(CODE_SALT).write_str(NS_CELL).write_str("key");
        assert_eq!(d, h.hex());
    }

    #[test]
    fn cached_graph_without_global_cache_generates() {
        let spec = GraphSpec::new(GraphFamily::KTree { k: 2 }, 64);
        // Not installing a global cache here: global state is exercised
        // by the integration suite to avoid cross-test interference.
        let g = cached_graph(&spec, 3);
        assert_eq!(*g, generate(&spec, 3));
    }
}
