//! Churn workloads for the incremental MIS layer, plus the
//! repair-vs-recompute measurement harness behind `BENCH_dynamic.json`
//! and the `arbmis churn` subcommand.
//!
//! A workload is a deterministic **edit script**: a base graph and a
//! sequence of update batches, generated from a seed. Four shapes cover
//! the regimes that matter for a maintenance layer:
//!
//! | script            | shape                                            |
//! |-------------------|--------------------------------------------------|
//! | `localized_churn` | each batch edits one small id window — the case locality-bounded repair is built for |
//! | `uniform_mix`     | inserts/removes scattered uniformly — damage everywhere, but each batch still small |
//! | `flash_crowd`     | waves of node arrivals wired to random hosts, with stragglers departing |
//! | `hub_churn`       | adversarial: one hub's entire edge set flaps on and off — maximal single-node damage |
//!
//! [`run_script`] plays a script through [`DynamicMis`] (timing only the
//! `apply` calls) and, for every batch, also times the static
//! alternative: materialize the current graph and re-solve it from
//! scratch on the flat engine. The ratio of those totals is the
//! locality win. Timings are wall-clock and 1-core; the *structural*
//! columns (region sizes, rounds, update counts) are deterministic and
//! comparable across machines.

use arbmis_dynamic::{DynamicMis, Update};
use arbmis_flat::{solve_mis, FlatAlgo};
use arbmis_graph::{gen, Graph, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

/// A deterministic churn workload: base graph plus update batches.
pub struct ChurnScript {
    /// Workload name (stable; used in JSON artifacts and CI checks).
    pub name: String,
    /// The graph before any updates.
    pub base: Graph,
    /// Update batches, applied in order.
    pub batches: Vec<Vec<Update>>,
}

impl ChurnScript {
    /// Total updates across all batches.
    pub fn updates(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// Base graph shared by the edge-churn scripts: G(n, d̄=4).
fn base_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::gnp_with_expected_degree(n, 4.0, &mut rng)
}

/// Each batch picks one random center and edits edges only inside a
/// 16-id window around it — churn a repair layer should answer in time
/// proportional to the window, not the graph.
pub fn localized_churn(n: usize, batches: usize, batch_size: usize, seed: u64) -> ChurnScript {
    assert!(n >= 32, "window churn needs at least 32 nodes");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6c6f_6361);
    let script = (0..batches)
        .map(|_| {
            let center = rng.gen_range(0..n as u64) as usize;
            (0..batch_size)
                .map(|_| {
                    let u = (center + rng.gen_range(0..16u64) as usize) % n;
                    let mut v = (center + rng.gen_range(0..16u64) as usize) % n;
                    if u == v {
                        v = (v + 1) % n;
                    }
                    if rng.gen_bool(0.5) {
                        Update::InsertEdge(u, v)
                    } else {
                        Update::RemoveEdge(u, v)
                    }
                })
                .collect()
        })
        .collect();
    ChurnScript {
        name: "localized_churn".into(),
        base: base_graph(n, seed),
        batches: script,
    }
}

/// Inserts and removals with uniformly random endpoints — no locality
/// for the repair layer to exploit beyond batch size itself.
pub fn uniform_mix(n: usize, batches: usize, batch_size: usize, seed: u64) -> ChurnScript {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x756e_6966);
    let script = (0..batches)
        .map(|_| {
            (0..batch_size)
                .map(|_| {
                    let u = rng.gen_range(0..n as u64) as usize;
                    let mut v = rng.gen_range(0..n as u64) as usize;
                    if u == v {
                        v = (v + 1) % n;
                    }
                    if rng.gen_bool(0.5) {
                        Update::InsertEdge(u, v)
                    } else {
                        Update::RemoveEdge(u, v)
                    }
                })
                .collect()
        })
        .collect();
    ChurnScript {
        name: "uniform_mix".into(),
        base: base_graph(n, seed),
        batches: script,
    }
}

/// Waves of node arrivals (each wired to a few random hosts alive at
/// script-generation time) with occasional departures of earlier
/// arrivals — the membership-churn regime of a service.
pub fn flash_crowd(n: usize, batches: usize, arrivals_per_batch: usize, seed: u64) -> ChurnScript {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x666c_6173);
    let mut next_id = n;
    let mut arrivals: Vec<NodeId> = Vec::new();
    let script = (0..batches)
        .map(|_| {
            let mut batch = Vec::new();
            for _ in 0..arrivals_per_batch {
                let hosts: Vec<NodeId> = (0..rng.gen_range(1..4u64))
                    .map(|_| rng.gen_range(0..n as u64) as usize)
                    .collect();
                batch.push(Update::InsertNode(hosts));
                arrivals.push(next_id);
                next_id += 1;
            }
            // A straggler from an earlier wave departs now and then.
            if arrivals.len() > 4 && rng.gen_bool(0.5) {
                let leaver = arrivals.remove(rng.gen_range(0..arrivals.len() as u64) as usize);
                batch.push(Update::RemoveNode(leaver));
            }
            batch
        })
        .collect();
    ChurnScript {
        name: "flash_crowd".into(),
        base: base_graph(n, seed),
        batches: script,
    }
}

/// Adversarial hub flapping: batches alternately attach the hub (node 0)
/// to a large random fan and tear the same fan down. Every flap slams
/// the hub's whole neighborhood — the worst single-node damage an update
/// can cause, and the stress case for dirty-region sizing.
pub fn hub_churn(n: usize, flaps: usize, fan: usize, seed: u64) -> ChurnScript {
    assert!(n > fan + 1, "fan must leave spokes to pick from");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6875_6273);
    let mut script = Vec::new();
    for _ in 0..flaps {
        let spokes: Vec<NodeId> = (0..fan)
            .map(|_| 1 + rng.gen_range(0..(n - 1) as u64) as usize)
            .collect();
        script.push(spokes.iter().map(|&s| Update::InsertEdge(0, s)).collect());
        script.push(spokes.iter().map(|&s| Update::RemoveEdge(0, s)).collect());
    }
    ChurnScript {
        name: "hub_churn".into(),
        base: base_graph(n, seed),
        batches: script,
    }
}

/// What one script measured. Structural columns are deterministic;
/// `*_ns` columns are wall-clock (1-core, machine-dependent).
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Workload name.
    pub name: String,
    /// Base graph size.
    pub n0: usize,
    /// Base graph edges.
    pub m0: usize,
    /// Batches applied.
    pub batches: usize,
    /// Total updates.
    pub updates: usize,
    /// Mean dirty-region size per batch.
    pub mean_region: f64,
    /// Largest dirty region any batch produced.
    pub max_region: usize,
    /// Total flat-engine rounds across all repairs.
    pub repair_rounds: u64,
    /// Total ns in `DynamicMis::apply`.
    pub repair_ns: u64,
    /// Total ns to rebuild + fully re-solve after each batch.
    pub full_ns: u64,
    /// `full_ns / repair_ns`.
    pub speedup: f64,
    /// Whether every per-batch validity audit passed (always audited on
    /// the final state; per-batch when `verify_each`).
    pub valid: bool,
}

/// Plays `script` through [`DynamicMis`], timing repair against a
/// from-scratch re-solve of the full current graph after every batch.
/// With `verify_each`, additionally audits `is_valid_mis` after every
/// batch (the audit is untimed either way).
pub fn run_script(script: &ChurnScript, seed: u64, verify_each: bool) -> ChurnReport {
    let mut d = DynamicMis::new(script.base.clone(), seed);
    let mut repair_ns = 0u64;
    let mut full_ns = 0u64;
    let mut region_total = 0usize;
    let mut max_region = 0usize;
    let mut repair_rounds = 0u64;
    let mut valid = true;
    for batch in &script.batches {
        let t0 = Instant::now();
        let r = d.apply(batch);
        repair_ns += t0.elapsed().as_nanos() as u64;
        region_total += r.region_nodes;
        max_region = max_region.max(r.region_nodes);
        repair_rounds += r.repair_rounds;
        if verify_each {
            valid &= d.is_valid_mis();
        }
        // The static alternative: materialize the mutated graph and
        // solve it from scratch (what a non-incremental pipeline would
        // have to do to answer the same query).
        let t1 = Instant::now();
        let g = d.graph().to_graph();
        let full = solve_mis(&g, seed, FlatAlgo::Metivier, u64::MAX)
            .expect("full re-solve cannot hit the round limit");
        full_ns += t1.elapsed().as_nanos() as u64;
        std::hint::black_box(&full.in_mis);
    }
    valid &= d.is_valid_mis();
    ChurnReport {
        name: script.name.clone(),
        n0: script.base.n(),
        m0: script.base.m(),
        batches: script.batches.len(),
        updates: script.updates(),
        mean_region: region_total as f64 / script.batches.len().max(1) as f64,
        max_region,
        repair_rounds,
        repair_ns,
        full_ns,
        speedup: full_ns as f64 / repair_ns.max(1) as f64,
        valid,
    }
}

/// The standard workload suite at scale `n` (CI smoke passes a small
/// `n`, the committed artifact a large one).
pub fn standard_suite(n: usize, seed: u64) -> Vec<ChurnScript> {
    vec![
        localized_churn(n, 48, 16, seed),
        uniform_mix(n, 48, 16, seed),
        flash_crowd(n, 48, 4, seed),
        hub_churn(n, 12, 64.min(n / 4), seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_apply_cleanly_and_stay_valid() {
        for script in standard_suite(256, 5) {
            let report = run_script(&script, 9, true);
            assert!(report.valid, "{} must stay valid", report.name);
            assert_eq!(report.batches, script.batches.len());
            assert!(report.updates > 0);
        }
    }

    #[test]
    fn scripts_are_deterministic() {
        let a = localized_churn(128, 8, 8, 3);
        let b = localized_churn(128, 8, 8, 3);
        assert_eq!(a.batches, b.batches);
        let ra = run_script(&a, 1, false);
        let rb = run_script(&b, 1, false);
        assert_eq!(ra.mean_region.to_bits(), rb.mean_region.to_bits());
        assert_eq!(ra.repair_rounds, rb.repair_rounds);
    }

    #[test]
    fn localized_regions_stay_small() {
        let script = localized_churn(4096, 16, 8, 7);
        let report = run_script(&script, 2, true);
        // Damage is confined to 16-id windows; the dirty region must be
        // window-sized, never graph-sized.
        assert!(
            report.max_region < 128,
            "localized churn leaked: max region {}",
            report.max_region
        );
    }

    #[test]
    fn hub_churn_is_the_named_stress_workload() {
        let script = hub_churn(200, 3, 32, 11);
        assert_eq!(script.name, "hub_churn");
        assert_eq!(script.batches.len(), 6, "one attach + one detach per flap");
        let report = run_script(&script, 4, true);
        assert!(report.valid);
        // Detaching the whole fan uncovers many spokes at once.
        assert!(report.max_region >= 4, "hub damage should not be tiny");
    }
}
