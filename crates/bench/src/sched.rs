//! The work-stealing cell scheduler.
//!
//! [`run_scheduled`] fans the cells of *all* requested experiments into
//! one shared worker pool ([`arbmis_congest::execute_indexed`] — the
//! same atomic-claim executor the round engine and Monte-Carlo pool
//! use), then reduces each experiment's outputs in deterministic cell
//! order. The determinism contract (DESIGN.md §9):
//!
//! 1. cells are pure, so *what* a cell computes never depends on which
//!    worker ran it or when;
//! 2. outputs are assembled by cell index and reduced in plan order, so
//!    scheduling cannot leak into report bytes;
//! 3. while the scheduler owns the pool, inner engines are forced to
//!    [`Parallelism::Serial`] — their results are thread-count-invariant
//!    by the PR 1 contract, so this changes wall-clock only, and it
//!    keeps `--threads N` meaning "N cells in flight", never N² threads.
//!
//! Hence `--threads 1` vs `--threads N`, and cold vs warm cache, produce
//! byte-identical reports.

use crate::cache::{global_cache, Cache, NS_CELL};
use crate::cell::{Cell, CellOut, ExperimentPlan, ReduceFn};
use crate::ExperimentReport;
use arbmis_congest::{default_parallelism, execute_indexed, set_default_parallelism, Parallelism};
use arbmis_obs::Recorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What one scheduled run did. Everything here is **timing-class**
/// information (wall-clock, pool size, cache temperature) — print it to
/// stderr or feed it to benches, never into report output.
#[derive(Clone, Copy, Debug)]
pub struct SchedStats {
    /// Total cells scheduled.
    pub cells: usize,
    /// Cells served from the result cache.
    pub cell_hits: u64,
    /// Cells actually executed.
    pub cell_misses: u64,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall time of the scheduled run.
    pub wall: Duration,
}

impl SchedStats {
    /// Cell-cache hits as a fraction of all cells (0.0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.cell_hits as f64 / self.cells as f64
        }
    }
}

/// The reports (in request order) plus run statistics.
#[derive(Debug)]
pub struct SchedOutcome {
    /// One report per requested experiment, in request order.
    pub reports: Vec<ExperimentReport>,
    /// Timing-class run statistics.
    pub stats: SchedStats,
}

/// Total cell count across a set of plans (what `--threads N` fans out).
pub fn cell_count(plans: &[ExperimentPlan]) -> usize {
    plans.iter().map(|p| p.cells.len()).sum()
}

/// Runs every cell of every plan on one shared work-stealing pool and
/// reduces to reports. See the module docs for the determinism contract.
///
/// # Panics
///
/// Panics if two cells share a cache key — that is a plan-construction
/// bug that would make "which output belongs to which cell" ambiguous.
pub fn run_scheduled(plans: Vec<ExperimentPlan>, parallelism: Parallelism) -> SchedOutcome {
    let start = Instant::now();
    // Split reduces (FnOnce, not Sync) from cells (Sync) so the cell
    // groups can be shared across the pool.
    let mut reduces: Vec<(usize, ReduceFn)> = Vec::with_capacity(plans.len());
    let mut groups: Vec<Vec<Cell>> = Vec::with_capacity(plans.len());
    for plan in plans {
        reduces.push((plan.cells.len(), plan.reduce));
        groups.push(plan.cells);
    }
    let index: Vec<&Cell> = groups.iter().flatten().collect();
    {
        let mut keys: Vec<&str> = index.iter().map(|c| c.key.as_str()).collect();
        keys.sort_unstable();
        keys.windows(2).for_each(|w| {
            assert_ne!(w[0], w[1], "duplicate cell cache key {:?}", w[0]);
        });
    }

    let workers = parallelism.effective_threads(index.len());
    let rec = arbmis_obs::global();
    rec.add("sched_cells", index.len() as u64);
    let cache = global_cache();
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);

    // Inner engines go serial while the scheduler owns the pool
    // (restored below); see module docs, rule 3.
    let saved = default_parallelism();
    set_default_parallelism(Parallelism::Serial);
    let outs: Vec<CellOut> = execute_indexed(index.len(), parallelism, |_w, i| {
        run_one(index[i], cache.as_deref(), &rec, &hits, &misses)
    });
    set_default_parallelism(saved);

    drop(index);
    let mut outs = outs.into_iter();
    let mut reports = Vec::with_capacity(reduces.len());
    for (n, reduce) in reduces {
        let plan_outs: Vec<CellOut> = outs.by_ref().take(n).collect();
        reports.push(reduce(plan_outs));
    }

    let stats = SchedStats {
        cells: cell_count_from(&groups),
        cell_hits: hits.load(Ordering::Relaxed),
        cell_misses: misses.load(Ordering::Relaxed),
        workers,
        wall: start.elapsed(),
    };
    SchedOutcome { reports, stats }
}

fn cell_count_from(groups: &[Vec<Cell>]) -> usize {
    groups.iter().map(|g| g.len()).sum()
}

/// Serves one cell from the cache or runs it, with timing-class
/// bookkeeping (`worker_cell_cache_*` counters, `cell_run_ns`
/// histogram — quarantined names per DESIGN.md §8).
fn run_one(
    cell: &Cell,
    cache: Option<&Cache>,
    rec: &Recorder,
    hits: &AtomicU64,
    misses: &AtomicU64,
) -> CellOut {
    if let Some(cache) = cache {
        if let Some(out) = cache
            .get(NS_CELL, &cell.key)
            .and_then(|b| CellOut::from_bytes(&b))
        {
            hits.fetch_add(1, Ordering::Relaxed);
            rec.add_timing("worker_cell_cache_hits", 1);
            return out;
        }
    }
    misses.fetch_add(1, Ordering::Relaxed);
    rec.add_timing("worker_cell_cache_misses", 1);
    let t = rec.timing().then(Instant::now);
    let out = (cell.run)();
    if let Some(t) = t {
        rec.observe_timing("cell_run_ns", t.elapsed().as_nanos() as u64);
    }
    if let Some(cache) = cache {
        let _ = cache.put(NS_CELL, &cell.key, &out.to_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Table;

    fn toy_plan(id: &'static str, cells: usize, base: usize) -> ExperimentPlan {
        let cells = (0..cells)
            .map(|i| {
                Cell::new(
                    format!("{id}/c{i}"),
                    format!("test;{id};cell={i}"),
                    move || CellOut::from_rows(vec![vec![format!("{}", base + i)]]),
                )
            })
            .collect();
        ExperimentPlan::new(id, cells, move |outs| {
            let mut table = Table::new(["v"]);
            for o in outs {
                for r in o.rows {
                    table.push_row(r);
                }
            }
            ExperimentReport {
                id: id.into(),
                title: "toy".into(),
                table,
                notes: vec![],
            }
        })
    }

    fn column(r: &ExperimentReport) -> Vec<String> {
        r.table.rows.iter().map(|row| row[0].clone()).collect()
    }

    #[test]
    fn scheduled_reports_identical_at_every_thread_count() {
        let render = |threads| {
            let plans = vec![toy_plan("A", 7, 0), toy_plan("B", 3, 100)];
            let outcome = run_scheduled(plans, Parallelism::Threads(threads));
            assert_eq!(outcome.stats.cells, 10);
            outcome
                .reports
                .iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect::<Vec<_>>()
        };
        let baseline = render(1);
        assert!(
            baseline[0].contains("\"id\":\"A\""),
            "request order preserved"
        );
        for threads in [2, 4, 8] {
            assert_eq!(render(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn reduction_order_is_cell_order_not_completion_order() {
        let outcome = run_scheduled(vec![toy_plan("A", 16, 0)], Parallelism::Threads(8));
        let want: Vec<String> = (0..16).map(|i| i.to_string()).collect();
        assert_eq!(column(&outcome.reports[0]), want);
        assert_eq!(outcome.stats.cell_misses, 16, "no cache installed");
        assert_eq!(outcome.stats.cell_hits, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate cell cache key")]
    fn duplicate_keys_rejected() {
        let cells = vec![
            Cell::new("a", "same-key", CellOut::default),
            Cell::new("b", "same-key", CellOut::default),
        ];
        let plan = ExperimentPlan::new("X", cells, |_| ExperimentReport {
            id: "X".into(),
            title: String::new(),
            table: Table::new(["c"]),
            notes: vec![],
        });
        run_scheduled(vec![plan], Parallelism::Serial);
    }

    #[test]
    fn empty_plan_set_is_fine() {
        let outcome = run_scheduled(vec![], Parallelism::Auto);
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.stats.cells, 0);
        assert_eq!(outcome.stats.hit_rate(), 0.0);
    }
}
