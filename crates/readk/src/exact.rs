//! Exact probabilities for sliding-window read-k families.
//!
//! For the calibration family of [`crate::family::sliding_window_family`]
//! (stride 1: `Y_j = [X_j ≥ t] ∧ … ∧ [X_{j+s−1} ≥ t]` over i.i.d. base
//! variables with per-coordinate success probability `q`), both the
//! conjunction probability and the full distribution of `Y = Σ Y_j` are
//! exactly computable — the windows form a Markov chain over the last
//! `s − 1` coordinate outcomes. These oracles let the test suite verify
//! the GLSS bounds and the Monte-Carlo machinery with *zero* sampling
//! noise.

/// Exact `Pr[Y_1 = ⋯ = Y_n = 1]` for stride-1 windows of span `s`:
/// all windows are 1 iff every coordinate in their union is a success,
/// i.e. `q^{n+s−1}`.
///
/// # Panics
///
/// Panics if `q ∉ [0,1]`, `n == 0`, or `span == 0`.
pub fn conjunction_probability(n: usize, span: usize, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    assert!(n > 0 && span > 0);
    q.powi((n + span - 1) as i32)
}

/// Exact distribution of `Y = Σ_{j=1}^{n} Y_j` for stride-1 windows of
/// span `s` over `m = n + s − 1` i.i.d. Bernoulli(`q`) coordinates.
/// Returns `dist` with `dist[y] = Pr[Y = y]`, length `n + 1`.
///
/// Dynamic program over the run-length of trailing successes (capped at
/// `s − 1`; a full window fires when the run reaches `s`). State space
/// `O(s)`, time `O(m·s·n)`.
///
/// # Panics
///
/// Panics if `q ∉ [0,1]`, `n == 0`, or `span == 0`.
#[allow(clippy::needless_range_loop)] // DP tables read clearest with indices
pub fn count_distribution(n: usize, span: usize, q: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&q));
    assert!(n > 0 && span > 0);
    let m = n + span - 1;
    // dp[run][count]: probability of having trailing success-run `run`
    // (capped at span, where `span` means "the last window fired and the
    // run is still alive") after processing i coordinates, with `count`
    // windows fired so far. Represent run in 0..=span where values ≥ span
    // collapse: a run of length r ≥ span means every new success fires
    // another window.
    let mut dp = vec![vec![0.0f64; n + 1]; span + 1];
    dp[0][0] = 1.0;
    for i in 0..m {
        let mut next = vec![vec![0.0f64; n + 1]; span + 1];
        for run in 0..=span {
            for count in 0..=n {
                let p = dp[run][count];
                if p == 0.0 {
                    continue;
                }
                // Failure: run resets, no window fires.
                next[0][count] += p * (1.0 - q);
                // Success: run extends; if it reaches span (and a window
                // ends at this coordinate, i.e. i ≥ span − 1), a window
                // fires.
                let new_run = (run + 1).min(span);
                if new_run == span && i + 1 >= span {
                    // Window j = i + 1 − span fires (0-indexed j < n by
                    // construction of m).
                    next[span][(count + 1).min(n)] += p * q;
                } else {
                    next[new_run][count] += p * q;
                }
            }
        }
        dp = next;
    }
    let mut dist = vec![0.0f64; n + 1];
    for run in 0..=span {
        for (count, &p) in dp[run].iter().enumerate() {
            dist[count] += p;
        }
    }
    dist
}

/// Exact `Pr[Y ≤ y]` from [`count_distribution`].
pub fn lower_tail(n: usize, span: usize, q: f64, y: usize) -> f64 {
    count_distribution(n, span, q)
        .into_iter()
        .take(y.min(n) + 1)
        .sum()
}

/// Exact `E[Y] = n·q^s`.
pub fn expectation(n: usize, span: usize, q: f64) -> f64 {
    n as f64 * q.powi(span as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::sliding_window_family;
    use crate::montecarlo::estimate;

    #[test]
    fn distribution_sums_to_one() {
        for (n, s, q) in [
            (5usize, 1usize, 0.3f64),
            (8, 2, 0.5),
            (10, 3, 0.7),
            (4, 4, 0.9),
        ] {
            let d = count_distribution(n, s, q);
            let total: f64 = d.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n} s={s} q={q}: {total}");
            assert!(d.iter().all(|&p| p >= -1e-15));
        }
    }

    #[test]
    fn span_one_is_binomial() {
        let n = 6;
        let q: f64 = 0.4;
        let d = count_distribution(n, 1, q);
        for (y, &p) in d.iter().enumerate() {
            let binom = binomial(n, y) * q.powi(y as i32) * (1.0 - q).powi((n - y) as i32);
            assert!((p - binom).abs() < 1e-12, "y={y}: {p} vs {binom}");
        }
    }

    fn binomial(n: usize, k: usize) -> f64 {
        (1..=k).fold(1.0, |acc, i| acc * (n + 1 - i) as f64 / i as f64)
    }

    #[test]
    fn conjunction_matches_distribution_top() {
        let (n, s, q) = (6usize, 3usize, 0.8f64);
        let d = count_distribution(n, s, q);
        let all = conjunction_probability(n, s, q);
        assert!((d[n] - all).abs() < 1e-12, "{} vs {all}", d[n]);
    }

    #[test]
    fn expectation_matches_distribution() {
        let (n, s, q) = (10usize, 2usize, 0.6f64);
        let d = count_distribution(n, s, q);
        let mean: f64 = d.iter().enumerate().map(|(y, &p)| y as f64 * p).sum();
        assert!((mean - expectation(n, s, q)).abs() < 1e-10);
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        // The sampled family and the DP must describe the same law.
        let (n, s, frac) = (12usize, 3usize, 0.4f64);
        let q = 1.0 - frac;
        let fam = sliding_window_family(n, s, 1, frac);
        let threshold = 2usize;
        let exact = lower_tail(n, s, q, threshold);
        let est = estimate(60_000, |t| fam.sample_count(9, t) <= threshold);
        assert!(
            est.consistent_with(exact, 4.0),
            "estimate {} vs exact {exact}",
            est.p_hat()
        );
    }

    #[test]
    fn glss_bounds_hold_against_exact_law() {
        // Zero-noise verification of Theorems 1.1 and 1.2 on this family.
        use crate::bounds;
        for (n, s, q) in [(10usize, 2usize, 0.5f64), (14, 3, 0.7), (20, 4, 0.8)] {
            let p = q.powi(s as i32);
            let exact_all = conjunction_probability(n, s, q);
            assert!(
                exact_all <= bounds::conjunction_bound(p, n, s) + 1e-12,
                "Thm 1.1 violated at n={n} s={s}"
            );
            let exp_y = expectation(n, s, q);
            for delta in [0.3, 0.5, 0.8] {
                let y = ((1.0 - delta) * exp_y).floor() as usize;
                let exact_tail = lower_tail(n, s, q, y);
                let bound = bounds::tail_form2(delta, exp_y, s);
                assert!(
                    exact_tail <= bound + 1e-12,
                    "Thm 1.2 violated at n={n} s={s} δ={delta}: {exact_tail} vs {bound}"
                );
            }
        }
    }

    #[test]
    fn lower_tail_monotone() {
        let (n, s, q) = (10usize, 2usize, 0.5f64);
        let mut prev = 0.0;
        for y in 0..=n {
            let t = lower_tail(n, s, q, y);
            assert!(t >= prev - 1e-15);
            prev = t;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_q() {
        let _ = count_distribution(3, 1, 1.5);
    }
}
