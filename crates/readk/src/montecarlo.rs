//! Seed-parallel Monte-Carlo estimation with Wilson confidence intervals.
//!
//! Thread counts route through [`arbmis_congest::Parallelism`] — the same
//! policy object the CONGEST round engine uses — so one
//! `set_default_parallelism` call (or the `experiments --threads` flag)
//! governs both simulation and Monte-Carlo work. Estimates are
//! trial-index-counter based and therefore identical at every thread
//! count.

use arbmis_congest::Parallelism;
use serde::{Deserialize, Serialize};

/// Hard cap on Monte-Carlo worker threads (diminishing returns beyond).
const MAX_MC_THREADS: usize = 16;

/// A binomial estimate: `successes` out of `trials`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Estimate {
    /// Number of trials performed.
    pub trials: u64,
    /// Number of successful trials.
    pub successes: u64,
}

impl Estimate {
    /// Point estimate `successes / trials` (0.0 when `trials == 0`).
    pub fn p_hat(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson score interval at `z` standard deviations (use `z = 1.96`
    /// for 95%). Returns `(lo, hi) ⊆ [0, 1]`.
    pub fn wilson_ci(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.p_hat();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Merges two independent estimates.
    pub fn merge(self, other: Estimate) -> Estimate {
        Estimate {
            trials: self.trials + other.trials,
            successes: self.successes + other.successes,
        }
    }

    /// Whether `p` lies within the Wilson interval at `z`.
    pub fn consistent_with(&self, p: f64, z: f64) -> bool {
        let (lo, hi) = self.wilson_ci(z);
        (lo..=hi).contains(&p)
    }
}

/// Runs `trials` evaluations of `event(trial_index)` in parallel across
/// threads (the shared work-stealing executor,
/// [`arbmis_congest::execute_indexed`]), returning the pooled [`Estimate`].
///
/// The event closure receives the global trial index, so implementations
/// should derive randomness from it counter-style (see
/// [`arbmis_congest::rng::draw`]) to stay reproducible regardless of the
/// thread schedule.
pub fn estimate<F>(trials: u64, event: F) -> Estimate
where
    F: Fn(u64) -> bool + Sync,
{
    estimate_with_parallelism(trials, arbmis_congest::default_parallelism(), event)
}

/// [`estimate`] with an explicit thread-count policy. The result is
/// identical at every setting; only wall-clock changes.
pub fn estimate_with_parallelism<F>(trials: u64, parallelism: Parallelism, event: F) -> Estimate
where
    F: Fn(u64) -> bool + Sync,
{
    record_batch(trials);
    let threads = mc_threads(trials, parallelism);
    if trials < 256 || threads == 1 {
        let successes = (0..trials).filter(|&t| event(t)).count() as u64;
        return Estimate { trials, successes };
    }
    // One item per worker-sized trial range on the shared work-stealing
    // executor; per-range counts are summed in range order (u64 sums are
    // order-invariant anyway).
    let chunk = trials.div_ceil(threads as u64);
    let ranges = trials.div_ceil(chunk) as usize;
    let counts = arbmis_congest::execute_indexed(ranges, parallelism, |_w, r| {
        let lo = r as u64 * chunk;
        let hi = (lo + chunk).min(trials);
        (lo..hi).filter(|&t| event(t)).count() as u64
    });
    Estimate {
        trials,
        successes: counts.iter().sum(),
    }
}

/// Runs `trials` evaluations of a real-valued statistic in parallel and
/// returns `(mean, sample standard deviation)`.
pub fn estimate_mean<F>(trials: u64, stat: F) -> (f64, f64)
where
    F: Fn(u64) -> f64 + Sync,
{
    estimate_mean_with_parallelism(trials, arbmis_congest::default_parallelism(), stat)
}

/// [`estimate_mean`] with an explicit thread-count policy. The result is
/// identical at every setting; only wall-clock changes.
pub fn estimate_mean_with_parallelism<F>(
    trials: u64,
    parallelism: Parallelism,
    stat: F,
) -> (f64, f64)
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!(trials > 0, "need at least one trial");
    record_batch(trials);
    let threads = mc_threads(trials, parallelism);
    let chunk = trials.div_ceil(threads as u64);
    let results = collect_parallel(trials, threads as u64, chunk, &stat);
    let n = trials as f64;
    let mean = results.iter().sum::<f64>() / n;
    let var = if trials > 1 {
        results.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, var.sqrt())
}

/// Trial-batch progress for the process-wide recorder: one point event
/// per batch plus a running trial counter and a batch-size histogram.
fn record_batch(trials: u64) {
    let rec = arbmis_obs::global();
    if rec.enabled() {
        rec.add("readk_mc_trials", trials);
        rec.point("readk_mc_batch", trials);
        rec.observe("readk_mc_batch_trials", trials);
    }
}

/// Resolves a [`Parallelism`] policy to a Monte-Carlo worker count.
fn mc_threads(trials: u64, parallelism: Parallelism) -> usize {
    let cap = usize::try_from(trials).unwrap_or(usize::MAX).max(1);
    parallelism.effective_threads(cap).min(MAX_MC_THREADS)
}

fn collect_parallel<F>(trials: u64, threads: u64, chunk: u64, stat: &F) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
{
    if trials < 256 || threads == 1 {
        return (0..trials).map(stat).collect();
    }
    // Per-range slabs computed on the shared work-stealing executor and
    // concatenated in range order: the flattened vector is identical to
    // the serial `(0..trials).map(stat)` sequence.
    let ranges = trials.div_ceil(chunk) as usize;
    let slabs = arbmis_congest::execute_indexed(
        ranges,
        arbmis_congest::Parallelism::Threads(threads as usize),
        |_w, r| {
            let lo = r as u64 * chunk;
            let hi = (lo + chunk).min(trials);
            (lo..hi).map(stat).collect::<Vec<f64>>()
        },
    );
    slabs.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbmis_congest::rng;

    #[test]
    fn p_hat_and_merge() {
        let a = Estimate {
            trials: 10,
            successes: 4,
        };
        let b = Estimate {
            trials: 30,
            successes: 6,
        };
        assert!((a.p_hat() - 0.4).abs() < 1e-12);
        let m = a.merge(b);
        assert_eq!(m.trials, 40);
        assert!((m.p_hat() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_contains_p_hat() {
        let e = Estimate {
            trials: 500,
            successes: 100,
        };
        let (lo, hi) = e.wilson_ci(1.96);
        assert!(lo < e.p_hat() && e.p_hat() < hi);
        assert!(lo > 0.15 && hi < 0.25);
        assert!(e.consistent_with(0.2, 1.96));
        assert!(!e.consistent_with(0.5, 1.96));
    }

    #[test]
    fn wilson_degenerate_cases() {
        let empty = Estimate::default();
        assert_eq!(empty.wilson_ci(1.96), (0.0, 1.0));
        let all = Estimate {
            trials: 100,
            successes: 100,
        };
        let (lo, hi) = all.wilson_ci(1.96);
        assert!(lo > 0.9);
        assert!((hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_fair_coin() {
        let e = estimate(20_000, |t| rng::draw(3, 0, t, 0).is_multiple_of(2));
        assert!(e.consistent_with(0.5, 4.0), "p_hat {}", e.p_hat());
        assert_eq!(e.trials, 20_000);
    }

    #[test]
    fn estimate_deterministic_across_schedules() {
        let f = |t: u64| rng::draw(7, 1, t, 0).is_multiple_of(10);
        let a = estimate(5_000, f);
        let b = estimate(5_000, f);
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_identical_at_every_thread_count() {
        let f = |t: u64| rng::draw(5, 2, t, 0).is_multiple_of(7);
        let baseline = estimate_with_parallelism(4_096, Parallelism::Serial, f);
        for threads in [1, 2, 4, 8] {
            let e = estimate_with_parallelism(4_096, Parallelism::Threads(threads), f);
            assert_eq!(e, baseline, "threads={threads}");
        }
        let auto = estimate_with_parallelism(4_096, Parallelism::Auto, f);
        assert_eq!(auto, baseline);
    }

    #[test]
    fn estimate_mean_identical_at_every_thread_count() {
        let f = |t: u64| rng::draw_unit(13, 0, t, 0);
        let (mean0, sd0) = estimate_mean_with_parallelism(2_048, Parallelism::Serial, f);
        for threads in [2, 4, 8] {
            let (mean, sd) =
                estimate_mean_with_parallelism(2_048, Parallelism::Threads(threads), f);
            assert_eq!(mean.to_bits(), mean0.to_bits(), "threads={threads}");
            assert_eq!(sd.to_bits(), sd0.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn estimate_small_trial_counts() {
        let e = estimate(10, |t| t < 3);
        assert_eq!(e.successes, 3);
    }

    #[test]
    fn mean_of_uniform() {
        let (mean, sd) = estimate_mean(20_000, |t| rng::draw_unit(11, 0, t, 0));
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((sd - (1.0f64 / 12.0).sqrt()).abs() < 0.02, "sd {sd}");
    }

    #[test]
    #[should_panic]
    fn mean_rejects_zero_trials() {
        let _ = estimate_mean(0, |_| 0.0);
    }
}
