//! Concrete read-k families: dependency structure + evaluator.

/// A family of boolean functions `Y_j = f_j((X_i)_{i ∈ P_j})` over
/// independent uniform-`u64` base variables `X_0, …, X_{m−1}`.
///
/// The **read parameter** `k` — the maximum number of `P_j` any base
/// variable appears in — is computed from the declared dependency sets,
/// never asserted. Evaluators receive the values of their `P_j` in the
/// declared order.
///
/// # Example
///
/// ```
/// use arbmis_readk::ReadKFamily;
///
/// // Y_j = [X_j > X_{j+1}] over 5 base variables: each interior variable
/// // is read twice.
/// let deps: Vec<Vec<usize>> = (0..4).map(|j| vec![j, j + 1]).collect();
/// let fam = ReadKFamily::new(5, deps, |_j, vals| vals[0] > vals[1]);
/// assert_eq!(fam.read_parameter(), 2);
/// assert_eq!(fam.n(), 4);
/// ```
pub struct ReadKFamily<F> {
    m: usize,
    deps: Vec<Vec<usize>>,
    eval: F,
    read_parameter: usize,
}

impl<F> ReadKFamily<F>
where
    F: Fn(usize, &[u64]) -> bool,
{
    /// Creates a family over `m` base variables with dependency sets
    /// `deps` (one per `Y_j`) and evaluator `eval(j, values_of_P_j)`.
    ///
    /// # Panics
    ///
    /// Panics if any dependency index is `>= m` or any `P_j` is empty.
    pub fn new(m: usize, deps: Vec<Vec<usize>>, eval: F) -> Self {
        let mut reads = vec![0usize; m];
        for (j, p) in deps.iter().enumerate() {
            assert!(!p.is_empty(), "P_{j} is empty");
            for &i in p {
                assert!(i < m, "P_{j} references X_{i} but m={m}");
                reads[i] += 1;
            }
        }
        let read_parameter = reads.into_iter().max().unwrap_or(0);
        ReadKFamily {
            m,
            deps,
            eval,
            read_parameter,
        }
    }

    /// Number of base variables `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of derived variables `n`.
    pub fn n(&self) -> usize {
        self.deps.len()
    }

    /// The read parameter `k` (0 for an empty family).
    pub fn read_parameter(&self) -> usize {
        self.read_parameter
    }

    /// The dependency set of `Y_j`.
    pub fn deps(&self, j: usize) -> &[usize] {
        &self.deps[j]
    }

    /// Evaluates every `Y_j` on a base assignment `x` (length `m`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != m`.
    pub fn evaluate(&self, x: &[u64]) -> Vec<bool> {
        assert_eq!(x.len(), self.m);
        let mut scratch = Vec::new();
        self.deps
            .iter()
            .enumerate()
            .map(|(j, p)| {
                scratch.clear();
                scratch.extend(p.iter().map(|&i| x[i]));
                (self.eval)(j, &scratch)
            })
            .collect()
    }

    /// Evaluates and counts how many `Y_j` are 1.
    pub fn count_ones(&self, x: &[u64]) -> usize {
        self.evaluate(x).into_iter().filter(|&b| b).count()
    }

    /// Whether all `Y_j` are 1 under `x` (the conjunction event of
    /// Theorem 1.1).
    pub fn all_ones(&self, x: &[u64]) -> bool {
        assert_eq!(x.len(), self.m);
        let mut scratch = Vec::new();
        self.deps.iter().enumerate().all(|(j, p)| {
            scratch.clear();
            scratch.extend(p.iter().map(|&i| x[i]));
            (self.eval)(j, &scratch)
        })
    }

    /// Samples a base assignment from `(seed, trial)` via the shared
    /// counter RNG and evaluates [`count_ones`](Self::count_ones).
    pub fn sample_count(&self, seed: u64, trial: u64) -> usize {
        let x = self.sample_base(seed, trial);
        self.count_ones(&x)
    }

    /// Samples a base assignment from `(seed, trial)`.
    pub fn sample_base(&self, seed: u64, trial: u64) -> Vec<u64> {
        (0..self.m)
            .map(|i| arbmis_congest::rng::draw(seed, i, trial, 0xbead))
            .collect()
    }
}

/// A standard synthetic family for calibration: `n` variables over
/// `m = n·span − (n−1)·overlap`-ish sliding windows... simplified:
/// `Y_j = [min of its window ≥ threshold]` over windows of `span`
/// consecutive base variables with stride `stride`. The read parameter is
/// `⌈span/stride⌉`.
///
/// `threshold_frac ∈ (0,1)` sets `Pr[X_i ≥ t] = 1 − threshold_frac` per
/// coordinate, so `Pr[Y_j = 1] = (1 − threshold_frac)^span`.
pub fn sliding_window_family(
    n: usize,
    span: usize,
    stride: usize,
    threshold_frac: f64,
) -> ReadKFamily<impl Fn(usize, &[u64]) -> bool> {
    assert!(span >= 1 && stride >= 1);
    assert!((0.0..1.0).contains(&threshold_frac));
    let m = (n - 1) * stride + span;
    let deps: Vec<Vec<usize>> = (0..n)
        .map(|j| (j * stride..j * stride + span).collect())
        .collect();
    let threshold = (threshold_frac * u64::MAX as f64) as u64;
    ReadKFamily::new(m, deps, move |_j, vals| {
        vals.iter().all(|&v| v >= threshold)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_parameter_computed() {
        // Three Y's all reading X_0: read-3.
        let fam = ReadKFamily::new(2, vec![vec![0], vec![0, 1], vec![0]], |_, v| v[0] > 0);
        assert_eq!(fam.read_parameter(), 3);
    }

    #[test]
    fn evaluate_restricts_to_deps() {
        let fam = ReadKFamily::new(3, vec![vec![2], vec![0, 2]], |j, v| match j {
            0 => v[0] > 10,
            _ => v[0] + v[1] > 10,
        });
        let y = fam.evaluate(&[0, 999, 20]);
        assert_eq!(y, vec![true, true]);
        let y2 = fam.evaluate(&[0, 999, 5]);
        assert_eq!(y2, vec![false, false]);
        assert_eq!(fam.count_ones(&[0, 999, 20]), 2);
        assert!(fam.all_ones(&[0, 999, 20]));
        assert!(!fam.all_ones(&[0, 999, 5]));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_dep() {
        let _ = ReadKFamily::new(2, vec![vec![5]], |_, _| true);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_dep() {
        let _ = ReadKFamily::new(2, vec![vec![]], |_, _| true);
    }

    #[test]
    fn sliding_window_read_parameter() {
        let fam = sliding_window_family(10, 4, 2, 0.5);
        assert_eq!(fam.read_parameter(), 2); // span 4, stride 2
        let fam2 = sliding_window_family(10, 6, 1, 0.5);
        assert_eq!(fam2.read_parameter(), 6);
        let disjoint = sliding_window_family(10, 3, 3, 0.5);
        assert_eq!(disjoint.read_parameter(), 1);
    }

    #[test]
    fn sample_deterministic() {
        let fam = sliding_window_family(8, 3, 1, 0.3);
        assert_eq!(fam.sample_count(5, 0), fam.sample_count(5, 0));
        let x1 = fam.sample_base(5, 0);
        let x2 = fam.sample_base(5, 1);
        assert_ne!(x1, x2);
    }

    #[test]
    fn sliding_window_marginals() {
        // Pr[Y_j = 1] should be ≈ (1 − 0.5)^2 = 0.25.
        let fam = sliding_window_family(50, 2, 2, 0.5);
        let trials = 2000u64;
        let mut total = 0usize;
        for t in 0..trials {
            total += fam.sample_count(9, t);
        }
        let per_y = total as f64 / (trials as f64 * fam.n() as f64);
        assert!((per_y - 0.25).abs() < 0.02, "marginal {per_y}");
    }
}
