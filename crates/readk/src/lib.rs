#![warn(missing_docs)]
//! Read-k families of random variables, executable.
//!
//! A family `Y_1, …, Y_n` of boolean random variables is **read-k** when
//! each `Y_j` is a function of a subset `P_j` of independent base variables
//! `X_1, …, X_m`, and every `X_i` appears in at most `k` of the `P_j`.
//! Gavinsky, Lovett, Saks and Srinivasan (*Random Structures & Algorithms*
//! 2015) proved a conjunction bound and Chernoff-style tail bounds for such
//! families, losing only a factor `1/k` in the exponent relative to full
//! independence. Pemmaraju & Riaz (PODC 2016) use exactly these
//! inequalities to analyze a shattering-based distributed MIS algorithm on
//! bounded-arboricity graphs.
//!
//! This crate makes that analysis *executable*:
//!
//! * [`family::ReadKFamily`] — a concrete read-k family: dependency sets +
//!   evaluator; the read parameter `k` is computed, not asserted.
//! * [`bounds`] — the paper's inequalities (Theorem 1.1, Theorem 1.2 forms
//!   (1) and (2)) plus Chernoff and Azuma comparators.
//! * [`montecarlo`] — seed-parallel estimation of event probabilities with
//!   Wilson confidence intervals.
//! * [`events`] — the paper's three probabilistic events (Figure 1 A/B/C:
//!   node-vs-children, node-vs-parents, elimination-via-children) built
//!   over any graph + low-out-degree orientation.

pub mod bounds;
pub mod events;
pub mod exact;
pub mod family;
pub mod montecarlo;

pub use bounds::{
    azuma_lower_tail, chernoff_lower_tail, conjunction_bound, tail_form1, tail_form2,
};
pub use family::ReadKFamily;
pub use montecarlo::{
    estimate, estimate_mean, estimate_mean_with_parallelism, estimate_with_parallelism, Estimate,
};
