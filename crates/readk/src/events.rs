//! The paper's three probabilistic events (Figure 1 A/B/C), executable.
//!
//! Fix a graph `G`, an acyclic low-out-degree orientation (parents =
//! out-neighbors), a node subset `M`, and the competitiveness cutoff `ρ`
//! (nodes of degree > ρ set priority 0). One *iteration* of the
//! Métivier-style inner loop draws a priority `r(v)` per node. The paper
//! analyzes:
//!
//! * **Event (1)** *(Theorem 3.1, Figure 1A)* — some node of `M` draws a
//!   priority larger than all its children's. Analyzed via a read-α
//!   conjunction bound over an independent subset of `M`.
//! * **Event (2)** *(Theorem 3.2, Figure 1B)* — more than `|M|/2α` nodes
//!   of `M` beat all their *competitive parents*. Analyzed via a read-ρ_k
//!   tail bound: a competitive node has degree ≤ ρ_k, so its priority is
//!   read by at most ρ_k children.
//! * **Event (3)** *(Theorem 3.3, Figure 1C)* — at least
//!   `|M|/(8α²(32α⁶+1))` nodes of `M` are eliminated because a neighbor
//!   (in the proof, a child) joins the MIS. Analyzed via a read-α(α+1)
//!   tail bound.
//!
//! [`EventScenario`] samples priorities counter-style (reproducible from
//! `(seed, trial)`), evaluates each event, and exposes the *exact* read
//! parameters of the corresponding dependency structures so experiment
//! tables can show measured-k next to the paper's claimed k.

use arbmis_graph::orientation::Orientation;
use arbmis_graph::{Graph, NodeId};

/// A fixed stage on which the three events are evaluated.
#[derive(Clone, Debug)]
pub struct EventScenario<'a> {
    graph: &'a Graph,
    orientation: &'a Orientation,
    m_set: Vec<NodeId>,
    in_m: Vec<bool>,
    rho: Option<usize>,
}

impl<'a> EventScenario<'a> {
    /// Creates a scenario.
    ///
    /// # Panics
    ///
    /// Panics if the orientation's node count differs from the graph's, or
    /// `m_set` contains an out-of-range or duplicate node.
    pub fn new(
        graph: &'a Graph,
        orientation: &'a Orientation,
        m_set: Vec<NodeId>,
        rho: Option<usize>,
    ) -> Self {
        assert_eq!(graph.n(), orientation.n(), "orientation/graph mismatch");
        let mut in_m = vec![false; graph.n()];
        for &v in &m_set {
            assert!(v < graph.n(), "M contains out-of-range node {v}");
            assert!(!in_m[v], "M contains duplicate node {v}");
            in_m[v] = true;
        }
        EventScenario {
            graph,
            orientation,
            m_set,
            in_m,
            rho,
        }
    }

    /// The node set `M`.
    pub fn m_set(&self) -> &[NodeId] {
        &self.m_set
    }

    /// The competitiveness cutoff ρ, if any.
    pub fn rho(&self) -> Option<usize> {
        self.rho
    }

    /// Draws one iteration's priorities. Nodes with degree > ρ get 0
    /// (non-competitive); all others get a uniform *odd* 64-bit value
    /// (the forced low bit reserves 0 for "non-competitive"; comparisons
    /// only care about order, where odd-only is still uniform).
    pub fn sample_priorities(&self, seed: u64, trial: u64) -> Vec<u64> {
        (0..self.graph.n())
            .map(|v| {
                if self.rho.is_some_and(|rho| self.graph.degree(v) > rho) {
                    0
                } else {
                    arbmis_congest::rng::draw(seed, v, trial, 0x9 /* priority tag */) | 1
                }
            })
            .collect()
    }

    /// Whether `v` is competitive under the cutoff.
    pub fn is_competitive(&self, v: NodeId) -> bool {
        self.rho.is_none_or(|rho| self.graph.degree(v) <= rho)
    }

    // ---- Event (1): some node of M beats all its children -------------

    /// Evaluates Event (1) under `priorities`.
    pub fn event1_holds(&self, priorities: &[u64]) -> bool {
        self.m_set.iter().any(|&x| {
            priorities[x] > 0
                && self
                    .orientation
                    .children(x)
                    .iter()
                    .all(|&c| priorities[x] > priorities[c])
        })
    }

    /// The exact read parameter of the Event (1) indicator family
    /// `{Y_x : x ∈ M}`, `Y_x` reading `{x} ∪ Child(x)`. The paper bounds
    /// this by α (over an independent subset; over all of `M` it is at
    /// most α + 1 since each priority is read by its ≤ α parents in `M`
    /// plus possibly itself).
    pub fn event1_read_parameter(&self) -> usize {
        let mut reads = vec![0usize; self.graph.n()];
        for &x in &self.m_set {
            reads[x] += 1;
            for &c in self.orientation.children(x) {
                reads[c] += 1;
            }
        }
        reads.into_iter().max().unwrap_or(0)
    }

    // ---- Event (2): many nodes of M beat all competitive parents ------

    /// Number of nodes of `M` whose priority exceeds every *competitive*
    /// parent's priority. Non-competitive parents (priority 0) never block
    /// a competitive node since competitive priorities are ≥ 1.
    pub fn event2_count(&self, priorities: &[u64]) -> usize {
        self.m_set
            .iter()
            .filter(|&&u| {
                priorities[u] > 0
                    && self
                        .orientation
                        .parents(u)
                        .iter()
                        .all(|&p| priorities[u] > priorities[p])
            })
            .count()
    }

    /// Evaluates Event (2): more than `|M|/2α` nodes beat their parents.
    pub fn event2_holds(&self, priorities: &[u64], alpha: usize) -> bool {
        assert!(alpha >= 1);
        2 * alpha * self.event2_count(priorities) > self.m_set.len()
    }

    /// The exact read parameter of the Event (2) family `{X_u : u ∈ M}`,
    /// `X_u` reading `{u}` and the priorities of `u`'s competitive
    /// parents. The paper bounds this by ρ_k: a competitive parent has
    /// degree ≤ ρ_k so it is read by at most ρ_k children.
    pub fn event2_read_parameter(&self) -> usize {
        let mut reads = vec![0usize; self.graph.n()];
        for &u in &self.m_set {
            reads[u] += 1;
            for &p in self.orientation.parents(u) {
                if self.is_competitive(p) {
                    reads[p] += 1;
                }
            }
        }
        reads.into_iter().max().unwrap_or(0)
    }

    // ---- Event (3): elimination via MIS joins --------------------------

    /// Runs one Métivier iteration on the whole graph: a node joins the
    /// MIS iff it is competitive and its priority strictly exceeds every
    /// neighbor's. Returns the set of nodes of `M` that are *eliminated*
    /// (joined, or have a neighbor that joined).
    pub fn event3_eliminated(&self, priorities: &[u64]) -> Vec<NodeId> {
        let g = self.graph;
        let joins: Vec<bool> = (0..g.n())
            .map(|v| {
                priorities[v] > 0
                    && g.neighbors(v)
                        .iter()
                        .all(|&u| priorities[v] > priorities[u])
            })
            .collect();
        self.m_set
            .iter()
            .copied()
            .filter(|&w| joins[w] || g.neighbors(w).iter().any(|&u| joins[u]))
            .collect()
    }

    /// Evaluates Event (3): at least `|M| / (8α²(32α⁶+1))` nodes of `M`
    /// eliminated (the paper's Theorem 3.3 fraction).
    pub fn event3_holds(&self, priorities: &[u64], alpha: usize) -> bool {
        let frac = crate::bounds::event3_elimination_fraction(alpha);
        let needed = (self.m_set.len() as f64 * frac).ceil().max(1.0) as usize;
        self.event3_eliminated(priorities).len() >= needed
    }

    /// The exact read parameter of the Event (3) family `{G_w : w ∈ M}`
    /// as redefined in the paper's proof: `G_w` reads `r(w)`, the
    /// priorities of `Child(w)`, and of grandchildren of `w`. The paper
    /// bounds this by α(α+1).
    pub fn event3_read_parameter(&self) -> usize {
        let mut reads = vec![0usize; self.graph.n()];
        for &w in &self.m_set {
            reads[w] += 1;
            for &c in self.orientation.children(w) {
                reads[c] += 1;
                for &gc in self.orientation.children(c) {
                    reads[gc] += 1;
                }
            }
        }
        reads.into_iter().max().unwrap_or(0)
    }

    /// Largest active degree over `M` (`Δ_IB(M)` with everything active).
    pub fn max_degree_of_m(&self) -> usize {
        self.m_set
            .iter()
            .map(|&v| self.graph.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The membership mask of `M`.
    pub fn m_mask(&self) -> &[bool] {
        &self.in_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::estimate;
    use arbmis_graph::gen;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Orientation of a star (hub = node 0) with every edge pointing
    /// leaf -> hub, i.e. the hub is every leaf's parent.
    fn star_orientation(g: &Graph) -> Orientation {
        let n = g.n();
        let mut position: Vec<usize> = (0..n).collect();
        position[0] = n; // hub last => all edges orient toward it
        Orientation::from_position(g, &position)
    }

    #[test]
    fn priorities_respect_cutoff() {
        let g = gen::star(10);
        let o = Orientation::by_degeneracy(&g);
        let sc = EventScenario::new(&g, &o, vec![0, 1, 2], Some(5));
        let pri = sc.sample_priorities(3, 0);
        assert_eq!(pri[0], 0, "hub degree 9 > 5 must be non-competitive");
        assert!(pri[1] > 0 && pri[2] > 0);
        assert!(!sc.is_competitive(0));
        assert!(sc.is_competitive(1));
    }

    #[test]
    fn event1_on_tree_matches_hand_computation() {
        // Path 0-1-2: degeneracy orientation. Take M = {1}. Event 1 holds
        // iff r(1) > priorities of 1's children.
        let g = gen::path(3);
        let o = Orientation::by_degeneracy(&g);
        let sc = EventScenario::new(&g, &o, vec![1], None);
        let e = estimate(4000, |t| {
            let pri = sc.sample_priorities(5, t);
            sc.event1_holds(&pri)
        });
        // 1 has at most 2 children; beating c children has prob 1/(c+1).
        let c = o.children(1).len();
        let expect = 1.0 / (c as f64 + 1.0);
        assert!(
            e.consistent_with(expect, 4.0),
            "p_hat {} expect {expect}",
            e.p_hat()
        );
    }

    #[test]
    fn event1_probability_grows_with_m() {
        let mut r = rng(1);
        let g = gen::forest_union(400, 2, &mut r);
        let o = Orientation::by_degeneracy(&g);
        let small = EventScenario::new(&g, &o, (0..10).collect(), None);
        let large = EventScenario::new(&g, &o, (0..200).collect(), None);
        let ps = estimate(800, |t| small.event1_holds(&small.sample_priorities(2, t)));
        let pl = estimate(800, |t| large.event1_holds(&large.sample_priorities(2, t)));
        assert!(pl.p_hat() >= ps.p_hat());
    }

    #[test]
    fn event1_read_parameter_bounded() {
        let mut r = rng(2);
        let g = gen::random_ktree(300, 3, &mut r);
        let o = Orientation::by_degeneracy(&g);
        let sc = EventScenario::new(&g, &o, (0..300).collect(), None);
        // Every priority is read by itself (1) plus its ≤ out-degree
        // parents that lie in M.
        assert!(sc.event1_read_parameter() <= o.max_out_degree() + 1);
    }

    #[test]
    fn event2_count_on_star() {
        // Star: leaves' parent is the hub. A leaf beats its parents iff its
        // priority exceeds the hub's: exactly one node (hub or one leaf)
        // has the max priority.
        let g = gen::star(6);
        let o = star_orientation(&g);
        let sc = EventScenario::new(&g, &o, vec![1, 2, 3, 4, 5], None);
        let pri = sc.sample_priorities(1, 0);
        let k = sc.event2_read_parameter();
        let count = sc.event2_count(&pri);
        let hub = pri[0];
        let expected = (1..6).filter(|&v| pri[v] > hub).count();
        assert_eq!(count, expected);
        // Hub's priority is read by all 5 leaves: read parameter 5.
        assert_eq!(k, 5);
    }

    #[test]
    fn event2_cutoff_shrinks_read_parameter() {
        // With ρ below the hub degree, the hub is non-competitive and the
        // family no longer reads it.
        let g = gen::star(20);
        let o = star_orientation(&g);
        let uncut = EventScenario::new(&g, &o, (1..20).collect(), None);
        let cut = EventScenario::new(&g, &o, (1..20).collect(), Some(10));
        assert_eq!(uncut.event2_read_parameter(), 19);
        assert_eq!(cut.event2_read_parameter(), 1);
    }

    #[test]
    fn event2_probability_on_forest() {
        // α = 1 (a tree): each node has ≤ 1 parent, so it beats its
        // parents with probability ≥ 1/2; expect more than |M|/2 winners
        // frequently.
        let mut r = rng(3);
        let g = gen::random_tree_prufer(300, &mut r);
        let o = Orientation::by_degeneracy(&g);
        let m: Vec<NodeId> = (0..300).collect();
        let sc = EventScenario::new(&g, &o, m, None);
        let e = estimate(500, |t| sc.event2_holds(&sc.sample_priorities(4, t), 1));
        // Mean winners ≈ n/2 + (roots count)/2; being > n/2 happens often.
        assert!(e.p_hat() > 0.3, "p_hat {}", e.p_hat());
    }

    #[test]
    fn event3_elimination_counts() {
        // Complete graph: exactly one node joins (the max), eliminating
        // everyone.
        let g = gen::complete(8);
        let o = Orientation::by_degeneracy(&g);
        let sc = EventScenario::new(&g, &o, (0..8).collect(), None);
        let pri = sc.sample_priorities(6, 0);
        let elim = sc.event3_eliminated(&pri);
        assert_eq!(elim.len(), 8);
        assert!(sc.event3_holds(&pri, 4));
    }

    #[test]
    fn event3_no_join_when_all_non_competitive() {
        let g = gen::complete(6); // all degrees 5
        let o = Orientation::by_degeneracy(&g);
        let sc = EventScenario::new(&g, &o, (0..6).collect(), Some(2));
        let pri = sc.sample_priorities(7, 0);
        assert!(pri.iter().all(|&p| p == 0));
        assert!(sc.event3_eliminated(&pri).is_empty());
    }

    #[test]
    fn event3_read_parameter_bounded_by_alpha_alpha_plus_one() {
        let mut r = rng(4);
        for alpha in 1..=3usize {
            let g = gen::forest_union(300, alpha, &mut r);
            let o = Orientation::by_degeneracy(&g);
            let d = o.max_out_degree();
            let sc = EventScenario::new(&g, &o, (0..300).collect(), None);
            let k = sc.event3_read_parameter();
            assert!(
                k <= d * (d + 1) + 1,
                "α={alpha}: read parameter {k} vs bound {}",
                d * (d + 1) + 1
            );
        }
    }

    #[test]
    #[should_panic]
    fn duplicate_m_rejected() {
        let g = gen::path(4);
        let o = Orientation::by_degeneracy(&g);
        let _ = EventScenario::new(&g, &o, vec![1, 1], None);
    }

    #[test]
    fn deterministic_sampling() {
        let g = gen::cycle(10);
        let o = Orientation::by_degeneracy(&g);
        let sc = EventScenario::new(&g, &o, vec![0, 1], None);
        assert_eq!(sc.sample_priorities(9, 3), sc.sample_priorities(9, 3));
        assert_ne!(sc.sample_priorities(9, 3), sc.sample_priorities(9, 4));
    }
}
